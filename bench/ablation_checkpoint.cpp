// Ablation: checkpoints for historical-state reconstruction (paper section
// 4.8: "a log of tuple updates along with some checkpoints, so that the
// system state at any point in the past can be efficiently reconstructed").
//
// Reconstructs the network's configuration state at the end of a long run
// twice: by replaying the entire log from the start, and by restoring the
// latest checkpoint and replaying only the suffix. Both must converge to
// identical flow tables.
#include "bench_util.h"
#include "replay/checkpoint.h"
#include "sdn/program.h"
#include "replay/replay_engine.h"
#include "sdn/scenario.h"
#include "sdn/trace.h"

namespace dp {
namespace {

std::vector<Tuple> flow_state(const Engine& engine) {
  std::vector<Tuple> state = engine.live_tuples("flowEntry");
  for (Tuple& t : engine.live_tuples("compiled")) state.push_back(t);
  return state;
}

}  // namespace
}  // namespace dp

int main() {
  using namespace dp;
  bench::print_header("Ablation: full replay vs. checkpoint + suffix replay",
                      "paper section 4.8 (temporal provenance support)");

  // A long run: SDN1 config plus lots of traffic, with a config change
  // mid-stream so the suffix matters.
  sdn::Scenario s = sdn::sdn1();
  sdn::TraceConfig trace;
  trace.rate_mbps = 100.0;
  trace.duration_s = 10.0;
  trace.max_packets = 40'000;
  EventLog background;
  sdn::generate_trace(trace, background);
  for (const LogRecord& r : background.records()) s.log.append(r);
  const LogicalTime checkpoint_time = 1'200'000;  // ~3/4 into the capture
  sdn::add_policy(s.log, "sw3", 50, "99.0.0.0/8", "sw4",
                  checkpoint_time + 500);  // suffix-only config change

  // Run to the checkpoint, capture, and keep the suffix of the log.
  Engine prefix_engine(sdn::make_program());
  for (const LogRecord& r : s.log.records()) {
    if (r.time <= checkpoint_time) {
      if (r.op == LogRecord::Op::kInsert) {
        prefix_engine.schedule_insert(r.tuple(), r.time);
      } else {
        prefix_engine.schedule_delete(r.tuple(), r.time);
      }
    }
  }
  prefix_engine.run();
  const Checkpoint checkpoint = Checkpoint::capture(prefix_engine);

  // (a) Full replay from the beginning.
  bench::WallTimer full_timer;
  Engine full_engine(sdn::make_program());
  for (const LogRecord& r : s.log.records()) {
    if (r.op == LogRecord::Op::kInsert) {
      full_engine.schedule_insert(r.tuple(), r.time);
    } else {
      full_engine.schedule_delete(r.tuple(), r.time);
    }
  }
  full_engine.run();
  const double full_ms = full_timer.millis();

  // (b) Restore the checkpoint and replay only the suffix.
  bench::WallTimer suffix_timer;
  Engine suffix_engine(sdn::make_program());
  checkpoint.schedule_into(suffix_engine, checkpoint_time);
  for (const LogRecord& r : s.log.records()) {
    if (r.time <= checkpoint_time) continue;
    if (r.op == LogRecord::Op::kInsert) {
      suffix_engine.schedule_insert(r.tuple(), r.time);
    } else {
      suffix_engine.schedule_delete(r.tuple(), r.time);
    }
  }
  suffix_engine.run();
  const double suffix_ms = suffix_timer.millis();

  const bool state_equal =
      flow_state(full_engine) == flow_state(suffix_engine);
  bench::print_row({"Reconstruction", "Time (ms)"});
  bench::print_row({"--------------", "---------"});
  bench::print_row({"full replay", bench::fmt(full_ms, 1)});
  bench::print_row({"checkpoint + suffix", bench::fmt(suffix_ms, 1)});
  std::printf(
      "\nCheckpoint: %zu base tuples captured at t=%lld.\n"
      "Shape check: both reconstructions converge to identical flow/compiled\n"
      "state: %s; the suffix path is %.1fx faster.\n",
      checkpoint.base_tuples().size(),
      static_cast<long long>(checkpoint.captured_at()),
      state_equal ? "YES" : "NO (unexpected)", full_ms / suffix_ms);
  return state_equal ? 0 : 1;
}
