// Ablation: decentralized provenance storage (paper section 4.8).
//
// Runs SDN1 plus background traffic with the sharded (per-node) provenance
// store, then issues the diagnostic queries. Checks the paper's two claims:
// each node stores only its local provenance, and a query materializes only
// the relevant part of the graph, on demand, from the shards it touches.
#include "bench_util.h"
#include "provenance/sharded.h"
#include "runtime/engine.h"
#include "sdn/program.h"
#include "sdn/scenario.h"
#include "sdn/trace.h"

int main() {
  using namespace dp;
  bench::print_header("Ablation: decentralized (sharded) provenance",
                      "paper section 4.8, distributed operation");

  sdn::Scenario s = sdn::sdn1();
  sdn::TraceConfig trace;
  trace.rate_mbps = 100.0;
  trace.duration_s = 5.0;
  trace.max_packets = 10'000;
  EventLog background;
  sdn::generate_trace(trace, background);
  for (const LogRecord& r : background.records()) s.log.append(r);

  ShardedProvenance sharded;
  Engine engine(sdn::make_program());
  engine.add_observer(&sharded);
  for (const LogRecord& r : s.log.records()) {
    if (r.op == LogRecord::Op::kInsert) {
      engine.schedule_insert(r.tuple(), r.time);
    } else {
      engine.schedule_delete(r.tuple(), r.time);
    }
  }
  bench::WallTimer run_timer;
  engine.run();
  std::printf("Recorded %zu shards in %.0f ms:\n", sharded.shard_count(),
              run_timer.millis());
  std::size_t total = 0;
  for (const auto& [node, size] : sharded.shard_sizes()) {
    std::printf("  %-6s %8zu vertexes\n", node.c_str(), size);
    total += size;
  }
  std::printf("  %-6s %8zu vertexes\n", "total", total);

  for (const Tuple& event : {s.good_event, s.bad_event}) {
    bench::WallTimer query_timer;
    const auto tree = sharded.project(event);
    if (!tree) {
      std::printf("ERROR: %s not found\n", event.to_string().c_str());
      return 1;
    }
    const auto stats = sharded.last_query_stats();
    std::printf(
        "\nquery %-45s %.2f ms\n"
        "  materialized %zu of %zu stored vertexes (%.2f%%), %zu remote\n"
        "  fetches across %zu of %zu shards\n",
        event.to_string().c_str(), query_timer.millis(),
        stats.vertices_visited, total,
        100.0 * double(stats.vertices_visited) / double(total),
        stats.remote_fetches, stats.shards_touched, sharded.shard_count());
  }
  std::printf(
      "\nShape check: no global operation -- a diagnostic query pulls well\n"
      "under 1%% of the stored provenance, from only the shards on the\n"
      "packet's path plus the controller.\n");
  return 0;
}
