// Ablation: selective provenance reconstruction (paper section 5: the
// replay engine "selectively reconstructs relevant parts of the provenance
// graph only").
//
// Replays SDN1 with heavy background traffic twice: once recording the full
// provenance graph, and once recording only the tuples of the diagnosed
// flow plus configuration state. The filtered graph is a fraction of the
// full one while still answering the diagnostic query.
#include "bench_util.h"
#include "diffprov/diffprov.h"
#include "sdn/scenario.h"
#include "sdn/trace.h"

int main() {
  using namespace dp;
  bench::print_header("Ablation: full vs. selective provenance reconstruction",
                      "paper section 5 (query-time replay optimization)");

  sdn::Scenario s = sdn::sdn1();
  sdn::TraceConfig trace;
  trace.rate_mbps = 100.0;
  trace.duration_s = 5.0;
  trace.max_packets = 20'000;
  EventLog background;
  sdn::generate_trace(trace, background);
  for (const LogRecord& r : background.records()) s.log.append(r);

  // Full reconstruction.
  bench::WallTimer full_timer;
  LogReplayProvider full_provider(s.program, s.topology, s.log);
  const BadRun full = full_provider.replay_bad({});
  const double full_ms = full_timer.millis();
  const std::size_t full_size = full.graph->size();

  // Selective: keep configuration state and only the diagnosed packets
  // (ids 1 and 2); background flows are skipped entirely.
  ReplayOptions options;
  options.provenance_filter = [](const Tuple& t) {
    const std::string& table = t.table();
    if (table == "policyRoute" || table == "link" || table == "switchUp" ||
        table == "compiled" || table == "flowEntry" || table == "jobSetup") {
      return true;
    }
    // Traffic tuples carry the packet id in field 1.
    return t.arity() > 1 && t.at(1).is_int() && t.at(1).as_int() <= 2;
  };
  bench::WallTimer sel_timer;
  LogReplayProvider selective_provider(s.program, s.topology, s.log, options);
  const BadRun selective = selective_provider.replay_bad({});
  const double sel_ms = sel_timer.millis();
  const std::size_t sel_size = selective.graph->size();

  const bool answers = locate_tree(*selective.graph, s.bad_event).has_value();

  bench::print_row({"Reconstruction", "Graph vertexes", "Replay (ms)"});
  bench::print_row({"--------------", "--------------", "-----------"});
  bench::print_row({"full graph", std::to_string(full_size),
                    bench::fmt(full_ms, 1)});
  bench::print_row({"selective (diagnosed flow)", std::to_string(sel_size),
                    bench::fmt(sel_ms, 1)});
  std::printf(
      "\nShape check: the selective graph is %.1fx smaller and still answers\n"
      "the diagnostic query (bad tree locatable: %s).\n",
      double(full_size) / double(sel_size), answers ? "yes" : "NO");
  return answers ? 0 : 1;
}
