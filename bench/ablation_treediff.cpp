// Ablation: why not compare the trees directly? (paper section 2.5)
//
// Pits the two strawmen -- the plain vertex diff and a Zhang-Shasha tree
// edit distance -- against DiffProv on SDN1. Both baselines mask timestamps
// already (a generous equivalence), yet the butterfly effect of one broken
// flow entry still yields dozens-to-hundreds of differences, while DiffProv
// returns a single change. Also reports the baselines' runtime cost.
#include "bench_util.h"
#include "diffprov/diffprov.h"
#include "diffprov/treediff.h"
#include "sdn/scenario.h"

int main() {
  using namespace dp;
  bench::print_header("Ablation: naive tree comparison vs. DiffProv",
                      "paper section 2.5 and Table 1");

  const sdn::Scenario s = sdn::sdn1();
  LogReplayProvider good_provider(s.program, s.topology, s.log);
  const BadRun run = good_provider.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  const auto bad = locate_tree(*run.graph, s.bad_event);

  bench::WallTimer diff_timer;
  const TreeDiffStats diff = plain_tree_diff(*good, *bad);
  const double diff_ms = diff_timer.millis();

  bench::WallTimer ted_timer;
  const std::size_t ted = tree_edit_distance(*good, *bad);
  const double ted_ms = ted_timer.millis();

  bench::WallTimer dp_timer;
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  const double dp_ms = dp_timer.millis();

  std::printf("Good tree: %zu vertexes; bad tree: %zu vertexes.\n\n",
              good->size(), bad->size());
  bench::print_row({"Technique", "Output size", "Time (ms)"});
  bench::print_row({"---------", "-----------", "---------"});
  bench::print_row({"plain vertex diff",
                    std::to_string(diff.diff_size()) + " vertexes",
                    bench::fmt(diff_ms, 2)});
  bench::print_row({"tree edit distance",
                    std::to_string(ted) + " edit ops",
                    bench::fmt(ted_ms, 2)});
  bench::print_row({"DiffProv",
                    std::to_string(result.changes.size()) + " change",
                    bench::fmt(dp_ms, 2)});
  std::printf(
      "\nShape check: both baselines report tens-to-hundreds of differences\n"
      "for a single-vertex root cause; the edit distance does not even name\n"
      "the culprit, only a script of %zu edits. DiffProv pays replay time\n"
      "for a one-change answer:\n  %s\n",
      ted, result.changes.empty() ? "-" : result.changes[0].to_string().c_str());
  return 0;
}
