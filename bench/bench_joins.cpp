// Join-plan ablation: the same probe-driven two-way equijoin executed by
// the indexed-plan engine and by the full-scan reference evaluator, across
// growing table sizes. Prints a comparison table and writes BENCH_joins.json
// (machine-readable; consumed by CI and checked in at the repo root) with
// throughput, speedup, and the Stats join counters that explain it.
//
// Usage: bench_joins [output.json]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ndlog/parser.h"
#include "runtime/engine.h"

namespace dp {
namespace {

constexpr std::int64_t kProbes = 500;

Program join_program() {
  return parse_program(R"(
    table probe(2) base immutable event.
    table left(3) keys(0, 1) base mutable.
    table right(3) keys(0, 1) base mutable.
    table out(3) derived event.
    rule j out(@N, K, W) :-
      probe(@N, K), left(@N, K, V), right(@N, V, W).
  )");
}

struct Run {
  double seconds = 0;
  double probes_per_sec = 0;
  Engine::Stats stats;
};

Run run_once(std::int64_t rows, bool use_join_plans) {
  EngineConfig config;
  config.use_join_plans = use_join_plans;
  Engine engine(join_program(), config);
  for (std::int64_t k = 0; k < rows; ++k) {
    engine.schedule_insert(Tuple("left", {Value("n1"), Value(k), Value(k)}),
                           0);
    engine.schedule_insert(
        Tuple("right", {Value("n1"), Value(k), Value(k + 1)}), 0);
  }
  for (std::int64_t k = 0; k < kProbes; ++k) {
    engine.schedule_insert(
        Tuple("probe", {Value("n1"), Value(k % rows)}), 1);
  }
  const bench::WallTimer timer;
  engine.run();
  Run run;
  run.seconds = timer.seconds();
  run.probes_per_sec = static_cast<double>(kProbes) / run.seconds;
  run.stats = engine.stats();
  return run;
}

}  // namespace
}  // namespace dp

int main(int argc, char** argv) {
  using namespace dp;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_joins.json";
  const std::vector<std::int64_t> sizes = {1000, 2000, 4000, 8000};

  bench::print_header("Indexed join plans vs full scans",
                      "the ISSUE-1 join-index acceptance bar: >= 2x "
                      "items/sec at >= 1k live tuples per joined table");
  bench::print_row({"rows/table", "scan ev/s", "indexed ev/s", "speedup",
                    "scan cand.", "idx cand.", "probes"});

  std::ofstream json(out_path);
  json << "{\n  \"benchmark\": \"join_index\",\n  \"probes\": " << kProbes
       << ",\n  \"runs\": [\n";
  bool ok = true;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::int64_t rows = sizes[i];
    const Run scan = run_once(rows, /*use_join_plans=*/false);
    const Run indexed = run_once(rows, /*use_join_plans=*/true);
    const double speedup = indexed.probes_per_sec / scan.probes_per_sec;
    ok = ok && speedup >= 2.0;
    bench::print_row({std::to_string(rows), bench::fmt(scan.probes_per_sec, 0),
                      bench::fmt(indexed.probes_per_sec, 0),
                      bench::fmt(speedup, 1) + "x",
                      std::to_string(scan.stats.tuples_scanned),
                      std::to_string(indexed.stats.tuples_scanned),
                      std::to_string(indexed.stats.index_probes)});
    json << "    {\"rows_per_table\": " << rows
         << ", \"full_scan_probes_per_sec\": "
         << bench::fmt(scan.probes_per_sec, 1)
         << ", \"indexed_probes_per_sec\": "
         << bench::fmt(indexed.probes_per_sec, 1)
         << ", \"speedup\": " << bench::fmt(speedup, 2)
         << ", \"full_scan_tuples_scanned\": " << scan.stats.tuples_scanned
         << ", \"indexed_tuples_scanned\": " << indexed.stats.tuples_scanned
         << ", \"index_probes\": " << indexed.stats.index_probes
         << ", \"tuples_matched\": " << indexed.stats.tuples_matched << "}"
         << (i + 1 < sizes.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"acceptance_speedup_at_least_2x\": "
       << (ok ? "true" : "false") << "\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return ok ? 0 : 1;
}
