// Execution-variant ablation on a probe-driven two-hop equijoin: the same
// workload executed by the full-scan reference evaluator, the row-at-a-time
// indexed-plan engine, and the batched engine. Prints a comparison table and
// writes BENCH_joins.json (machine-readable; consumed by CI and checked in
// at the repo root) with per-variant tuples/sec and the two acceptance
// gates:
//
//  * acceptance_speedup_at_least_2x      -- indexed row plans vs full scans
//    (the ISSUE-1 bar, kept from the original benchmark);
//  * acceptance_batch_speedup_at_least_2x -- batched vs row-at-a-time,
//    median across table sizes (the batch-execution bar). The process exits
//    non-zero if either gate fails, so CI can run the binary directly.
//
// Shape of the workload -- a diagnostic probe storm, deliberately
// join-heavy: left/right build tables at t=0 (untimed), then `kWaves` waves
// of probe events, one wave per logical time. Seven probes in eight miss (no
// matching flow entry: one index probe, the common case when sweeping for an
// anomaly), every eighth hits and drives the full two-hop descent
// probe -> left(N,K) -> right(N,V) through the secondary hash indexes. A
// constraint on the joined value filters all but ~1/16 of the complete
// matches, so measured time is dominated by index probing and join
// verification rather than by derived-event processing -- while the
// surviving matches still derive `out` events end-to-end, keeping the
// emission, scheduling, and provenance paths in the measurement. Timing
// covers the probe waves only.
//
// Usage: bench_joins [--fast] [output.json]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ndlog/parser.h"
#include "runtime/engine.h"

namespace dp {
namespace {

/// One complete match in 16 survives the W constraint (W is the joined
/// right-hand value, uniform over [1, rows]): the join work happens for
/// every hit, the derivation tail only for the survivors.
Program join_program(std::int64_t rows) {
  return parse_program(R"(
    table probe(2) base immutable event.
    table left(3) keys(0, 1) base mutable.
    table right(3) keys(0, 1) base mutable.
    table out(3) derived event.
    rule j out(@N, K, W) :-
      probe(@N, K), left(@N, K, V), right(@N, V, W), W < )" +
                       std::to_string(rows / 16 + 1) + R"(.
  )");
}

enum class Variant { kFullScan, kRow, kBatch };

struct Run {
  double tuples_per_sec = 0;  // median across waves, probe deltas per second
  Engine::Stats stats;        // cumulative over every wave
};

/// Scrambles `i` into [0, rows) so consecutive probes touch scattered keys
/// (index slots), not a cache-friendly ascending run.
std::int64_t scatter(std::int64_t i, std::int64_t rows) {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(i) * 2654435761u) % static_cast<std::uint64_t>(rows));
}

std::unique_ptr<Engine> build_engine(std::int64_t rows, Variant variant) {
  EngineConfig config;
  config.use_join_plans = variant != Variant::kFullScan;
  config.use_batch_exec = variant == Variant::kBatch;
  auto engine = std::make_unique<Engine>(join_program(rows), config);
  // Build phase, untimed: each table's inserts form one contiguous run.
  for (std::int64_t k = 0; k < rows; ++k) {
    engine->schedule_insert(Tuple("left", {Value("n1"), Value(k), Value(k)}),
                            0);
  }
  for (std::int64_t k = 0; k < rows; ++k) {
    engine->schedule_insert(
        Tuple("right", {Value("n1"), Value(k), Value(k + 1)}), 0);
  }
  engine->run_until(0);
  return engine;
}

/// Feeds one wave of probes and times its run. Every variant receives the
/// identical wave (same keys, same order), back to back within each wave --
/// the paired timing makes the per-wave speedup ratios robust against
/// machine-load drift that would swamp sequential whole-run comparisons.
double time_wave(Engine& engine, std::int64_t rows,
                 std::int64_t probes_per_wave, int wave) {
  const LogicalTime t = static_cast<LogicalTime>(wave) + 1;
  for (std::int64_t i = 0; i < probes_per_wave; ++i) {
    // Seven misses (keys past the populated range), then a hit (a key in
    // [0, rows), driving the full two-hop descent).
    const std::int64_t key = i % 8 != 7 ? rows + scatter(i + wave, rows)
                                        : scatter(i + wave, rows);
    engine.schedule_insert(Tuple("probe", {Value("n1"), Value(key)}), t);
  }
  const bench::WallTimer timer;
  engine.run_until(t);
  return timer.seconds();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

struct SizeResult {
  Run scan;          // tuples_per_sec = 0 when the size is over the cap
  Run row;
  Run batch;
  double batch_speedup = 0;  // median of per-wave batch/row ratios
  double row_speedup = 0;    // median of per-wave row/scan ratios (if run)
};

SizeResult run_size(std::int64_t rows, std::int64_t probes_per_wave,
                    int waves, bool with_scan) {
  std::unique_ptr<Engine> scan =
      with_scan ? build_engine(rows, Variant::kFullScan) : nullptr;
  std::unique_ptr<Engine> row = build_engine(rows, Variant::kRow);
  std::unique_ptr<Engine> batch = build_engine(rows, Variant::kBatch);

  // One untimed warmup wave per engine: the first wave pays first-touch
  // scratch growth (queue, register matrix, run buffers) that no steady
  // wave sees, for any variant.
  time_wave(*row, rows, probes_per_wave, 0);
  time_wave(*batch, rows, probes_per_wave, 0);
  if (scan != nullptr) time_wave(*scan, rows, probes_per_wave, 0);

  std::vector<double> scan_rates, row_rates, batch_rates;
  std::vector<double> batch_ratios, row_ratios;
  for (int wave = 1; wave <= waves; ++wave) {
    const double row_s = time_wave(*row, rows, probes_per_wave, wave);
    const double batch_s = time_wave(*batch, rows, probes_per_wave, wave);
    row_rates.push_back(static_cast<double>(probes_per_wave) / row_s);
    batch_rates.push_back(static_cast<double>(probes_per_wave) / batch_s);
    batch_ratios.push_back(row_s / batch_s);
    if (scan != nullptr) {
      const double scan_s = time_wave(*scan, rows, probes_per_wave, wave);
      scan_rates.push_back(static_cast<double>(probes_per_wave) / scan_s);
      row_ratios.push_back(scan_s / row_s);
    }
  }
  SizeResult result;
  result.row.tuples_per_sec = median(row_rates);
  result.row.stats = row->stats();
  result.batch.tuples_per_sec = median(batch_rates);
  result.batch.stats = batch->stats();
  result.batch_speedup = median(batch_ratios);
  if (scan != nullptr) {
    result.scan.tuples_per_sec = median(scan_rates);
    result.scan.stats = scan->stats();
    result.row_speedup = median(row_ratios);
  }
  return result;
}

}  // namespace
}  // namespace dp

int main(int argc, char** argv) {
  using namespace dp;
  bool fast = false;
  std::string out_path = "BENCH_joins.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      fast = true;
    } else {
      out_path = arg;
    }
  }
  const std::vector<std::int64_t> sizes =
      fast ? std::vector<std::int64_t>{8000, 64000}
           : std::vector<std::int64_t>{8000, 64000, 262144};
  const std::int64_t probes = fast ? 2000 : 4000;
  const int waves = fast ? 3 : 5;
  // Full scans visit every live row per probe; cap the sizes they run at so
  // the benchmark stays fast (the scan column reads "-" past the cap).
  const std::int64_t full_scan_cap = 8000;

  bench::print_header(
      "Join execution variants: full scan vs row plans vs batched",
      "gates: row >= 2x full scan (ISSUE-1); batch >= 2x row, median "
      "across sizes (batch execution)");
  bench::print_row({"rows/table", "scan tup/s", "row tup/s", "batch tup/s",
                    "row/scan", "batch/row", "probes", "matched"});

  std::ofstream json(out_path);
  json << "{\n  \"benchmark\": \"join_exec_variants\",\n"
       << "  \"probes_per_wave\": " << probes << ",\n  \"waves\": " << waves
       << ",\n  \"runs\": [\n";
  bool row_ok = true;
  std::vector<double> batch_ratios;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::int64_t rows = sizes[i];
    const bool with_scan = rows <= full_scan_cap;
    const SizeResult r = run_size(rows, probes, waves, with_scan);
    if (with_scan) row_ok = row_ok && r.row_speedup >= 2.0;
    batch_ratios.push_back(r.batch_speedup);
    bench::print_row(
        {std::to_string(rows),
         with_scan ? bench::fmt(r.scan.tuples_per_sec, 0) : "-",
         bench::fmt(r.row.tuples_per_sec, 0),
         bench::fmt(r.batch.tuples_per_sec, 0),
         with_scan ? bench::fmt(r.row_speedup, 1) + "x" : "-",
         bench::fmt(r.batch_speedup, 1) + "x",
         std::to_string(r.batch.stats.index_probes),
         std::to_string(r.batch.stats.tuples_matched)});
    json << "    {\"rows_per_table\": " << rows;
    if (with_scan) {
      json << ", \"full_scan_tuples_per_sec\": "
           << bench::fmt(r.scan.tuples_per_sec, 1)
           << ", \"row_speedup_vs_full_scan\": "
           << bench::fmt(r.row_speedup, 2);
    }
    json << ", \"row_tuples_per_sec\": "
         << bench::fmt(r.row.tuples_per_sec, 1)
         << ", \"batch_tuples_per_sec\": "
         << bench::fmt(r.batch.tuples_per_sec, 1)
         << ", \"batch_speedup_vs_row\": " << bench::fmt(r.batch_speedup, 2)
         << ", \"index_probes\": " << r.batch.stats.index_probes
         << ", \"tuples_matched\": " << r.batch.stats.tuples_matched << "}"
         << (i + 1 < sizes.size() ? "," : "") << "\n";
  }
  const double batch_median = median(batch_ratios);
  const bool batch_ok = batch_median >= 2.0;
  json << "  ],\n  \"batch_speedup_median\": " << bench::fmt(batch_median, 2)
       << ",\n  \"acceptance_speedup_at_least_2x\": "
       << (row_ok ? "true" : "false")
       << ",\n  \"acceptance_batch_speedup_at_least_2x\": "
       << (batch_ok ? "true" : "false") << "\n}\n";
  std::cout << "\nbatch/row median speedup: " << bench::fmt(batch_median, 2)
            << "x\nwrote " << out_path << "\n";
  if (!row_ok) std::cerr << "FAIL: row plans < 2x full scans\n";
  if (!batch_ok) std::cerr << "FAIL: batch exec < 2x row exec (median)\n";
  return row_ok && batch_ok ? 0 : 1;
}
