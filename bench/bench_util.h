// Shared helpers for the reproduction benches: wall-clock timing and
// paper-style table printing. Every bench prints the rows of the table or
// the series of the figure it regenerates, alongside the values the paper
// reports, so EXPERIMENTS.md can be cross-checked mechanically.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace dp::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  /// Elapsed seconds since construction.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title,
                         const std::string& paper_reference) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(reproduces %s)\n\n", paper_reference.c_str());
}

/// Fixed-width row printing: first column left-aligned, rest right-aligned.
inline void print_row(const std::vector<std::string>& cells,
                      int first_width = 26, int width = 14) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i == 0) {
      std::printf("%-*s", first_width, cells[i].c_str());
    } else {
      std::printf("%*s", width, cells[i].c_str());
    }
  }
  std::printf("\n");
}

inline std::string fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace dp::bench
