// Regenerates Figure 5: log growth rate at the border switch as the traffic
// rate varies from 1 Mbps to 10 Gbps (500-byte packets).
//
// The logging engine stores a fixed-size record per packet (header +
// timestamp; section 6.5), so the rate is (packets/second x record size) and
// scales linearly with the traffic rate -- well within a commodity SSD's
// sequential write bandwidth (~400 MB/s in the paper) even at 10 Gbps. We
// measure the real serialized record size over a capped sample of generated
// packets and scale to the offered rate, exactly as the fixed-size-record
// argument licenses.
#include <algorithm>

#include "bench_util.h"
#include "replay/logging_engine.h"
#include "sdn/trace.h"

int main() {
  using namespace dp;
  bench::print_header("Figure 5: logging rate vs. traffic rate",
                      "paper Figure 5 (section 6.5)");

  bench::print_row({"Traffic rate", "Packets/s", "Record B", "Log rate",
                    "SSD budget"});
  bench::print_row({"------------", "---------", "--------", "--------",
                    "----------"});
  const double kSsdBytesPerSec = 400e6;  // the paper's commodity SSD
  double max_fraction = 0;
  for (const double mbps : {1.0, 10.0, 100.0, 1000.0, 2500.0, 5000.0,
                            10000.0}) {
    sdn::TraceConfig config;
    config.rate_mbps = mbps;
    config.packet_bytes = 500;
    config.duration_s = 1.0;
    config.max_packets = 50'000;  // sample cap; arithmetic scales
    EventLog log;
    const sdn::TraceStats stats = sdn::generate_trace(config, log);
    const double record_bytes =
        static_cast<double>(log.byte_size()) /
        static_cast<double>(stats.packets);
    const double rate = record_bytes * stats.packets_per_second;
    max_fraction = std::max(max_fraction, rate / kSsdBytesPerSec);
    bench::print_row(
        {bench::fmt(mbps / 1000.0, 3) + " Gbps",
         bench::fmt(stats.packets_per_second, 0),
         bench::fmt(record_bytes, 1),
         bench::fmt(rate / 1e6, 2) + " MB/s",
         bench::fmt(100.0 * rate / kSsdBytesPerSec, 1) + "%"});
  }
  std::printf(
      "\nShape check: the log rate is linear in the traffic rate and stays\n"
      "within the SSD's sequential write bandwidth at 10 Gbps (peak use:\n"
      "%.1f%% of 400 MB/s).\n",
      100.0 * max_fraction);
  return 0;
}
