// Regenerates Figure 6: log growth rate at a fixed 1 Gbps as the packet size
// varies from 500 to 1500 bytes.
//
// Since the per-packet log record is fixed-size (header + timestamp), larger
// packets at the same bandwidth mean fewer packets per second and therefore
// a *lower* logging rate -- the paper's observation that "the logging rate
// decreases as the packet size grows".
#include "bench_util.h"
#include "sdn/trace.h"

int main() {
  using namespace dp;
  bench::print_header("Figure 6: logging rate vs. packet size at 1 Gbps",
                      "paper Figure 6 (section 6.5)");

  bench::print_row({"Packet size", "Packets/s", "Record B", "Log rate"});
  bench::print_row({"-----------", "---------", "--------", "--------"});
  double previous_rate = 1e18;
  bool monotone = true;
  for (const std::size_t bytes : {500u, 750u, 1000u, 1250u, 1500u}) {
    sdn::TraceConfig config;
    config.rate_mbps = 1000.0;
    config.packet_bytes = bytes;
    config.duration_s = 1.0;
    config.max_packets = 50'000;
    EventLog log;
    const sdn::TraceStats stats = sdn::generate_trace(config, log);
    const double record_bytes = static_cast<double>(log.byte_size()) /
                                static_cast<double>(stats.packets);
    const double rate = record_bytes * stats.packets_per_second;
    monotone = monotone && rate < previous_rate;
    previous_rate = rate;
    bench::print_row({std::to_string(bytes) + " B",
                      bench::fmt(stats.packets_per_second, 0),
                      bench::fmt(record_bytes, 1),
                      bench::fmt(rate / 1e6, 2) + " MB/s"});
  }
  std::printf("\nShape check: logging rate decreases with packet size: %s\n",
              monotone ? "YES" : "NO (unexpected)");
  return 0;
}
