// Regenerates Figure 7: turnaround time for differential provenance queries
// (DiffProv) next to classic single-tree provenance queries (the Y!
// baseline), for all eight scenarios.
//
// Shapes to check (section 6.6):
//  * query time is dominated by replay, not by DiffProv's reasoning;
//  * a DiffProv query costs roughly 2x a Y! query on the SDN scenarios
//    (both replay once to query the trees; DiffProv replays again to update
//    the bad tree), and SDN4 costs about twice the other SDN scenarios
//    (two rounds);
//  * the MR queries pay an extra replay for the reference job (3 replays).
//
// The SDN scenarios replay a synthetic OC-192-style capture alongside the
// scenario traffic so that replay genuinely dominates, as in the paper.
#include <future>
#include <thread>

#include "bench_util.h"
#include "diffprov/diffprov.h"
#include "mapred/scenario.h"
#include "sdn/scenario.h"
#include "sdn/trace.h"

namespace dp {
namespace {

struct Row {
  std::string name;
  double ybang_ms = 0;      // Y! baseline: replay + query the bad tree
  double diffprov_ms = 0;   // full DiffProv turnaround, sequential replays
  double batched_ms = 0;    // good+bad tree replays batched in parallel,
                            // as the paper's figure does
  double replay_ms = 0;     // replay share of the DiffProv time
  double reasoning_ms = 0;  // DiffProv reasoning ("Other" in the figure)
  int replays = 0;
};

Row run_sdn(sdn::Scenario s, std::size_t background_packets) {
  // Attach background traffic (the CAIDA stand-in) to the recorded log.
  sdn::TraceConfig trace;
  trace.rate_mbps = 100.0;
  trace.duration_s = 10.0;
  trace.max_packets = background_packets;
  trace.start_time = 5000;
  EventLog background;
  sdn::generate_trace(trace, background);
  for (const LogRecord& r : background.records()) s.log.append(r);

  Row row;
  row.name = s.name;

  // Y! baseline: one replay + tree projection of the bad event.
  {
    bench::WallTimer timer;
    LogReplayProvider provider(s.program, s.topology, s.log);
    const BadRun run = provider.replay_bad({});
    const auto tree = locate_tree(*run.graph, s.bad_event);
    row.ybang_ms = timer.millis();
    if (!tree) row.name += " (!)";
  }

  // DiffProv: query the good tree, then diagnose (sequential replays).
  {
    bench::WallTimer timer;
    LogReplayProvider good_provider(s.program, s.topology, s.log);
    const BadRun good_run = good_provider.replay_bad({});
    const auto good = locate_tree(*good_run.graph, s.good_event);
    LogReplayProvider provider(s.program, s.topology, s.log);
    DiffProv diffprov(s.program, provider);
    const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
    row.diffprov_ms = timer.millis();
    row.replay_ms = result.timing.replay_us / 1e3;
    row.reasoning_ms = result.timing.reasoning_us() / 1e3;
    row.replays = result.timing.replays + 1;  // + the good-tree replay
    if (!result.ok()) row.name += " (failed)";
  }

  // Batched variant: the paper runs the good- and bad-tree replays in
  // parallel ("we have batched the first two replays", section 6.6).
  {
    bench::WallTimer timer;
    auto good_future = std::async(std::launch::async, [&s] {
      LogReplayProvider good_provider(s.program, s.topology, s.log);
      const BadRun run = good_provider.replay_bad({});
      return locate_tree(*run.graph, s.good_event);
    });
    LogReplayProvider provider(s.program, s.topology, s.log);
    BadRun bad_run = provider.replay_bad({});
    const auto good = good_future.get();
    DiffProv diffprov(s.program, provider);
    const DiffProvResult result =
        diffprov.diagnose(*good, s.bad_event, std::move(bad_run));
    row.batched_ms = timer.millis();
    if (!result.ok()) row.name += " (failed)";
  }
  return row;
}

Row run_mr(const mapred::Scenario& s) {
  Row row;
  row.name = s.name;
  {
    // Y! baseline on the bad job only.
    bench::WallTimer timer;
    if (s.declarative) {
      const EventLog log = mapred::declarative_job_log(s.store, s.bad_config);
      LogReplayProvider provider(s.model, Topology{}, log);
      const BadRun run = provider.replay_bad({});
      (void)locate_tree(*run.graph, s.bad_event);
    } else {
      mapred::WordCountReplayProvider provider(s.store, s.bad_config);
      const BadRun run = provider.replay_bad({});
      (void)locate_tree(*run.graph, s.bad_event);
    }
    row.ybang_ms = timer.millis();
  }
  {
    bench::WallTimer timer;
    const mapred::Diagnosis d = mapred::diagnose(s);
    row.diffprov_ms = timer.millis();
    row.batched_ms = row.diffprov_ms;  // MR reference is a separate job; the
                                       // paper batches it too, but our
                                       // harness reports the sequential time
    row.replay_ms = d.result.timing.replay_us / 1e3;
    row.reasoning_ms = d.result.timing.reasoning_us() / 1e3;
    row.replays = d.result.timing.replays + 1;  // + the reference job replay
    if (!d.result.ok()) row.name += " (failed)";
  }
  return row;
}

}  // namespace
}  // namespace dp

int main() {
  using namespace dp;
  bench::print_header(
      "Figure 7: query turnaround, DiffProv vs. classic provenance (Y!)",
      "paper Figure 7 (section 6.6)");

  std::vector<Row> rows;
  for (const sdn::Scenario& s : sdn::all_scenarios()) {
    rows.push_back(run_sdn(s, 20'000));
  }
  mapred::CorpusConfig corpus;
  corpus.files = 8;
  corpus.lines_per_file = 250;  // the "1 GB text corpus" stand-in
  for (const mapred::Scenario& s : mapred::all_scenarios(corpus)) {
    rows.push_back(run_mr(s));
  }

  bench::print_row({"Query", "Y! (ms)", "DiffProv (ms)", "batched (ms)",
                    "replay (ms)", "reasoning", "replays", "batched/Y!"});
  bench::print_row({"-----", "-------", "-------------", "------------",
                    "-----------", "---------", "-------", "----------"});
  for (const Row& row : rows) {
    bench::print_row({row.name, bench::fmt(row.ybang_ms),
                      bench::fmt(row.diffprov_ms),
                      bench::fmt(row.batched_ms),
                      bench::fmt(row.replay_ms),
                      bench::fmt(row.reasoning_ms, 2) + " ms",
                      std::to_string(row.replays),
                      bench::fmt(row.batched_ms / row.ybang_ms, 2) + "x"},
                     10, 14);
  }
  std::printf(
      "\nShape check: replay dominates (reasoning is ms-scale); with the\n"
      "good/bad replays batched in parallel as in the paper, DiffProv costs\n"
      "~2x a Y! query (the extra UpdateTree replay); SDN4 pays one more\n"
      "round; the MR queries replay the separate reference job (3 replays).\n"
      "NOTE: this host has %u hardware thread(s); the batched column only\n"
      "beats the sequential one when the two replays can actually run in\n"
      "parallel.\n",
      std::thread::hardware_concurrency());
  return 0;
}
