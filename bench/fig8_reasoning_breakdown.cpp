// Regenerates Figure 8: the decomposition of DiffProv's reasoning time into
// its phases -- seed finding, equivalence establishment (taint annotation),
// divergence detection, and making tuples appear -- for all eight scenarios.
// SDN4's two rounds are accumulated, as in the paper's stacked bars.
//
// Shape to check (section 6.6): the total reasoning time is negligible
// (microseconds to low milliseconds; the paper reports 3.8 ms worst case);
// divergence detection and make-appear dominate because they track taints
// and evaluate formulas.
#include <algorithm>

#include "bench_util.h"
#include "diffprov/diffprov.h"
#include "mapred/scenario.h"
#include "sdn/scenario.h"

namespace dp {
namespace {

struct Row {
  std::string name;
  DiffProvTiming timing;
  bool ok = false;
};

Row run_sdn(const sdn::Scenario& s) {
  LogReplayProvider good_provider(s.program, s.topology, s.log);
  const BadRun run = good_provider.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  return {s.name, result.timing, result.ok()};
}

Row run_mr(const mapred::Scenario& s) {
  const mapred::Diagnosis d = mapred::diagnose(s);
  return {s.name, d.result.timing, d.result.ok()};
}

}  // namespace
}  // namespace dp

int main() {
  using namespace dp;
  bench::print_header("Figure 8: decomposition of DiffProv's reasoning time",
                      "paper Figure 8 (section 6.6)");

  std::vector<Row> rows;
  for (const sdn::Scenario& s : sdn::all_scenarios()) {
    rows.push_back(run_sdn(s));
  }
  mapred::CorpusConfig corpus;
  corpus.files = 4;
  corpus.lines_per_file = 64;  // deeper MR trees: longer divergence walks
  for (const mapred::Scenario& s : mapred::all_scenarios(corpus)) {
    rows.push_back(run_mr(s));
  }

  bench::print_row({"Query", "seed (us)", "taint (us)", "diverge (us)",
                    "appear (us)", "total (us)"});
  bench::print_row({"-----", "---------", "----------", "------------",
                    "-----------", "----------"});
  double worst = 0;
  for (const Row& row : rows) {
    const DiffProvTiming& t = row.timing;
    worst = std::max(worst, t.reasoning_us());
    bench::print_row({row.name + (row.ok ? "" : " (failed)"),
                      bench::fmt(t.find_seed_us), bench::fmt(t.annotate_us),
                      bench::fmt(t.divergence_us),
                      bench::fmt(t.make_appear_us),
                      bench::fmt(t.reasoning_us())},
                     10, 14);
  }
  std::printf(
      "\nShape check: reasoning is negligible next to replay -- worst case\n"
      "%.2f ms here vs. the paper's 3.8 ms; divergence detection and\n"
      "make-appear carry the taint/formula work.\n",
      worst / 1e3);
  return 0;
}
