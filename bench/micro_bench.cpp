// Micro-benchmarks (google-benchmark) for the load-bearing primitives:
// engine forwarding throughput, provenance maintenance, taint-formula
// evaluation and inversion, tree projection, the tree-diff baselines, and
// event-log serialization. These back the cost model behind Figures 5-8.
#include <benchmark/benchmark.h>

#include <sstream>

#include "diffprov/formula.h"
#include "diffprov/treediff.h"
#include "ndlog/parser.h"
#include "provenance/recorder.h"
#include "replay/event_log.h"
#include "runtime/engine.h"
#include "sdn/program.h"
#include "sdn/scenario.h"
#include "sdn/trace.h"

namespace dp {
namespace {

EventLog scenario_log_with_traffic(std::size_t packets) {
  sdn::Scenario s = sdn::sdn1();
  sdn::TraceConfig trace;
  trace.rate_mbps = 100.0;
  trace.duration_s = 10.0;
  trace.max_packets = packets;
  EventLog background;
  sdn::generate_trace(trace, background);
  EventLog log = s.log;
  for (const LogRecord& r : background.records()) log.append(r);
  return log;
}

/// Packets/second through the Figure-1 network, bare engine.
void BM_EngineForwarding(benchmark::State& state) {
  const auto packets = static_cast<std::size_t>(state.range(0));
  const EventLog log = scenario_log_with_traffic(packets);
  for (auto _ : state) {
    Engine engine(sdn::make_program());
    for (const LogRecord& r : log.records()) {
      if (r.op == LogRecord::Op::kInsert) {
        engine.schedule_insert(r.tuple(), r.time);
      } else {
        engine.schedule_delete(r.tuple(), r.time);
      }
    }
    engine.run();
    benchmark::DoNotOptimize(engine.stats().derivations);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets) *
                          state.iterations());
}
BENCHMARK(BM_EngineForwarding)->Arg(1000)->Arg(5000);

/// Two-way equijoin through large materialized tables: the workload the
/// secondary indexes exist for. Each probe event binds a key that selects
/// exactly one row per joined table, so the full-scan reference examines
/// O(rows) candidates per probe while the indexed plans examine O(1).
Program join_bench_program() {
  return parse_program(R"(
    table probe(2) base immutable event.
    table left(3) keys(0, 1) base mutable.
    table right(3) keys(0, 1) base mutable.
    table out(3) derived event.
    rule j out(@N, K, W) :-
      probe(@N, K), left(@N, K, V), right(@N, V, W).
  )");
}

void BM_JoinIndex(benchmark::State& state) {
  const auto rows = state.range(0);
  const bool use_plans = state.range(1) != 0;
  constexpr std::int64_t kProbes = 200;
  EngineConfig config;
  config.use_join_plans = use_plans;
  for (auto _ : state) {
    Engine engine(join_bench_program(), config);
    for (std::int64_t k = 0; k < rows; ++k) {
      engine.schedule_insert(
          Tuple("left", {Value("n1"), Value(k), Value(k)}), 0);
      engine.schedule_insert(
          Tuple("right", {Value("n1"), Value(k), Value(k + 1)}), 0);
    }
    for (std::int64_t k = 0; k < kProbes; ++k) {
      engine.schedule_insert(
          Tuple("probe", {Value("n1"), Value(k % rows)}), 1);
    }
    engine.run();
    benchmark::DoNotOptimize(engine.stats().derivations);
  }
  state.SetItemsProcessed(kProbes * state.iterations());
  state.SetLabel(use_plans ? "indexed" : "full-scan");
}
BENCHMARK(BM_JoinIndex)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({4000, 0})
    ->Args({4000, 1});

/// Same, with the provenance recorder attached (the "infer" mode cost).
void BM_EngineWithProvenance(benchmark::State& state) {
  const auto packets = static_cast<std::size_t>(state.range(0));
  const EventLog log = scenario_log_with_traffic(packets);
  for (auto _ : state) {
    Engine engine(sdn::make_program());
    ProvenanceRecorder recorder;
    engine.add_observer(&recorder);
    for (const LogRecord& r : log.records()) {
      if (r.op == LogRecord::Op::kInsert) {
        engine.schedule_insert(r.tuple(), r.time);
      } else {
        engine.schedule_delete(r.tuple(), r.time);
      }
    }
    engine.run();
    benchmark::DoNotOptimize(recorder.graph().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets) *
                          state.iterations());
}
BENCHMARK(BM_EngineWithProvenance)->Arg(1000)->Arg(5000);

void BM_FormulaEval(benchmark::State& state) {
  FormulaEnv env;
  env["X"] = Formula::make_seed_field(0);
  env["Y"] = Formula::make_seed_field(1);
  const auto formula =
      formula_from_expr(*parse_expression("(X * 7 + Y) ^ 12345"), env);
  const std::vector<Value> seed = {Value(41), Value(17)};
  for (auto _ : state) {
    benchmark::DoNotOptimize((*formula)->eval(seed));
  }
}
BENCHMARK(BM_FormulaEval);

void BM_FormulaInversion(benchmark::State& state) {
  const ExprPtr expr = parse_expression("2 * (X - 3) + 1");
  for (auto _ : state) {
    auto inv = invert_expr_for_var(*expr, "X",
                                   Formula::make_const(Value(11)), {});
    benchmark::DoNotOptimize((*inv)->eval({}));
  }
}
BENCHMARK(BM_FormulaInversion);

void BM_PrefixSolver(benchmark::State& state) {
  FormulaEnv env;
  env["P"] = Formula::make_const(Value(*IpPrefix::parse("4.3.2.0/24")));
  const ExprPtr expr = parse_expression("f_matches(4.3.3.1, P)");
  for (auto _ : state) {
    auto inv =
        invert_expr_for_var(*expr, "P", Formula::make_const(Value(1)), env);
    benchmark::DoNotOptimize(inv->get());
  }
}
BENCHMARK(BM_PrefixSolver);

struct Trees {
  ProvTree good;
  ProvTree bad;
};

Trees sdn1_trees() {
  const sdn::Scenario s = sdn::sdn1();
  Engine engine(sdn::make_program());
  ProvenanceRecorder recorder;
  engine.add_observer(&recorder);
  for (const LogRecord& r : s.log.records()) {
    if (r.op == LogRecord::Op::kInsert) {
      engine.schedule_insert(r.tuple(), r.time);
    } else {
      engine.schedule_delete(r.tuple(), r.time);
    }
  }
  engine.run();
  const auto good =
      recorder.graph().latest_exist_before(s.good_event, kTimeInfinity);
  const auto bad =
      recorder.graph().latest_exist_before(s.bad_event, kTimeInfinity);
  return {ProvTree::project(recorder.graph(), *good),
          ProvTree::project(recorder.graph(), *bad)};
}

void BM_TreeProjection(benchmark::State& state) {
  const sdn::Scenario s = sdn::sdn1();
  Engine engine(sdn::make_program());
  ProvenanceRecorder recorder;
  engine.add_observer(&recorder);
  for (const LogRecord& r : s.log.records()) {
    if (r.op == LogRecord::Op::kInsert) {
      engine.schedule_insert(r.tuple(), r.time);
    }
  }
  engine.run();
  const auto root =
      recorder.graph().latest_exist_before(s.bad_event, kTimeInfinity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProvTree::project(recorder.graph(), *root));
  }
}
BENCHMARK(BM_TreeProjection);

void BM_PlainTreeDiff(benchmark::State& state) {
  const Trees trees = sdn1_trees();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plain_tree_diff(trees.good, trees.bad));
  }
}
BENCHMARK(BM_PlainTreeDiff);

void BM_TreeEditDistance(benchmark::State& state) {
  const Trees trees = sdn1_trees();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree_edit_distance(trees.good, trees.bad));
  }
}
BENCHMARK(BM_TreeEditDistance);

void BM_EventLogSerialize(benchmark::State& state) {
  EventLog log;
  sdn::TraceConfig trace;
  trace.rate_mbps = 10.0;
  trace.duration_s = 1.0;
  trace.max_packets = 2000;
  sdn::generate_trace(trace, log);
  for (auto _ : state) {
    std::ostringstream out;
    log.serialize(out);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(log.byte_size()) * state.iterations());
}
BENCHMARK(BM_EventLogSerialize);

void BM_EventLogRoundTrip(benchmark::State& state) {
  EventLog log;
  sdn::TraceConfig trace;
  trace.rate_mbps = 10.0;
  trace.duration_s = 1.0;
  trace.max_packets = 2000;
  sdn::generate_trace(trace, log);
  std::ostringstream out;
  log.serialize(out);
  const std::string blob = out.str();
  for (auto _ : state) {
    std::istringstream in(blob);
    benchmark::DoNotOptimize(EventLog::deserialize(in).size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(blob.size()) *
                          state.iterations());
}
BENCHMARK(BM_EventLogRoundTrip);

}  // namespace
}  // namespace dp

BENCHMARK_MAIN();
