// The overhead-benchmark workload, compiled TWICE by bench/CMakeLists.txt:
// once with -DDP_OBS_ENABLED=0 (every obs macro vanishes -- the true
// baseline) and once with the default DP_OBS_ENABLED=1. The entry-point name
// is injected via -DDP_OBS_WORKLOAD_NAME=... so both object files can link
// into the same bench_obs binary.
//
// Each iteration opens one span and does a fixed amount of integer mixing --
// roughly the granularity of a rule firing in the runtime engine, which is
// the hottest span site in the instrumented code.
#include <cstdint>

#include "obs/obs.h"

namespace dp::bench {

std::uint64_t DP_OBS_WORKLOAD_NAME(std::uint64_t iterations) {
  std::uint64_t acc = 0x9e3779b97f4a7c15ull;
#if DP_OBS_ENABLED
  obs::Counter& units =
      obs::default_registry().counter("dp.bench.workload_units");
  obs::QuantileSketch& sketch =
      obs::default_registry().sketch("dp.bench.unit_value");
#endif
  for (std::uint64_t i = 0; i < iterations; ++i) {
    DP_SPAN_CAT("dp.bench.unit", "bench");
#if DP_OBS_ENABLED
    units.inc();
    // A sketch observe per unit, like the instrumented hot paths. The value
    // is derived from the accumulator (no clock read): spread over ~3 octaves
    // so bucket indexing and min/max tracking both run their real code.
    sketch.observe(static_cast<double>((acc & 0x3ff) + 1));
#endif
    // splitmix64-style finalizer, 64 rounds: ~work of one small rule firing.
    for (int j = 0; j < 64; ++j) {
      acc ^= acc >> 30;
      acc *= 0xbf58476d1ce4e5b9ull;
      acc ^= acc >> 27;
      acc *= 0x94d049bb133111ebull;
      acc ^= acc >> 31;
    }
  }
  return acc;
}

}  // namespace dp::bench
