// Regenerates the unsuitable-reference experiment of section 6.3: ten
// queries against SDN1 whose reference events were picked badly. All must
// fail *cleanly*, with messages that tell the operator what was wrong with
// the chosen reference: three have seeds of the wrong type (configuration
// state rather than traffic), and seven would require changes to immutable
// tuples (the reference packets entered the network elsewhere, so aligning
// would need physical links sw1 does not have).
#include "bench_util.h"
#include "diffprov/diffprov.h"
#include "sdn/scenario.h"

int main() {
  using namespace dp;
  bench::print_header(
      "Section 6.3: ten diagnoses with unsuitable reference events",
      "paper section 6.3 (3 seed-type mismatches + 7 immutable failures)");

  const sdn::Scenario s = sdn::sdn1_with_reference_traffic();
  int seed_mismatch = 0;
  int immutable = 0;
  int unexpected = 0;
  for (const sdn::BadReferenceCase& c : sdn::sdn1_bad_references()) {
    LogReplayProvider good_provider(s.program, s.topology, s.log);
    const BadRun run = good_provider.replay_bad({});
    const auto good = locate_tree(*run.graph, c.reference_event);
    if (!good) {
      std::printf("  %-28s reference event missing!\n", c.name.c_str());
      ++unexpected;
      continue;
    }
    LogReplayProvider provider(s.program, s.topology, s.log);
    DiffProv diffprov(s.program, provider);
    const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
    const char* status = "UNEXPECTED";
    if (result.status == DiffProvStatus::kSeedTypeMismatch) {
      status = "seed-type mismatch";
      ++seed_mismatch;
    } else if (result.status == DiffProvStatus::kImmutableChange) {
      status = "immutable change required";
      ++immutable;
    } else {
      ++unexpected;
    }
    std::printf("  %-28s -> %s\n", c.name.c_str(), status);
    std::printf("      %s\n", result.message.c_str());
  }
  std::printf(
      "\nOutcome: %d seed-type mismatches, %d immutable-change failures, %d\n"
      "unexpected results (paper: 3 / 7 / 0). Every failure names the\n"
      "problematic aspect of the reference, helping the operator pick a\n"
      "better one.\n",
      seed_mismatch, immutable, unexpected);
  return unexpected == 0 ? 0 : 1;
}
