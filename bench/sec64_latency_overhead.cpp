// Regenerates the runtime-latency experiment of section 6.4:
//  * SDN: per-packet processing cost with the (query-time) logging engine
//    attached vs. a bare run -- the paper measures 6.7% inflation while
//    streaming 2.5 M packets through SDN1;
//  * MapReduce: job runtime with instrumentation + metadata logging vs. an
//    uninstrumented run -- the paper measures 2.3%, dominated by input-file
//    checksumming, dropping to 0.2% once checksums are computed only when
//    files change (the caching optimization, which we also measure).
#include <algorithm>
#include <sstream>
#include <functional>

#include "bench_util.h"
#include "mapred/wordcount.h"
#include "replay/logging_engine.h"
#include "runtime/engine.h"
#include "sdn/program.h"
#include "sdn/scenario.h"
#include "sdn/trace.h"
#include "util/strings.h"

namespace dp {
namespace {

std::size_t benchmark_guard = 0;  // defeats dead-code elimination

double sdn_run_seconds(const sdn::Scenario& base, const EventLog& trace,
                       bool with_logging) {
  Engine engine(sdn::make_program());
  LoggingEngine logging(LoggingMode::kQueryTime);
  logging.set_border_nodes({"sw1"});
  std::ostringstream sink;
  // Attach the query-time logger plus a serialization sink that encodes
  // each record as it is logged (the write path of a real deployment).
  struct Writer final : RuntimeObserver {
    std::ostringstream* sink;
    void on_base_insert(TupleRef tuple, LogicalTime t,
                        bool is_event) override {
      if (is_event && global_store().location(tuple) != "sw1") return;
      EventLog one;
      one.append_insert(tuple, t);
      one.serialize(*sink);
    }
  } writer;
  writer.sink = &sink;
  if (with_logging) {
    engine.add_observer(&logging);
    engine.add_observer(&writer);
  }
  for (const LogRecord& r : base.log.records()) {
    engine.schedule_insert(r.tuple(), r.time);
  }
  for (const LogRecord& r : trace.records()) {
    engine.schedule_insert(r.tuple(), r.time);
  }
  bench::WallTimer timer;
  engine.run();
  return timer.seconds();
}

double median_of_three(const std::function<double()>& fn) {
  std::vector<double> samples = {fn(), fn(), fn()};
  std::sort(samples.begin(), samples.end());
  return samples[1];
}

}  // namespace
}  // namespace dp

int main() {
  using namespace dp;
  bench::print_header("Section 6.4: runtime latency overhead of logging",
                      "paper section 6.4 (6.7% SDN, 2.3% / 0.2% MapReduce)");

  // --- SDN: stream a packet trace through the SDN1 network ---------------
  sdn::Scenario scenario = sdn::sdn1();
  sdn::TraceConfig trace_config;
  trace_config.rate_mbps = 100.0;
  trace_config.duration_s = 10.0;
  trace_config.max_packets = 25'000;  // scaled stand-in for 2.5 M packets
  EventLog trace;
  const sdn::TraceStats stats = sdn::generate_trace(trace_config, trace);

  const double without_log = median_of_three(
      [&] { return sdn_run_seconds(scenario, trace, false); });
  const double with_log = median_of_three(
      [&] { return sdn_run_seconds(scenario, trace, true); });
  const double sdn_overhead = 100.0 * (with_log - without_log) / without_log;
  // The logging path in isolation (append + binary encode per record), to
  // put an exact number on the per-packet cost even when the end-to-end
  // difference drowns in measurement noise.
  const double log_only = median_of_three([&] {
    bench::WallTimer timer;
    std::ostringstream sink;
    EventLog log;
    for (const LogRecord& r : trace.records()) {
      log.append_insert(r.tuple(), r.time);
      EventLog one;
      one.append_insert(r.tuple(), r.time);
      one.serialize(sink);
    }
    benchmark_guard += sink.str().size();
    return timer.seconds();
  });
  std::printf("SDN1, %zu packets through the Figure-1 network:\n",
              stats.packets);
  std::printf("  bare run:          %7.1f ms (%.2f us/packet)\n",
              without_log * 1e3, without_log * 1e6 / double(stats.packets));
  std::printf("  with logging:      %7.1f ms (%.2f us/packet)\n",
              with_log * 1e3, with_log * 1e6 / double(stats.packets));
  std::printf("  measured inflation: %6.1f %%   [paper: 6.7%%]\n",
              sdn_overhead);
  std::printf("  logging path alone: %6.2f us/packet -> %.2f%% of the\n"
              "  per-packet processing cost (our simulated forwarding path\n"
              "  is far heavier per packet than the paper's native switch,\n"
              "  so the same absolute logging cost is a smaller fraction).\n\n",
              log_only * 1e6 / double(stats.packets),
              100.0 * log_only / without_log);

  // --- MapReduce: the instrumented WordCount job -------------------------
  mapred::CorpusConfig corpus_config;
  corpus_config.files = 16;
  corpus_config.lines_per_file = 6000;  // scaled Wikipedia stand-in
  const mapred::CorpusStore store(mapred::synthetic_corpus(corpus_config));
  const mapred::JobConfig job;

  const double bare = median_of_three([&] {
    bench::WallTimer timer;
    mapred::run_wordcount(store, job);
    return timer.seconds();
  });
  // Query-time approach (the paper's choice): at runtime the job only
  // writes the metadata log and checksums its inputs; derivations are
  // reconstructed by replay when a query arrives.
  auto instrumented_seconds = [&](bool recompute_checksums) {
    return median_of_three([&] {
      EventLog metadata;
      mapred::JobRunOptions options;
      options.metadata_log = &metadata;
      options.recompute_checksums = recompute_checksums;
      bench::WallTimer timer;
      mapred::run_wordcount(store, job, options);
      return timer.seconds();
    });
  };
  const double uncached = instrumented_seconds(true);
  const double cached = instrumented_seconds(false);
  std::printf("MapReduce WordCount over %s of synthetic corpus:\n",
              human_bytes(double(store.corpus().total_bytes())).c_str());
  std::printf("  bare job:                        %7.1f ms\n", bare * 1e3);
  std::printf("  instrumented (checksum/read):    %7.1f ms  -> %+5.1f %%  "
              "[paper: 2.3%%]\n",
              uncached * 1e3, 100.0 * (uncached - bare) / bare);
  std::printf("  instrumented (cached checksums): %7.1f ms  -> %+5.1f %%  "
              "[paper: 0.2%%]\n",
              cached * 1e3, 100.0 * (cached - bare) / bare);
  std::printf(
      "\nShape check: logging costs a few percent; in MapReduce the\n"
      "dominating cost is checksumming input files, and caching checksums\n"
      "makes the overhead nearly vanish.\n");
  return 0;
}
