// Regenerates the storage-cost observations of section 6.5 that Figures 5/6
// do not already cover:
//  * MapReduce logs are tiny (the paper: 26 kB for a 12.8 GB dataset,
//    1.5 kB for a 1 GB corpus) because only input-file *metadata* is logged
//    -- the replay engine re-reads files by checksum at query time;
//  * border-switch-only logging: with b border switches in an n-node
//    network, storage scales with b, not n (the paper's 100-node / 3-border
//    example).
#include "bench_util.h"
#include "mapred/wordcount.h"
#include "replay/logging_engine.h"
#include "runtime/engine.h"
#include "sdn/program.h"
#include "sdn/scenario.h"
#include "sdn/trace.h"
#include "util/strings.h"

int main() {
  using namespace dp;
  bench::print_header("Section 6.5: storage costs of logging",
                      "paper section 6.5");

  // --- MapReduce metadata logs vs. corpus size ---------------------------
  bench::print_row({"Corpus", "Data size", "Log size", "Ratio"});
  bench::print_row({"------", "---------", "--------", "-----"});
  for (const std::size_t lines : {200u, 2000u, 8000u}) {
    mapred::CorpusConfig config;
    config.files = 8;
    config.lines_per_file = lines;
    const mapred::CorpusStore store(mapred::synthetic_corpus(config));
    EventLog metadata;
    mapred::JobRunOptions options;
    options.metadata_log = &metadata;
    mapred::run_wordcount(store, mapred::JobConfig{}, options);
    const double data = double(store.corpus().total_bytes());
    const double log_bytes = double(metadata.byte_size());
    bench::print_row({std::to_string(config.files) + "x" +
                          std::to_string(lines) + " lines",
                      human_bytes(data), human_bytes(log_bytes),
                      "1:" + bench::fmt(data / log_bytes, 0)});
  }
  std::printf(
      "\nThe log stores file checksums and configuration only -- contents\n"
      "are re-read from the store at query time (paper: 26 kB for 12.8 GB).\n\n");

  // --- border-switch-only logging ----------------------------------------
  // Stream the same trace once while logging every switch and once while
  // logging only the border switch: the interior copies of each packet are
  // reconstructable by replay and need not be stored.
  sdn::Scenario scenario = sdn::sdn1();
  sdn::TraceConfig trace_config;
  trace_config.rate_mbps = 50.0;
  trace_config.duration_s = 1.0;
  trace_config.max_packets = 10'000;
  EventLog trace;
  sdn::generate_trace(trace_config, trace);

  auto run_with_borders = [&](std::set<NodeName> borders) {
    Engine engine(sdn::make_program());
    LoggingEngine logging(LoggingMode::kQueryTime);
    logging.set_border_nodes(std::move(borders));
    engine.add_observer(&logging);
    for (const LogRecord& r : scenario.log.records()) {
      engine.schedule_insert(r.tuple(), r.time);
    }
    for (const LogRecord& r : trace.records()) {
      engine.schedule_insert(r.tuple(), r.time);
    }
    engine.run();
    return logging.log().byte_size();
  };
  const auto border_only = run_with_borders({"sw1"});
  // "Log everywhere" corresponds to recording the packet at each hop; we
  // approximate by also accounting derivation records via runtime mode.
  Engine engine(sdn::make_program());
  LoggingEngine runtime_mode(LoggingMode::kRuntime);
  engine.add_observer(&runtime_mode);
  for (const LogRecord& r : scenario.log.records()) {
    engine.schedule_insert(r.tuple(), r.time);
  }
  for (const LogRecord& r : trace.records()) {
    engine.schedule_insert(r.tuple(), r.time);
  }
  engine.run();
  const auto everywhere =
      runtime_mode.log().byte_size() + runtime_mode.derivation_bytes();

  bench::print_row({"Logging scope", "Bytes", "Relative"});
  bench::print_row({"-------------", "-----", "--------"});
  bench::print_row({"border switch only (query-time)",
                    human_bytes(double(border_only)), "1.0x"});
  bench::print_row({"all derivations (runtime mode)",
                    human_bytes(double(everywhere)),
                    bench::fmt(double(everywhere) / double(border_only), 1) +
                        "x"});
  std::printf(
      "\nShape check: query-time logging at the border keeps storage\n"
      "proportional to the number of border switches, not network size.\n");
  return 0;
}
