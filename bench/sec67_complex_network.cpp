// Regenerates the complex-network experiment of section 6.7: the
// Stanford-backbone-style campus network (14 OZ + 2 backbone routers,
// generated forwarding/ACL state), the "Forwarding Error" fault (a
// misconfigured entry on H2's zone router drops packets to H2's subnet),
// 20 additional injected faults, and a mix of background traffic.
//
// Shapes to check: the trees are smaller than the earlier SDN scenarios
// (the fault involves only two intermediate hops; the paper reports 67 and
// 75 nodes, plain diff 108), and DiffProv pinpoints exactly the
// misconfigured drop entry despite the causally-unrelated faults and the
// background traffic.
#include "bench_util.h"
#include "diffprov/treediff.h"
#include "sdn/stanford.h"

int main() {
  using namespace dp;
  bench::print_header("Section 6.7: complex network diagnostics",
                      "paper section 6.7 (Stanford backbone setting)");

  sdn::StanfordConfig config;  // paper-shaped defaults (scaled counts)
  const sdn::StanfordNetwork net = sdn::build_stanford(config);
  const Program spec = sdn::make_stanford_spec();
  std::printf("Network: %d OZ + 2 backbone routers, %zu forwarding entries\n"
              "(%zu ACL drop rules) [paper: 757,000 entries / 1,500 ACLs,\n"
              "scaled per DESIGN.md], %d extra injected faults, %d\n"
              "background packets across 4 applications.\n\n",
              config.oz_routers, net.total_entries, net.acl_entries,
              config.extra_faults, config.background_packets);

  sdn::StanfordReplayProvider provider(net, spec);
  bench::WallTimer replay_timer;
  const BadRun run = provider.replay_bad({});
  const double first_replay_ms = replay_timer.millis();
  const auto stats = provider.last_stats();
  std::printf("Black-box emulation: %zu packets, %zu hops, %zu delivered,\n"
              "%zu dropped, %zu unmatched (%.1f ms; external-specification\n"
              "recorder reconstructed %zu provenance vertexes).\n\n",
              stats.packets, stats.hops, stats.delivered, stats.dropped,
              stats.unmatched, first_replay_ms, run.graph->size());

  const auto good = locate_tree(*run.graph, net.good_event);
  const auto bad = locate_tree(*run.graph, net.bad_event);
  if (!good || !bad) {
    std::printf("ERROR: diagnostic events not found\n");
    return 1;
  }
  const TreeDiffStats diff = plain_tree_diff(*good, *bad);
  bench::print_row({"Tree", "Vertexes", "[paper]"});
  bench::print_row({"----", "--------", "-------"});
  bench::print_row({"good (reachable sibling subnet)",
                    std::to_string(good->size()), "[75]"}, 34);
  bench::print_row({"bad (dropped at oz02)", std::to_string(bad->size()),
                    "[67]"}, 34);
  bench::print_row({"plain diff", std::to_string(diff.diff_size()), "[108]"},
                   34);

  bench::WallTimer diagnose_timer;
  DiffProv diffprov(spec, provider);
  const DiffProvResult result = diffprov.diagnose(*good, net.bad_event);
  std::printf("\nDiffProv verdict (%.1f ms total, %d replays):\n%s",
              diagnose_timer.millis(), result.timing.replays,
              result.to_string().c_str());

  const bool pinpointed =
      result.ok() && result.changes.size() == 1 &&
      result.changes[0].before.has_value() &&
      *result.changes[0].before == net.fault_entry;
  std::printf("\nShape check: root cause is exactly the misconfigured drop\n"
              "entry on oz02, despite 20 unrelated faults and background\n"
              "traffic: %s\n",
              pinpointed ? "YES" : "NO (unexpected)");
  return pinpointed ? 0 : 1;
}
