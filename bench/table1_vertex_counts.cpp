// Regenerates Table 1: the number of vertexes returned by five diagnostic
// techniques -- the good provenance tree, the bad provenance tree (both are
// what a Y!-style query would show the operator), a plain tree diff, and
// DiffProv -- for all eight scenarios (SDN1-SDN4, MR1-D, MR2-D, MR1-I,
// MR2-I). For SDN4 the two DiffProv rounds are reported separately, as in
// the paper.
//
// Absolute counts depend on the substrate (our simulator's model is not the
// authors' RapidNet/Hadoop deployment); the shape to check is: plain trees
// have O(100+) vertexes, the naive diff is comparable to or larger than the
// trees, and DiffProv returns one change per fault.
#include <array>
#include <map>
#include <string>

#include "bench_util.h"
#include "diffprov/diffprov.h"
#include "diffprov/treediff.h"
#include "mapred/scenario.h"
#include "sdn/scenario.h"

namespace dp {
namespace {

struct Row {
  std::string name;
  std::size_t good = 0;
  std::size_t bad = 0;
  std::size_t diff = 0;
  std::string diffprov;  // "1" or "1/1" for multi-round
  std::string root_cause;
};

Row run_sdn(const sdn::Scenario& s) {
  LogReplayProvider good_provider(s.program, s.topology, s.log);
  const BadRun run = good_provider.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  const auto bad = locate_tree(*run.graph, s.bad_event);

  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);

  Row row;
  row.name = s.name;
  row.good = good->size();
  row.bad = bad->size();
  row.diff = plain_tree_diff(*good, *bad).diff_size();
  std::string per_round;
  for (std::size_t i = 0; i < result.changes_per_round.size(); ++i) {
    if (i > 0) per_round += "/";
    per_round += std::to_string(result.changes_per_round[i]);
  }
  row.diffprov = result.ok() ? per_round : "FAILED";
  row.root_cause = result.changes.empty() ? result.message
                                          : result.changes[0].to_string();
  return row;
}

Row run_mr(const mapred::Scenario& s) {
  const mapred::Diagnosis d = mapred::diagnose(s);
  Row row;
  row.name = s.name;
  row.good = d.good_tree.size();
  row.bad = d.bad_tree.size();
  row.diff = plain_tree_diff(d.good_tree, d.bad_tree).diff_size();
  row.diffprov =
      d.result.ok() ? std::to_string(d.result.changes.size()) : "FAILED";
  row.root_cause = d.result.changes.empty() ? d.result.message
                                            : d.result.changes[0].to_string();
  return row;
}

}  // namespace
}  // namespace dp

int main() {
  using namespace dp;
  using bench::print_header;
  using bench::print_row;

  print_header("Table 1: vertexes returned by five diagnostic techniques",
               "paper Table 1 (section 6.3); paper values in brackets");

  std::vector<Row> rows;
  for (const sdn::Scenario& s : sdn::all_scenarios()) {
    rows.push_back(run_sdn(s));
  }
  // Larger corpus so the MR trees carry realistic weight.
  mapred::CorpusConfig corpus;
  corpus.files = 4;
  corpus.lines_per_file = 24;
  for (const mapred::Scenario& s : mapred::all_scenarios(corpus)) {
    rows.push_back(run_mr(s));
  }

  // Paper Table 1, for side-by-side comparison.
  const std::map<std::string, std::array<std::string, 4>> paper = {
      {"SDN1", {"156", "201", "278", "1"}},
      {"SDN2", {"156", "156", "238", "1"}},
      {"SDN3", {"156", "201", "74", "1"}},
      {"SDN4", {"201/201", "156/145", "278/218", "1/1"}},
      {"MR1-D", {"1051", "1055", "362", "1"}},
      {"MR2-D", {"1001", "1039", "272", "1"}},
      {"MR1-I", {"588", "590", "222", "1"}},
      {"MR2-I", {"588", "584", "220", "1"}},
  };

  print_row({"Query", "Good (T_G)", "Bad (T_B)", "Plain diff", "DiffProv"});
  print_row({"-----", "----------", "---------", "----------", "--------"});
  for (const Row& row : rows) {
    const auto& p = paper.at(row.name);
    print_row({row.name, std::to_string(row.good) + " [" + p[0] + "]",
               std::to_string(row.bad) + " [" + p[1] + "]",
               std::to_string(row.diff) + " [" + p[2] + "]",
               row.diffprov + " [" + p[3] + "]"},
              8, 20);
  }
  std::printf("\nRoot causes identified:\n");
  for (const Row& row : rows) {
    std::printf("  %-6s %s\n", row.name.c_str(), row.root_cause.c_str());
  }
  std::printf(
      "\nShape check: plain trees have O(100) vertexes, the naive diff is\n"
      "comparable to or larger than either tree, DiffProv returns one\n"
      "change per fault (SDN4: one per round).\n");
  return 0;
}
