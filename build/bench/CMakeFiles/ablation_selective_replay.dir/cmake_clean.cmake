file(REMOVE_RECURSE
  "CMakeFiles/ablation_selective_replay.dir/ablation_selective_replay.cpp.o"
  "CMakeFiles/ablation_selective_replay.dir/ablation_selective_replay.cpp.o.d"
  "ablation_selective_replay"
  "ablation_selective_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selective_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
