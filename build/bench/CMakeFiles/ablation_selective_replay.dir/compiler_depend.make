# Empty compiler generated dependencies file for ablation_selective_replay.
# This may be replaced when dependencies are built.
