file(REMOVE_RECURSE
  "CMakeFiles/ablation_treediff.dir/ablation_treediff.cpp.o"
  "CMakeFiles/ablation_treediff.dir/ablation_treediff.cpp.o.d"
  "ablation_treediff"
  "ablation_treediff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_treediff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
