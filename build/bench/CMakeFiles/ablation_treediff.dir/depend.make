# Empty dependencies file for ablation_treediff.
# This may be replaced when dependencies are built.
