file(REMOVE_RECURSE
  "CMakeFiles/fig5_logging_rate.dir/fig5_logging_rate.cpp.o"
  "CMakeFiles/fig5_logging_rate.dir/fig5_logging_rate.cpp.o.d"
  "fig5_logging_rate"
  "fig5_logging_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_logging_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
