# Empty dependencies file for fig5_logging_rate.
# This may be replaced when dependencies are built.
