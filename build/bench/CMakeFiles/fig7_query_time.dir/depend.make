# Empty dependencies file for fig7_query_time.
# This may be replaced when dependencies are built.
