file(REMOVE_RECURSE
  "CMakeFiles/sec63_bad_references.dir/sec63_bad_references.cpp.o"
  "CMakeFiles/sec63_bad_references.dir/sec63_bad_references.cpp.o.d"
  "sec63_bad_references"
  "sec63_bad_references.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_bad_references.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
