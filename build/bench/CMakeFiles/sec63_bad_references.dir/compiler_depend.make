# Empty compiler generated dependencies file for sec63_bad_references.
# This may be replaced when dependencies are built.
