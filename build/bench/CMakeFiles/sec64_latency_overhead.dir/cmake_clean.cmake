file(REMOVE_RECURSE
  "CMakeFiles/sec64_latency_overhead.dir/sec64_latency_overhead.cpp.o"
  "CMakeFiles/sec64_latency_overhead.dir/sec64_latency_overhead.cpp.o.d"
  "sec64_latency_overhead"
  "sec64_latency_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_latency_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
