# Empty compiler generated dependencies file for sec64_latency_overhead.
# This may be replaced when dependencies are built.
