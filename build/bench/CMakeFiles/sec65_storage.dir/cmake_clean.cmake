file(REMOVE_RECURSE
  "CMakeFiles/sec65_storage.dir/sec65_storage.cpp.o"
  "CMakeFiles/sec65_storage.dir/sec65_storage.cpp.o.d"
  "sec65_storage"
  "sec65_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec65_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
