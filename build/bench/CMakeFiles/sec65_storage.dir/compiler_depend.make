# Empty compiler generated dependencies file for sec65_storage.
# This may be replaced when dependencies are built.
