file(REMOVE_RECURSE
  "CMakeFiles/sec67_complex_network.dir/sec67_complex_network.cpp.o"
  "CMakeFiles/sec67_complex_network.dir/sec67_complex_network.cpp.o.d"
  "sec67_complex_network"
  "sec67_complex_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec67_complex_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
