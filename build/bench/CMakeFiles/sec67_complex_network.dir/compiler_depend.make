# Empty compiler generated dependencies file for sec67_complex_network.
# This may be replaced when dependencies are built.
