# Empty dependencies file for table1_vertex_counts.
# This may be replaced when dependencies are built.
