
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/complex_network.cpp" "examples/CMakeFiles/complex_network.dir/complex_network.cpp.o" "gcc" "examples/CMakeFiles/complex_network.dir/complex_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdn/CMakeFiles/dp_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/dp_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/netcore/CMakeFiles/dp_netcore.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/diffprov/CMakeFiles/dp_diffprov.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/dp_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/dp_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ndlog/CMakeFiles/dp_ndlog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
