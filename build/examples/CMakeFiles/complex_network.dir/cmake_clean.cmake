file(REMOVE_RECURSE
  "CMakeFiles/complex_network.dir/complex_network.cpp.o"
  "CMakeFiles/complex_network.dir/complex_network.cpp.o.d"
  "complex_network"
  "complex_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
