# Empty compiler generated dependencies file for complex_network.
# This may be replaced when dependencies are built.
