file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_debugging.dir/mapreduce_debugging.cpp.o"
  "CMakeFiles/mapreduce_debugging.dir/mapreduce_debugging.cpp.o.d"
  "mapreduce_debugging"
  "mapreduce_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
