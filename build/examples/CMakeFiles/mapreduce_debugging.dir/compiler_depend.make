# Empty compiler generated dependencies file for mapreduce_debugging.
# This may be replaced when dependencies are built.
