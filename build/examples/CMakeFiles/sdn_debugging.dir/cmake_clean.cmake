file(REMOVE_RECURSE
  "CMakeFiles/sdn_debugging.dir/sdn_debugging.cpp.o"
  "CMakeFiles/sdn_debugging.dir/sdn_debugging.cpp.o.d"
  "sdn_debugging"
  "sdn_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
