# Empty dependencies file for sdn_debugging.
# This may be replaced when dependencies are built.
