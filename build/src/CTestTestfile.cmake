# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("ndlog")
subdirs("runtime")
subdirs("provenance")
subdirs("replay")
subdirs("diffprov")
subdirs("netcore")
subdirs("sdn")
subdirs("mapred")
subdirs("dns")
subdirs("tools")
