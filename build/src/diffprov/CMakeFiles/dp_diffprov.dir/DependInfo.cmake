
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diffprov/annotate.cpp" "src/diffprov/CMakeFiles/dp_diffprov.dir/annotate.cpp.o" "gcc" "src/diffprov/CMakeFiles/dp_diffprov.dir/annotate.cpp.o.d"
  "/root/repo/src/diffprov/diffprov.cpp" "src/diffprov/CMakeFiles/dp_diffprov.dir/diffprov.cpp.o" "gcc" "src/diffprov/CMakeFiles/dp_diffprov.dir/diffprov.cpp.o.d"
  "/root/repo/src/diffprov/equivalence.cpp" "src/diffprov/CMakeFiles/dp_diffprov.dir/equivalence.cpp.o" "gcc" "src/diffprov/CMakeFiles/dp_diffprov.dir/equivalence.cpp.o.d"
  "/root/repo/src/diffprov/formula.cpp" "src/diffprov/CMakeFiles/dp_diffprov.dir/formula.cpp.o" "gcc" "src/diffprov/CMakeFiles/dp_diffprov.dir/formula.cpp.o.d"
  "/root/repo/src/diffprov/reference.cpp" "src/diffprov/CMakeFiles/dp_diffprov.dir/reference.cpp.o" "gcc" "src/diffprov/CMakeFiles/dp_diffprov.dir/reference.cpp.o.d"
  "/root/repo/src/diffprov/seed.cpp" "src/diffprov/CMakeFiles/dp_diffprov.dir/seed.cpp.o" "gcc" "src/diffprov/CMakeFiles/dp_diffprov.dir/seed.cpp.o.d"
  "/root/repo/src/diffprov/treediff.cpp" "src/diffprov/CMakeFiles/dp_diffprov.dir/treediff.cpp.o" "gcc" "src/diffprov/CMakeFiles/dp_diffprov.dir/treediff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replay/CMakeFiles/dp_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/dp_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ndlog/CMakeFiles/dp_ndlog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
