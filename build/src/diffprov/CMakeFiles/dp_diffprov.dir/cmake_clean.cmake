file(REMOVE_RECURSE
  "CMakeFiles/dp_diffprov.dir/annotate.cpp.o"
  "CMakeFiles/dp_diffprov.dir/annotate.cpp.o.d"
  "CMakeFiles/dp_diffprov.dir/diffprov.cpp.o"
  "CMakeFiles/dp_diffprov.dir/diffprov.cpp.o.d"
  "CMakeFiles/dp_diffprov.dir/equivalence.cpp.o"
  "CMakeFiles/dp_diffprov.dir/equivalence.cpp.o.d"
  "CMakeFiles/dp_diffprov.dir/formula.cpp.o"
  "CMakeFiles/dp_diffprov.dir/formula.cpp.o.d"
  "CMakeFiles/dp_diffprov.dir/reference.cpp.o"
  "CMakeFiles/dp_diffprov.dir/reference.cpp.o.d"
  "CMakeFiles/dp_diffprov.dir/seed.cpp.o"
  "CMakeFiles/dp_diffprov.dir/seed.cpp.o.d"
  "CMakeFiles/dp_diffprov.dir/treediff.cpp.o"
  "CMakeFiles/dp_diffprov.dir/treediff.cpp.o.d"
  "libdp_diffprov.a"
  "libdp_diffprov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_diffprov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
