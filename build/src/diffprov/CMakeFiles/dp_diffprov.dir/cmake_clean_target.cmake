file(REMOVE_RECURSE
  "libdp_diffprov.a"
)
