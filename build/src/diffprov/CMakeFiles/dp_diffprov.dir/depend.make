# Empty dependencies file for dp_diffprov.
# This may be replaced when dependencies are built.
