file(REMOVE_RECURSE
  "CMakeFiles/dp_dns.dir/dns.cpp.o"
  "CMakeFiles/dp_dns.dir/dns.cpp.o.d"
  "libdp_dns.a"
  "libdp_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
