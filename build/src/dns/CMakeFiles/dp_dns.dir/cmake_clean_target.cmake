file(REMOVE_RECURSE
  "libdp_dns.a"
)
