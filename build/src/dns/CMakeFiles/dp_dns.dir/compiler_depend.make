# Empty compiler generated dependencies file for dp_dns.
# This may be replaced when dependencies are built.
