file(REMOVE_RECURSE
  "CMakeFiles/dp_mapred.dir/corpus.cpp.o"
  "CMakeFiles/dp_mapred.dir/corpus.cpp.o.d"
  "CMakeFiles/dp_mapred.dir/model.cpp.o"
  "CMakeFiles/dp_mapred.dir/model.cpp.o.d"
  "CMakeFiles/dp_mapred.dir/scenario.cpp.o"
  "CMakeFiles/dp_mapred.dir/scenario.cpp.o.d"
  "CMakeFiles/dp_mapred.dir/wordcount.cpp.o"
  "CMakeFiles/dp_mapred.dir/wordcount.cpp.o.d"
  "libdp_mapred.a"
  "libdp_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
