file(REMOVE_RECURSE
  "libdp_mapred.a"
)
