# Empty compiler generated dependencies file for dp_mapred.
# This may be replaced when dependencies are built.
