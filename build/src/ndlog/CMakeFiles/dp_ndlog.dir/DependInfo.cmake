
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ndlog/ast.cpp" "src/ndlog/CMakeFiles/dp_ndlog.dir/ast.cpp.o" "gcc" "src/ndlog/CMakeFiles/dp_ndlog.dir/ast.cpp.o.d"
  "/root/repo/src/ndlog/eval.cpp" "src/ndlog/CMakeFiles/dp_ndlog.dir/eval.cpp.o" "gcc" "src/ndlog/CMakeFiles/dp_ndlog.dir/eval.cpp.o.d"
  "/root/repo/src/ndlog/functions.cpp" "src/ndlog/CMakeFiles/dp_ndlog.dir/functions.cpp.o" "gcc" "src/ndlog/CMakeFiles/dp_ndlog.dir/functions.cpp.o.d"
  "/root/repo/src/ndlog/lexer.cpp" "src/ndlog/CMakeFiles/dp_ndlog.dir/lexer.cpp.o" "gcc" "src/ndlog/CMakeFiles/dp_ndlog.dir/lexer.cpp.o.d"
  "/root/repo/src/ndlog/parser.cpp" "src/ndlog/CMakeFiles/dp_ndlog.dir/parser.cpp.o" "gcc" "src/ndlog/CMakeFiles/dp_ndlog.dir/parser.cpp.o.d"
  "/root/repo/src/ndlog/program.cpp" "src/ndlog/CMakeFiles/dp_ndlog.dir/program.cpp.o" "gcc" "src/ndlog/CMakeFiles/dp_ndlog.dir/program.cpp.o.d"
  "/root/repo/src/ndlog/table.cpp" "src/ndlog/CMakeFiles/dp_ndlog.dir/table.cpp.o" "gcc" "src/ndlog/CMakeFiles/dp_ndlog.dir/table.cpp.o.d"
  "/root/repo/src/ndlog/tuple.cpp" "src/ndlog/CMakeFiles/dp_ndlog.dir/tuple.cpp.o" "gcc" "src/ndlog/CMakeFiles/dp_ndlog.dir/tuple.cpp.o.d"
  "/root/repo/src/ndlog/value.cpp" "src/ndlog/CMakeFiles/dp_ndlog.dir/value.cpp.o" "gcc" "src/ndlog/CMakeFiles/dp_ndlog.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
