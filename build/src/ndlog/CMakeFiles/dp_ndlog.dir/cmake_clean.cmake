file(REMOVE_RECURSE
  "CMakeFiles/dp_ndlog.dir/ast.cpp.o"
  "CMakeFiles/dp_ndlog.dir/ast.cpp.o.d"
  "CMakeFiles/dp_ndlog.dir/eval.cpp.o"
  "CMakeFiles/dp_ndlog.dir/eval.cpp.o.d"
  "CMakeFiles/dp_ndlog.dir/functions.cpp.o"
  "CMakeFiles/dp_ndlog.dir/functions.cpp.o.d"
  "CMakeFiles/dp_ndlog.dir/lexer.cpp.o"
  "CMakeFiles/dp_ndlog.dir/lexer.cpp.o.d"
  "CMakeFiles/dp_ndlog.dir/parser.cpp.o"
  "CMakeFiles/dp_ndlog.dir/parser.cpp.o.d"
  "CMakeFiles/dp_ndlog.dir/program.cpp.o"
  "CMakeFiles/dp_ndlog.dir/program.cpp.o.d"
  "CMakeFiles/dp_ndlog.dir/table.cpp.o"
  "CMakeFiles/dp_ndlog.dir/table.cpp.o.d"
  "CMakeFiles/dp_ndlog.dir/tuple.cpp.o"
  "CMakeFiles/dp_ndlog.dir/tuple.cpp.o.d"
  "CMakeFiles/dp_ndlog.dir/value.cpp.o"
  "CMakeFiles/dp_ndlog.dir/value.cpp.o.d"
  "libdp_ndlog.a"
  "libdp_ndlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_ndlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
