file(REMOVE_RECURSE
  "libdp_ndlog.a"
)
