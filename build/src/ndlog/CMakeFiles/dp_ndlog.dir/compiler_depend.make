# Empty compiler generated dependencies file for dp_ndlog.
# This may be replaced when dependencies are built.
