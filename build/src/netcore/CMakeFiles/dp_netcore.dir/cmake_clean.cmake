file(REMOVE_RECURSE
  "CMakeFiles/dp_netcore.dir/netcore.cpp.o"
  "CMakeFiles/dp_netcore.dir/netcore.cpp.o.d"
  "libdp_netcore.a"
  "libdp_netcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_netcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
