file(REMOVE_RECURSE
  "libdp_netcore.a"
)
