# Empty compiler generated dependencies file for dp_netcore.
# This may be replaced when dependencies are built.
