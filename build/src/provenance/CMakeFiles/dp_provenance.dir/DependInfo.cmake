
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/provenance/graph.cpp" "src/provenance/CMakeFiles/dp_provenance.dir/graph.cpp.o" "gcc" "src/provenance/CMakeFiles/dp_provenance.dir/graph.cpp.o.d"
  "/root/repo/src/provenance/recorder.cpp" "src/provenance/CMakeFiles/dp_provenance.dir/recorder.cpp.o" "gcc" "src/provenance/CMakeFiles/dp_provenance.dir/recorder.cpp.o.d"
  "/root/repo/src/provenance/sharded.cpp" "src/provenance/CMakeFiles/dp_provenance.dir/sharded.cpp.o" "gcc" "src/provenance/CMakeFiles/dp_provenance.dir/sharded.cpp.o.d"
  "/root/repo/src/provenance/tree.cpp" "src/provenance/CMakeFiles/dp_provenance.dir/tree.cpp.o" "gcc" "src/provenance/CMakeFiles/dp_provenance.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ndlog/CMakeFiles/dp_ndlog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
