file(REMOVE_RECURSE
  "CMakeFiles/dp_provenance.dir/graph.cpp.o"
  "CMakeFiles/dp_provenance.dir/graph.cpp.o.d"
  "CMakeFiles/dp_provenance.dir/recorder.cpp.o"
  "CMakeFiles/dp_provenance.dir/recorder.cpp.o.d"
  "CMakeFiles/dp_provenance.dir/sharded.cpp.o"
  "CMakeFiles/dp_provenance.dir/sharded.cpp.o.d"
  "CMakeFiles/dp_provenance.dir/tree.cpp.o"
  "CMakeFiles/dp_provenance.dir/tree.cpp.o.d"
  "libdp_provenance.a"
  "libdp_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
