file(REMOVE_RECURSE
  "libdp_provenance.a"
)
