# Empty dependencies file for dp_provenance.
# This may be replaced when dependencies are built.
