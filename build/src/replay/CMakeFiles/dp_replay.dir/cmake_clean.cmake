file(REMOVE_RECURSE
  "CMakeFiles/dp_replay.dir/checkpoint.cpp.o"
  "CMakeFiles/dp_replay.dir/checkpoint.cpp.o.d"
  "CMakeFiles/dp_replay.dir/event_log.cpp.o"
  "CMakeFiles/dp_replay.dir/event_log.cpp.o.d"
  "CMakeFiles/dp_replay.dir/logging_engine.cpp.o"
  "CMakeFiles/dp_replay.dir/logging_engine.cpp.o.d"
  "CMakeFiles/dp_replay.dir/replay_engine.cpp.o"
  "CMakeFiles/dp_replay.dir/replay_engine.cpp.o.d"
  "libdp_replay.a"
  "libdp_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
