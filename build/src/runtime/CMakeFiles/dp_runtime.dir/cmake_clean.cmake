file(REMOVE_RECURSE
  "CMakeFiles/dp_runtime.dir/engine.cpp.o"
  "CMakeFiles/dp_runtime.dir/engine.cpp.o.d"
  "libdp_runtime.a"
  "libdp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
