file(REMOVE_RECURSE
  "libdp_runtime.a"
)
