# Empty dependencies file for dp_runtime.
# This may be replaced when dependencies are built.
