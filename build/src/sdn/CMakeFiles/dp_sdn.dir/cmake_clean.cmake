file(REMOVE_RECURSE
  "CMakeFiles/dp_sdn.dir/program.cpp.o"
  "CMakeFiles/dp_sdn.dir/program.cpp.o.d"
  "CMakeFiles/dp_sdn.dir/scenario.cpp.o"
  "CMakeFiles/dp_sdn.dir/scenario.cpp.o.d"
  "CMakeFiles/dp_sdn.dir/stanford.cpp.o"
  "CMakeFiles/dp_sdn.dir/stanford.cpp.o.d"
  "CMakeFiles/dp_sdn.dir/trace.cpp.o"
  "CMakeFiles/dp_sdn.dir/trace.cpp.o.d"
  "libdp_sdn.a"
  "libdp_sdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_sdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
