file(REMOVE_RECURSE
  "libdp_sdn.a"
)
