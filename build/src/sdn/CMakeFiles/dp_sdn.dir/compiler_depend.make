# Empty compiler generated dependencies file for dp_sdn.
# This may be replaced when dependencies are built.
