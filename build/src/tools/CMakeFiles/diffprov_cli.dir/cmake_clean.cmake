file(REMOVE_RECURSE
  "CMakeFiles/diffprov_cli.dir/diffprov_cli.cpp.o"
  "CMakeFiles/diffprov_cli.dir/diffprov_cli.cpp.o.d"
  "diffprov_cli"
  "diffprov_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffprov_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
