# Empty compiler generated dependencies file for diffprov_cli.
# This may be replaced when dependencies are built.
