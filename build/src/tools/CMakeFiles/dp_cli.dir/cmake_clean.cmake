file(REMOVE_RECURSE
  "CMakeFiles/dp_cli.dir/cli.cpp.o"
  "CMakeFiles/dp_cli.dir/cli.cpp.o.d"
  "libdp_cli.a"
  "libdp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
