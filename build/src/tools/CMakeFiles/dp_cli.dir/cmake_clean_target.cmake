file(REMOVE_RECURSE
  "libdp_cli.a"
)
