# Empty dependencies file for dp_cli.
# This may be replaced when dependencies are built.
