file(REMOVE_RECURSE
  "CMakeFiles/dp_util.dir/hash.cpp.o"
  "CMakeFiles/dp_util.dir/hash.cpp.o.d"
  "CMakeFiles/dp_util.dir/ip.cpp.o"
  "CMakeFiles/dp_util.dir/ip.cpp.o.d"
  "CMakeFiles/dp_util.dir/logging.cpp.o"
  "CMakeFiles/dp_util.dir/logging.cpp.o.d"
  "CMakeFiles/dp_util.dir/strings.cpp.o"
  "CMakeFiles/dp_util.dir/strings.cpp.o.d"
  "libdp_util.a"
  "libdp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
