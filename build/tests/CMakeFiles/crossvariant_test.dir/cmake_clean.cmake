file(REMOVE_RECURSE
  "CMakeFiles/crossvariant_test.dir/crossvariant_test.cpp.o"
  "CMakeFiles/crossvariant_test.dir/crossvariant_test.cpp.o.d"
  "crossvariant_test"
  "crossvariant_test.pdb"
  "crossvariant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossvariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
