# Empty dependencies file for crossvariant_test.
# This may be replaced when dependencies are built.
