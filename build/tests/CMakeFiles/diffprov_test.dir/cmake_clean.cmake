file(REMOVE_RECURSE
  "CMakeFiles/diffprov_test.dir/diffprov_test.cpp.o"
  "CMakeFiles/diffprov_test.dir/diffprov_test.cpp.o.d"
  "diffprov_test"
  "diffprov_test.pdb"
  "diffprov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffprov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
