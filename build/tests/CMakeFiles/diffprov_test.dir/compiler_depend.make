# Empty compiler generated dependencies file for diffprov_test.
# This may be replaced when dependencies are built.
