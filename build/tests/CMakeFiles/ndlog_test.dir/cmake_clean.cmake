file(REMOVE_RECURSE
  "CMakeFiles/ndlog_test.dir/ndlog_test.cpp.o"
  "CMakeFiles/ndlog_test.dir/ndlog_test.cpp.o.d"
  "ndlog_test"
  "ndlog_test.pdb"
  "ndlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
