# Empty dependencies file for ndlog_test.
# This may be replaced when dependencies are built.
