file(REMOVE_RECURSE
  "CMakeFiles/stanford_test.dir/stanford_test.cpp.o"
  "CMakeFiles/stanford_test.dir/stanford_test.cpp.o.d"
  "stanford_test"
  "stanford_test.pdb"
  "stanford_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stanford_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
