# Empty compiler generated dependencies file for stanford_test.
# This may be replaced when dependencies are built.
