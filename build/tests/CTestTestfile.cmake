# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/ndlog_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/provenance_test[1]_include.cmake")
include("/root/repo/build/tests/diffprov_test[1]_include.cmake")
include("/root/repo/build/tests/sdn_test[1]_include.cmake")
include("/root/repo/build/tests/stanford_test[1]_include.cmake")
include("/root/repo/build/tests/mapred_test[1]_include.cmake")
include("/root/repo/build/tests/netcore_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/sharded_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/crossvariant_test[1]_include.cmake")
include("/root/repo/build/tests/limits_test[1]_include.cmake")
