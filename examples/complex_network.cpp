// Complex-network walk-through (the paper's section 6.7): diagnosing a
// black-box campus network under noise.
//
// The network is a scaled Stanford-backbone setting: 16 routers, thousands
// of forwarding/ACL entries, 20 *additional* injected faults, and a mix of
// background traffic. The primary system is a plain forwarding simulator --
// no NDlog -- observed through the external-specification recorder: packet
// traces are interpreted against an NDlog spec of OpenFlow match-action.
//
// H1 can reach the subnet 172.20.9.0/24 behind router oz02 but not H2's
// subnet 172.20.10.32/27 right next to it: a misconfigured drop rule.
// DiffProv finds exactly that rule, ignoring the 20 unrelated faults.
//
// Build & run:  cmake --build build && ./build/examples/complex_network
#include <cstdio>

#include "diffprov/diffprov.h"
#include "sdn/stanford.h"

using namespace dp;

int main() {
  sdn::StanfordConfig config;
  config.background_packets = 600;  // keep the example snappy
  const sdn::StanfordNetwork net = sdn::build_stanford(config);
  const Program spec = sdn::make_stanford_spec();
  std::printf("Built %zu forwarding entries (%zu ACLs) across %zu routers;\n"
              "%d extra faults injected; %zu packets of background traffic.\n\n",
              net.total_entries, net.acl_entries, net.tables.size(),
              config.extra_faults, net.workload.size() - 2);

  sdn::StanfordReplayProvider provider(net, spec);
  const BadRun run = provider.replay_bad({});
  const auto stats = provider.last_stats();
  std::printf("Black-box run: %zu delivered, %zu dropped, %zu unmatched.\n",
              stats.delivered, stats.dropped, stats.unmatched);

  const auto good = locate_tree(*run.graph, net.good_event);
  if (!good) {
    std::printf("unexpected: reference event not found\n");
    return 1;
  }
  std::printf("\nSymptom:   %s\n", net.bad_event.to_string().c_str());
  std::printf("Reference: %s (the co-located subnet that still works)\n\n",
              net.good_event.to_string().c_str());

  DiffProv diffprov(spec, provider);
  const DiffProvResult result = diffprov.diagnose(*good, net.bad_event);
  std::printf("%s", result.to_string().c_str());
  const bool exact = result.ok() && result.changes.size() == 1 &&
                     result.changes[0].before &&
                     *result.changes[0].before == net.fault_entry;
  std::printf("\nPinpointed the injected fault exactly: %s\n",
              exact ? "yes" : "no");
  std::printf(
      "\nProvenance captures true causality, not correlation: the 20 other\n"
      "faults and the background traffic never enter the diagnosed trees,\n"
      "so they cannot confuse the result (section 6.7 of the paper).\n");
  return exact ? 0 : 1;
}
