// A tour of the features beyond the paper's core algorithm (its section 4.8
// architecture and section 4.9 future-work list):
//
//   1. automatic reference selection -- diagnose with only the bad event;
//   2. delta minimization -- drop redundant changes from Δ;
//   3. decentralized provenance -- per-node shards, queried on demand;
//   4. a third domain (DNS) on the unchanged engine and algorithm.
//
// Build & run:  cmake --build build && ./build/examples/extensions_tour
#include <cstdio>

#include "diffprov/reference.h"
#include "dns/dns.h"
#include "provenance/sharded.h"
#include "runtime/engine.h"
#include "sdn/program.h"
#include "sdn/scenario.h"

using namespace dp;

int main() {
  // --- 1 + 2: auto-reference and minimization on SDN1 --------------------
  const sdn::Scenario s = sdn::sdn1();
  LogReplayProvider provider(s.program, s.topology, s.log);
  const BadRun run = provider.replay_bad({});
  DiffProv diffprov(s.program, provider);

  std::printf("Diagnosing %s with NO reference given...\n",
              s.bad_event.to_string().c_str());
  const AutoDiagnosis auto_result =
      diagnose_with_auto_reference(diffprov, *run.graph, s.bad_event);
  if (auto_result.reference) {
    std::printf("  auto-selected reference: %s (tried %zu candidate(s))\n",
                auto_result.reference->to_string().c_str(),
                auto_result.candidates_tried);
  }
  std::printf("%s\n", auto_result.result.to_string().c_str());

  if (auto_result.result.ok() && auto_result.reference) {
    const auto good = locate_tree(*run.graph, *auto_result.reference);
    const DiffProvResult minimized =
        diffprov.minimize_delta(*good, auto_result.result);
    std::printf("After minimization: %zu change(s) remain%s\n\n",
                minimized.changes.size(),
                minimized.changes.size() == auto_result.result.changes.size()
                    ? " (nothing was redundant)"
                    : "");
  }

  // --- 3: decentralized provenance ----------------------------------------
  ShardedProvenance sharded;
  Engine engine(sdn::make_program());
  engine.add_observer(&sharded);
  for (const LogRecord& r : s.log.records()) {
    if (r.op == LogRecord::Op::kInsert) {
      engine.schedule_insert(r.tuple(), r.time);
    } else {
      engine.schedule_delete(r.tuple(), r.time);
    }
  }
  engine.run();
  const auto tree = sharded.project(s.bad_event);
  const auto stats = sharded.last_query_stats();
  std::printf(
      "Sharded provenance: %zu per-node shards; projecting the bad tree\n"
      "materialized %zu vertexes with %zu on-demand remote fetches across\n"
      "%zu shards (paper section 4.8: no global operation).\n\n",
      sharded.shard_count(), stats.vertices_visited, stats.remote_fetches,
      stats.shards_touched);
  (void)tree;

  // --- 4: the DNS domain ---------------------------------------------------
  const dns::Scenario d = dns::stale_record();
  std::printf("DNS scenario: %s\n", d.description.c_str());
  LogReplayProvider dns_provider(d.program, d.topology, d.log);
  const BadRun dns_run = dns_provider.replay_bad({});
  const auto dns_good = locate_tree(*dns_run.graph, d.good_event);
  DiffProv dns_diffprov(d.program, dns_provider);
  const DiffProvResult dns_result =
      dns_diffprov.diagnose(*dns_good, d.bad_event);
  std::printf("%s", dns_result.to_string().c_str());
  std::printf(
      "\nNothing in src/diffprov knows about switches, reducers or\n"
      "resolvers: one algorithm, three domains.\n");
  return dns_result.ok() ? 0 : 1;
}
