// MapReduce debugging walk-through: both paper scenarios on the imperative
// (instrumented-Hadoop-style) WordCount.
//
//   MR1: a colleague changed mapreduce.job.reduces; the output files look
//        completely reshuffled. Why is "word42" in part-1 instead of part-2?
//   MR2: a new mapper build drops the first word of every line. Why does a
//        word that used to be in the output no longer appear at slot 0?
//
// Both diagnoses use a *reference from an earlier, correct job execution* --
// the reference event does not need to come from the same run.
//
// Build & run:  cmake --build build && ./build/examples/mapreduce_debugging
#include <cstdio>

#include "mapred/scenario.h"

using namespace dp;

namespace {

void show(const mapred::Scenario& s) {
  std::printf("--- %s ---\n%s\n", s.name.c_str(), s.description.c_str());

  // Run both jobs imperatively and show the user-visible symptom.
  const mapred::JobOutput good_out =
      mapred::run_wordcount(s.store, s.good_config);
  const mapred::JobOutput bad_out =
      mapred::run_wordcount(s.store, s.bad_config);
  std::printf("reference job: %zu emissions across %zu reducers; "
              "bad job: %zu emissions across %zu reducers\n",
              good_out.emissions, good_out.counts.size(), bad_out.emissions,
              bad_out.counts.size());
  std::printf("event of interest:  %s\n", s.bad_event.to_string().c_str());
  std::printf("reference event:    %s\n", s.good_event.to_string().c_str());

  const mapred::Diagnosis d = mapred::diagnose(s);
  std::printf("good tree: %zu vertexes, bad tree: %zu vertexes\n",
              d.good_tree.size(), d.bad_tree.size());
  std::printf("%s\n", d.result.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("MapReduce diagnostics with DiffProv (imperative variant:\n"
              "the job reports key-value-level dependencies, and replay\n"
              "re-runs the instrumented job with the proposed change).\n\n");
  show(mapred::mr1_imperative());
  show(mapred::mr2_imperative());
  std::printf(
      "MR1's root cause is the configuration entry itself; MR2's is the\n"
      "deployed mapper version, identified -- exactly as in the paper -- by\n"
      "its bytecode checksum, since DiffProv cannot see inside the mapper's\n"
      "code, only that a different version produces different emissions.\n");
  return 0;
}
