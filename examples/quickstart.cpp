// Quickstart: the full DiffProv pipeline on a ten-line NDlog program.
//
//   1. write an NDlog model of your system (tables + derivation rules),
//   2. record its execution into an event log,
//   3. replay the log to reconstruct provenance and query a tree,
//   4. hand DiffProv a "good" reference event and the "bad" event --
//      it returns the base-tuple change that explains the difference.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "diffprov/diffprov.h"
#include "ndlog/parser.h"

using namespace dp;

int main() {
  // 1. A miniature system: a server whose reply depends on a config knob.
  //    reply(@Client, Id, Answer) is derived from each request and the
  //    server's setting: Answer = Value * 2 + 1.
  const Program program = parse_program(R"(
    table request(3) base immutable event.   // request(@Server, Client, Id)
    table setting(2) base mutable keys(0).   // setting(@Server, Value)
    table reply(3) derived.                  // reply(@Client, Id, Answer)

    rule r1 reply(@Client, Id, Value * 2 + 1) :-
        request(@Server, Client, Id),
        setting(@Server, Value).
  )");
  std::printf("The system model:\n%s\n", program.to_string().c_str());

  // 2. Record an execution: the setting changes from 20 to 99 mid-run
  //    (someone fat-fingered a config push), and two requests arrive.
  EventLog log;
  log.append_insert(Tuple("setting", {Value("srv"), Value(20)}), 0);
  log.append_insert(Tuple("request", {Value("srv"), Value("alice"), Value(1)}),
                    100);
  log.append_insert(Tuple("setting", {Value("srv"), Value(99)}), 150);
  log.append_insert(Tuple("request", {Value("srv"), Value("bob"), Value(2)}),
                    200);

  // 3. Replay and query provenance. Alice got 41; Bob got the puzzling 199.
  LogReplayProvider provider(program, Topology{}, log);
  const BadRun run = provider.replay_bad({});
  const Tuple good_reply("reply", {Value("alice"), Value(1), Value(41)});
  const Tuple bad_reply("reply", {Value("bob"), Value(2), Value(199)});
  const auto good_tree = locate_tree(*run.graph, good_reply);
  const auto bad_tree = locate_tree(*run.graph, bad_reply);
  if (!good_tree || !bad_tree) {
    std::printf("unexpected: events not found\n");
    return 1;
  }
  std::printf("Provenance of Bob's bad reply (%zu vertexes):\n%s\n",
              bad_tree->size(), bad_tree->to_text().c_str());

  // 4. Ask DiffProv: why did Bob get 199 when Alice got 41?
  DiffProv diffprov(program, provider);
  const DiffProvResult result = diffprov.diagnose(*good_tree, bad_reply);
  std::printf("%s", result.to_string().c_str());
  std::printf(
      "\nDiffProv aligned the two trees and found the one mutable base\n"
      "tuple whose change explains the difference: the setting. Note that\n"
      "it did not blame the request (immutable) or the rule math -- it\n"
      "inverted Answer = Value * 2 + 1 through the taint formulas.\n");
  return result.ok() ? 0 : 1;
}
