// SDN debugging walk-through: the paper's Figure-1 scenario (SDN1), end to
// end -- including the NetCore front-end variant of the controller program.
//
// An operator wants traffic from untrusted subnet 4.3.2.0/23 steered through
// the DPI-monitored web server w1, but wrote the prefix as /24. Requests
// from 4.3.3.x silently reach the wrong server. Given one misrouted packet
// and one correctly routed packet, DiffProv pinpoints the broken policy
// entry and proposes the exact fix.
//
// Build & run:  cmake --build build && ./build/examples/sdn_debugging
#include <cstdio>

#include "diffprov/diffprov.h"
#include "diffprov/treediff.h"
#include "netcore/netcore.h"
#include "sdn/scenario.h"

using namespace dp;

int main() {
  sdn::Scenario s = sdn::sdn1();
  std::printf("Scenario: %s\n%s\n\n", s.name.c_str(), s.description.c_str());

  // The same policy, written in the NetCore front-end (the paper's
  // controller programs are accepted in NDlog or NetCore form):
  std::printf("The controller policy in NetCore form:\n%s\n",
              R"(  switch sw2 {
    if src in 4.3.2.0/24 then fwd(sw6)   // BUG: should be /23
    else fwd(sw3)
  })");

  // Query both provenance trees, as an operator armed with a classical
  // provenance system (Y!) would.
  LogReplayProvider query_provider(s.program, s.topology, s.log);
  const BadRun run = query_provider.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  const auto bad = locate_tree(*run.graph, s.bad_event);
  if (!good || !bad) {
    std::printf("unexpected: events not found\n");
    return 1;
  }
  std::printf("\nThe classical provenance of the misrouted packet has %zu\n"
              "vertexes (first few shown):\n%s",
              bad->size(), bad->to_text(12).c_str());
  const TreeDiffStats diff = plain_tree_diff(*good, *bad);
  std::printf("\nA naive tree diff against the good packet still leaves %zu\n"
              "differing vertexes to read -- the butterfly effect.\n\n",
              diff.diff_size());

  // DiffProv: one change.
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  std::printf("%s", result.to_string().c_str());
  if (result.ok() && !result.changes.empty()) {
    std::printf(
        "\nThe proposed change is the root cause the operator was after:\n"
        "widening the untrusted-subnet policy from /24 to /23. Applying it\n"
        "(after review -- section 4.7 of the paper explains why a human\n"
        "should confirm) makes 4.3.3.x traffic take the DPI path again.\n");
  }
  return result.ok() ? 0 : 1;
}
