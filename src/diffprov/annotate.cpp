#include "diffprov/annotate.h"

namespace dp {

namespace {

/// Inserts var -> formula, letting tainted formulas win over untainted ones
/// (a variable bound both by the trigger and by a sibling keeps the
/// seed-derived meaning).
void bind(FormulaEnv& env, const std::string& var, FormulaPtr formula) {
  auto it = env.find(var);
  if (it == env.end()) {
    env.emplace(var, std::move(formula));
    return;
  }
  if (!it->second->tainted() && formula->tainted()) {
    it->second = std::move(formula);
  }
}

}  // namespace

TreeAnnotations TreeAnnotations::annotate(const ProvTree& tree,
                                          const Program& program,
                                          const SeedInfo& seed) {
  TreeAnnotations ann(tree, program);
  if (seed.exist_node == ProvTree::kNoNode) return ann;

  // The seed's fields are, by definition, the seed functions themselves.
  TupleFormulas seed_formulas;
  seed_formulas.fields.reserve(seed.tuple.arity());
  for (std::size_t i = 0; i < seed.tuple.arity(); ++i) {
    seed_formulas.fields.push_back(Formula::make_seed_field(i));
  }
  ann.annotate_chain(seed.exist_node, seed_formulas);

  // Climb the spine bottom-up, composing upward and fanning out downward.
  for (ProvTree::NodeIndex derive : spine_of(tree, seed)) {
    ann.process_spine_derive(derive);
  }
  return ann;
}

void TreeAnnotations::annotate_chain(ProvTree::NodeIndex exist_node,
                                     const TupleFormulas& formulas) {
  // EXIST -> APPEAR -> (INSERT | DERIVE...) all carry the same tuple.
  formulas_[exist_node] = formulas;
  for (ProvTree::NodeIndex appear : tree_->node(exist_node).children) {
    formulas_[appear] = formulas;
    for (ProvTree::NodeIndex cause : tree_->node(appear).children) {
      const VertexKind kind = tree_->vertex_of(cause).kind;
      if (kind == VertexKind::kInsert || kind == VertexKind::kDerive) {
        formulas_[cause] = formulas;
      }
    }
  }
}

void TreeAnnotations::process_spine_derive(ProvTree::NodeIndex derive_node) {
  const Vertex& v = tree_->vertex_of(derive_node);
  const Rule* rule = program_->find_rule(v.rule());
  if (rule == nullptr) return;  // external-spec pseudo rule: stop taints
  const auto& children = tree_->node(derive_node).children;
  // Aggregate derivations carry one extra child (the previous aggregate in
  // the contribution chain); taints propagate through the rule body only.
  if (children.size() < rule->body.size()) return;  // malformed

  // Build the variable environment from the body instantiation.
  FormulaEnv env;
  for (std::size_t i = 0; i < rule->body.size(); ++i) {
    const BodyAtom& atom = rule->body[i];
    const Vertex& child = tree_->vertex_of(children[i]);
    const TupleFormulas* child_formulas = formulas_for(children[i]);
    for (std::size_t j = 0; j < atom.args.size(); ++j) {
      if (!atom.args[j].is_var) continue;
      FormulaPtr f;
      if (child_formulas != nullptr && j < child_formulas->fields.size() &&
          child_formulas->fields[j]) {
        f = child_formulas->fields[j];
      } else {
        f = Formula::make_const(child.tuple().at(j));
      }
      bind(env, atom.args[j].var, std::move(f));
    }
  }
  for (const Assignment& assign : rule->assigns) {
    if (auto f = formula_from_expr(*assign.expr, env)) {
      bind(env, assign.var, std::move(*f));
    }
  }

  // Head fields: compose formulas through the head expressions.
  TupleFormulas head_formulas;
  head_formulas.fields.reserve(rule->head.args.size());
  for (const ExprPtr& arg : rule->head.args) {
    auto f = formula_from_expr(*arg, env);
    head_formulas.fields.push_back(f ? *f : nullptr);
  }

  envs_[derive_node] = env;
  formulas_[derive_node] = head_formulas;

  // Annotate the head's APPEAR/EXIST (the derive's ancestors in the tree).
  const ProvTree::NodeIndex appear = tree_->node(derive_node).parent;
  if (appear != ProvTree::kNoNode) {
    formulas_[appear] = head_formulas;
    const ProvTree::NodeIndex exist = tree_->node(appear).parent;
    if (exist != ProvTree::kNoNode) formulas_[exist] = head_formulas;
  }

  // Downward propagation into sibling subtrees (paper section 4.5).
  for (std::size_t i = 0; i < rule->body.size(); ++i) {
    if (formulas_.count(children[i]) != 0) continue;  // spine child: done
    const BodyAtom& atom = rule->body[i];
    const Vertex& child = tree_->vertex_of(children[i]);
    TupleFormulas child_formulas;
    child_formulas.fields.reserve(atom.args.size());
    bool any_tainted = false;
    for (std::size_t j = 0; j < atom.args.size(); ++j) {
      FormulaPtr f;
      if (atom.args[j].is_var) {
        auto it = env.find(atom.args[j].var);
        if (it != env.end()) f = it->second;
      }
      if (!f) f = Formula::make_const(child.tuple().at(j));
      any_tainted = any_tainted || f->tainted();
      child_formulas.fields.push_back(std::move(f));
    }
    if (!any_tainted) continue;  // verbatim subtree: defaults suffice
    annotate_chain(children[i], child_formulas);
    annotate_downward(children[i]);
  }
}

void TreeAnnotations::annotate_downward(ProvTree::NodeIndex exist_node) {
  const TupleFormulas* head_formulas = formulas_for(exist_node);
  if (head_formulas == nullptr) return;
  // EXIST -> APPEAR -> first DERIVE (if the tuple is derived).
  for (ProvTree::NodeIndex appear : tree_->node(exist_node).children) {
    for (ProvTree::NodeIndex derive : tree_->node(appear).children) {
      const Vertex& dv = tree_->vertex_of(derive);
      if (dv.kind != VertexKind::kDerive) continue;
      const Rule* rule = program_->find_rule(dv.rule());
      if (rule == nullptr) continue;
      const auto& children = tree_->node(derive).children;
      if (children.size() < rule->body.size()) continue;

      // Recover variable formulas by inverting the head computation
      // against this tuple's formulas (the paper's q = x + 2 example).
      FormulaEnv env;
      for (std::size_t i = 0; i < rule->head.args.size(); ++i) {
        const Expr& e = *rule->head.args[i];
        FormulaPtr f = i < head_formulas->fields.size() &&
                               head_formulas->fields[i]
                           ? head_formulas->fields[i]
                           : Formula::make_const(dv.tuple().at(i));
        if (e.kind == Expr::Kind::kVar) bind(env, e.var, std::move(f));
      }
      // Second pass: single-unknown inversion of computed head fields.
      for (std::size_t i = 0; i < rule->head.args.size(); ++i) {
        const Expr& e = *rule->head.args[i];
        if (e.kind == Expr::Kind::kVar) continue;
        std::vector<std::string> vars;
        e.collect_vars(vars);
        std::string unknown;
        bool single = true;
        for (const std::string& var : vars) {
          if (env.count(var) != 0) continue;
          if (!unknown.empty() && unknown != var) {
            single = false;
            break;
          }
          unknown = var;
        }
        if (!single || unknown.empty()) continue;
        FormulaPtr target = i < head_formulas->fields.size() &&
                                    head_formulas->fields[i]
                                ? head_formulas->fields[i]
                                : Formula::make_const(dv.tuple().at(i));
        if (auto inv = invert_expr_for_var(e, unknown, target, env)) {
          bind(env, unknown, std::move(*inv));
        }
      }
      // Invert assignments in reverse order: Var := expr with the Var known
      // and a single unknown input.
      for (auto it = rule->assigns.rbegin(); it != rule->assigns.rend();
           ++it) {
        auto bound = env.find(it->var);
        if (bound == env.end()) continue;
        std::vector<std::string> vars;
        it->expr->collect_vars(vars);
        std::string unknown;
        bool single = true;
        for (const std::string& var : vars) {
          if (env.count(var) != 0) continue;
          if (!unknown.empty() && unknown != var) {
            single = false;
            break;
          }
          unknown = var;
        }
        if (!single || unknown.empty()) continue;
        if (auto inv =
                invert_expr_for_var(*it->expr, unknown, bound->second, env)) {
          bind(env, unknown, std::move(*inv));
        }
      }

      envs_[derive] = env;
      formulas_[derive] = *head_formulas;

      // Annotate and recurse into the body children.
      for (std::size_t i = 0; i < rule->body.size(); ++i) {
        if (formulas_.count(children[i]) != 0) continue;
        const BodyAtom& atom = rule->body[i];
        const Vertex& child = tree_->vertex_of(children[i]);
        TupleFormulas child_formulas;
        child_formulas.fields.reserve(atom.args.size());
        bool any_tainted = false;
        for (std::size_t j = 0; j < atom.args.size(); ++j) {
          FormulaPtr f;
          if (atom.args[j].is_var) {
            auto env_it = env.find(atom.args[j].var);
            if (env_it != env.end()) f = env_it->second;
          }
          if (!f) f = Formula::make_const(child.tuple().at(j));
          any_tainted = any_tainted || f->tainted();
          child_formulas.fields.push_back(std::move(f));
        }
        if (!any_tainted) continue;
        annotate_chain(children[i], child_formulas);
        annotate_downward(children[i]);
      }
      break;  // only the primary derivation guides taints
    }
  }
}

const TupleFormulas* TreeAnnotations::formulas_for(
    ProvTree::NodeIndex node) const {
  auto it = formulas_.find(node);
  return it == formulas_.end() ? nullptr : &it->second;
}

std::optional<Tuple> TreeAnnotations::expected_tuple(
    ProvTree::NodeIndex node, const std::vector<Value>& seed_b_fields) const {
  const Vertex& v = tree_->vertex_of(node);
  const TupleFormulas* formulas = formulas_for(node);
  if (formulas == nullptr) return v.tuple();  // fully verbatim
  auto values = formulas->eval_expected(seed_b_fields, v.tuple().values());
  if (!values) return std::nullopt;
  return Tuple(v.tuple().table(), std::move(*values));
}

const FormulaEnv* TreeAnnotations::env_for_derive(
    ProvTree::NodeIndex node) const {
  auto it = envs_.find(node);
  return it == envs_.end() ? nullptr : &it->second;
}

}  // namespace dp
