// Whole-tree taint annotation of the good tree T_G (paper sections 4.3-4.5).
//
// One upward pass climbs the spine from the seed, composing formulas through
// rule head expressions and assignments; at every spine derivation, taints
// are also propagated *downward* into the sibling subtrees (inverting head
// computations where necessary), so that every tuple in T_G ends up with
// per-field formulas over the seed. Untainted fields default to "verbatim"
// (expected unchanged in T_B).
#pragma once

#include <map>
#include <optional>

#include "diffprov/formula.h"
#include "diffprov/seed.h"
#include "ndlog/program.h"

namespace dp {

class TreeAnnotations {
 public:
  /// Annotates `tree` (which must belong to `program`'s vocabulary) from its
  /// seed. Unknown rules (e.g. external-spec pseudo-rules not in the
  /// program) stop propagation at that vertex, leaving subtrees verbatim.
  static TreeAnnotations annotate(const ProvTree& tree, const Program& program,
                                  const SeedInfo& seed);

  /// Formulas for the tuple at `node`, or nullptr if fully verbatim.
  [[nodiscard]] const TupleFormulas* formulas_for(
      ProvTree::NodeIndex node) const;

  /// The equivalent-in-T_B tuple for `node`: tainted fields evaluated on
  /// `seed_b_fields`, untainted fields copied. nullopt if a formula fails
  /// to evaluate.
  [[nodiscard]] std::optional<Tuple> expected_tuple(
      ProvTree::NodeIndex node,
      const std::vector<Value>& seed_b_fields) const;

  /// Variable environment established at a DERIVE node (spine or downward),
  /// or nullptr if the node was never processed.
  [[nodiscard]] const FormulaEnv* env_for_derive(
      ProvTree::NodeIndex node) const;

  /// Count of annotated (taint-carrying) nodes; exposed for tests/benches.
  [[nodiscard]] std::size_t tainted_node_count() const {
    return formulas_.size();
  }

 private:
  TreeAnnotations(const ProvTree& tree, const Program& program)
      : tree_(&tree), program_(&program) {}

  void annotate_chain(ProvTree::NodeIndex exist_node,
                      const TupleFormulas& formulas);
  void process_spine_derive(ProvTree::NodeIndex derive_node);
  void annotate_downward(ProvTree::NodeIndex exist_node);

  const ProvTree* tree_;
  const Program* program_;
  std::map<ProvTree::NodeIndex, TupleFormulas> formulas_;
  std::map<ProvTree::NodeIndex, FormulaEnv> envs_;
};

}  // namespace dp
