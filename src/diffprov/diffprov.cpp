#include "diffprov/diffprov.h"

#include <chrono>
#include <set>

#include "ndlog/eval.h"
#include "obs/obs.h"
#include "util/logging.h"

namespace dp {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Span over a whole diagnosis plus summary counters published when it ends
/// (RAII, so every return path of diagnose() is covered).
class DiagnoseScope {
 public:
  explicit DiagnoseScope(const DiffProvResult& result)
      : span_(obs::default_tracer(), "dp.diffprov.diagnose", "diffprov"),
        result_(result) {}
  ~DiagnoseScope() {
    auto& registry = obs::default_registry();
    registry.counter("dp.diffprov.diagnoses").inc();
    if (result_.ok()) registry.counter("dp.diffprov.successes").inc();
    registry.counter("dp.diffprov.rounds")
        .inc(static_cast<std::uint64_t>(result_.rounds));
    registry.counter("dp.diffprov.replays")
        .inc(static_cast<std::uint64_t>(result_.timing.replays));
    registry.counter("dp.diffprov.changes").inc(result_.changes.size());
  }
  DiagnoseScope(const DiagnoseScope&) = delete;
  DiagnoseScope& operator=(const DiagnoseScope&) = delete;

 private:
  obs::Span span_;
  const DiffProvResult& result_;
};

/// Unifies `atom` against a concrete tuple into `bindings` (concrete
/// values). Returns false on conflict.
bool unify_concrete(const BodyAtom& atom, const Tuple& tuple,
                    Bindings& bindings) {
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    const AtomArg& arg = atom.args[i];
    if (arg.is_var) {
      auto [it, inserted] = bindings.emplace(arg.var, tuple.at(i));
      if (!inserted && !(it->second == tuple.at(i))) return false;
    } else if (!(arg.constant == tuple.at(i))) {
      return false;
    }
  }
  return true;
}

FormulaEnv const_env_from(const Bindings& bindings) {
  FormulaEnv env;
  for (const auto& [var, value] : bindings) {
    env.emplace(var, Formula::make_const(value));
  }
  return env;
}

/// Solves `constraint(bindings[var := ?])` to become true by picking a new
/// value for `var`. Handles `lhs == rhs` via expression inversion (which
/// consults builtin solvers with the variable's current value), truthy
/// builtin calls, and simple ordered comparisons on a bare variable.
std::optional<Value> solve_constraint_for_var(const Expr& constraint,
                                              const Bindings& bindings,
                                              const std::string& var) {
  const FormulaEnv env = const_env_from(bindings);
  auto eval_formula = [](const FormulaPtr& f) -> std::optional<Value> {
    try {
      return f->eval({});
    } catch (const EvalError&) {
      return std::nullopt;
    }
  };
  auto mentions_var = [&var](const Expr& e) {
    std::vector<std::string> vars;
    e.collect_vars(vars);
    for (const std::string& v : vars) {
      if (v == var) return true;
    }
    return false;
  };

  if (constraint.kind == Expr::Kind::kBinary &&
      is_comparison(constraint.op)) {
    const Expr& lhs = *constraint.children[0];
    const Expr& rhs = *constraint.children[1];
    const bool in_lhs = mentions_var(lhs);
    const bool in_rhs = mentions_var(rhs);
    if (in_lhs == in_rhs) return std::nullopt;
    const Expr& unknown_side = in_lhs ? lhs : rhs;
    const Expr& known_side = in_lhs ? rhs : lhs;
    Value other;
    try {
      Bindings without;  // known side must not need `var`
      other = eval_expr(known_side, bindings);
      (void)without;
    } catch (const EvalError&) {
      return std::nullopt;
    }
    switch (constraint.op) {
      case BinOp::kEq: {
        auto inv = invert_expr_for_var(unknown_side, var,
                                       Formula::make_const(other), env);
        if (!inv) return std::nullopt;
        return eval_formula(*inv);
      }
      case BinOp::kNe:
        if (unknown_side.kind == Expr::Kind::kVar && other.is_int()) {
          return Value(other.as_int() + 1);
        }
        return std::nullopt;
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe: {
        if (unknown_side.kind != Expr::Kind::kVar || !other.is_int()) {
          return std::nullopt;
        }
        const std::int64_t o = other.as_int();
        const bool var_is_left = in_lhs;
        switch (constraint.op) {
          case BinOp::kLt: return Value(var_is_left ? o - 1 : o + 1);
          case BinOp::kLe: return Value(o);
          case BinOp::kGt: return Value(var_is_left ? o + 1 : o - 1);
          case BinOp::kGe: return Value(o);
          default: return std::nullopt;
        }
      }
      default:
        return std::nullopt;
    }
  }
  // Truthy form, e.g. a bare builtin call: solve expr == 1.
  auto inv = invert_expr_for_var(constraint, var,
                                 Formula::make_const(Value(1)), env);
  if (!inv) return std::nullopt;
  return eval_formula(*inv);
}

}  // namespace

std::string_view diffprov_status_name(DiffProvStatus status) {
  switch (status) {
    case DiffProvStatus::kSuccess: return "success";
    case DiffProvStatus::kSeedTypeMismatch: return "seed-type-mismatch";
    case DiffProvStatus::kImmutableChange: return "immutable-change-required";
    case DiffProvStatus::kNotInvertible: return "not-invertible";
    case DiffProvStatus::kBadEventNotFound: return "bad-event-not-found";
    case DiffProvStatus::kNoProgress: return "no-progress";
    case DiffProvStatus::kExhausted: return "round-budget-exhausted";
  }
  return "?";
}

std::string ChangeRecord::to_string() const {
  std::string out;
  if (before && after) {
    out = "change " + before->to_string() + " -> " + after->to_string();
  } else if (after) {
    out = "insert " + after->to_string();
  } else if (before) {
    out = "delete " + before->to_string();
  }
  if (!note.empty()) out += "  [" + note + "]";
  return out;
}

std::string DiffProvResult::to_string() const {
  std::string out = "DiffProv: ";
  out += diffprov_status_name(status);
  out += " (" + std::to_string(rounds) + " round(s), " +
         std::to_string(changes.size()) + " change(s))\n";
  for (const ChangeRecord& change : changes) {
    out += "  " + change.to_string() + "\n";
  }
  if (!message.empty()) out += "  note: " + message + "\n";
  return out;
}

std::optional<ProvTree> locate_tree(const ProvenanceGraph& graph,
                                    const Tuple& event) {
  const auto exist = graph.latest_exist_before(event, kTimeInfinity);
  if (!exist) return std::nullopt;
  return ProvTree::project(graph, *exist);
}

// ---------------------------------------------------------------------------

struct DiffProv::RoundState {
  const ProvTree* good = nullptr;
  const TreeAnnotations* ann = nullptr;
  std::vector<Value> seed_b;
  LogicalTime t_check = 0;
  LogicalTime t_apply = 0;

  const StateView* view = nullptr;
  const ProvenanceGraph* graph = nullptr;

  Delta* delta = nullptr;
  std::vector<ChangeRecord>* changes = nullptr;
  std::set<std::string>* seen_ops = nullptr;
  RepairMap* repairs = nullptr;
  std::size_t round_new_ops = 0;

  DiffProvStatus fail_status = DiffProvStatus::kSuccess;
  std::string fail_message;

  bool fail(DiffProvStatus status, std::string message) {
    fail_status = status;
    fail_message = std::move(message);
    return false;
  }
};

namespace {

/// Existence of `tuple` in the (current) bad execution: materialized tuples
/// are checked "as of" the bad seed's time; event tuples are checked against
/// the provenance graph (they never persist in tables).
bool exists_in_bad(const Program& program, const StateView& view,
                   const ProvenanceGraph& graph, const Tuple& tuple,
                   LogicalTime t_check) {
  const TableDecl& decl = program.table(tuple.table());
  if (decl.is_event()) return !graph.exists_of(tuple).empty();
  return view.existed_at(tuple, t_check);
}

/// The live tuple holding `t`'s key in the bad state at `at` (the "before"
/// of a change record), if any.
std::optional<Tuple> find_current_by_key(const Program& program,
                                         const StateView& view,
                                         const Tuple& t, LogicalTime at) {
  const TableDecl& decl = program.table(t.table());
  const auto key_of = [&decl](const Tuple& tuple) {
    std::vector<Value> key;
    if (decl.key_columns.empty()) {
      key = tuple.values();
    } else {
      for (std::size_t col : decl.key_columns) key.push_back(tuple.at(col));
    }
    return key;
  };
  const std::vector<Value> wanted = key_of(t);
  std::optional<Tuple> found;
  view.scan_table(t.location(), t.table(), at, [&](const Tuple& candidate) {
    if (!found && key_of(candidate) == wanted) found = candidate;
  });
  return found;
}

/// Registers that the default expected tuple `before` is realized as `after`
/// by this diagnosis. Entries are keyed by the raw (annotation-evaluated)
/// tuple, so chained repairs update the existing entry.
void record_repair(RepairMap& repairs, const Tuple& before,
                   const Tuple& after) {
  for (auto& [raw, current] : repairs) {
    if (current == before) {
      current = after;
      return;
    }
  }
  repairs.emplace(before, after);
}

}  // namespace

void DiffProv::add_change(RoundState& state, const Tuple& new_tuple,
                          const std::string& note,
                          std::optional<Tuple> explicit_before) {
  // The displaced tuple: the caller's pre-repair version if it actually
  // exists in the bad state, else whatever currently holds the key.
  std::optional<Tuple> before;
  if (explicit_before &&
      exists_in_bad(*program_, *state.view, *state.graph, *explicit_before,
                    state.t_check)) {
    before = std::move(explicit_before);
  } else {
    before = find_current_by_key(*program_, *state.view, new_tuple,
                                 state.t_check);
  }
  if (before && *before == new_tuple) return;  // already as desired

  ChangeRecord record;
  record.before = before;
  record.after = new_tuple;
  record.note = note;

  Delta ops;
  if (before) {
    // An explicit delete keeps the semantics independent of whether the
    // table's key columns cover the changed field.
    ops.push_back({DeltaOp::Kind::kDelete, *before, state.t_apply});
  }
  ops.push_back({DeltaOp::Kind::kInsert, new_tuple, state.t_apply});

  bool any_new = false;
  for (DeltaOp& op : ops) {
    if (state.seen_ops->insert(op.to_string()).second) {
      record.op_indices.push_back(state.delta->size());
      state.delta->push_back(std::move(op));
      any_new = true;
    }
  }
  if (any_new) {
    state.changes->push_back(std::move(record));
    ++state.round_new_ops;
  }
}

void DiffProv::add_deletion(RoundState& state, const Tuple& victim,
                            const std::string& note) {
  DeltaOp op{DeltaOp::Kind::kDelete, victim, state.t_apply};
  if (!state.seen_ops->insert(op.to_string()).second) return;
  ChangeRecord record;
  record.before = victim;
  record.note = note;
  record.op_indices.push_back(state.delta->size());
  state.delta->push_back(std::move(op));
  state.changes->push_back(std::move(record));
  ++state.round_new_ops;
}

bool DiffProv::ensure_child(RoundState& state, ProvTree::NodeIndex good_child,
                            const Tuple& expected, std::size_t depth) {
  if (depth > config_.max_recursion) {
    return state.fail(DiffProvStatus::kExhausted,
                      "recursion limit reached while making tuples appear");
  }
  // Pending inserts from this diagnosis count as existing.
  if (state.seen_ops->count(
          DeltaOp{DeltaOp::Kind::kInsert, expected, state.t_apply}
              .to_string()) != 0) {
    return true;
  }
  if (exists_in_bad(*program_, *state.view, *state.graph, expected,
                    state.t_check)) {
    return true;
  }
  const TableDecl& decl = program_->table(expected.table());
  if (decl.kind == TupleKind::kBase) {
    if (decl.mutability == Mutability::kImmutable) {
      return state.fail(
          DiffProvStatus::kImmutableChange,
          "aligning the trees requires changing the immutable base tuple " +
              expected.to_string() +
              "; pick a reference whose provenance shares this tuple");
    }
    add_change(state, expected, "missing base tuple (made to appear)");
    return true;
  }
  // Derived: recurse into the derivation that produced the good counterpart.
  const ProvTree& good = *state.good;
  for (ProvTree::NodeIndex appear : good.node(good_child).children) {
    for (ProvTree::NodeIndex derive : good.node(appear).children) {
      if (good.vertex_of(derive).kind == VertexKind::kDerive) {
        return make_appear(state, derive, expected, depth + 1);
      }
    }
  }
  return state.fail(DiffProvStatus::kNotInvertible,
                    "no derivation of " +
                        good.vertex_of(good_child).tuple().to_string() +
                        " in the reference tree (unexpanded boundary)");
}

bool DiffProv::repair_constraints(RoundState& state, const Rule& rule,
                                  ProvTree::NodeIndex good_derive,
                                  std::vector<Tuple>& expected_children,
                                  std::size_t depth) {
  // Bind variables from the expected children, then run assignments.
  Bindings bindings;
  for (std::size_t i = 0; i < rule.body.size(); ++i) {
    if (!unify_concrete(rule.body[i], expected_children[i], bindings)) {
      return state.fail(DiffProvStatus::kNotInvertible,
                        "inconsistent expected bindings for rule " +
                            rule.name);
    }
  }
  auto run_assigns = [&]() -> bool {
    try {
      for (const Assignment& assign : rule.assigns) {
        bindings[assign.var] = eval_expr(*assign.expr, bindings);
      }
      return true;
    } catch (const EvalError&) {
      return false;
    }
  };
  if (!run_assigns()) {
    return state.fail(DiffProvStatus::kNotInvertible,
                      "assignment failed under expected bindings (rule " +
                          rule.name + ")");
  }

  for (const ExprPtr& constraint : rule.constraints) {
    bool satisfied = false;
    try {
      satisfied = is_truthy(eval_expr(*constraint, bindings));
    } catch (const EvalError&) {
      satisfied = false;
    }
    if (satisfied) continue;

    // The expected derivation is blocked by this constraint. Solve for a
    // new value of some variable that is bound by a *changeable* tuple
    // field: mutable base tuples first, then derived tuples (pushing the
    // change down their derivation).
    std::vector<std::string> vars;
    constraint->collect_vars(vars);
    bool repaired = false;
    bool saw_immutable_candidate = false;
    for (int pass = 0; pass < 2 && !repaired; ++pass) {
      for (const std::string& var : vars) {
        // Locate the binding position of `var` in the body.
        std::size_t atom_index = rule.body.size();
        std::size_t arg_index = 0;
        for (std::size_t i = 0;
             i < rule.body.size() && atom_index == rule.body.size(); ++i) {
          for (std::size_t j = 0; j < rule.body[i].args.size(); ++j) {
            if (rule.body[i].args[j].is_var &&
                rule.body[i].args[j].var == var) {
              atom_index = i;
              arg_index = j;
              break;
            }
          }
        }
        if (atom_index == rule.body.size()) continue;  // assigned var
        const TableDecl& decl =
            program_->table(rule.body[atom_index].table);
        const bool is_mutable_base =
            decl.kind == TupleKind::kBase &&
            decl.mutability == Mutability::kMutable;
        if (decl.kind == TupleKind::kBase && !is_mutable_base) {
          saw_immutable_candidate = true;
          continue;
        }
        if (pass == 0 && !is_mutable_base) continue;  // base first
        if (pass == 1 && is_mutable_base) continue;

        const auto solved =
            solve_constraint_for_var(*constraint, bindings, var);
        if (!solved) continue;
        Tuple repaired_child =
            expected_children[atom_index].with_field(arg_index, *solved);
        record_repair(*state.repairs, expected_children[atom_index],
                      repaired_child);
        if (is_mutable_base) {
          add_change(state, repaired_child,
                     "repairs failing constraint " + constraint->to_string(),
                     expected_children[atom_index]);
        } else if (!ensure_child(
                       state,
                       state.good->node(good_derive).children[atom_index],
                       repaired_child, depth + 1)) {
          return false;
        }
        expected_children[atom_index] = std::move(repaired_child);
        bindings[var] = *solved;
        if (!run_assigns()) continue;
        try {
          repaired = is_truthy(eval_expr(*constraint, bindings));
        } catch (const EvalError&) {
          repaired = false;
        }
        if (repaired) break;
      }
    }
    if (!repaired) {
      const std::string attempted =
          "constraint " + constraint->to_string() +
          " cannot be satisfied for the event of interest";
      if (saw_immutable_candidate) {
        return state.fail(DiffProvStatus::kImmutableChange,
                          attempted +
                              " without changing an immutable tuple (e.g. "
                              "the packet itself or a static entry)");
      }
      return state.fail(DiffProvStatus::kNotInvertible,
                        attempted + "; the computation is not invertible");
    }
  }
  return true;
}

bool DiffProv::clear_argmax_blockers(RoundState& state, const Rule& rule,
                                     const std::vector<Tuple>& expected_children,
                                     std::size_t trigger_index,
                                     std::size_t depth) {
  if (!rule.argmax_var) return true;
  // Expected binding's argmax value.
  Bindings expected_bindings;
  for (std::size_t i = 0; i < rule.body.size(); ++i) {
    if (!unify_concrete(rule.body[i], expected_children[i],
                        expected_bindings)) {
      return true;  // inconsistent: earlier steps already flagged it
    }
  }
  auto expected_it = expected_bindings.find(*rule.argmax_var);
  if (expected_it == expected_bindings.end()) return true;
  const Value expected_value = expected_it->second;

  // Enumerate candidate bindings in the bad state (as of t_check), with the
  // trigger fixed to the expected trigger tuple.
  const Tuple& trigger = expected_children[trigger_index];
  const NodeName& node = trigger.location();
  struct Candidate {
    Bindings bindings;
    std::vector<Tuple> body;
  };
  std::vector<Candidate> complete;
  Candidate initial;
  initial.body.resize(rule.body.size());
  if (!unify_concrete(rule.body[trigger_index], trigger, initial.bindings)) {
    return true;
  }
  initial.body[trigger_index] = trigger;
  std::vector<Candidate> frontier = {std::move(initial)};
  for (std::size_t i = 0; i < rule.body.size(); ++i) {
    if (i == trigger_index) continue;
    std::vector<Candidate> next;
    for (const Candidate& candidate : frontier) {
      state.view->scan_table(
          node, rule.body[i].table, state.t_check, [&](const Tuple& tuple) {
            Candidate extended = candidate;
            if (unify_concrete(rule.body[i], tuple, extended.bindings)) {
              extended.body[i] = tuple;
              next.push_back(std::move(extended));
            }
          });
    }
    frontier = std::move(next);
  }
  for (Candidate& candidate : frontier) {
    bool ok = true;
    try {
      for (const Assignment& assign : rule.assigns) {
        candidate.bindings[assign.var] =
            eval_expr(*assign.expr, candidate.bindings);
      }
      for (const ExprPtr& constraint : rule.constraints) {
        if (!is_truthy(eval_expr(*constraint, candidate.bindings))) {
          ok = false;
          break;
        }
      }
    } catch (const EvalError&) {
      ok = false;
    }
    if (ok) complete.push_back(std::move(candidate));
  }

  // Any candidate strictly beating the expected one blocks the expected
  // derivation (flow-table priority): remove the offending tuples.
  for (const Candidate& candidate : complete) {
    auto it = candidate.bindings.find(*rule.argmax_var);
    if (it == candidate.bindings.end()) continue;
    if (!(expected_value < it->second)) continue;
    for (std::size_t i = 0; i < candidate.body.size(); ++i) {
      if (i == trigger_index || candidate.body[i] == expected_children[i]) {
        continue;
      }
      const Tuple& blocker = candidate.body[i];
      // Skip tuples this diagnosis already removes.
      if (state.seen_ops->count(
              DeltaOp{DeltaOp::Kind::kDelete, blocker, state.t_apply}
                  .to_string()) != 0) {
        continue;
      }
      const TableDecl& decl = program_->table(blocker.table());
      if (decl.kind == TupleKind::kBase) {
        if (decl.mutability == Mutability::kImmutable) {
          return state.fail(DiffProvStatus::kImmutableChange,
                            "the higher-priority tuple " +
                                blocker.to_string() +
                                " blocks the expected derivation but is "
                                "immutable");
        }
        add_deletion(state, blocker,
                     "blocks the expected derivation (higher " +
                         *rule.argmax_var + ")");
        continue;
      }
      // Derived blocker: walk its provenance down to a mutable base tuple.
      const auto exist = state.graph->exist_at(blocker, state.t_check);
      if (!exist) {
        return state.fail(DiffProvStatus::kNotInvertible,
                          "blocking tuple " + blocker.to_string() +
                              " has no recorded provenance");
      }
      // BFS to the first mutable base INSERT.
      std::vector<VertexId> queue = {*exist};
      std::optional<Tuple> base_victim;
      for (std::size_t qi = 0; qi < queue.size() && !base_victim; ++qi) {
        const Vertex& v = state.graph->vertex(queue[qi]);
        if (v.kind == VertexKind::kInsert) {
          const TableDecl& base_decl = program_->table(v.tuple().table());
          if (base_decl.kind == TupleKind::kBase &&
              base_decl.mutability == Mutability::kMutable) {
            base_victim = v.tuple();
          }
          continue;
        }
        for (VertexId child : v.children) queue.push_back(child);
      }
      if (!base_victim) {
        return state.fail(DiffProvStatus::kImmutableChange,
                          "blocking tuple " + blocker.to_string() +
                              " derives only from immutable tuples");
      }
      add_deletion(state, *base_victim,
                   "underives " + blocker.to_string() +
                       ", which blocks the expected derivation");
    }
    (void)depth;
  }
  return true;
}

bool DiffProv::make_appear(RoundState& state, ProvTree::NodeIndex good_derive,
                           const Tuple& expected_head, std::size_t depth) {
  if (depth > config_.max_recursion) {
    return state.fail(DiffProvStatus::kExhausted,
                      "recursion limit reached while making tuples appear");
  }
  if (state.changes->size() > config_.max_changes) {
    return state.fail(DiffProvStatus::kExhausted,
                      "change budget exceeded; the reference event is "
                      "probably too dissimilar");
  }
  const ProvTree& good = *state.good;
  const Vertex& derive_vertex = good.vertex_of(good_derive);
  const Rule* rule = program_->find_rule(derive_vertex.rule());
  if (rule == nullptr) {
    return state.fail(DiffProvStatus::kNotInvertible,
                      "rule " + derive_vertex.rule() +
                          " is not part of the program model");
  }
  const auto& children = good.node(good_derive).children;
  if (rule->agg && children.size() != rule->body.size()) {
    // An aggregate's value folds an unbounded contribution chain; DiffProv
    // cannot re-derive it through MakeAppear (the same boundary the paper
    // draws for aggregation provenance in section 4.9). Divergences below
    // the aggregate -- where the scenarios' root causes live -- are handled
    // before the spine ever reaches this vertex.
    return state.fail(DiffProvStatus::kNotInvertible,
                      "cannot re-derive the aggregate " +
                          derive_vertex.tuple().to_string() +
                          " through MakeAppear; pick a reference whose "
                          "divergence lies below the aggregation");
  }
  if (children.size() != rule->body.size()) {
    return state.fail(DiffProvStatus::kNotInvertible,
                      "malformed derivation of " +
                          derive_vertex.tuple().to_string());
  }

  // Default expected children and head from the taint annotations, mapped
  // through the repairs this diagnosis has already committed to.
  std::vector<Tuple> expected_children;
  expected_children.reserve(children.size());
  for (ProvTree::NodeIndex child : children) {
    auto expected = expected_with_repairs(good, *state.ann, child,
                                          state.seed_b, *state.repairs);
    if (!expected) {
      return state.fail(DiffProvStatus::kNotInvertible,
                        "taint formula failed for " +
                            good.vertex_of(child).tuple().to_string());
    }
    expected_children.push_back(std::move(*expected));
  }
  // The *raw* default head (annotations only, repairs not applied): the
  // override comparison must use it, because a previously recorded repair
  // maps the default onto the override itself, which would mask the need to
  // push required values into the children.
  const auto default_head =
      state.ann->expected_tuple(good_derive, state.seed_b);
  if (!default_head) {
    return state.fail(DiffProvStatus::kNotInvertible,
                      "taint formula failed for head " +
                          derive_vertex.tuple().to_string());
  }

  // If the caller needs a head different from the taint default (downward
  // override), invert the head expressions to required variable values and
  // push them into the expected children (paper section 4.5).
  if (!(expected_head == *default_head)) {
    Bindings default_bindings;
    for (std::size_t i = 0; i < rule->body.size(); ++i) {
      unify_concrete(rule->body[i], expected_children[i], default_bindings);
    }
    const FormulaEnv env = const_env_from(default_bindings);
    std::map<std::string, Value> required;
    for (std::size_t i = 0; i < rule->head.args.size(); ++i) {
      if (expected_head.at(i) == default_head->at(i)) continue;
      const Expr& e = *rule->head.args[i];
      std::vector<std::string> vars;
      e.collect_vars(vars);
      bool solved_field = false;
      for (const std::string& var : vars) {
        auto inv = invert_expr_for_var(
            e, var, Formula::make_const(expected_head.at(i)), env);
        if (!inv) continue;
        try {
          required[var] = (*inv)->eval({});
          solved_field = true;
          break;
        } catch (const EvalError&) {
        }
      }
      if (!solved_field) {
        return state.fail(
            DiffProvStatus::kNotInvertible,
            "cannot invert head computation " + e.to_string() +
                " to make " + expected_head.to_string() +
                " appear; attempted change stops here (diagnostic clue)");
      }
    }
    for (std::size_t i = 0; i < rule->body.size(); ++i) {
      bool adjusted = false;
      const Tuple before = expected_children[i];
      for (std::size_t j = 0; j < rule->body[i].args.size(); ++j) {
        const AtomArg& arg = rule->body[i].args[j];
        if (!arg.is_var) continue;
        auto it = required.find(arg.var);
        if (it != required.end()) {
          expected_children[i] =
              expected_children[i].with_field(j, it->second);
          adjusted = true;
        }
      }
      if (adjusted) {
        record_repair(*state.repairs, before, expected_children[i]);
      }
    }
    record_repair(*state.repairs, *default_head, expected_head);
  }

  // Constraint repair may further adjust expected children; do it before
  // ensuring existence so we do not insert a tuple we then revise.
  if (!repair_constraints(state, *rule, good_derive, expected_children,
                          depth)) {
    return false;
  }

  // Make every missing child appear.
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (!ensure_child(state, children[i], expected_children[i], depth + 1)) {
      return false;
    }
  }

  // Finally, nothing may out-prioritize the expected derivation.
  const std::size_t trigger_index =
      derive_vertex.trigger_index >= 0 &&
              static_cast<std::size_t>(derive_vertex.trigger_index) <
                  children.size()
          ? static_cast<std::size_t>(derive_vertex.trigger_index)
          : 0;
  return clear_argmax_blockers(state, *rule, expected_children, trigger_index,
                               depth);
}

DiffProvResult DiffProv::diagnose(const ProvTree& good_tree,
                                  const Tuple& bad_event,
                                  std::optional<BadRun> initial_run) {
  DiffProvResult result;
  DiagnoseScope diagnose_scope(result);
  result.good_tree_size = good_tree.size();

  // Initial bad execution ("query out the bad tree"), unless the caller
  // already replayed it (batched with the good-tree query, section 6.6).
  auto replay_start = Clock::now();
  BadRun bad_run;
  if (initial_run) {
    bad_run = std::move(*initial_run);
  } else {
    obs::Span replay_span(obs::default_tracer(), "dp.diffprov.replay",
                          "diffprov");
    bad_run = provider_->replay_bad({});
    result.timing.replay_us += elapsed_us(replay_start);
    ++result.timing.replays;
  }

  auto bad_tree_opt = locate_tree(*bad_run.graph, bad_event);
  if (!bad_tree_opt) {
    result.status = DiffProvStatus::kBadEventNotFound;
    result.message =
        "the event of interest " + bad_event.to_string() +
        " does not appear in the (replayed) execution";
    return result;
  }
  ProvTree bad_tree = std::move(*bad_tree_opt);
  result.bad_tree_size = bad_tree.size();

  // Seeds (section 4.2) and comparability (section 4.3).
  auto seed_start = Clock::now();
  obs::Span seed_span(obs::default_tracer(), "dp.diffprov.find_seed",
                      "diffprov");
  const auto good_seed = find_seed(good_tree);
  auto bad_seed = find_seed(bad_tree);
  seed_span.end();
  result.timing.find_seed_us += elapsed_us(seed_start);
  if (!good_seed || !bad_seed) {
    result.status = DiffProvStatus::kSeedTypeMismatch;
    result.message = "could not identify a seed in one of the trees";
    return result;
  }
  if (good_seed->tuple.table() != bad_seed->tuple.table()) {
    result.status = DiffProvStatus::kSeedTypeMismatch;
    result.message = "seeds have different types: reference sprang from " +
                     good_seed->tuple.to_string() +
                     " but the event of interest sprang from " +
                     bad_seed->tuple.to_string() +
                     "; the two are not comparable";
    return result;
  }

  result.bad_seed = bad_seed->tuple;
  result.bad_seed_time = bad_seed->time;

  // Taint annotation of the good tree (section 4.3).
  auto annotate_start = Clock::now();
  obs::Span annotate_span(obs::default_tracer(), "dp.diffprov.annotate",
                          "diffprov");
  const TreeAnnotations annotations =
      TreeAnnotations::annotate(good_tree, *program_, *good_seed);
  annotate_span.end();
  result.timing.annotate_us += elapsed_us(annotate_start);

  Delta delta;
  std::set<std::string> seen_ops;
  RepairMap repairs;
  // "Shortly before first needed" (section 4.8): changes start out applied
  // just before the bad seed; if alignment stalls because the good
  // counterpart was needed *earlier* (e.g. an aggregate's contribution
  // chain reaches back before the seed), the ops are re-applied from the
  // earliest time the good tree used anything, once.
  bool retried_early_apply = false;
  // Earliest DERIVE in the good tree consuming `tuple` -- the moment its
  // counterpart must exist by.
  const auto earliest_use_in_good = [&good_tree](const Tuple& tuple) {
    LogicalTime best = kTimeInfinity;
    good_tree.visit([&](ProvTree::NodeIndex i) {
      const Vertex& v = good_tree.vertex_of(i);
      if (v.kind != VertexKind::kDerive || v.time >= best) return;
      for (const ProvTree::NodeIndex child : good_tree.node(i).children) {
        if (good_tree.vertex_of(child).tuple() == tuple) {
          best = v.time;
          return;
        }
      }
    });
    return best;
  };

  for (int round = 1; round <= config_.max_rounds; ++round) {
    RoundState state;
    state.good = &good_tree;
    state.ann = &annotations;
    state.seed_b = bad_seed->tuple.values();
    state.t_check = bad_seed->time;
    state.t_apply = bad_seed->time - 1;
    state.view = bad_run.state.get();
    state.graph = bad_run.graph.get();
    state.delta = &delta;
    state.changes = &result.changes;
    state.seen_ops = &seen_ops;
    state.repairs = &repairs;

    // First divergence along the spines (section 4.4).
    auto divergence_start = Clock::now();
    obs::Span diff_span(obs::default_tracer(), "dp.diffprov.tree_diff",
                        "diffprov");
    const auto good_spine = spine_of(good_tree, *good_seed);
    const auto bad_spine = spine_of(bad_tree, *bad_seed);
    std::size_t divergence = good_spine.size();
    bool found_divergence = false;
    for (std::size_t i = 0; i < good_spine.size(); ++i) {
      const auto expected = expected_with_repairs(
          good_tree, annotations, good_spine[i], state.seed_b, repairs);
      if (!expected) {
        divergence = i;
        found_divergence = true;
        break;
      }
      if (i >= bad_spine.size()) {
        divergence = i;
        found_divergence = true;
        break;
      }
      const Vertex& bad_vertex = bad_tree.vertex_of(bad_spine[i]);
      if (!(*expected == bad_vertex.tuple()) ||
          good_tree.vertex_of(good_spine[i]).rule() != bad_vertex.rule()) {
        divergence = i;
        found_divergence = true;
        break;
      }
    }
    EquivalenceReport equiv;
    if (!found_divergence) {
      obs::Span equiv_span(obs::default_tracer(), "dp.diffprov.equivalence",
                           "diffprov");
      equiv = trees_equivalent(good_tree, annotations, state.seed_b,
                               repairs, bad_tree);
    }
    diff_span.end();
    result.timing.divergence_us += elapsed_us(divergence_start);

    if (!found_divergence && equiv.equivalent) {
      result.status = DiffProvStatus::kSuccess;
      result.rounds = round - 1;
      result.repairs = repairs;
      result.delta = std::move(delta);
      return result;
    }

    // Make the missing tuples appear (section 4.5). When the spines agree
    // but the trees still differ, sweep the whole spine: sibling subtrees
    // are revisited through each derivation's children.
    auto make_start = Clock::now();
    obs::Span rollback_span(obs::default_tracer(), "dp.diffprov.rollback",
                            "diffprov");
    bool ok = true;
    if (found_divergence && divergence < good_spine.size()) {
      const auto expected =
          expected_with_repairs(good_tree, annotations,
                                good_spine[divergence], state.seed_b,
                                repairs);
      ok = expected.has_value() &&
           make_appear(state, good_spine[divergence], *expected, 0);
      if (!expected) {
        state.fail(DiffProvStatus::kNotInvertible,
                   "taint formulas failed at divergence level " +
                       std::to_string(divergence) + " (good vertex: " +
                       good_tree.vertex_of(good_spine[divergence]).label() +
                       ")");
      }
    } else {
      for (const ProvTree::NodeIndex derive : good_spine) {
        const auto expected = expected_with_repairs(
            good_tree, annotations, derive, state.seed_b, repairs);
        if (!expected || !make_appear(state, derive, *expected, 0)) {
          ok = false;
          break;
        }
        if (state.round_new_ops > 0) break;  // one repair per round
      }
    }
    rollback_span.end();
    result.timing.make_appear_us += elapsed_us(make_start);

    if (!ok && state.fail_status != DiffProvStatus::kSuccess) {
      result.status = state.fail_status;
      result.message = state.fail_message;
      result.rounds = round;
      result.repairs = repairs;
      result.delta = std::move(delta);
      return result;
    }
    if (state.round_new_ops == 0) {
      if (!retried_early_apply && !delta.empty()) {
        // The changes themselves look right but arrived too late on the bad
        // timeline (e.g. an aggregate's contribution chain reaches back
        // before the seed): re-apply each operation just before the moment
        // the reference execution first relied on its counterpart. Deletes
        // ride along with the insert that replaces them.
        retried_early_apply = true;
        LogicalTime pending = bad_seed->time - 1;
        for (auto it = delta.rbegin(); it != delta.rend(); ++it) {
          if (it->kind == DeltaOp::Kind::kInsert) {
            // The counterpart is the default-expected tuple this op's value
            // repairs (identity when no repair was involved).
            Tuple counterpart = it->tuple;
            for (const auto& [raw, repaired] : repairs) {
              if (repaired == it->tuple) {
                counterpart = raw;
                break;
              }
            }
            const LogicalTime use = earliest_use_in_good(counterpart);
            pending = use == kTimeInfinity
                          ? bad_seed->time - 1
                          : std::max<LogicalTime>(0, use - 1);
            pending = std::min(pending, bad_seed->time - 1);
          }
          it->at = pending;
        }
      } else {
        result.status = DiffProvStatus::kNoProgress;
        result.message =
            "no tuple change can advance the alignment (the trees differ in "
            "a way replay cannot reproduce -- possibly a race, section "
            "4.9); " +
            (equiv.mismatch.empty()
                 ? std::string("divergence at spine level ") +
                       std::to_string(divergence)
                 : equiv.mismatch);
        result.rounds = round;
        result.repairs = repairs;
        result.delta = std::move(delta);
        return result;
      }
    } else {
      result.changes_per_round.push_back(state.round_new_ops);
    }
    result.rounds = round;

    // UpdateTree: clone-and-roll-forward by deterministic replay
    // (section 4.6).
    replay_start = Clock::now();
    {
      obs::Span replay_span(obs::default_tracer(), "dp.diffprov.replay",
                            "diffprov");
      bad_run = provider_->replay_bad(delta);
    }
    result.timing.replay_us += elapsed_us(replay_start);
    ++result.timing.replays;

    // Re-root the bad tree: prefer the tuple equivalent to the good root;
    // otherwise follow the trigger chain up from the (preserved) seed.
    const auto expected_root = expected_with_repairs(
        good_tree, annotations, good_tree.root(), state.seed_b, repairs);
    std::optional<ProvTree> new_tree;
    if (expected_root) {
      new_tree = locate_tree(*bad_run.graph, *expected_root);
    }
    if (!new_tree) {
      const ProvenanceGraph& graph = *bad_run.graph;
      auto current = graph.latest_exist_before(bad_seed->tuple,
                                               kTimeInfinity);
      while (current) {
        const auto derivations = graph.derivations_triggered_by(*current);
        if (derivations.empty()) break;
        const VertexId last = derivations.back();
        const Vertex& dv = graph.vertex(last);
        const auto head_exist = graph.latest_exist_before(dv.tuple(), dv.time);
        if (!head_exist) break;
        current = head_exist;
      }
      if (current) new_tree = ProvTree::project(graph, *current);
    }
    if (!new_tree) {
      result.status = DiffProvStatus::kNoProgress;
      result.message = "the seed no longer triggers any derivation after "
                       "applying the changes";
      result.repairs = repairs;
      result.delta = std::move(delta);
      return result;
    }
    bad_tree = std::move(*new_tree);
    bad_seed = find_seed(bad_tree);
    if (!bad_seed) {
      result.status = DiffProvStatus::kNoProgress;
      result.message = "lost the seed while updating the bad tree";
      result.repairs = repairs;
      result.delta = std::move(delta);
      return result;
    }
    result.bad_seed = bad_seed->tuple;
    result.bad_seed_time = bad_seed->time;
  }

  result.status = DiffProvStatus::kExhausted;
  result.message = "round budget exhausted before the trees became "
                   "equivalent";
  result.repairs = repairs;
  result.delta = std::move(delta);
  return result;
}

bool DiffProv::delta_aligns(const ProvTree& good_tree, const Delta& delta,
                            const RepairMap& repairs, const Tuple& bad_seed) {
  const auto good_seed = find_seed(good_tree);
  if (!good_seed) return false;
  const TreeAnnotations annotations =
      TreeAnnotations::annotate(good_tree, *program_, *good_seed);
  const std::vector<Value>& seed_b = bad_seed.values();

  const BadRun run = provider_->replay_bad(delta);
  const auto expected_root = expected_with_repairs(
      good_tree, annotations, good_tree.root(), seed_b, repairs);
  if (!expected_root) return false;
  const auto tree = locate_tree(*run.graph, *expected_root);
  if (!tree) return false;
  return trees_equivalent(good_tree, annotations, seed_b, repairs, *tree)
      .equivalent;
}

DiffProvResult DiffProv::minimize_delta(const ProvTree& good_tree,
                                        const DiffProvResult& result) {
  if (!result.ok() || !result.bad_seed || result.changes.size() <= 1) {
    return result;  // nothing to minimize
  }
  // Greedily try dropping each change (latest first: later rounds repair
  // consequences of earlier ones, so later changes are more likely
  // redundant once... in practice either may be).
  std::vector<bool> kept(result.changes.size(), true);
  auto build_delta = [&](const std::vector<bool>& mask) {
    Delta delta;
    std::set<std::size_t> dropped_ops;
    for (std::size_t c = 0; c < mask.size(); ++c) {
      if (mask[c]) continue;
      for (std::size_t op : result.changes[c].op_indices) {
        dropped_ops.insert(op);
      }
    }
    for (std::size_t i = 0; i < result.delta.size(); ++i) {
      if (dropped_ops.count(i) == 0) delta.push_back(result.delta[i]);
    }
    return delta;
  };
  for (std::size_t c = result.changes.size(); c-- > 0;) {
    std::vector<bool> trial = kept;
    trial[c] = false;
    if (delta_aligns(good_tree, build_delta(trial), result.repairs,
                     *result.bad_seed)) {
      kept = std::move(trial);
    }
  }

  DiffProvResult minimized = result;
  minimized.delta = build_delta(kept);
  minimized.changes.clear();
  for (std::size_t c = 0; c < kept.size(); ++c) {
    if (kept[c]) minimized.changes.push_back(result.changes[c]);
  }
  if (minimized.changes.size() != result.changes.size()) {
    minimized.message = "minimized from " +
                        std::to_string(result.changes.size()) + " to " +
                        std::to_string(minimized.changes.size()) +
                        " change(s)";
    // Op indices are stale after rebuilding the delta; clear them.
    for (ChangeRecord& change : minimized.changes) {
      change.op_indices.clear();
    }
  }
  return minimized;
}

}  // namespace dp
