// The DiffProv algorithm (paper section 4, Figure 3).
//
// Given the provenance tree of a "good" reference event and a "bad" event of
// interest, DiffProv computes Δ_{B→G}: a set of changes to *mutable base
// tuples* that transforms the bad tree into one equivalent to the good tree
// while preserving both seeds (Definition 1). Operationally, each round:
//
//   1. finds the seeds of both trees (section 4.2) and checks type
//      compatibility (section 4.3);
//   2. annotates the good tree with taint formulas (sections 4.3-4.4);
//   3. walks the two spines upward to the first divergence (section 4.4);
//   4. "makes the missing tuples appear" guided by the good tree: missing
//      mutable base tuples are added to Δ; missing derived tuples recurse
//      into their good-tree derivations; failing constraints are repaired by
//      solving for a mutable field (inverting builtins/arithmetic, section
//      4.5); tuples that win an argmax (flow-table priority) over the
//      expected derivation are removed as *blocking* tuples;
//   5. re-executes the bad run via deterministic replay with Δ injected
//      "shortly before needed" -- the clone-and-roll-forward of section 4.6
//      -- and re-projects the bad tree;
//
// until the trees are equivalent (success), a change would touch an
// immutable tuple or a non-invertible computation (failure, with the
// attempted change reported; section 4.7), or the round budget is exhausted.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "diffprov/annotate.h"
#include "diffprov/equivalence.h"
#include "diffprov/seed.h"
#include "replay/replay_engine.h"

namespace dp {

/// Read access to the (replayed) bad execution's state, independent of how
/// that execution runs: the NDlog engine (recorder modes "infer"/"report"),
/// or a black-box simulator interpreted through an external specification
/// (mode 3, paper section 6.7).
class StateView {
 public:
  virtual ~StateView() = default;
  /// True if `tuple` existed at logical time `at`.
  [[nodiscard]] virtual bool existed_at(const Tuple& tuple,
                                        LogicalTime at) const = 0;
  /// Iterates the tuples of `table` on `node` alive at `at`.
  virtual void scan_table(
      const NodeName& node, const std::string& table, LogicalTime at,
      const std::function<void(const Tuple&)>& fn) const = 0;
};

/// StateView over a live NDlog engine.
class EngineStateView final : public StateView {
 public:
  explicit EngineStateView(std::shared_ptr<const Engine> engine)
      : engine_(std::move(engine)) {}

  [[nodiscard]] bool existed_at(const Tuple& tuple,
                                LogicalTime at) const override {
    return engine_->existed_at(tuple, at);
  }
  void scan_table(
      const NodeName& node, const std::string& table, LogicalTime at,
      const std::function<void(const Tuple&)>& fn) const override {
    const Table* t = engine_->find_table(node, table);
    if (t != nullptr) t->for_each_at(at, fn);
  }

 private:
  std::shared_ptr<const Engine> engine_;
};

/// One (re-)execution of the bad run: its provenance plus queryable state.
struct BadRun {
  std::shared_ptr<const ProvenanceGraph> graph;
  std::shared_ptr<const StateView> state;
};

/// Abstracts "re-execute the bad run with these changes". The declarative
/// provider replays an NDlog event log; the imperative MapReduce substrate
/// re-runs the instrumented job; the external-spec SDN substrate re-runs a
/// black-box forwarding simulator.
class ReplayProvider {
 public:
  virtual ~ReplayProvider() = default;
  virtual BadRun replay_bad(const Delta& delta) = 0;
};

/// Replays a recorded NDlog execution (the common case).
class LogReplayProvider final : public ReplayProvider {
 public:
  LogReplayProvider(const Program& program, Topology topology, EventLog log,
                    ReplayOptions options = {})
      : program_(&program),
        topology_(std::move(topology)),
        log_(std::move(log)),
        options_(std::move(options)) {}

  BadRun replay_bad(const Delta& delta) override {
    ReplayResult result = replay(*program_, topology_, log_, delta, options_);
    BadRun run;
    std::shared_ptr<Engine> engine = std::move(result.engine);
    std::shared_ptr<ProvenanceRecorder> recorder = std::move(result.recorder);
    run.graph = std::shared_ptr<const ProvenanceGraph>(recorder,
                                                       &recorder->graph());
    run.state = std::make_shared<EngineStateView>(engine);
    return run;
  }

 private:
  const Program* program_;
  Topology topology_;
  EventLog log_;
  ReplayOptions options_;
};

enum class DiffProvStatus : std::uint8_t {
  kSuccess,
  kSeedTypeMismatch,   // seeds of different tables: trees not comparable
  kImmutableChange,    // alignment needs a change to an immutable tuple
  kNotInvertible,      // a computation could not be inverted (e.g. a hash)
  kBadEventNotFound,   // the queried bad event never happened in the replay
  kNoProgress,         // a round produced no new changes (possible race)
  kExhausted,          // round budget exceeded
};

std::string_view diffprov_status_name(DiffProvStatus status);

/// One human-level change: "tuple B became tuple A" / pure insert / delete.
/// Table 1's "DiffProv" row counts these records.
struct ChangeRecord {
  std::optional<Tuple> before;
  std::optional<Tuple> after;
  std::string note;
  /// Indices of this change's raw operations within DiffProvResult::delta
  /// (used by minimize_delta to drop a change as a unit).
  std::vector<std::size_t> op_indices;

  [[nodiscard]] std::string to_string() const;
};

/// Wall-clock decomposition of the reasoning (Figure 8) plus replay costs
/// (Figure 7).
struct DiffProvTiming {
  double find_seed_us = 0;
  double annotate_us = 0;
  double divergence_us = 0;   // spine walks + equivalence checks
  double make_appear_us = 0;  // includes constraint solving
  double replay_us = 0;       // UpdateTree replays (not reasoning)
  int replays = 0;

  [[nodiscard]] double reasoning_us() const {
    return find_seed_us + annotate_us + divergence_us + make_appear_us;
  }
};

struct DiffProvResult {
  DiffProvStatus status = DiffProvStatus::kExhausted;
  Delta delta;                        // raw Δ_{B→G} operations
  std::vector<ChangeRecord> changes;  // human-level root cause estimate
  std::vector<std::size_t> changes_per_round;
  int rounds = 0;
  std::string message;  // failure diagnostics, incl. the attempted change
  DiffProvTiming timing;

  std::size_t good_tree_size = 0;
  std::size_t bad_tree_size = 0;  // initial bad tree

  /// The equivalence-by-construction map for the applied repairs and the
  /// bad tree's seed; carried so post-passes (minimize_delta) can re-verify
  /// alignment without re-deriving them.
  RepairMap repairs;
  std::optional<Tuple> bad_seed;
  LogicalTime bad_seed_time = 0;

  [[nodiscard]] bool ok() const { return status == DiffProvStatus::kSuccess; }
  [[nodiscard]] std::string to_string() const;
};

struct DiffProvConfig {
  int max_rounds = 8;
  std::size_t max_changes = 32;
  std::size_t max_recursion = 64;
};

class DiffProv {
 public:
  DiffProv(const Program& program, ReplayProvider& provider,
           DiffProvConfig config = {})
      : program_(&program), provider_(&provider), config_(config) {}

  /// Diagnoses why `bad_event` happened instead of the reference behaviour
  /// captured by `good_tree`. The bad execution is obtained from the replay
  /// provider; `good_tree` typically comes from a separate provenance query
  /// (possibly over a different log, e.g. an earlier MapReduce job).
  /// `initial_run` optionally supplies an already-replayed bad execution --
  /// the paper batches the good- and bad-tree replays in parallel (section
  /// 6.6), and this lets a caller do the same.
  DiffProvResult diagnose(const ProvTree& good_tree, const Tuple& bad_event,
                          std::optional<BadRun> initial_run = std::nullopt);

  /// Greedy post-pass addressing the paper's minimality limitation
  /// (section 4.9: "the set of changes returned by DiffProv is not
  /// necessarily the smallest"): tries dropping each change and keeps only
  /// those whose removal breaks the alignment. Each trial costs one replay.
  DiffProvResult minimize_delta(const ProvTree& good_tree,
                                const DiffProvResult& result);

  /// True if `delta` alone aligns the bad execution with `good_tree` (one
  /// replay + equivalence check); used by minimize_delta and exposed for
  /// tooling.
  bool delta_aligns(const ProvTree& good_tree, const Delta& delta,
                    const RepairMap& repairs, const Tuple& bad_seed);

 private:
  struct RoundState;

  bool make_appear(RoundState& state, ProvTree::NodeIndex good_derive,
                   const Tuple& expected_head, std::size_t depth);
  bool ensure_child(RoundState& state, ProvTree::NodeIndex good_child,
                    const Tuple& expected, std::size_t depth);
  bool repair_constraints(RoundState& state, const Rule& rule,
                          ProvTree::NodeIndex good_derive,
                          std::vector<Tuple>& expected_children,
                          std::size_t depth);
  bool clear_argmax_blockers(RoundState& state, const Rule& rule,
                             const std::vector<Tuple>& expected_children,
                             std::size_t trigger_index, std::size_t depth);
  void add_change(RoundState& state, const Tuple& new_tuple,
                  const std::string& note,
                  std::optional<Tuple> explicit_before = std::nullopt);
  void add_deletion(RoundState& state, const Tuple& victim,
                    const std::string& note);

  const Program* program_;
  ReplayProvider* provider_;
  DiffProvConfig config_;
};

/// Convenience: locate the provenance tree of `event` in `graph` (its latest
/// EXIST) and project it. Returns nullopt if the event never existed.
std::optional<ProvTree> locate_tree(const ProvenanceGraph& graph,
                                    const Tuple& event);

}  // namespace dp
