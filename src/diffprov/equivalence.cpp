#include "diffprov/equivalence.h"

namespace dp {

std::optional<Tuple> expected_with_repairs(
    const ProvTree& good, const TreeAnnotations& annotations,
    ProvTree::NodeIndex node, const std::vector<Value>& seed_b_fields,
    const RepairMap& repairs) {
  (void)good;
  auto expected = annotations.expected_tuple(node, seed_b_fields);
  if (!expected) return std::nullopt;
  auto it = repairs.find(*expected);
  if (it != repairs.end()) return it->second;
  return expected;
}

namespace {

struct Comparator {
  const ProvTree& good;
  const TreeAnnotations& annotations;
  const std::vector<Value>& seed_b;
  const RepairMap& repairs;
  const ProvTree& bad;
  std::string mismatch;

  bool fail(ProvTree::NodeIndex g, const std::string& why) {
    if (mismatch.empty()) {
      mismatch = why + " (at good vertex: " +
                 good.vertex_of(g).label() + ")";
    }
    return false;
  }

  bool compare(ProvTree::NodeIndex g, ProvTree::NodeIndex b) {
    const Vertex& gv = good.vertex_of(g);
    const Vertex& bv = bad.vertex_of(b);
    if (gv.kind != bv.kind) {
      return fail(g, std::string("vertex kind mismatch: ") +
                         std::string(vertex_kind_name(gv.kind)) + " vs " +
                         std::string(vertex_kind_name(bv.kind)));
    }
    const auto expected =
        expected_with_repairs(good, annotations, g, seed_b, repairs);
    if (!expected) {
      return fail(g, "taint formula failed to evaluate");
    }
    if (!(*expected == bv.tuple())) {
      return fail(g, "tuple mismatch: expected " + expected->to_string() +
                         ", found " + bv.tuple().to_string());
    }
    if (gv.kind == VertexKind::kDerive && gv.rule() != bv.rule()) {
      return fail(g, "rule mismatch: " + gv.rule() + " vs " + bv.rule());
    }
    const auto& g_children = good.node(g).children;
    const auto& b_children = bad.node(b).children;
    // APPEAR vertices can accumulate alternative derivations (multi-support;
    // e.g. the same tuple re-derived by the repaired replay). Only the
    // primary derivation -- the one that made the tuple appear -- defines
    // the tree being compared.
    if (gv.kind == VertexKind::kAppear) {
      if (g_children.empty() != b_children.empty()) {
        return fail(g, "one APPEAR has a cause, the other does not");
      }
      if (g_children.empty()) return true;
      return compare(g_children[0], b_children[0]);
    }
    if (g_children.size() != b_children.size()) {
      return fail(g, "child count mismatch: " +
                         std::to_string(g_children.size()) + " vs " +
                         std::to_string(b_children.size()));
    }
    for (std::size_t i = 0; i < g_children.size(); ++i) {
      if (!compare(g_children[i], b_children[i])) return false;
    }
    return true;
  }
};

}  // namespace

EquivalenceReport trees_equivalent(const ProvTree& good,
                                   const TreeAnnotations& annotations,
                                   const std::vector<Value>& seed_b_fields,
                                   const RepairMap& repairs,
                                   const ProvTree& bad) {
  Comparator comparator{good, annotations, seed_b_fields, repairs, bad, {}};
  EquivalenceReport report;
  report.equivalent = comparator.compare(good.root(), bad.root());
  report.mismatch = std::move(comparator.mismatch);
  return report;
}

}  // namespace dp
