// Tree equivalence under the taint-based equivalence relation (paper
// Refinement #3, section 3.3).
//
// Two trees are equivalent when they have the same shape of positive
// vertices, the same rules at every DERIVE, and every bad-tree tuple equals
// the good-tree tuple's *expected* translation (tainted fields evaluated on
// the bad seed, untainted fields verbatim). Timestamps are deliberately
// ignored: they are exactly the irrelevant detail a naive comparison trips
// over (section 2.5).
#pragma once

#include <string>

#include "diffprov/annotate.h"
#include "provenance/tree.h"

namespace dp {

struct EquivalenceReport {
  bool equivalent = false;
  /// First mismatching pair, for diagnostics ("expected X, found Y").
  std::string mismatch;
};

/// Maps default expected tuples to the versions DiffProv's Δ produced. A
/// repaired tuple (e.g. a flow entry whose prefix was widened) is equivalent
/// to its good-tree counterpart *by construction*: Δ is precisely the set of
/// differences being reported.
using RepairMap = std::map<Tuple, Tuple>;

/// The expected-in-T_B translation of the good-tree node, with repairs
/// applied. nullopt if a taint formula fails to evaluate.
std::optional<Tuple> expected_with_repairs(
    const ProvTree& good, const TreeAnnotations& annotations,
    ProvTree::NodeIndex node, const std::vector<Value>& seed_b_fields,
    const RepairMap& repairs);

EquivalenceReport trees_equivalent(const ProvTree& good,
                                   const TreeAnnotations& annotations,
                                   const std::vector<Value>& seed_b_fields,
                                   const RepairMap& repairs,
                                   const ProvTree& bad);

}  // namespace dp
