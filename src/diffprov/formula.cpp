#include "diffprov/formula.h"

#include "ndlog/eval.h"
#include "ndlog/functions.h"

namespace dp {

FormulaPtr Formula::make_const(Value v) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kConst;
  f->constant = std::move(v);
  return f;
}

FormulaPtr Formula::make_seed_field(std::size_t index) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kSeedField;
  f->seed_field = index;
  return f;
}

FormulaPtr Formula::make_binary(BinOp op, FormulaPtr lhs, FormulaPtr rhs) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kBinary;
  f->op = op;
  f->children = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr Formula::make_call(std::string fn, std::vector<FormulaPtr> args) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kCall;
  f->fn = std::move(fn);
  f->children = std::move(args);
  return f;
}

FormulaPtr Formula::make_neg(FormulaPtr inner) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kNeg;
  f->children = {std::move(inner)};
  return f;
}

FormulaPtr Formula::make_not(FormulaPtr inner) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kNot;
  f->children = {std::move(inner)};
  return f;
}

Value Formula::eval(const std::vector<Value>& seed_fields) const {
  switch (kind) {
    case Kind::kConst:
      return constant;
    case Kind::kSeedField:
      if (seed_field >= seed_fields.size()) {
        throw EvalError("formula references seed field #" +
                        std::to_string(seed_field) + " beyond seed arity");
      }
      return seed_fields[seed_field];
    case Kind::kBinary:
      return eval_binop(op, children[0]->eval(seed_fields),
                        children[1]->eval(seed_fields));
    case Kind::kCall: {
      std::vector<Value> args;
      args.reserve(children.size());
      for (const FormulaPtr& child : children) {
        args.push_back(child->eval(seed_fields));
      }
      return FunctionRegistry::instance().call(fn, args);
    }
    case Kind::kNeg: {
      const Value v = children[0]->eval(seed_fields);
      if (v.is_int()) return -v.as_int();
      if (v.is_double()) return -v.as_double();
      throw EvalError("formula negation of non-number");
    }
    case Kind::kNot:
      return std::int64_t{!is_truthy(children[0]->eval(seed_fields))};
  }
  throw EvalError("corrupt formula");
}

bool Formula::tainted() const {
  if (kind == Kind::kSeedField) return true;
  for (const FormulaPtr& child : children) {
    if (child->tainted()) return true;
  }
  return false;
}

std::string Formula::to_string() const {
  switch (kind) {
    case Kind::kConst:
      return constant.to_string();
    case Kind::kSeedField:
      return "Seed#" + std::to_string(seed_field);
    case Kind::kBinary:
      return "(" + children[0]->to_string() + " " +
             std::string(binop_name(op)) + " " + children[1]->to_string() +
             ")";
    case Kind::kCall: {
      std::string out = fn + "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->to_string();
      }
      return out + ")";
    }
    case Kind::kNeg:
      return "-" + children[0]->to_string();
    case Kind::kNot:
      return "!" + children[0]->to_string();
  }
  return "?";
}

std::optional<FormulaPtr> formula_from_expr(const Expr& expr,
                                            const FormulaEnv& env) {
  switch (expr.kind) {
    case Expr::Kind::kConst:
      return Formula::make_const(expr.constant);
    case Expr::Kind::kVar: {
      auto it = env.find(expr.var);
      if (it == env.end()) return std::nullopt;
      return it->second;
    }
    case Expr::Kind::kBinary: {
      auto lhs = formula_from_expr(*expr.children[0], env);
      auto rhs = formula_from_expr(*expr.children[1], env);
      if (!lhs || !rhs) return std::nullopt;
      return Formula::make_binary(expr.op, std::move(*lhs), std::move(*rhs));
    }
    case Expr::Kind::kCall: {
      std::vector<FormulaPtr> args;
      args.reserve(expr.children.size());
      for (const ExprPtr& child : expr.children) {
        auto arg = formula_from_expr(*child, env);
        if (!arg) return std::nullopt;
        args.push_back(std::move(*arg));
      }
      return Formula::make_call(expr.fn, std::move(args));
    }
    case Expr::Kind::kNeg: {
      auto inner = formula_from_expr(*expr.children[0], env);
      if (!inner) return std::nullopt;
      return Formula::make_neg(std::move(*inner));
    }
    case Expr::Kind::kNot: {
      auto inner = formula_from_expr(*expr.children[0], env);
      if (!inner) return std::nullopt;
      return Formula::make_not(std::move(*inner));
    }
  }
  return std::nullopt;
}

std::optional<std::vector<Value>> TupleFormulas::eval_expected(
    const std::vector<Value>& seed_fields,
    const std::vector<Value>& actual) const {
  std::vector<Value> out;
  out.reserve(actual.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const FormulaPtr& f = i < fields.size() ? fields[i] : nullptr;
    if (!f) {
      out.push_back(actual[i]);
      continue;
    }
    try {
      out.push_back(f->eval(seed_fields));
    } catch (const EvalError&) {
      return std::nullopt;
    }
  }
  return out;
}

namespace {

/// True if `var` occurs anywhere in `expr`.
bool mentions(const Expr& expr, const std::string& var) {
  if (expr.kind == Expr::Kind::kVar) return expr.var == var;
  for (const ExprPtr& child : expr.children) {
    if (mentions(*child, var)) return true;
  }
  return false;
}

}  // namespace

std::optional<FormulaPtr> invert_expr_for_var(const Expr& expr,
                                              const std::string& var,
                                              FormulaPtr target,
                                              const FormulaEnv& env) {
  switch (expr.kind) {
    case Expr::Kind::kVar:
      if (expr.var == var) return target;
      return std::nullopt;
    case Expr::Kind::kConst:
      return std::nullopt;
    case Expr::Kind::kNeg:
      return invert_expr_for_var(*expr.children[0], var,
                                 Formula::make_neg(std::move(target)), env);
    case Expr::Kind::kNot:
      return std::nullopt;  // not injective
    case Expr::Kind::kBinary: {
      const bool in_lhs = mentions(*expr.children[0], var);
      const bool in_rhs = mentions(*expr.children[1], var);
      if (in_lhs == in_rhs) return std::nullopt;  // absent or both sides
      const Expr& unknown = in_lhs ? *expr.children[0] : *expr.children[1];
      const Expr& known_expr = in_lhs ? *expr.children[1] : *expr.children[0];
      auto known = formula_from_expr(known_expr, env);
      if (!known) return std::nullopt;
      FormulaPtr new_target;
      switch (expr.op) {
        case BinOp::kAdd:  // t = u + k  =>  u = t - k
          new_target = Formula::make_binary(BinOp::kSub, target, *known);
          break;
        case BinOp::kSub:
          new_target = in_lhs
                           // t = u - k  =>  u = t + k
                           ? Formula::make_binary(BinOp::kAdd, target, *known)
                           // t = k - u  =>  u = k - t
                           : Formula::make_binary(BinOp::kSub, *known, target);
          break;
        case BinOp::kMul:  // t = u * k  =>  u = t / k (caller validates
                           // divisibility when evaluating)
          new_target = Formula::make_binary(BinOp::kDiv, target, *known);
          break;
        case BinOp::kDiv:
          new_target = in_lhs
                           // t = u / k  =>  u = t * k
                           ? Formula::make_binary(BinOp::kMul, target, *known)
                           // t = k / u  =>  u = k / t
                           : Formula::make_binary(BinOp::kDiv, *known, target);
          break;
        case BinOp::kBitXor:  // self-inverse
          new_target = Formula::make_binary(BinOp::kBitXor, target, *known);
          break;
        case BinOp::kMod:
          // t = u % k has infinitely many preimages; the paper (section
          // 4.5) says DiffProv "can try all of them" -- we take the
          // canonical one, u = t, which is exact whenever the desired
          // remainder is already reduced (e.g. hash-bucket selections).
          if (!in_lhs) return std::nullopt;  // k % u: not solvable
          new_target = target;
          break;
        default:
          return std::nullopt;  // &, |, shifts, comparisons: not injective
      }
      return invert_expr_for_var(unknown, var, std::move(new_target), env);
    }
    case Expr::Kind::kCall: {
      // Invertible only through a registered solver, and only when the
      // target and all other arguments are concrete constants.
      const BuiltinInfo* info = FunctionRegistry::instance().find(expr.fn);
      if (info == nullptr || !info->solver) return std::nullopt;
      if (target->kind != Formula::Kind::kConst) return std::nullopt;
      std::size_t unknown_index = expr.children.size();
      std::vector<Value> args;
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        if (mentions(*expr.children[i], var)) {
          if (unknown_index != expr.children.size()) return std::nullopt;
          unknown_index = i;
          // Placeholder: the argument's *current* value when the caller put
          // the variable's current binding into `env` -- solvers rely on it
          // (f_matches widens the current prefix minimally). Fallback 0.
          Value placeholder{std::int64_t{0}};
          if (auto current = formula_from_expr(*expr.children[i], env)) {
            try {
              placeholder = (*current)->eval({});
            } catch (const EvalError&) {
              // keep fallback
            }
          }
          args.push_back(std::move(placeholder));
          continue;
        }
        auto known = formula_from_expr(*expr.children[i], env);
        if (!known || (*known)->tainted()) return std::nullopt;
        try {
          args.push_back((*known)->eval({}));
        } catch (const EvalError&) {
          return std::nullopt;
        }
      }
      if (unknown_index == expr.children.size()) return std::nullopt;
      const auto solved =
          info->solver(unknown_index, args, target->constant);
      if (!solved) return std::nullopt;
      return invert_expr_for_var(*expr.children[unknown_index], var,
                                 Formula::make_const(*solved), env);
    }
  }
  return std::nullopt;
}

}  // namespace dp
