// Taint formulas (paper section 4.3).
//
// DiffProv annotates every field of every tuple in the good tree T_G with a
// *formula* expressing that field's value as a function of the fields of
// T_G's seed s_G. Fields not computed from the seed carry constant formulas
// (their own value). The "equivalent tuple in T_B" of any T_G tuple is then
// obtained by evaluating all its formulas on the fields of T_B's seed s_B:
// tainted fields translate, untainted fields copy over verbatim.
//
// Example from the paper: if tau = portAndLastOctet(80, 4) was derived from
// s_G = pkt(1.2.3.4, 80, A), its formulas are [Seed#1, f_last_octet(Seed#0)],
// and evaluating them on s_B = pkt(1.2.3.5, 80, B) yields the equivalent
// tuple portAndLastOctet(80, 5).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ndlog/ast.h"
#include "ndlog/value.h"

namespace dp {

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// Immutable expression over seed fields. Structurally mirrors Expr, with
/// variables replaced by seed-field references.
class Formula {
 public:
  enum class Kind : std::uint8_t { kConst, kSeedField, kBinary, kCall, kNeg, kNot };

  Kind kind = Kind::kConst;
  Value constant;                    // kConst
  std::size_t seed_field = 0;        // kSeedField
  BinOp op = BinOp::kAdd;            // kBinary
  std::string fn;                    // kCall
  std::vector<FormulaPtr> children;

  static FormulaPtr make_const(Value v);
  static FormulaPtr make_seed_field(std::size_t index);
  static FormulaPtr make_binary(BinOp op, FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr make_call(std::string fn, std::vector<FormulaPtr> args);
  static FormulaPtr make_neg(FormulaPtr inner);
  static FormulaPtr make_not(FormulaPtr inner);

  /// Evaluates on concrete seed fields. Throws EvalError on failure.
  [[nodiscard]] Value eval(const std::vector<Value>& seed_fields) const;

  /// True if any seed field is referenced (the field is *tainted*).
  [[nodiscard]] bool tainted() const;

  [[nodiscard]] std::string to_string() const;
};

/// Formula environment: rule variable -> formula. Built while climbing T_G.
using FormulaEnv = std::map<std::string, FormulaPtr>;

/// Converts a rule expression into a formula by substituting variables from
/// `env`. Variables missing from `env` yield nullopt (cannot express the
/// field as a function of the seed).
std::optional<FormulaPtr> formula_from_expr(const Expr& expr,
                                            const FormulaEnv& env);

/// Per-tuple field annotations: one formula per field. By convention a
/// missing (null) entry means "untainted, expected verbatim".
struct TupleFormulas {
  std::vector<FormulaPtr> fields;

  /// Evaluates all fields against s_B; verbatim fields come from
  /// `actual` (the T_G tuple). Returns nullopt if any formula fails to
  /// evaluate.
  [[nodiscard]] std::optional<std::vector<Value>> eval_expected(
      const std::vector<Value>& seed_fields,
      const std::vector<Value>& actual) const;
};

/// Inverts `expr` for `var`: finds a formula F such that assigning
/// var := F makes expr evaluate to `target`, given that all other variables
/// in `expr` resolve via `env`. Handles chains of invertible arithmetic
/// (+, -, *, ^, unary minus) and single-variable occurrences; returns
/// nullopt for non-invertible shapes (the caller then reports the attempted
/// change, paper section 4.7).
std::optional<FormulaPtr> invert_expr_for_var(const Expr& expr,
                                              const std::string& var,
                                              FormulaPtr target,
                                              const FormulaEnv& env);

}  // namespace dp
