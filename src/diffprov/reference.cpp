#include "diffprov/reference.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace dp {

namespace {

double value_similarity(const Value& a, const Value& b) {
  if (a == b) return 1.0;
  if (a.type() != b.type()) return 0.0;
  switch (a.type()) {
    case ValueType::kIp: {
      // Shared prefix length, in bits.
      const std::uint32_t x = a.as_ip().value() ^ b.as_ip().value();
      int shared = 0;
      for (int bit = 31; bit >= 0 && (x & (1u << bit)) == 0; --bit) {
        ++shared;
      }
      return shared / 32.0;
    }
    case ValueType::kInt: {
      const double d = std::abs(double(a.as_int()) - double(b.as_int()));
      return 1.0 / (1.0 + d);
    }
    case ValueType::kDouble: {
      const double d = std::abs(a.as_double() - b.as_double());
      return 1.0 / (1.0 + d);
    }
    case ValueType::kString: {
      // Shared prefix fraction: "rd1" vs "rd2" count as close.
      const std::string& s = a.as_string();
      const std::string& t = b.as_string();
      const std::size_t n = std::max(s.size(), t.size());
      if (n == 0) return 1.0;
      std::size_t shared = 0;
      while (shared < s.size() && shared < t.size() &&
             s[shared] == t[shared]) {
        ++shared;
      }
      return double(shared) / double(n);
    }
    case ValueType::kPrefix:
      return a.as_prefix().base() == b.as_prefix().base() ? 0.5 : 0.0;
  }
  return 0.0;
}

}  // namespace

double tuple_similarity(const Tuple& a, const Tuple& b) {
  if (a.table() != b.table() || a.arity() != b.arity() || a.arity() == 0) {
    return 0.0;
  }
  double total = 0;
  for (std::size_t i = 0; i < a.arity(); ++i) {
    total += value_similarity(a.at(i), b.at(i));
  }
  return total / double(a.arity());
}

std::vector<ReferenceCandidate> suggest_references(
    const ProvenanceGraph& graph, const Tuple& bad_event,
    std::size_t limit) {
  std::vector<ReferenceCandidate> candidates;
  graph.for_each_tuple([&](const Tuple& tuple, const auto& /*exists*/) {
    if (tuple.table() != bad_event.table() || tuple == bad_event) return;
    candidates.push_back({tuple, tuple_similarity(tuple, bad_event)});
  });
  std::sort(candidates.begin(), candidates.end(),
            [](const ReferenceCandidate& a, const ReferenceCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.event < b.event;  // deterministic tie-break
            });
  if (candidates.size() > limit) candidates.resize(limit);
  return candidates;
}

AutoDiagnosis diagnose_with_auto_reference(DiffProv& diffprov,
                                           const ProvenanceGraph& bad_graph,
                                           const Tuple& bad_event,
                                           std::size_t limit) {
  AutoDiagnosis out;
  out.result.status = DiffProvStatus::kBadEventNotFound;
  out.result.message = "no reference candidate produced a diagnosis";
  {
    obs::Span span(obs::default_tracer(), "dp.diffprov.reference_selection",
                   "diffprov");
    for (const ReferenceCandidate& candidate :
         suggest_references(bad_graph, bad_event, limit)) {
      const auto tree = locate_tree(bad_graph, candidate.event);
      if (!tree) continue;
      ++out.candidates_tried;
      DiffProvResult result = diffprov.diagnose(*tree, bad_event);
      const bool succeeded = result.ok();
      out.result = std::move(result);
      if (succeeded) {
        out.reference = candidate.event;
        break;
      }
    }
  }
  obs::default_registry()
      .counter("dp.diffprov.reference_candidates")
      .inc(static_cast<std::uint64_t>(out.candidates_tried));
  return out;
}

}  // namespace dp
