// Automatic reference-event selection (the paper's section 4.9 "Reference
// events" extension: "we are also exploring to automate this process using
// inspirations from Automatic Test Packet Generation and the 'guided
// probes' idea in Everflow").
//
// Given the event of interest, the finder scans the bad execution's
// provenance graph for other events of the same type, scores them by field
// similarity (shared IP prefix bits, numeric closeness, exact matches), and
// tries diagnoses best-first until one succeeds -- DiffProv's own failure
// modes (seed mismatch, immutable change) reject unsuitable candidates, so
// the search self-corrects exactly the way the paper's error messages guide
// a human operator.
#pragma once

#include "diffprov/diffprov.h"

namespace dp {

struct ReferenceCandidate {
  Tuple event;
  double score = 0;  // in [0, 1]; 1 = identical fields (excluded)
};

/// Scores candidate reference events for `bad_event`: live or historical
/// tuples of the same table, ranked by similarity, the most similar first.
std::vector<ReferenceCandidate> suggest_references(
    const ProvenanceGraph& graph, const Tuple& bad_event,
    std::size_t limit = 8);

struct AutoDiagnosis {
  DiffProvResult result;
  std::optional<Tuple> reference;      // the candidate that succeeded
  std::size_t candidates_tried = 0;
};

/// Runs `suggest_references` over the bad execution's own graph and tries
/// candidates best-first. Returns the first successful diagnosis, or the
/// last failure if none succeeds.
AutoDiagnosis diagnose_with_auto_reference(DiffProv& diffprov,
                                           const ProvenanceGraph& bad_graph,
                                           const Tuple& bad_event,
                                           std::size_t limit = 8);

/// Field-level similarity in [0, 1] between two same-arity tuples; exposed
/// for tests and tooling.
double tuple_similarity(const Tuple& a, const Tuple& b);

}  // namespace dp
