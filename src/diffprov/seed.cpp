#include "diffprov/seed.h"

namespace dp {

std::optional<SeedInfo> find_seed(const ProvTree& tree) {
  if (tree.size() == 0) return std::nullopt;
  ProvTree::NodeIndex current = tree.root();
  ProvTree::NodeIndex last_exist = ProvTree::kNoNode;
  // Guard against malformed graphs; a tree can never be deeper than its size.
  for (std::size_t steps = 0; steps <= tree.size(); ++steps) {
    const Vertex& v = tree.vertex_of(current);
    const auto& children = tree.node(current).children;
    switch (v.kind) {
      case VertexKind::kExist:
        last_exist = current;
        if (children.empty()) return std::nullopt;  // boundary fact: no seed
        current = children.front();  // APPEAR
        break;
      case VertexKind::kAppear: {
        if (children.empty()) return std::nullopt;
        // Multi-support APPEARs keep alternative DERIVEs; the first child is
        // the derivation that actually made the tuple appear.
        current = children.front();
        break;
      }
      case VertexKind::kInsert: {
        SeedInfo seed;
        seed.insert_node = current;
        seed.exist_node = last_exist;
        seed.tuple = v.tuple();
        seed.time = v.time;
        return seed;
      }
      case VertexKind::kDerive: {
        if (children.empty()) return std::nullopt;
        // Descend into the trigger: the child EXIST with the latest APPEAR
        // time (== interval start), as in the paper; the recorded trigger
        // index breaks ties exactly.
        ProvTree::NodeIndex best = children.front();
        LogicalTime best_time = tree.vertex_of(best).interval.start;
        for (std::size_t i = 1; i < children.size(); ++i) {
          const LogicalTime t = tree.vertex_of(children[i]).interval.start;
          if (t > best_time) {
            best = children[i];
            best_time = t;
          }
        }
        if (v.trigger_index >= 0 &&
            static_cast<std::size_t>(v.trigger_index) < children.size()) {
          const ProvTree::NodeIndex recorded =
              children[static_cast<std::size_t>(v.trigger_index)];
          if (tree.vertex_of(recorded).interval.start == best_time) {
            best = recorded;
          }
        }
        current = best;
        break;
      }
      default:
        return std::nullopt;  // negative vertices never lead to a seed
    }
  }
  return std::nullopt;
}

std::vector<ProvTree::NodeIndex> spine_of(const ProvTree& tree,
                                          const SeedInfo& seed) {
  std::vector<ProvTree::NodeIndex> spine;
  ProvTree::NodeIndex current = seed.insert_node;
  while (current != ProvTree::kNoNode) {
    if (tree.vertex_of(current).kind == VertexKind::kDerive) {
      spine.push_back(current);
    }
    current = tree.node(current).parent;
  }
  return spine;
}

}  // namespace dp
