// Seed identification (paper section 4.2).
//
// Every derivation is triggered by its *last* precondition to appear;
// following the chain of triggers from the root downward reaches exactly one
// INSERT leaf: the external stimulus whose arrival "sprung" the whole tree
// (an incoming packet, a job submission). DiffProv preserves the seeds while
// aligning the trees (Refinement #2, section 3.3).
#pragma once

#include <optional>
#include <vector>

#include "provenance/tree.h"

namespace dp {

struct SeedInfo {
  /// Tree node of the seed's INSERT vertex.
  ProvTree::NodeIndex insert_node = ProvTree::kNoNode;
  /// Tree node of the seed's EXIST vertex (the one consumed by the first
  /// derivation on the spine).
  ProvTree::NodeIndex exist_node = ProvTree::kNoNode;
  Tuple tuple;
  LogicalTime time = 0;
};

/// Finds the seed by recursive descent: at every DERIVE vertex, follow the
/// child whose APPEAR has the highest timestamp (ties broken by the
/// recorded trigger index). Returns nullopt on malformed trees.
std::optional<SeedInfo> find_seed(const ProvTree& tree);

/// The spine: all DERIVE tree nodes on the trigger path, ordered from the
/// derivation just above the seed up to the one below the root.
std::vector<ProvTree::NodeIndex> spine_of(const ProvTree& tree,
                                          const SeedInfo& seed);

}  // namespace dp
