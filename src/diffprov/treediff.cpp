#include "diffprov/treediff.h"

#include <algorithm>
#include <map>
#include <vector>

namespace dp {

std::string diff_label(const Vertex& v) {
  std::string out(vertex_kind_name(v.kind));
  out += "|";
  out += v.tuple().to_string();
  if (!v.rule().empty()) {
    out += "|";
    out += v.rule();
  }
  return out;
}

TreeDiffStats plain_tree_diff(const ProvTree& good, const ProvTree& bad) {
  TreeDiffStats stats;
  stats.good_size = good.size();
  stats.bad_size = bad.size();

  std::map<std::string, std::size_t> good_labels;
  good.visit([&](ProvTree::NodeIndex i) {
    ++good_labels[diff_label(good.vertex_of(i))];
  });
  std::size_t matched = 0;
  bad.visit([&](ProvTree::NodeIndex i) {
    auto it = good_labels.find(diff_label(bad.vertex_of(i)));
    if (it != good_labels.end() && it->second > 0) {
      --it->second;
      ++matched;
    }
  });
  stats.common = matched;
  stats.only_in_good = stats.good_size - matched;
  stats.only_in_bad = stats.bad_size - matched;
  return stats;
}

namespace {

// Post-order view of a tree for Zhang-Shasha: labels, leftmost-leaf indices
// and keyroots, all 0-based over post-order positions.
struct OrderedTree {
  std::vector<std::string> labels;
  std::vector<std::size_t> leftmost;
  std::vector<std::size_t> keyroots;

  explicit OrderedTree(const ProvTree& tree) {
    const std::size_t n = tree.size();
    labels.resize(n);
    leftmost.resize(n);
    std::vector<std::size_t> postorder_of(n);
    std::size_t counter = 0;
    // Recursive post-order via explicit stack (node, child cursor).
    struct Frame {
      ProvTree::NodeIndex node;
      std::size_t next_child = 0;
      std::size_t leftmost_leaf = static_cast<std::size_t>(-1);
    };
    std::vector<Frame> stack = {{tree.root(), 0, static_cast<std::size_t>(-1)}};
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& children = tree.node(frame.node).children;
      if (frame.next_child < children.size()) {
        stack.push_back({children[frame.next_child++], 0,
                         static_cast<std::size_t>(-1)});
        continue;
      }
      const std::size_t index = counter++;
      postorder_of[static_cast<std::size_t>(frame.node)] = index;
      labels[index] = diff_label(tree.vertex_of(frame.node));
      std::size_t lm = frame.leftmost_leaf;
      if (children.empty()) {
        lm = index;
      } else {
        lm = leftmost[postorder_of[static_cast<std::size_t>(
            children.front())]];
      }
      leftmost[index] = lm;
      stack.pop_back();
    }
    // Keyroots: nodes with no left sibling on their leftmost-leaf path.
    std::map<std::size_t, std::size_t> highest_with_leftmost;
    for (std::size_t i = 0; i < n; ++i) {
      highest_with_leftmost[leftmost[i]] = i;
    }
    for (const auto& [lm, node] : highest_with_leftmost) {
      keyroots.push_back(node);
    }
    std::sort(keyroots.begin(), keyroots.end());
  }
};

}  // namespace

std::size_t tree_edit_distance(const ProvTree& good, const ProvTree& bad) {
  const OrderedTree t1(good);
  const OrderedTree t2(bad);
  const std::size_t n1 = t1.labels.size();
  const std::size_t n2 = t2.labels.size();
  if (n1 == 0) return n2;
  if (n2 == 0) return n1;

  std::vector<std::vector<std::size_t>> treedist(
      n1, std::vector<std::size_t>(n2, 0));
  // Forest distance scratch, indexed [i - l1 + 1][j - l2 + 1].
  std::vector<std::vector<std::size_t>> fd(
      n1 + 1, std::vector<std::size_t>(n2 + 1, 0));

  for (const std::size_t k1 : t1.keyroots) {
    for (const std::size_t k2 : t2.keyroots) {
      const std::size_t l1 = t1.leftmost[k1];
      const std::size_t l2 = t2.leftmost[k2];
      fd[0][0] = 0;
      for (std::size_t i = l1; i <= k1; ++i) {
        fd[i - l1 + 1][0] = fd[i - l1][0] + 1;  // delete
      }
      for (std::size_t j = l2; j <= k2; ++j) {
        fd[0][j - l2 + 1] = fd[0][j - l2] + 1;  // insert
      }
      for (std::size_t i = l1; i <= k1; ++i) {
        for (std::size_t j = l2; j <= k2; ++j) {
          const std::size_t fi = i - l1 + 1;
          const std::size_t fj = j - l2 + 1;
          if (t1.leftmost[i] == l1 && t2.leftmost[j] == l2) {
            const std::size_t relabel =
                t1.labels[i] == t2.labels[j] ? 0 : 1;
            treedist[i][j] = std::min({fd[fi - 1][fj] + 1, fd[fi][fj - 1] + 1,
                                       fd[fi - 1][fj - 1] + relabel});
            fd[fi][fj] = treedist[i][j];
          } else {
            const std::size_t pi = t1.leftmost[i] - l1;
            const std::size_t pj = t2.leftmost[j] - l2;
            fd[fi][fj] = std::min({fd[fi - 1][fj] + 1, fd[fi][fj - 1] + 1,
                                   fd[pi][pj] + treedist[i][j]});
          }
        }
      }
    }
  }
  return treedist[n1 - 1][n2 - 1];
}

}  // namespace dp
