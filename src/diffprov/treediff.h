// Baseline tree-comparison strawmen (paper section 2.5).
//
// The "plain diff" counts vertices present in one tree but not the other,
// matching by (kind, tuple, rule) and deliberately ignoring timestamps --
// already a generous equivalence masking. Even so, the butterfly effect
// makes the diff comparable to, or larger than, the trees themselves
// (Table 1's "Plain tree diff" row). The Zhang-Shasha tree edit distance is
// the "tree-based edit distance algorithm [5]" the paper dismisses; it is
// included for the ablation bench.
#pragma once

#include <cstddef>
#include <string>

#include "provenance/tree.h"

namespace dp {

struct TreeDiffStats {
  std::size_t good_size = 0;
  std::size_t bad_size = 0;
  std::size_t common = 0;        // matched vertex pairs
  std::size_t only_in_good = 0;  // unmatched good vertices
  std::size_t only_in_bad = 0;   // unmatched bad vertices

  /// What a human would have to inspect: everything unmatched.
  [[nodiscard]] std::size_t diff_size() const {
    return only_in_good + only_in_bad;
  }
};

/// Multiset diff over vertex labels (kind + tuple + rule, timestamps
/// masked).
TreeDiffStats plain_tree_diff(const ProvTree& good, const ProvTree& bad);

/// Label of a vertex as used by the diff/edit-distance baselines.
std::string diff_label(const Vertex& v);

/// Zhang-Shasha ordered tree edit distance with unit costs (insert, delete,
/// relabel). O(|G|*|B|*min-depth^2) -- fine at provenance-tree scale.
std::size_t tree_edit_distance(const ProvTree& good, const ProvTree& bad);

}  // namespace dp
