#include "dns/dns.h"

#include "ndlog/parser.h"

namespace dp::dns {

namespace {

Tuple make(const std::string& table, std::vector<Value> values) {
  return Tuple(table, std::move(values));
}

Value ip(const std::string& text) { return Value(*Ipv4::parse(text)); }

void add_upstream(EventLog& log, const std::string& resolver,
                  const std::string& server, LogicalTime t = 0) {
  log.append_insert(make("upstream", {resolver, server}), t);
}

void add_record(EventLog& log, const std::string& server,
                const std::string& name, const std::string& addr, int serial,
                LogicalTime t = 1) {
  log.append_insert(make("record", {server, name, ip(addr), serial}), t);
}

void add_query(EventLog& log, const std::string& resolver, int id,
               const std::string& name, const std::string& client,
               LogicalTime t) {
  log.append_insert(make("query", {resolver, id, name, client}), t);
}

}  // namespace

std::string_view program_source() {
  return R"(
    table query(4) base immutable event.   // (@Resolver, Id, Name, Client)
    table upstream(2) base mutable keys(0).// (@Resolver, Server)
    table record(4) base mutable keys(0, 1).  // (@Server, Name, Addr, Serial)
    table lookup(4) derived event.         // (@Server, Id, Name, Client)
    table response(5) derived.             // (@Client, Id, Name, Addr, Serial)

    rule q1 lookup(@Server, Id, Name, Client) :-
        query(@Resolver, Id, Name, Client),
        upstream(@Resolver, Server).
    rule q2 response(@Client, Id, Name, Addr, Serial) :-
        lookup(@Server, Id, Name, Client),
        record(@Server, Name, Addr, Serial).
  )";
}

Program make_program() { return parse_program(program_source()); }

Scenario stale_record() {
  Scenario s;
  s.program = make_program();
  s.name = "DNS-stale-record";
  s.description =
      "Sudden failure: server A's record for www.example.org reverts to a "
      "stale address mid-run; an earlier successful query is the reference.";
  add_upstream(s.log, "r1", "srvA");
  add_record(s.log, "srvA", "www.example.org", "93.184.216.34", 2);
  add_query(s.log, "r1", 1, "www.example.org", "c1", 1000);  // good (past)
  // The botched zone push: the record reverts to the pre-update state.
  s.log.append_insert(
      make("record", {"srvA", "www.example.org", ip("10.0.0.99"), 1}), 1500);
  add_query(s.log, "r1", 2, "www.example.org", "c1", 2000);  // bad

  s.good_event = make("response", {"c1", 1, "www.example.org",
                                   ip("93.184.216.34"), 2});
  s.bad_event =
      make("response", {"c1", 2, "www.example.org", ip("10.0.0.99"), 1});
  s.expected_root_cause = "record(@srvA, \"www.example.org\", 93.184.216.34";
  return s;
}

Scenario stale_replica() {
  Scenario s;
  s.program = make_program();
  s.name = "DNS-stale-replica";
  s.description =
      "Partial failure: resolver r1's upstream server A serves a stale "
      "record while r2's server C is healthy; r2's answer is the reference.";
  add_upstream(s.log, "r1", "srvA");
  add_upstream(s.log, "r2", "srvC");
  add_record(s.log, "srvA", "www.example.org", "10.0.0.99", 1);  // stale
  add_record(s.log, "srvC", "www.example.org", "93.184.216.34", 2);
  add_query(s.log, "r2", 1, "www.example.org", "c2", 1000);  // good
  add_query(s.log, "r1", 2, "www.example.org", "c1", 2000);  // bad

  s.good_event = make("response", {"c2", 1, "www.example.org",
                                   ip("93.184.216.34"), 2});
  s.bad_event =
      make("response", {"c1", 2, "www.example.org", ip("10.0.0.99"), 1});
  // DiffProv's (valid) alignment: repoint r1 at the healthy server. See the
  // header comment -- this is the paper's section 4.7 false-positive shape.
  s.expected_root_cause = "upstream(@r1";
  return s;
}

std::vector<Scenario> all_scenarios() {
  return {stale_record(), stale_replica()};
}

}  // namespace dp::dns
