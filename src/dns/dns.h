// A DNS substrate exercising the paper's *introduction* and survey
// motivation (sections 1 and 2.4): partial failures ("DNS servers A and B
// are returning stale records, but not C") and sudden failures (a service
// that worked earlier stops working), with reference events found either on
// a co-existing healthy replica or in the malfunctioning system's own past.
//
// Model: resolvers forward client queries to their configured upstream
// authoritative server; servers answer from their zone data.
//
//   query(@Resolver, Id, Name, Client)      external stimulus (immutable)
//   upstream(@Resolver, Server)             resolver configuration (mutable)
//   record(@Server, Name, Addr, Serial)     zone data (mutable; a server
//                                           that missed a zone transfer
//                                           keeps a stale record)
//   lookup(@Server, Id, Name, Client)       the forwarded query (event)
//   response(@Client, Id, Name, Addr, Serial)
//
// This is a third diagnosis domain on the same engine and algorithm --
// nothing in src/diffprov is SDN- or MapReduce-specific.
#pragma once

#include <string>
#include <vector>

#include "ndlog/program.h"
#include "replay/replay_engine.h"

namespace dp::dns {

std::string_view program_source();
Program make_program();

struct Scenario {
  std::string name;
  std::string description;
  Program program;
  Topology topology;
  EventLog log;
  Tuple good_event;
  Tuple bad_event;
  std::string expected_root_cause;
};

/// Sudden failure, reference in the past: server A's record for
/// www.example.org is reverted to a stale address mid-run (a botched zone
/// push); a query that succeeded earlier provides the reference. Root
/// cause: the stale record on A.
Scenario stale_record();

/// Partial failure, reference on a sibling: resolver r1 points at the stale
/// server A while r2 uses the healthy C. Aligning the two resolvers' trees,
/// DiffProv proposes repointing r1's upstream -- a *valid* repair per
/// Definition 1 even though the operator might have preferred fixing A's
/// zone data; the paper's "false positives" discussion (section 4.7) is
/// exactly about this, and the scenario demonstrates it.
Scenario stale_replica();

std::vector<Scenario> all_scenarios();

}  // namespace dp::dns
