#include "ingest/manager.h"

#include <algorithm>

namespace dp::ingest {

IngestManager::IngestManager(ReplayOptions options,
                             IngestOptions ingest_options,
                             obs::MetricsRegistry& registry,
                             std::function<void(std::uint64_t)> publish_bytes)
    : options_(std::move(options)),
      ingest_options_(ingest_options),
      registry_(&registry),
      publish_bytes_(std::move(publish_bytes)),
      streams_gauge_(registry.gauge("dp.ingest.streams")),
      resident_gauge_(registry.gauge("dp.ingest.resident_bytes")) {}

std::shared_ptr<IngestStream> IngestManager::open(
    const std::string& name, Program program, Topology topology,
    std::optional<Tuple> good_event, std::optional<Tuple> bad_event) {
  std::shared_ptr<IngestStream> stream;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = streams_.find(name);
    if (it != streams_.end()) return it->second;
    stream = std::make_shared<IngestStream>(
        name, std::move(program), std::move(topology), std::move(good_event),
        std::move(bad_event), options_, ingest_options_, *registry_);
    streams_.emplace(name, stream);
    streams_gauge_.set(static_cast<std::int64_t>(streams_.size()));
  }
  publish();
  return stream;
}

std::shared_ptr<IngestStream> IngestManager::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = streams_.find(name);
  return it == streams_.end() ? nullptr : it->second;
}

std::size_t IngestManager::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return streams_.size();
}

std::vector<std::shared_ptr<IngestStream>> IngestManager::snapshot() const {
  std::vector<std::shared_ptr<IngestStream>> streams;
  std::lock_guard<std::mutex> lock(mutex_);
  streams.reserve(streams_.size());
  for (const auto& [name, stream] : streams_) streams.push_back(stream);
  return streams;
}

std::vector<std::pair<std::string, IngestStreamStats>> IngestManager::stats()
    const {
  std::vector<std::pair<std::string, IngestStreamStats>> out;
  for (const auto& stream : snapshot()) {
    std::lock_guard<std::mutex> lock(stream->mutex());
    out.emplace_back(stream->key(), stream->stats());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::uint64_t IngestManager::resident_bytes() const {
  std::uint64_t total = 0;
  for (const auto& stream : snapshot()) total += stream->resident_bytes();
  return total;
}

void IngestManager::maintain(bool under_pressure) {
  for (const auto& stream : snapshot()) {
    std::unique_lock<std::mutex> lock(stream->mutex(), std::try_to_lock);
    if (!lock.owns_lock()) continue;  // appender or diagnosis active
    stream->maintain(under_pressure);
  }
  publish();
}

void IngestManager::publish() {
  const std::uint64_t total = resident_bytes();
  resident_gauge_.set(static_cast<std::int64_t>(total));
  if (publish_bytes_) publish_bytes_(total);
}

}  // namespace dp::ingest
