// Keyed registry of live ingest streams.
//
// The diagnosis service owns one IngestManager: `open` creates (or returns)
// the stream for a name, `find` resolves query routing, `maintain` runs one
// compaction/truncation pass across all streams (driven from the service
// watchdog tick; busy streams are skipped via try_lock so a long diagnosis
// never stalls the tick), and `publish` pushes the summed resident bytes to
// the warm-budget ledger callback so ingest memory is billed alongside warm
// sessions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ingest/stream.h"

namespace dp::ingest {

class IngestManager {
 public:
  /// `publish_bytes`, when set, receives the total resident bytes across all
  /// streams after every open/maintain/publish (the service wires this to a
  /// WarmBudgetLedger slot).
  IngestManager(ReplayOptions options, IngestOptions ingest_options,
                obs::MetricsRegistry& registry,
                std::function<void(std::uint64_t)> publish_bytes = {});

  /// Returns the stream for `name`, creating it on first open. An existing
  /// stream is returned as-is (idempotent open); the program/topology
  /// arguments of later opens are ignored.
  std::shared_ptr<IngestStream> open(const std::string& name, Program program,
                                     Topology topology,
                                     std::optional<Tuple> good_event,
                                     std::optional<Tuple> bad_event);

  /// The stream for `name`, or nullptr.
  [[nodiscard]] std::shared_ptr<IngestStream> find(
      const std::string& name) const;

  [[nodiscard]] std::size_t size() const;

  /// Per-stream stats snapshots, sorted by name. Locks each stream briefly.
  [[nodiscard]] std::vector<std::pair<std::string, IngestStreamStats>> stats()
      const;

  /// Summed resident bytes across streams (lock-free reads of each stream's
  /// published footprint).
  [[nodiscard]] std::uint64_t resident_bytes() const;

  /// One maintenance pass over every stream (truncation + compaction), then
  /// republish resident bytes. Streams whose mutex is busy are skipped this
  /// tick.
  void maintain(bool under_pressure);

  /// Recompute and push the resident total (gauge + ledger callback).
  void publish();

 private:
  [[nodiscard]] std::vector<std::shared_ptr<IngestStream>> snapshot() const;

  ReplayOptions options_;
  IngestOptions ingest_options_;
  obs::MetricsRegistry* registry_;
  std::function<void(std::uint64_t)> publish_bytes_;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<IngestStream>> streams_;

  obs::Gauge& streams_gauge_;
  obs::Gauge& resident_gauge_;
};

}  // namespace dp::ingest
