#include "ingest/segment.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/hash.h"

namespace dp::ingest {
namespace {

// Block container shared by segments and checkpoints. Same rules as the
// DPL2 event-log decoder: bytes arrive from disk or the wire, so failures
// are exceptions naming the byte offset, never asserts or unbounded
// allocations.
constexpr char kMagic[4] = {'D', 'P', 'S', '1'};
constexpr std::uint8_t kKindSegment = 0;
constexpr std::uint8_t kKindCheckpoint = 1;
constexpr std::uint64_t kMaxPayload = 1ull << 30;  // one block's payload

void put_u8(std::ostream& out, std::uint8_t v) {
  out.put(static_cast<char>(v));
}

void put_u32(std::ostream& out, std::uint32_t v) {
  put_u8(out, static_cast<std::uint8_t>(v >> 24));
  put_u8(out, static_cast<std::uint8_t>(v >> 16));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
  put_u8(out, static_cast<std::uint8_t>(v));
}

void put_u64(std::ostream& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

struct ByteReader {
  std::istream& in;
  std::uint64_t offset = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("ingest segment: " + what + " at byte offset " +
                             std::to_string(offset));
  }

  std::uint8_t u8() {
    const int c = in.get();
    if (c == EOF) fail("truncated input");
    ++offset;
    return static_cast<std::uint8_t>(c);
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | u8();
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }

  std::string bytes(std::uint64_t size) {
    std::string s(static_cast<std::size_t>(size), '\0');
    in.read(s.data(), static_cast<std::streamsize>(size));
    if (in.gcount() != static_cast<std::streamsize>(size)) {
      offset += static_cast<std::uint64_t>(in.gcount());
      fail("truncated payload");
    }
    offset += size;
    return s;
  }
};

struct Block {
  std::uint8_t kind = kKindSegment;
  std::uint32_t first_epoch = 0;
  std::uint32_t last_epoch = 0;
  std::uint64_t first_time = 0;
  std::uint64_t last_time = 0;
  std::string payload;
};

Block read_block(ByteReader& reader) {
  for (const char expected : kMagic) {
    if (static_cast<char>(reader.u8()) != expected) {
      reader.fail("bad DPS1 magic");
    }
  }
  Block block;
  block.kind = reader.u8();
  if (block.kind > kKindCheckpoint) {
    reader.fail("unknown block kind " + std::to_string(block.kind));
  }
  block.first_epoch = reader.u32();
  block.last_epoch = reader.u32();
  if (block.first_epoch > block.last_epoch) {
    reader.fail("inverted epoch range [" + std::to_string(block.first_epoch) +
                ", " + std::to_string(block.last_epoch) + "]");
  }
  block.first_time = reader.u64();
  block.last_time = reader.u64();
  if (block.first_time > block.last_time) {
    reader.fail("inverted time range");
  }
  const std::uint64_t payload_len = reader.u64();
  if (payload_len > kMaxPayload) {
    reader.fail("implausible payload length " + std::to_string(payload_len) +
                " (limit " + std::to_string(kMaxPayload) + ")");
  }
  block.payload = reader.bytes(payload_len);
  const std::uint64_t checksum = reader.u64();
  if (checksum != fnv1a(block.payload)) {
    reader.fail("payload checksum mismatch");
  }
  return block;
}

void write_block(std::ostream& out, std::uint8_t kind,
                 std::uint32_t first_epoch, std::uint32_t last_epoch,
                 std::uint64_t first_time, std::uint64_t last_time,
                 const std::string& payload) {
  out.write(kMagic, sizeof(kMagic));
  put_u8(out, kind);
  put_u32(out, first_epoch);
  put_u32(out, last_epoch);
  put_u64(out, first_time);
  put_u64(out, last_time);
  put_u64(out, payload.size());
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  put_u64(out, fnv1a(payload));
}

LogSegment segment_from_block(const Block& block) {
  std::istringstream payload(block.payload);
  EventLog log;
  try {
    log = EventLog::deserialize(payload);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("ingest segment payload: ") +
                             e.what());
  }
  if (log.empty()) {
    throw std::runtime_error("ingest segment: empty payload log");
  }
  LogSegment segment(block.first_epoch, block.last_epoch, std::move(log));
  if (segment.first_time() != static_cast<LogicalTime>(block.first_time) ||
      segment.last_time() != static_cast<LogicalTime>(block.last_time)) {
    throw std::runtime_error(
        "ingest segment: header time range disagrees with payload");
  }
  return segment;
}

}  // namespace

LogSegment::LogSegment(std::uint32_t first_epoch, std::uint32_t last_epoch,
                       EventLog log)
    : first_epoch_(first_epoch),
      last_epoch_(last_epoch),
      log_(std::move(log)) {
  if (first_epoch_ > last_epoch_) {
    throw std::invalid_argument("LogSegment: inverted epoch range");
  }
  if (log_.empty()) {
    throw std::invalid_argument("LogSegment: empty log");
  }
  first_time_ = log_.records().front().time;
  last_time_ = log_.records().back().time;
  LogicalTime previous = first_time_;
  for (const LogRecord& record : log_.records()) {
    if (record.time < previous) {
      throw std::invalid_argument("LogSegment: record times not monotone");
    }
    previous = record.time;
  }
}

LogSegment LogSegment::merge(const LogSegment& a, const LogSegment& b) {
  if (a.last_epoch() + 1 != b.first_epoch()) {
    throw std::invalid_argument("LogSegment::merge: segments not adjacent");
  }
  if (a.last_time() > b.first_time()) {
    throw std::invalid_argument("LogSegment::merge: time ranges overlap");
  }
  EventLog merged;
  for (const LogRecord& record : a.log().records()) merged.append(record);
  for (const LogRecord& record : b.log().records()) merged.append(record);
  return LogSegment(a.first_epoch(), b.last_epoch(), std::move(merged));
}

void LogSegment::serialize(std::ostream& out) const {
  std::ostringstream payload;
  log_.serialize(payload);
  write_block(out, kKindSegment, first_epoch_, last_epoch_, first_time_,
              last_time_, payload.str());
}

LogSegment LogSegment::deserialize(std::istream& in) {
  ByteReader reader{in};
  const Block block = read_block(reader);
  if (block.kind != kKindSegment) {
    reader.fail("expected a segment block, found a checkpoint");
  }
  return segment_from_block(block);
}

void write_checkpoint_block(std::ostream& out, const Checkpoint& checkpoint,
                            std::uint32_t epoch) {
  std::ostringstream payload;
  checkpoint.serialize(payload);
  write_block(out, kKindCheckpoint, epoch, epoch, checkpoint.captured_at(),
              checkpoint.captured_at(), payload.str());
}

StreamFile read_stream_file(std::istream& in) {
  StreamFile out;
  ByteReader reader{in};
  while (in.peek() != EOF) {
    const std::uint64_t block_start = reader.offset;
    try {
      const Block block = read_block(reader);
      if (block.kind == kKindSegment) {
        out.segments.push_back(segment_from_block(block));
      } else {
        std::istringstream payload(block.payload);
        try {
          out.checkpoint = Checkpoint::deserialize(payload);
        } catch (const std::exception& e) {
          throw std::runtime_error(
              std::string("ingest checkpoint payload: ") + e.what());
        }
        out.checkpoint_epoch = block.first_epoch;
      }
    } catch (const std::exception& e) {
      // Torn or corrupt tail: keep everything sealed before this block and
      // report what was dropped. The stream resumes from the previous
      // sealed epoch instead of failing outright.
      out.tail_error = e.what();
      in.clear();
      std::uint64_t rest = reader.offset - block_start;
      char buffer[4096];
      while (in.read(buffer, sizeof(buffer)), in.gcount() > 0) {
        rest += static_cast<std::uint64_t>(in.gcount());
      }
      out.dropped_bytes = rest;
      break;
    }
  }
  return out;
}

}  // namespace dp::ingest
