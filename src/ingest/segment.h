// Sealed log segments: the storage tier of a live ingest stream.
//
// An ingest stream groups arriving base events into *epochs*; when an epoch
// seals, its records freeze into an immutable LogSegment. Segments are what
// the stream keeps per-epoch bookkeeping on (compaction merges adjacent
// small segments, truncation drops segments once a newer checkpoint covers
// them) and what a fresh consumer bootstraps from: the newest checkpoint
// plus the segment suffix behind it reconstructs the stream's state without
// replaying the full history (paper section 4.8's "log of tuple updates
// along with some checkpoints").
//
// Wire format ("DPS1" blocks) follows the DPL2 hardening discipline of
// replay/event_log.cpp: every decode failure is a clean exception naming the
// byte offset, lengths are capped before allocation, and payloads carry an
// FNV-1a checksum so a torn tail is detected rather than half-parsed. A
// stream file is a sequence of blocks (segments and checkpoints share the
// container); read_stream_file() tolerates a torn/corrupt tail by falling
// back to the last cleanly sealed block instead of failing the stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "replay/checkpoint.h"
#include "replay/event_log.h"

namespace dp::ingest {

/// One sealed epoch of an ingest stream -- or, after compaction, a
/// contiguous run of sealed epochs merged into one. Immutable once built.
class LogSegment {
 public:
  /// `log` must be non-empty with non-decreasing record times (the stream's
  /// append path enforces the ordering; seal never emits empty epochs).
  LogSegment(std::uint32_t first_epoch, std::uint32_t last_epoch,
             EventLog log);

  [[nodiscard]] std::uint32_t first_epoch() const { return first_epoch_; }
  [[nodiscard]] std::uint32_t last_epoch() const { return last_epoch_; }
  /// Number of sealed epochs this segment spans (1 until compacted).
  [[nodiscard]] std::uint32_t epochs() const {
    return last_epoch_ - first_epoch_ + 1;
  }
  [[nodiscard]] const EventLog& log() const { return log_; }
  [[nodiscard]] std::size_t size() const { return log_.size(); }
  [[nodiscard]] LogicalTime first_time() const { return first_time_; }
  [[nodiscard]] LogicalTime last_time() const { return last_time_; }
  /// Resident cost of keeping this segment in memory (its DPL2 byte size).
  [[nodiscard]] std::uint64_t byte_size() const { return log_.byte_size(); }

  /// Merges two *adjacent* segments (a.last_epoch + 1 == b.first_epoch) into
  /// one covering both epoch ranges. The merged record order is the
  /// concatenation, so serializing the merge of a split log is byte-equal to
  /// serializing the unsplit log. Throws std::invalid_argument otherwise.
  static LogSegment merge(const LogSegment& a, const LogSegment& b);

  /// Writes one DPS1 segment block: magic, kind, epoch range, time range,
  /// length-prefixed DPL2 payload, FNV-1a payload checksum.
  void serialize(std::ostream& out) const;
  /// Decodes one segment block. Throws std::runtime_error with the byte
  /// offset on truncation, oversized lengths, checksum mismatch, or a
  /// non-segment block.
  static LogSegment deserialize(std::istream& in);

 private:
  std::uint32_t first_epoch_;
  std::uint32_t last_epoch_;
  LogicalTime first_time_ = 0;
  LogicalTime last_time_ = 0;
  EventLog log_;
};

/// Writes a checkpoint as a DPS1 block (kind = checkpoint); `epoch` is the
/// sealed-epoch count the capture happened at, so a reader can line the
/// checkpoint up against the segment suffix.
void write_checkpoint_block(std::ostream& out, const Checkpoint& checkpoint,
                            std::uint32_t epoch);

/// A decoded stream file: the newest checkpoint seen (if any) and every
/// cleanly decoded segment, in file order. When the file ends in a torn or
/// corrupt block, `tail_error` names the failure (with its byte offset) and
/// `dropped_bytes` counts what was discarded -- the decoded prefix up to the
/// previous sealed block is still returned, so a consumer resumes from the
/// last epoch that made it to storage intact.
struct StreamFile {
  std::vector<LogSegment> segments;
  std::optional<Checkpoint> checkpoint;
  std::uint32_t checkpoint_epoch = 0;
  std::uint64_t dropped_bytes = 0;
  std::string tail_error;
};

/// Reads DPS1 blocks until EOF, tolerating a torn tail (see StreamFile).
StreamFile read_stream_file(std::istream& in);

}  // namespace dp::ingest
