#include "ingest/stream.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"
#include "util/hash.h"

namespace dp::ingest {
namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

IngestStream::IngestStream(std::string key, Program program, Topology topology,
                           std::optional<Tuple> good_event,
                           std::optional<Tuple> bad_event,
                           ReplayOptions options, IngestOptions ingest,
                           obs::MetricsRegistry& registry)
    : key_(std::move(key)),
      program_(std::move(program)),
      topology_(std::move(topology)),
      good_event_(std::move(good_event)),
      bad_event_(std::move(bad_event)),
      options_(std::move(options)),
      ingest_(ingest),
      registry_(&registry),
      events_counter_(registry.counter("dp.ingest.events")),
      epochs_counter_(registry.counter("dp.ingest.epochs_sealed")),
      segments_gauge_(registry.gauge("dp.ingest.segments")),
      checkpoints_counter_(registry.counter("dp.ingest.checkpoints")),
      compactions_counter_(registry.counter("dp.ingest.compactions")),
      compacted_counter_(registry.counter("dp.ingest.segments_compacted")),
      truncated_segments_counter_(
          registry.counter("dp.ingest.truncated_segments")),
      truncated_bytes_counter_(registry.counter("dp.ingest.truncated_bytes")),
      rebuilds_counter_(registry.counter("dp.ingest.live_rebuilds")),
      snapshots_counter_(registry.counter("dp.ingest.snapshots")),
      snapshot_us_(registry.histogram("dp.ingest.snapshot_us")),
      snapshot_sketch_(registry.sketch("dp.ingest.snapshot_us")) {
  if (ingest_.epoch_events == 0) ingest_.epoch_events = 1;
  // Live streams always run to arrival horizon; a truncated replay would
  // break the byte-identity contract against full-prefix replay.
  options_.until = kTimeInfinity;
  engine_ = std::make_shared<Engine>(program_, options_.engine_config);
  recorder_ = std::make_shared<ProvenanceRecorder>();
  if (options_.provenance_filter) {
    recorder_->set_filter(options_.provenance_filter);
  }
  for (const Topology::Link& link : topology_.links) {
    engine_->add_link(link.a, link.b, link.delay);
  }
  engine_->add_observer(recorder_.get());
  metrics_observer_ = std::make_unique<MetricsObserver>(engine_->metrics());
  engine_->add_observer(metrics_observer_.get());
}

std::size_t IngestStream::append_text(std::string_view text) {
  // Validate the whole batch before applying any of it: parse errors carry
  // the line number (EventLog::from_text), order errors the offending time.
  const EventLog batch = EventLog::from_text(text);
  LogicalTime previous = watermark_.load(std::memory_order_relaxed);
  for (const LogRecord& record : batch.records()) {
    if (record.time < previous) {
      throw std::runtime_error(
          "ingest: out-of-order event at t=" + std::to_string(record.time) +
          " behind stream watermark t=" + std::to_string(previous));
    }
    previous = record.time;
  }
  for (const LogRecord& record : batch.records()) append(record);
  return batch.size();
}

void IngestStream::append(const LogRecord& record) {
  const LogicalTime watermark = watermark_.load(std::memory_order_relaxed);
  if (record.time < watermark) {
    throw std::runtime_error(
        "ingest: out-of-order event at t=" + std::to_string(record.time) +
        " behind stream watermark t=" + std::to_string(watermark));
  }
  feed_live(record);
  log_.append(record);
  watermark_.store(record.time, std::memory_order_relaxed);
  const std::uint64_t mixed =
      hash_mix(hash_mix(hash_mix(hash_.load(std::memory_order_relaxed),
                                 static_cast<std::uint64_t>(record.op)),
                        static_cast<std::uint64_t>(record.time)),
               static_cast<std::uint64_t>(record.tuple_ref));
  hash_.store(mixed, std::memory_order_relaxed);
  ++stats_.events;
  events_counter_.inc();
  if (++open_records_ >= ingest_.epoch_events) seal_epoch();
}

void IngestStream::feed_live(const LogRecord& record) {
  if (stale_live_) return;  // live tier already pending rebuild
  if (quiesced_ && record.time <= engine_->now()) {
    // The snapshot ran the engine past this event's time; processing it now
    // would order it after derivations a batch replay puts behind it. Stop
    // feeding the live engine -- the next snapshot rebuilds from the log.
    stale_live_ = true;
    run_.reset();
    return;
  }
  // Batch equivalence (see header): advance to t-1 so every earlier event's
  // consequences with time < t are settled, then schedule at t. The
  // external seq band orders this event before any equal-time derivation.
  // Only advance when the engine is actually behind: a run of same-time
  // appends then stays queued and drains through the engine's batched
  // execution path in one sweep (at the next advance or snapshot), instead
  // of paying a run_until + metrics publish per append.
  if (record.time > 0 && engine_->now() < record.time - 1) {
    engine_->run_until(record.time - 1);
  }
  if (record.op == LogRecord::Op::kInsert) {
    engine_->schedule_insert(record.tuple(), record.time);
  } else {
    engine_->schedule_delete(record.tuple(), record.time);
  }
  quiesced_ = false;
}

void IngestStream::seal() {
  if (open_records_ > 0) seal_epoch();
}

void IngestStream::seal_epoch() {
  DP_SPAN_CAT("dp.ingest.seal", "ingest");
  EventLog epoch_log;
  for (std::size_t i = open_start_; i < log_.size(); ++i) {
    epoch_log.append(log_.records()[i]);
  }
  auto segment = std::make_shared<const LogSegment>(
      sealed_epochs_, sealed_epochs_, std::move(epoch_log));
  segment_bytes_ += segment->byte_size();
  segments_.push_back(std::move(segment));
  segments_gauge_.add(1);
  ++sealed_epochs_;
  epochs_counter_.inc();
  open_start_ = log_.size();
  open_records_ = 0;

  if (ingest_.checkpoint_every_epochs > 0 &&
      sealed_epochs_ % ingest_.checkpoint_every_epochs == 0 && !stale_live_) {
    // Capture at the live horizon: base events still in flight (time >
    // now()) are not in the tables, but bootstrap replays every segment
    // record behind the capture point, so they are re-scheduled there.
    DP_SPAN_CAT("dp.ingest.checkpoint", "ingest");
    checkpoint_ = Checkpoint::capture(*engine_);
    checkpoint_epoch_ = sealed_epochs_;
    ++stats_.checkpoints;
    checkpoints_counter_.inc();
  }
  update_resident();
}

std::shared_ptr<const BadRun> IngestStream::ensure_current(bool* rebuilt) {
  DP_SPAN_CAT("dp.ingest.snapshot", "ingest");
  const std::uint64_t started = now_us();
  bool did_rebuild = false;
  if (stale_live_) {
    rebuild_live();
    did_rebuild = true;
  } else {
    engine_->run();  // drain in-flight events; O(1) when already quiescent
  }
  quiesced_ = true;
  if (run_ == nullptr) {
    auto run = std::make_shared<BadRun>();
    run->graph =
        std::shared_ptr<const ProvenanceGraph>(recorder_, &recorder_->graph());
    run->state = std::make_shared<EngineStateView>(engine_);
    run_ = std::move(run);
  }
  recorder_->graph().publish_metrics(*registry_);
  ++stats_.snapshots;
  snapshots_counter_.inc();
  const auto us = static_cast<double>(now_us() - started);
  snapshot_us_.observe(us);
  snapshot_sketch_.observe(us);
  update_resident();
  if (rebuilt != nullptr) *rebuilt = did_rebuild;
  return run_;
}

void IngestStream::rebuild_live() {
  DP_SPAN_CAT("dp.ingest.live_rebuild", "ingest");
  ReplayResult result = replay(program_, topology_, log_, {}, options_);
  engine_ = std::move(result.engine);
  recorder_ = std::move(result.recorder);
  metrics_observer_ = std::move(result.metrics_observer);
  run_.reset();
  stale_live_ = false;
  ++stats_.live_rebuilds;
  rebuilds_counter_.inc();
}

void IngestStream::maintain(bool under_pressure) {
  // Truncation first: once a checkpoint covers a segment (every record at or
  // before the capture point), the segment is only needed as bootstrap
  // grace; drop from the oldest end, keeping `retain_epochs` covered epochs
  // resident (none under memory pressure). Whole segments only -- a merged
  // segment straddling the boundary stays.
  if (checkpoint_) {
    const LogicalTime covered_until = checkpoint_->captured_at();
    std::size_t covered = 0;
    for (const auto& segment : segments_) {
      if (segment->last_time() > covered_until) break;
      covered += segment->epochs();
    }
    const std::size_t keep = under_pressure ? 0 : ingest_.retain_epochs;
    std::size_t remaining = covered;
    std::size_t drop = 0;
    while (drop < segments_.size()) {
      const LogSegment& segment = *segments_[drop];
      if (segment.last_time() > covered_until) break;
      if (remaining < keep + segment.epochs()) break;  // retention floor
      remaining -= segment.epochs();
      segment_bytes_ -= segment.byte_size();
      stats_.truncated_bytes += segment.byte_size();
      truncated_bytes_counter_.inc(segment.byte_size());
      ++stats_.truncated_segments;
      truncated_segments_counter_.inc();
      ++drop;
    }
    if (drop > 0) {
      segments_.erase(segments_.begin(),
                      segments_.begin() + static_cast<std::ptrdiff_t>(drop));
      segments_gauge_.add(-static_cast<std::int64_t>(drop));
    }
  }

  // Compaction: merge the oldest adjacent pair until the resident count is
  // at the watermark. Truncation only ever removes a prefix, so the
  // remaining segments always form an adjacent epoch chain.
  if (ingest_.compact_watermark > 0 &&
      segments_.size() > ingest_.compact_watermark) {
    DP_SPAN_CAT("dp.ingest.compact", "ingest");
    bool merged_any = false;
    while (segments_.size() > ingest_.compact_watermark &&
           segments_.size() >= 2) {
      auto merged = std::make_shared<const LogSegment>(
          LogSegment::merge(*segments_[0], *segments_[1]));
      segment_bytes_ -= segments_[0]->byte_size();
      segment_bytes_ -= segments_[1]->byte_size();
      segment_bytes_ += merged->byte_size();
      segments_[0] = std::move(merged);
      segments_.erase(segments_.begin() + 1);
      segments_gauge_.add(-1);
      ++stats_.segments_compacted;
      compacted_counter_.inc();
      merged_any = true;
    }
    if (merged_any) {
      ++stats_.compactions;
      compactions_counter_.inc();
    }
  }
  update_resident();
}

std::unique_ptr<Engine> IngestStream::bootstrap_engine() const {
  DP_SPAN_CAT("dp.ingest.bootstrap", "ingest");
  auto engine = std::make_unique<Engine>(program_, options_.engine_config);
  for (const Topology::Link& link : topology_.links) {
    engine->add_link(link.a, link.b, link.delay);
  }
  LogicalTime restored_at = 0;
  if (checkpoint_) {
    restored_at = checkpoint_->captured_at();
    checkpoint_->schedule_into(*engine, restored_at);
  }
  // Suffix: resident segments first, then the open epoch straight from the
  // retained log. Records at or before the capture point are already inside
  // the checkpoint's base state.
  const auto feed = [&](const LogRecord& record) {
    if (checkpoint_ && record.time <= restored_at) return;
    if (record.op == LogRecord::Op::kInsert) {
      engine->schedule_insert(record.tuple(), record.time);
    } else {
      engine->schedule_delete(record.tuple(), record.time);
    }
  };
  for (const auto& segment : segments_) {
    for (const LogRecord& record : segment->log().records()) feed(record);
  }
  for (std::size_t i = open_start_; i < log_.size(); ++i) {
    feed(log_.records()[i]);
  }
  engine->run();
  return engine;
}

void IngestStream::write_bootstrap(std::ostream& out) const {
  if (checkpoint_) {
    write_checkpoint_block(out, *checkpoint_, checkpoint_epoch_);
  }
  for (const auto& segment : segments_) segment->serialize(out);
}

IngestStreamStats IngestStream::stats() const {
  IngestStreamStats snapshot = stats_;
  snapshot.sealed_epochs = sealed_epochs_;
  snapshot.open_records = open_records_;
  snapshot.segments = segments_.size();
  snapshot.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  snapshot.watermark = watermark_.load(std::memory_order_relaxed);
  return snapshot;
}

void IngestStream::update_resident() {
  // Graph walk is O(extra edges), so this runs at seal/snapshot/maintenance
  // granularity, not per append.
  const std::uint64_t graph_bytes = recorder_->graph().resident_bytes();
  const std::uint64_t total = graph_bytes + log_.byte_size() + segment_bytes_;
  resident_bytes_.store(total > 0 ? total : 1, std::memory_order_relaxed);
}

}  // namespace dp::ingest
