// Live-tap ingest: an always-current provenance graph per stream.
//
// Every diagnosis used to materialize its BadRun by replaying the recorded
// log (warm sessions only amortize that replay). An IngestStream removes the
// replay from the hot path: base events are appended *as they arrive* and
// fed straight into a resident engine + ProvenanceRecorder, so the columnar
// provenance graph is maintained incrementally and a diagnosis snapshot is a
// lookup, not a replay.
//
// Byte-identity is the contract and the engine's two seq bands are the
// mechanism (runtime/engine.h): an appended event at time t first advances
// the live engine to t-1 (`run_until`), then schedules -- so every event is
// processed against exactly the state, and in exactly the (time, seq) order,
// that a batch replay of the same prefix would produce. A snapshot drains
// the in-flight queue (`run()`), which equals batch replay's quiescence.
// Appends must be time-ordered (watermark-monotone); if an event arrives at
// or before a *quiesced* snapshot's horizon, the live engine is marked stale
// and the next snapshot rebuilds it by one full replay
// (dp.ingest.live_rebuilds) -- graceful degradation to warm-session cost,
// never a wrong answer.
//
// Tiering (paper section 4.8): arriving records accumulate in an open
// *epoch*; epochs seal into immutable LogSegments (segment.h); every K
// sealed epochs a Checkpoint of the live engine's base state is captured. A
// fresh consumer bootstraps from checkpoint + segment suffix instead of the
// full history. Maintenance passes merge small sealed segments (compaction)
// and drop segments once the newest checkpoint covers them (epoch-bounded
// truncation); the full in-memory event log is retained -- DiffProv's own
// experiment replays need the complete prefix -- and is billed, together
// with the graph and the resident segments, through resident_bytes().
//
// Concurrency follows WarmSession: the stream carries one mutex; appenders,
// diagnosis snapshots, and maintenance all hold it ("caller holds mutex()"
// on every mutating call). resident_bytes(), content_hash(), and watermark()
// are relaxed atomics readable without the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "diffprov/diffprov.h"
#include "ingest/segment.h"
#include "obs/metrics.h"
#include "replay/replay_engine.h"

namespace dp::ingest {

struct IngestOptions {
  /// Records per epoch; the open epoch seals when it reaches this many
  /// (clamped to at least 1). seal() forces an early boundary.
  std::size_t epoch_events = 256;
  /// Capture a Checkpoint of the live engine every this many sealed epochs
  /// (0 = never checkpoint, which also disables truncation).
  std::size_t checkpoint_every_epochs = 4;
  /// Resident segments allowed before a maintenance pass merges the oldest
  /// adjacent pair, repeatedly (0 = no compaction).
  std::size_t compact_watermark = 8;
  /// Checkpoint-covered epochs kept resident for bootstrap consumers before
  /// truncation drops them; memory pressure truncates every covered epoch.
  std::size_t retain_epochs = 8;
};

struct IngestStreamStats {
  std::uint64_t events = 0;         // records appended over the stream's life
  std::uint32_t sealed_epochs = 0;  // epochs sealed so far
  std::uint64_t open_records = 0;   // records in the open epoch
  std::uint64_t segments = 0;       // segments currently resident
  std::uint64_t checkpoints = 0;
  std::uint64_t compactions = 0;         // merge passes applied
  std::uint64_t segments_compacted = 0;  // segments merged away
  std::uint64_t truncated_segments = 0;
  std::uint64_t truncated_bytes = 0;
  std::uint64_t live_rebuilds = 0;  // stale snapshots repaired by full replay
  std::uint64_t snapshots = 0;
  std::uint64_t resident_bytes = 0;  // graph + retained log + segments
  LogicalTime watermark = 0;         // newest appended event time
};

class IngestStream {
 public:
  /// A stream serves one program/topology; `good_event`/`bad_event` are the
  /// diagnosis defaults (from the scenario the stream was opened against,
  /// when it was). The live engine starts empty -- history arrives only
  /// through append().
  IngestStream(std::string key, Program program, Topology topology,
               std::optional<Tuple> good_event, std::optional<Tuple> bad_event,
               ReplayOptions options, IngestOptions ingest,
               obs::MetricsRegistry& registry);

  /// Per-stream serialization: hold while calling any mutating member or
  /// while diagnosing against the run returned by ensure_current().
  [[nodiscard]] std::mutex& mutex() { return mutex_; }

  [[nodiscard]] const std::string& key() const { return key_; }
  [[nodiscard]] const Program& program() const { return program_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] const std::optional<Tuple>& good_event() const {
    return good_event_;
  }
  [[nodiscard]] const std::optional<Tuple>& bad_event() const {
    return bad_event_;
  }
  /// The full retained event prefix (caller holds mutex()).
  [[nodiscard]] const EventLog& log() const { return log_; }

  /// Appends one batch of events in EventLog text form ("+ tuple @ t" per
  /// line); the whole batch is validated -- parse (line-numbered errors) and
  /// watermark order -- before any record is applied, so a bad batch never
  /// half-applies. Returns the number of records appended. Caller holds
  /// mutex().
  std::size_t append_text(std::string_view text);

  /// Appends one record (validated against the watermark). Caller holds
  /// mutex().
  void append(const LogRecord& record);

  /// Seals the open epoch now, even if short (no-op when empty). Caller
  /// holds mutex().
  void seal();

  /// The always-current run for diagnosis: drains the in-flight event queue
  /// (or, after a stale append, rebuilds by full replay -- `rebuilt` reports
  /// which). The returned BadRun aliases the live graph/engine; it is valid
  /// while the caller holds mutex(). Caller holds mutex().
  std::shared_ptr<const BadRun> ensure_current(bool* rebuilt = nullptr);

  /// One maintenance pass: truncation (drop checkpoint-covered segments
  /// beyond the retention window; all of them under pressure), then
  /// compaction down to the segment watermark. Caller holds mutex().
  void maintain(bool under_pressure);

  /// Fresh-consumer bootstrap: a new engine restored from the newest
  /// checkpoint plus the retained segment/open-epoch suffix (state
  /// reconstruction, same contract as the warm-session checkpoint tier; not
  /// byte-identical provenance). Runs to quiescence. Caller holds mutex().
  [[nodiscard]] std::unique_ptr<Engine> bootstrap_engine() const;

  /// Writes the bootstrap tier as DPS1 blocks: newest checkpoint (if any)
  /// followed by every resident segment. read_stream_file() decodes it,
  /// tolerating torn tails. Caller holds mutex().
  void write_bootstrap(std::ostream& out) const;

  [[nodiscard]] IngestStreamStats stats() const;  // caller holds mutex()
  [[nodiscard]] const std::vector<std::shared_ptr<const LogSegment>>&
  segments() const {
    return segments_;
  }

  /// Running content hash of the appended prefix (mixes op, time, interned
  /// ref per record); the service keys result-cache entries on it. Readable
  /// without mutex().
  [[nodiscard]] std::uint64_t content_hash() const {
    return hash_.load(std::memory_order_relaxed);
  }
  /// Newest appended event time; readable without mutex().
  [[nodiscard]] LogicalTime watermark() const {
    return watermark_.load(std::memory_order_relaxed);
  }
  /// Measured footprint: provenance graph + retained log + resident
  /// segments. Refreshed at seal/snapshot/maintenance; readable without
  /// mutex() (the budget ledger reads it from other threads).
  [[nodiscard]] std::uint64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

 private:
  void feed_live(const LogRecord& record);
  void seal_epoch();
  void rebuild_live();
  void update_resident();

  std::string key_;
  Program program_;
  Topology topology_;
  std::optional<Tuple> good_event_;
  std::optional<Tuple> bad_event_;
  ReplayOptions options_;
  IngestOptions ingest_;
  obs::MetricsRegistry* registry_;

  std::mutex mutex_;
  // Live tier: the incrementally fed engine and its recorder. shared_ptrs so
  // the BadRun handed to a diagnosis can alias them (WarmSession-style).
  std::shared_ptr<Engine> engine_;
  std::shared_ptr<ProvenanceRecorder> recorder_;
  std::unique_ptr<MetricsObserver> metrics_observer_;
  std::shared_ptr<const BadRun> run_;
  /// True between a snapshot's run-to-quiescence and the next append: the
  /// engine may have processed past the watermark.
  bool quiesced_ = false;
  /// A post-quiescence append landed at or before the engine's horizon; the
  /// live engine no longer matches the prefix and the next snapshot rebuilds
  /// it (appends keep accumulating in the log meanwhile).
  bool stale_live_ = false;

  // Retained history: the full prefix (DiffProv experiment replays need it)
  // plus the open epoch's start index into it.
  EventLog log_;
  std::size_t open_start_ = 0;
  std::size_t open_records_ = 0;

  // Storage tier.
  std::vector<std::shared_ptr<const LogSegment>> segments_;
  std::uint64_t segment_bytes_ = 0;
  std::uint32_t sealed_epochs_ = 0;
  std::optional<Checkpoint> checkpoint_;
  std::uint32_t checkpoint_epoch_ = 0;  // sealed-epoch count at capture

  IngestStreamStats stats_;
  std::atomic<std::uint64_t> hash_{0xcbf29ce484222325ull};
  std::atomic<LogicalTime> watermark_{0};
  std::atomic<std::uint64_t> resident_bytes_{0};

  obs::Counter& events_counter_;
  obs::Counter& epochs_counter_;
  obs::Gauge& segments_gauge_;
  obs::Counter& checkpoints_counter_;
  obs::Counter& compactions_counter_;
  obs::Counter& compacted_counter_;
  obs::Counter& truncated_segments_counter_;
  obs::Counter& truncated_bytes_counter_;
  obs::Counter& rebuilds_counter_;
  obs::Counter& snapshots_counter_;
  obs::Histogram& snapshot_us_;
  // Quantile-sketch twin of snapshot_us_ (same series, tail quantiles).
  obs::QuantileSketch& snapshot_sketch_;
};

}  // namespace dp::ingest
