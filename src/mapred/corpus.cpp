#include "mapred/corpus.h"

#include "util/hash.h"
#include "util/rng.h"

namespace dp::mapred {

std::uint64_t Corpus::total_bytes() const {
  std::uint64_t total = 0;
  for (const CorpusFile& file : files) total += file.bytes;
  return total;
}

Corpus synthetic_corpus(const CorpusConfig& config) {
  Rng rng(config.seed);
  // A small closed vocabulary: "word00" .. "wordNN". Deterministic, readable
  // in provenance dumps, and hash-partitionable like real words.
  std::vector<std::string> vocabulary;
  vocabulary.reserve(config.vocabulary);
  for (std::size_t i = 0; i < config.vocabulary; ++i) {
    vocabulary.push_back("word" + std::string(i < 10 ? "0" : "") +
                         std::to_string(i));
  }

  Corpus corpus;
  for (std::size_t f = 0; f < config.files; ++f) {
    CorpusFile file;
    file.name = "part-" + std::to_string(f) + ".txt";
    for (std::size_t l = 0; l < config.lines_per_file; ++l) {
      const std::size_t words =
          config.min_words_per_line +
          rng.next_below(config.max_words_per_line -
                         config.min_words_per_line + 1);
      std::string line;
      for (std::size_t w = 0; w < words; ++w) {
        if (w > 0) line += ' ';
        line += vocabulary[rng.next_below(vocabulary.size())];
      }
      file.bytes += line.size() + 1;
      file.lines.push_back(std::move(line));
    }
    std::string blob;
    for (const std::string& line : file.lines) {
      blob += line;
      blob += '\n';
    }
    file.checksum = checksum_hex(blob);
    corpus.files.push_back(std::move(file));
  }
  return corpus;
}

CorpusStore::CorpusStore(Corpus corpus) : corpus_(std::move(corpus)) {
  for (std::size_t i = 0; i < corpus_.files.size(); ++i) {
    by_checksum_.emplace(corpus_.files[i].checksum, i);
    by_name_.emplace(corpus_.files[i].name, i);
  }
}

const CorpusFile* CorpusStore::by_checksum(const std::string& cks) const {
  auto it = by_checksum_.find(cks);
  return it == by_checksum_.end() ? nullptr : &corpus_.files[it->second];
}

const CorpusFile* CorpusStore::by_name(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &corpus_.files[it->second];
}

}  // namespace dp::mapred
