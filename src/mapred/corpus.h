// Synthetic text corpora (the Wikipedia-dataset stand-in; see DESIGN.md,
// Substitutions) and the content-addressed store the replay engine reads
// input files from.
//
// The paper's logging engine records only input-file *metadata* (name +
// checksum), not contents (section 6.5: 26 kB of logs for a 12.8 GB
// dataset); at query time the replay engine re-reads the files by checksum,
// "as long as those files are not deleted from HDFS". CorpusStore plays the
// role of HDFS here.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dp::mapred {

struct CorpusFile {
  std::string name;
  std::string checksum;  // content digest (see util/hash.h)
  std::vector<std::string> lines;
  std::uint64_t bytes = 0;
};

struct Corpus {
  std::vector<CorpusFile> files;
  [[nodiscard]] std::uint64_t total_bytes() const;
};

struct CorpusConfig {
  std::size_t files = 4;
  std::size_t lines_per_file = 16;
  std::size_t min_words_per_line = 3;
  std::size_t max_words_per_line = 8;  // the mapper model unrolls to 8 slots
  std::size_t vocabulary = 64;
  std::uint64_t seed = 11;
};

/// Deterministic corpus for the given config.
Corpus synthetic_corpus(const CorpusConfig& config = {});

/// Content-addressed file store ("HDFS"): lookup by checksum.
class CorpusStore {
 public:
  CorpusStore() = default;  // empty store (Scenario default member)
  explicit CorpusStore(Corpus corpus);

  [[nodiscard]] const Corpus& corpus() const { return corpus_; }
  [[nodiscard]] const CorpusFile* by_checksum(const std::string& cks) const;
  [[nodiscard]] const CorpusFile* by_name(const std::string& name) const;

 private:
  Corpus corpus_;
  std::map<std::string, std::size_t> by_checksum_;
  std::map<std::string, std::size_t> by_name_;
};

}  // namespace dp::mapred
