#include "mapred/model.h"

#include "ndlog/parser.h"
#include "util/hash.h"

namespace dp::mapred {

std::string model_source(const ModelConfig& config) {
  std::string src = R"(
    table lineIn(4) base immutable event.      // (@M, File, LineNo, Text)
    table fileIn(3) base immutable.            // (@M, File, Checksum)
    // Job-global state lives at the jobtracker ("jt") and is replicated to
    // every mapper -- the root causes of MR1/MR2 are therefore single base
    // tuples, as in Hadoop, where the config and the deployed jar are
    // job-wide.
    table jobConfG(3) base mutable keys(0, 1).   // (@JT, Key, Value)
    table mapperCodeG(3) base mutable keys(0).   // (@JT, Checksum, Start)
    table mapperAt(2) base immutable.            // (@JT, Mapper)
    table jobConf(3) derived keys(0, 1).         // (@M, Key, Value)
    table mapperCode(3) derived keys(0).         // (@M, Checksum, Start)
    table confDep(3) base mutable keys(0, 1).    // (@M, Key, Value)
    table jobSetup(2) derived keys(0).           // (@M, Digest)
    table mapEmit(5) derived event.              // (@M, File, Line, Slot, W)
    table wordAt(5) derived.                     // (@R, W, File, Line, Slot)
    table wordCount(3) derived keys(0, 1).       // (@R, W, Total)

    rule jc jobConf(@M, K, V) :-
        jobConfG(@JT, K, V), mapperAt(@JT, M).
    rule mc mapperCode(@M, Cks, S) :-
        mapperCodeG(@JT, Cks, S), mapperAt(@JT, M).
  )";

  // jobSetup folds the configuration entries the job reads into one digest;
  // every shuffled pair depends on it, mirroring the paper's 235-entry
  // instrumentation surface.
  src += "    rule js jobSetup(@M, D) :-\n";
  std::string digest = "\"\"";
  for (int i = 0; i < config.conf_deps; ++i) {
    const std::string key =
        "conf" + std::string(i < 10 ? "0" : "") + std::to_string(i);
    src += "        confDep(@M, \"" + key + "\", V" + std::to_string(i) +
           "),\n";
    digest = "f_concat(" + digest + ", V" + std::to_string(i) + ")";
  }
  src += "        D := f_hash(" + digest + ").\n";

  // Mapper rules, one per emission slot.
  for (int slot = 0; slot < config.slots; ++slot) {
    const std::string s = std::to_string(slot);
    src += "    rule m" + s + " mapEmit(@M, F, L, " + s +
           ", W) :-\n"
           "        lineIn(@M, F, L, Text),\n"
           "        fileIn(@M, F, Cks),\n"
           "        mapperCode(@M, CodeCks, Start),\n"
           "        W := f_nth_word(Text, Start + " +
           s +
           "),\n"
           "        f_strlen(W) > 0.\n";
  }

  // The shuffle: Hadoop's hash partitioner, as a rule.
  src +=
      "    rule sh wordAt(@RN, W, F, L, Slot) :-\n"
      "        mapEmit(@M, F, L, Slot, W),\n"
      "        jobConf(@M, \"" +
      std::string(kReducesKey) +
      "\", R),\n"
      "        jobSetup(@M, D),\n"
      "        P := f_partition(W, R),\n"
      "        RN := f_red_node(P).\n";

  // The reduce side: a running count per (reducer, word). The previous
  // aggregate joins each derivation's provenance, so the count's tree is
  // the full contribution chain.
  src +=
      "    rule c1 agg count Total wordCount(@R, W, Total) :-\n"
      "        wordAt(@R, W, F, L, Slot).\n";
  return src;
}

Program make_model(const ModelConfig& config) {
  return parse_program(model_source(config));
}

MapperInfo mapper_info(const std::string& version) {
  if (version == "v1") {
    return {"v1", checksum_hex("wordcount-mapper bytecode v1"), 0};
  }
  if (version == "v2") {
    // The buggy deployment: starts at word 1, dropping each line's first
    // word (paper scenario MR2).
    return {"v2", checksum_hex("wordcount-mapper bytecode v2"), 1};
  }
  throw ProgramError("unknown mapper version: " + version);
}

std::optional<MapperInfo> mapper_by_checksum(const std::string& checksum) {
  for (const char* version : {"v1", "v2"}) {
    MapperInfo info = mapper_info(version);
    if (info.checksum == checksum) return info;
  }
  return std::nullopt;
}

}  // namespace dp::mapred
