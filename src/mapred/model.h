// The WordCount system model shared by both MapReduce variants (paper
// sections 5 and 6.2).
//
// The paper evaluates the MR scenarios twice: a *declarative* implementation
// executed by the NDlog engine (MR1-D / MR2-D; recorder mode "infer"), and
// Hadoop's *imperative* codebase instrumented to report dependencies at
// key-value granularity (MR1-I / MR2-I; recorder mode "report"). Both share
// one model so DiffProv can reason about either:
//
//   lineIn(@M, File, LineNo, Text)       input records (immutable)
//   fileIn(@M, File, Checksum)           input-file identity (immutable)
//   mapperCode(@M, Checksum, Start)      the deployed mapper version; the
//                                        buggy v2 starts tokenizing at word
//                                        1, dropping each line's first word
//   jobConf(@M, Key, Value)              e.g. "mapreduce.job.reduces"
//   confDep(@M, Key, Value)              the other configuration entries the
//                                        job reads (folded into jobSetup)
//   mapEmit(@M, File, LineNo, Slot, W)   one mapper emission per slot
//   wordAt(@Reducer, W, File, LineNo, Slot)  the shuffled key-value pair
//   wordCount(@Reducer, W, Total)        the reducer's running count (an
//                                        `agg count` rule; its provenance
//                                        is the chain of all contributions,
//                                        which is what makes the MR trees
//                                        as deep as the paper's)
//
// Mapper rules are unrolled per emission slot (m0..m<slots-1>), each reading
// word Start+slot of the line; the shuffle rule partitions by
// f_partition(W, R) exactly like Hadoop's default HashPartitioner.
#pragma once

#include <string>

#include "ndlog/program.h"

namespace dp::mapred {

struct ModelConfig {
  int slots = 8;      // max words per line the mapper model handles
  int conf_deps = 24; // unrolled configuration-entry dependencies
                      // (a scaled stand-in for the paper's 235)
};

/// Generates the NDlog source of the model.
std::string model_source(const ModelConfig& config = {});

/// Parses and validates the model.
Program make_model(const ModelConfig& config = {});

/// A mapper implementation version: its "bytecode" checksum and the word
/// index it starts tokenizing at (v1 -> 0 correct, v2 -> 1 buggy).
struct MapperInfo {
  std::string version;
  std::string checksum;
  int start = 0;
};

/// Known mapper versions ("v1", "v2"); throws on unknown versions.
MapperInfo mapper_info(const std::string& version);

/// Reverse lookup by checksum; nullopt if unknown.
std::optional<MapperInfo> mapper_by_checksum(const std::string& checksum);

/// The configuration key of MR1's root cause.
inline constexpr const char* kReducesKey = "mapreduce.job.reduces";

}  // namespace dp::mapred
