#include "mapred/scenario.h"

namespace dp::mapred {

namespace {

/// Per-word corpus statistics, in deterministic corpus order.
struct WordStat {
  int total = 0;          // occurrences anywhere (the v1 count)
  int non_first = 0;      // occurrences at word index >= 1 (the v2 count)
  int last_index = 0;     // word index of the last occurrence
  bool first_somewhere = false;  // appears as some line's first word
};

std::map<std::string, WordStat> word_stats(const Corpus& corpus) {
  std::map<std::string, WordStat> stats;
  for (const CorpusFile& file : corpus.files) {
    for (const std::string& text : file.lines) {
      std::size_t pos = 0;
      int index = 0;
      while (pos < text.size()) {
        const std::size_t end = text.find(' ', pos);
        const std::size_t stop = end == std::string::npos ? text.size() : end;
        WordStat& stat = stats[text.substr(pos, stop - pos)];
        ++stat.total;
        if (index >= 1) ++stat.non_first;
        if (index == 0) stat.first_somewhere = true;
        stat.last_index = index;
        pos = stop + 1;
        ++index;
      }
    }
  }
  return stats;
}

Tuple word_count_tuple(const std::string& word, int reducers, int count) {
  return Tuple("wordCount",
               {Value("rd" + std::to_string(partition_of(word, reducers))),
                Value(word), Value(count)});
}

Scenario base_scenario(bool declarative, const CorpusConfig& corpus_config) {
  Scenario s;
  s.declarative = declarative;
  s.model = make_model();
  s.store = CorpusStore(synthetic_corpus(corpus_config));
  return s;
}

void setup_mr1(Scenario& s) {
  s.good_config.num_reducers = 4;
  s.bad_config.num_reducers = 2;  // the accidental change
  // Diagnose an output kv (word + count) that moved to a different output
  // file: the first word whose hash partitions differently under the two
  // reducer counts. Its count is unchanged; only the placement differs.
  const auto stats = word_stats(s.store.corpus());
  for (const auto& [word, stat] : stats) {
    if (partition_of(word, s.good_config.num_reducers) ==
        partition_of(word, s.bad_config.num_reducers)) {
      continue;
    }
    s.good_event =
        word_count_tuple(word, s.good_config.num_reducers, stat.total);
    s.bad_event =
        word_count_tuple(word, s.bad_config.num_reducers, stat.total);
    break;
  }
  s.expected_root_cause = std::string(kReducesKey);
  s.description =
      "Configuration change: mapreduce.job.reduces accidentally changed "
      "from 4 to 2; output kv pairs land in different output files than in "
      "the reference job.";
}

void setup_mr2(Scenario& s) {
  s.good_config.mapper_version = "v1";
  s.bad_config.mapper_version = "v2";  // drops the first word of each line
  // Diagnose an output count that shrank: a word that appears as some
  // line's first word (so v2 loses occurrences) but whose *last* occurrence
  // sits at word index >= 1 (so both jobs' final contribution comes from
  // the same input line, keeping the two trees' seeds aligned).
  const auto stats = word_stats(s.store.corpus());
  const int r = s.good_config.num_reducers;
  for (const auto& [word, stat] : stats) {
    if (!stat.first_somewhere || stat.non_first < 1 || stat.last_index < 1) {
      continue;
    }
    if (stat.non_first == stat.total) continue;  // count must actually drop
    s.good_event = word_count_tuple(word, r, stat.total);
    s.bad_event = word_count_tuple(word, r, stat.non_first);
    break;
  }
  s.expected_root_cause = mapper_info("v1").checksum;
  s.description =
      "Code change: the deployed mapper (identified by its bytecode "
      "checksum) drops the first word of every line; output counts shrink.";
}

}  // namespace

Scenario mr1_declarative(CorpusConfig corpus) {
  Scenario s = base_scenario(true, corpus);
  s.name = "MR1-D";
  setup_mr1(s);
  return s;
}

Scenario mr2_declarative(CorpusConfig corpus) {
  Scenario s = base_scenario(true, corpus);
  s.name = "MR2-D";
  setup_mr2(s);
  return s;
}

Scenario mr1_imperative(CorpusConfig corpus) {
  Scenario s = base_scenario(false, corpus);
  s.name = "MR1-I";
  setup_mr1(s);
  return s;
}

Scenario mr2_imperative(CorpusConfig corpus) {
  Scenario s = base_scenario(false, corpus);
  s.name = "MR2-I";
  setup_mr2(s);
  return s;
}

std::vector<Scenario> all_scenarios(CorpusConfig corpus) {
  std::vector<Scenario> out;
  out.push_back(mr1_declarative(corpus));
  out.push_back(mr2_declarative(corpus));
  out.push_back(mr1_imperative(corpus));
  out.push_back(mr2_imperative(corpus));
  return out;
}

Diagnosis diagnose(const Scenario& scenario, const DiffProvConfig& config) {
  // The reference tree comes from a separate, correct job execution.
  std::unique_ptr<ReplayProvider> good_provider;
  std::unique_ptr<ReplayProvider> bad_provider;
  EventLog good_log;
  EventLog bad_log;
  Topology topology;
  if (scenario.declarative) {
    good_log = declarative_job_log(scenario.store, scenario.good_config);
    bad_log = declarative_job_log(scenario.store, scenario.bad_config);
    good_provider = std::make_unique<LogReplayProvider>(
        scenario.model, topology, good_log);
    bad_provider = std::make_unique<LogReplayProvider>(scenario.model,
                                                       topology, bad_log);
  } else {
    good_provider = std::make_unique<WordCountReplayProvider>(
        scenario.store, scenario.good_config);
    bad_provider = std::make_unique<WordCountReplayProvider>(
        scenario.store, scenario.bad_config);
  }

  const BadRun good_run = good_provider->replay_bad({});
  auto good_tree = locate_tree(*good_run.graph, scenario.good_event);
  if (!good_tree) {
    throw ProgramError(scenario.name + ": reference event " +
                       scenario.good_event.to_string() +
                       " not found in the good job");
  }
  const BadRun bad_run = bad_provider->replay_bad({});
  auto bad_tree = locate_tree(*bad_run.graph, scenario.bad_event);
  if (!bad_tree) {
    throw ProgramError(scenario.name + ": event of interest " +
                       scenario.bad_event.to_string() +
                       " not found in the bad job");
  }

  DiffProv diffprov(scenario.model, *bad_provider, config);
  DiffProvResult result = diffprov.diagnose(*good_tree, scenario.bad_event);
  return Diagnosis{std::move(*good_tree), std::move(*bad_tree),
                   std::move(result)};
}

}  // namespace dp::mapred
