// The paper's MapReduce diagnostic scenarios (section 6.2), in both the
// declarative (MR1-D / MR2-D, NDlog engine) and imperative (MR1-I / MR2-I,
// instrumented job) implementations:
//
//   MR1  Configuration changes: the user accidentally changed
//        mapreduce.job.reduces, so almost every word lands on a different
//        reducer than in the reference job.
//   MR2  Code changes: a new mapper version drops the first word of every
//        line, so the job output differs for a previously used input file.
//
// The reference event always comes from a *separate* (earlier, correct) job
// execution -- which is why the paper's Figure 7 counts three replays for
// the MR queries.
#pragma once

#include "mapred/wordcount.h"

namespace dp::mapred {

struct Scenario {
  std::string name;
  std::string description;
  bool declarative = true;
  Program model;
  CorpusStore store;
  JobConfig good_config;
  JobConfig bad_config;
  Tuple good_event{"wordAt", {Value("rd0"), Value(""), Value(""), Value(0), Value(0)}};
  Tuple bad_event = good_event;
  std::string expected_root_cause;
};

Scenario mr1_declarative(CorpusConfig corpus = {});
Scenario mr2_declarative(CorpusConfig corpus = {});
Scenario mr1_imperative(CorpusConfig corpus = {});
Scenario mr2_imperative(CorpusConfig corpus = {});

/// All four, in paper order (MR1-D, MR2-D, MR1-I, MR2-I).
std::vector<Scenario> all_scenarios(CorpusConfig corpus = {});

/// Queries the reference tree from the scenario's *good* job and runs the
/// diagnosis against its *bad* job, using the variant-appropriate provider.
struct Diagnosis {
  ProvTree good_tree;
  ProvTree bad_tree;
  DiffProvResult result;
};
Diagnosis diagnose(const Scenario& scenario,
                   const DiffProvConfig& config = {});

}  // namespace dp::mapred
