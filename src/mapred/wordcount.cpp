#include "mapred/wordcount.h"

#include "util/hash.h"

namespace dp::mapred {

namespace {

Tuple make(const std::string& table, std::vector<Value> values) {
  return Tuple(table, std::move(values));
}

std::string conf_key(int i) {
  return "conf" + std::string(i < 10 ? "0" : "") + std::to_string(i);
}

std::string conf_value(int i) { return "val" + std::to_string(i); }

/// The same digest rule js computes: f_hash over the concatenated values.
std::int64_t setup_digest(int conf_deps) {
  std::string blob;
  for (int i = 0; i < conf_deps; ++i) blob += conf_value(i);
  return static_cast<std::int64_t>(fnv1a(blob) & 0x7FFFFFFF);
}

/// Whitespace tokenizer matching the f_nth_word builtin.
std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> words;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos >= text.size()) break;
    const std::size_t end = text.find(' ', pos);
    const std::size_t stop = end == std::string::npos ? text.size() : end;
    words.push_back(text.substr(pos, stop - pos));
    pos = stop;
  }
  return words;
}

}  // namespace

NodeName mapper_node(std::size_t file_index) {
  return "m" + std::to_string(file_index);
}

LogicalTime line_time(std::size_t global_line_index) {
  return 100 + 10 * static_cast<LogicalTime>(global_line_index);
}

Tuple line_tuple(const NodeName& mapper, const CorpusFile& file,
                 std::size_t line_no) {
  return make("lineIn", {mapper, file.name,
                         static_cast<std::int64_t>(line_no),
                         file.lines[line_no]});
}

Tuple word_at_tuple(const std::string& reducer, const std::string& word,
                    const std::string& file, std::size_t line_no, int slot) {
  return make("wordAt", {reducer, word, file,
                         static_cast<std::int64_t>(line_no), slot});
}

int partition_of(const std::string& word, int num_reducers) {
  return static_cast<int>((fnv1a(word) & 0x7FFFFFFF) %
                          static_cast<std::uint64_t>(num_reducers));
}

JobOutput run_wordcount(const CorpusStore& store, const JobConfig& config,
                        const JobRunOptions& options) {
  JobOutput output;
  const MapperInfo mapper = mapper_info(config.mapper_version);
  const Corpus& corpus = store.corpus();

  auto report_base = [&](const Tuple& t, LogicalTime at, bool event = false) {
    if (options.recorder != nullptr) options.recorder->report_base(t, at, event);
  };
  auto log_metadata = [&](const Tuple& t, LogicalTime at) {
    if (options.metadata_log != nullptr) options.metadata_log->append_insert(t, at);
  };

  // --- job-global state at the jobtracker --------------------------------
  const Tuple global_conf =
      make("jobConfG", {"jt", kReducesKey, config.num_reducers});
  const Tuple global_code =
      make("mapperCodeG", {"jt", mapper.checksum, mapper.start});
  report_base(global_conf, 0);
  log_metadata(global_conf, 0);
  report_base(global_code, 1);
  log_metadata(global_code, 1);

  // --- per-mapper setup: replicated config/code, conf entries, files -----
  for (std::size_t f = 0; f < corpus.files.size(); ++f) {
    const NodeName m = mapper_node(f);
    const Tuple placement = make("mapperAt", {"jt", m});
    report_base(placement, 2);
    log_metadata(placement, 2);
    const Tuple reduces =
        make("jobConf", {m, kReducesKey, config.num_reducers});
    const Tuple code = make("mapperCode", {m, mapper.checksum, mapper.start});
    if (options.recorder != nullptr) {
      options.recorder->report_derivation(reduces, "jc",
                                          {global_conf, placement}, 1, 10);
      options.recorder->report_derivation(code, "mc",
                                          {global_code, placement}, 1, 10);
    }
    if (options.facts != nullptr) {
      options.facts->emplace(reduces, 10);
      options.facts->emplace(code, 10);
    }
    std::vector<Tuple> confdeps;
    for (int i = 0; i < config.model.conf_deps; ++i) {
      Tuple dep = make("confDep", {m, conf_key(i), conf_value(i)});
      report_base(dep, 2);
      log_metadata(dep, 2);
      confdeps.push_back(std::move(dep));
    }
    // Input-file identity: recompute the checksum per read unless cached
    // (section 6.4's dominating cost / optimization).
    std::string checksum = corpus.files[f].checksum;
    if (options.recompute_checksums) {
      std::string blob;
      for (const std::string& line : corpus.files[f].lines) {
        blob += line;
        blob += '\n';
      }
      checksum = checksum_hex(blob);
    }
    const Tuple file_id = make("fileIn", {m, corpus.files[f].name, checksum});
    report_base(file_id, 3);
    log_metadata(file_id, 3);

    // jobSetup: the digest over all config entries the job reads.
    const Tuple setup =
        make("jobSetup", {m, setup_digest(config.model.conf_deps)});
    if (options.recorder != nullptr) {
      options.recorder->report_derivation(setup, "js", confdeps,
                                          confdeps.size() - 1, 5);
    }
    if (options.facts != nullptr) options.facts->emplace(setup, 5);
  }

  // --- map + shuffle ------------------------------------------------------
  std::size_t global_line = 0;
  for (std::size_t f = 0; f < corpus.files.size(); ++f) {
    const CorpusFile& file = corpus.files[f];
    const NodeName m = mapper_node(f);
    const Tuple code = make("mapperCode", {m, mapper.checksum, mapper.start});
    const Tuple file_id = make("fileIn", {m, file.name, file.checksum});
    const Tuple reduces =
        make("jobConf", {m, kReducesKey, config.num_reducers});
    const Tuple setup =
        make("jobSetup", {m, setup_digest(config.model.conf_deps)});

    for (std::size_t l = 0; l < file.lines.size(); ++l, ++global_line) {
      const LogicalTime lt = line_time(global_line);
      const Tuple line = line_tuple(m, file, l);
      report_base(line, lt, /*is_event=*/true);
      ++output.lines;

      const std::vector<std::string> words = tokenize(file.lines[l]);
      for (int slot = 0; slot < config.model.slots; ++slot) {
        const std::size_t index =
            static_cast<std::size_t>(mapper.start + slot);
        if (index >= words.size()) break;
        const std::string& word = words[index];
        const LogicalTime et = lt + 1 + slot;
        const Tuple emit =
            make("mapEmit", {m, file.name, static_cast<std::int64_t>(l),
                             slot, word});
        if (options.recorder != nullptr) {
          options.recorder->report_derivation(
              emit, "m" + std::to_string(slot), {line, file_id, code}, 0, et,
              /*is_event=*/true);
        }
        ++output.emissions;

        const int p = partition_of(word, config.num_reducers);
        const std::string reducer = "rd" + std::to_string(p);
        const Tuple shuffled = word_at_tuple(reducer, word, file.name, l,
                                             slot);
        if (options.recorder != nullptr) {
          options.recorder->report_derivation(shuffled, "sh",
                                              {emit, reduces, setup}, 0,
                                              et + 10);
        }
        if (options.facts != nullptr) {
          options.facts->emplace(shuffled, et + 10);
        }

        // The reducer's running count: each contribution chains the
        // previous aggregate into its provenance, displacing it -- exactly
        // what the declarative `agg count` rule c1 produces.
        const int new_count = ++output.counts[reducer][word];
        const Tuple count_tuple =
            make("wordCount", {reducer, word, new_count});
        if (options.recorder != nullptr) {
          std::vector<Tuple> chain = {shuffled};
          if (new_count > 1) {
            const Tuple previous =
                make("wordCount", {reducer, word, new_count - 1});
            options.recorder->report_delete(previous, et + 11);
            chain.push_back(previous);
          }
          options.recorder->report_derivation(count_tuple, "c1", chain, 0,
                                              et + 11);
        }
        if (options.facts != nullptr) {
          options.facts->emplace(count_tuple, et + 11);
        }
      }
    }
  }
  return output;
}

EventLog declarative_job_log(const CorpusStore& store,
                             const JobConfig& config) {
  EventLog log;
  const MapperInfo mapper = mapper_info(config.mapper_version);
  const Corpus& corpus = store.corpus();
  log.append_insert(
      make("jobConfG", {"jt", kReducesKey, config.num_reducers}), 0);
  log.append_insert(
      make("mapperCodeG", {"jt", mapper.checksum, mapper.start}), 1);
  for (std::size_t f = 0; f < corpus.files.size(); ++f) {
    const NodeName m = mapper_node(f);
    log.append_insert(make("mapperAt", {"jt", m}), 2);
    for (int i = 0; i < config.model.conf_deps; ++i) {
      log.append_insert(make("confDep", {m, conf_key(i), conf_value(i)}), 2);
    }
    log.append_insert(
        make("fileIn", {m, corpus.files[f].name, corpus.files[f].checksum}),
        3);
  }
  std::size_t global_line = 0;
  for (std::size_t f = 0; f < corpus.files.size(); ++f) {
    const CorpusFile& file = corpus.files[f];
    for (std::size_t l = 0; l < file.lines.size(); ++l, ++global_line) {
      log.append_insert(line_tuple(mapper_node(f), file, l),
                        line_time(global_line));
    }
  }
  return log;
}

// ---------------------------------------------------------------------------

namespace {

/// StateView over an imperative job run: base tuples are synthesized from
/// the (delta-adjusted) configuration and the corpus; derived facts come
/// from the run.
class JobStateView final : public StateView {
 public:
  JobStateView(const CorpusStore& store, JobConfig config,
               std::shared_ptr<const std::map<Tuple, LogicalTime>> facts)
      : store_(&store),
        config_(std::move(config)),
        mapper_(mapper_info(config_.mapper_version)),
        facts_(std::move(facts)) {}

  [[nodiscard]] bool existed_at(const Tuple& tuple,
                                LogicalTime at) const override {
    bool found = false;
    scan_table(tuple.location(), tuple.table(), at, [&](const Tuple& t) {
      if (t == tuple) found = true;
    });
    return found;
  }

  void scan_table(
      const NodeName& node, const std::string& table, LogicalTime at,
      const std::function<void(const Tuple&)>& fn) const override {
    const auto file_index = mapper_index(node);
    const Corpus& corpus = store_->corpus();
    if (table == "jobConfG") {
      if (node == "jt" && at >= 0) {
        fn(Tuple("jobConfG", {Value("jt"), Value(kReducesKey),
                              Value(config_.num_reducers)}));
      }
      return;
    }
    if (table == "mapperCodeG") {
      if (node == "jt" && at >= 1) {
        fn(Tuple("mapperCodeG", {Value("jt"), Value(mapper_.checksum),
                                 Value(mapper_.start)}));
      }
      return;
    }
    if (table == "mapperAt") {
      if (node == "jt" && at >= 2) {
        for (std::size_t f = 0; f < corpus.files.size(); ++f) {
          fn(Tuple("mapperAt", {Value("jt"), Value(mapper_node(f))}));
        }
      }
      return;
    }
    if (table == "jobConf") {
      if (file_index && at >= 10) {
        fn(Tuple("jobConf", {Value(node), Value(kReducesKey),
                             Value(config_.num_reducers)}));
      }
      return;
    }
    if (table == "mapperCode") {
      if (file_index && at >= 10) {
        fn(Tuple("mapperCode", {Value(node), Value(mapper_.checksum),
                                Value(mapper_.start)}));
      }
      return;
    }
    if (table == "confDep") {
      if (!file_index || at < 2) return;
      for (int i = 0; i < config_.model.conf_deps; ++i) {
        fn(Tuple("confDep", {Value(node), Value(conf_key(i)),
                             Value(conf_value(i))}));
      }
      return;
    }
    if (table == "fileIn") {
      if (!file_index || at < 3 || *file_index >= corpus.files.size()) return;
      fn(Tuple("fileIn", {Value(node), Value(corpus.files[*file_index].name),
                          Value(corpus.files[*file_index].checksum)}));
      return;
    }
    if (table == "lineIn") {
      if (!file_index || *file_index >= corpus.files.size()) return;
      std::size_t global = 0;
      for (std::size_t f = 0; f < *file_index; ++f) {
        global += corpus.files[f].lines.size();
      }
      const CorpusFile& file = corpus.files[*file_index];
      for (std::size_t l = 0; l < file.lines.size(); ++l) {
        if (line_time(global + l) <= at) fn(line_tuple(node, file, l));
      }
      return;
    }
    // Derived facts (jobSetup, wordAt).
    for (const auto& [tuple, created] : *facts_) {
      if (tuple.table() == table && tuple.location() == node &&
          created <= at) {
        fn(tuple);
      }
    }
  }

 private:
  static std::optional<std::size_t> mapper_index(const NodeName& node) {
    if (node.size() < 2 || node[0] != 'm') return std::nullopt;
    try {
      return static_cast<std::size_t>(std::stoull(node.substr(1)));
    } catch (...) {
      return std::nullopt;
    }
  }

  const CorpusStore* store_;
  JobConfig config_;
  MapperInfo mapper_;
  std::shared_ptr<const std::map<Tuple, LogicalTime>> facts_;
};

}  // namespace

BadRun WordCountReplayProvider::replay_bad(const Delta& delta) {
  // Interpret Δ as configuration changes: the reducer count, the deployed
  // mapper version (identified by its bytecode checksum), or other config
  // entries. Deletions are the displacement halves of changes; inserts win.
  JobConfig config = base_config_;
  for (const DeltaOp& op : delta) {
    if (op.kind != DeltaOp::Kind::kInsert) continue;
    if (op.tuple.table() == "jobConfG" &&
        op.tuple.at(1).as_string() == kReducesKey) {
      config.num_reducers = static_cast<int>(op.tuple.at(2).as_int());
    } else if (op.tuple.table() == "mapperCodeG") {
      if (auto info = mapper_by_checksum(op.tuple.at(1).as_string())) {
        config.mapper_version = info->version;
      }
    }
  }
  last_config_ = config;

  auto recorder = std::make_shared<ProvenanceRecorder>();
  auto facts = std::make_shared<std::map<Tuple, LogicalTime>>();
  JobRunOptions options;
  options.recorder = recorder.get();
  options.facts = facts.get();
  run_wordcount(*store_, config, options);

  BadRun run;
  run.graph = std::shared_ptr<const ProvenanceGraph>(recorder,
                                                     &recorder->graph());
  run.state = std::make_shared<JobStateView>(*store_, config, facts);
  return run;
}

}  // namespace dp::mapred
