// The imperative WordCount job (Hadoop stand-in) with report-mode
// provenance instrumentation, plus the matching declarative job builder.
//
// Both variants produce the *same* tuples on the same logical timeline, so a
// reference tree from one job aligns with an event from another:
//   t=0 jobConf, t=1 mapperCode, t=2 confDep*, t=3 fileIn,
//   line i (globally) arrives at t = 100 + 10*i,
//   mapEmit at line+1+slot, wordAt at the reducer 10 later.
//
// The imperative job executes real tokenization/hash-partitioning code and
// *reports* its dependencies (paper: "less than 200 lines of
// instrumentation... at the level of individual key-value pairs, input data
// files, Java bytecode signatures, and configuration entries"); the
// declarative variant feeds the same base tuples through the NDlog engine
// and lets rules m0..m7/sh derive the rest.
#pragma once

#include <map>

#include "diffprov/diffprov.h"
#include "mapred/corpus.h"
#include "mapred/model.h"
#include "provenance/recorder.h"
#include "replay/event_log.h"

namespace dp::mapred {

struct JobConfig {
  int num_reducers = 4;
  std::string mapper_version = "v1";
  ModelConfig model;
};

struct JobOutput {
  /// reducer node -> word -> count (the job's output files).
  std::map<std::string, std::map<std::string, int>> counts;
  std::size_t emissions = 0;
  std::size_t lines = 0;
};

struct JobRunOptions {
  /// Report-mode instrumentation target (may be null: uninstrumented run).
  ProvenanceRecorder* recorder = nullptr;
  /// Persistent log; receives *metadata only* (config, code and file
  /// checksums -- never file contents; paper section 6.5).
  EventLog* metadata_log = nullptr;
  /// Recompute file checksums on every read instead of using the store's
  /// cached digests -- the dominating logging cost of section 6.4, and the
  /// optimization that reduces it to ~0.2%.
  bool recompute_checksums = false;
  /// Filled with derived-fact creation times for the StateView (optional).
  std::map<Tuple, LogicalTime>* facts = nullptr;
};

/// Runs the imperative job. Deterministic.
JobOutput run_wordcount(const CorpusStore& store, const JobConfig& config,
                        const JobRunOptions& options = {});

// --- shared tuple builders / timeline (used by scenarios and tests) ---
NodeName mapper_node(std::size_t file_index);
LogicalTime line_time(std::size_t global_line_index);
Tuple line_tuple(const NodeName& mapper, const CorpusFile& file,
                 std::size_t line_no);
Tuple word_at_tuple(const std::string& reducer, const std::string& word,
                    const std::string& file, std::size_t line_no, int slot);

/// Hadoop's default partitioner, bit-identical to the f_partition builtin.
int partition_of(const std::string& word, int num_reducers);

/// Builds the event log that drives the *declarative* variant through the
/// NDlog engine (same base tuples, same timeline).
EventLog declarative_job_log(const CorpusStore& store,
                             const JobConfig& config);

/// Replay provider for the imperative variant: re-runs the instrumented job
/// with the Δ applied to its configuration (reducer count, mapper version,
/// config entries).
class WordCountReplayProvider final : public ReplayProvider {
 public:
  WordCountReplayProvider(const CorpusStore& store, JobConfig config)
      : store_(&store), base_config_(std::move(config)) {}

  BadRun replay_bad(const Delta& delta) override;

  /// The configuration produced by the last delta (for tests).
  [[nodiscard]] const JobConfig& last_config() const { return last_config_; }

 private:
  const CorpusStore* store_;
  JobConfig base_config_;
  JobConfig last_config_ = base_config_;
};

}  // namespace dp::mapred
