#include "ndlog/ast.h"

namespace dp {

std::string_view binop_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kBitAnd: return "&";
    case BinOp::kBitOr: return "|";
    case BinOp::kBitXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

bool is_comparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kAnd:
    case BinOp::kOr:
      return true;
    default:
      return false;
  }
}

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::kConst:
      return constant.to_string();
    case Kind::kVar:
      return var;
    case Kind::kBinary:
      return "(" + children[0]->to_string() + " " +
             std::string(binop_name(op)) + " " + children[1]->to_string() +
             ")";
    case Kind::kCall: {
      std::string out = fn + "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->to_string();
      }
      return out + ")";
    }
    case Kind::kNeg:
      return "-" + children[0]->to_string();
    case Kind::kNot:
      return "!" + children[0]->to_string();
  }
  return "?";
}

void Expr::collect_vars(std::vector<std::string>& out) const {
  if (kind == Kind::kVar) {
    out.push_back(var);
    return;
  }
  for (const ExprPtr& child : children) child->collect_vars(out);
}

ExprPtr Expr::make_const(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->constant = std::move(v);
  return e;
}

ExprPtr Expr::make_var(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::make_call(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCall;
  e->fn = std::move(fn);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::make_neg(ExprPtr inner) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kNeg;
  e->children = {std::move(inner)};
  return e;
}

ExprPtr Expr::make_not(ExprPtr inner) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kNot;
  e->children = {std::move(inner)};
  return e;
}

std::string AtomArg::to_string() const {
  return is_var ? var : constant.to_string();
}

std::string BodyAtom::to_string() const {
  std::string out = table + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    if (i == 0) out += "@";
    out += args[i].to_string();
  }
  return out + ")";
}

std::string HeadAtom::to_string() const {
  std::string out = table + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    if (i == 0) out += "@";
    out += args[i]->to_string();
  }
  return out + ")";
}

std::string Assignment::to_string() const {
  return var + " := " + expr->to_string();
}

std::string AggSpec::to_string() const {
  if (kind == Kind::kCount) return "agg count " + var;
  return "agg sum " + var + " " + sum_var;
}

std::string Rule::to_string() const {
  std::string out = "rule " + name + " ";
  if (argmax_var) out += "argmax " + *argmax_var + " ";
  if (agg) out += agg->to_string() + " ";
  out += head.to_string() + " :- ";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ", ";
    first = false;
  };
  for (const BodyAtom& atom : body) {
    sep();
    out += atom.to_string();
  }
  for (const Assignment& assign : assigns) {
    sep();
    out += assign.to_string();
  }
  for (const ExprPtr& c : constraints) {
    sep();
    out += c->to_string();
  }
  return out + ".";
}

}  // namespace dp
