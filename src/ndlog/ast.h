// Abstract syntax for NDlog programs (paper section 3.1).
//
// Rules have the form
//
//   rule r1 head(@N, e1, e2) :- atom1(@N, X, Y), atom2(@N, Y, Z),
//                               W := Z * 2 + 1, f_matches(X, P) == 1.
//
// Body atom arguments are variables or constants; head arguments and
// assignment right-hand sides are full expressions. All body atoms must share
// one location variable (the rule is "localized"); the head location may name
// any variable bound in the body, in which case firing the rule sends the
// head tuple across a link.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ndlog/value.h"

namespace dp {

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

/// Operator spelling, e.g. "+", "==".
std::string_view binop_name(BinOp op);

/// True for ==, !=, <, <=, >, >=, &&, || (results are 0/1 ints).
bool is_comparison(BinOp op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression tree. Shared pointers keep subtrees cheap to reuse
/// when DiffProv composes taint formulas out of rule expressions.
struct Expr {
  enum class Kind : std::uint8_t { kConst, kVar, kBinary, kCall, kNeg, kNot };

  Kind kind = Kind::kConst;
  Value constant;                 // kConst
  std::string var;                // kVar
  BinOp op = BinOp::kAdd;         // kBinary
  std::string fn;                 // kCall
  std::vector<ExprPtr> children;  // kBinary (2), kCall (n), kNeg/kNot (1)

  [[nodiscard]] std::string to_string() const;

  /// All variable names referenced anywhere in the expression.
  void collect_vars(std::vector<std::string>& out) const;

  static ExprPtr make_const(Value v);
  static ExprPtr make_var(std::string name);
  static ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr make_call(std::string fn, std::vector<ExprPtr> args);
  static ExprPtr make_neg(ExprPtr inner);
  static ExprPtr make_not(ExprPtr inner);
};

/// One argument of a body atom: a variable binding or a constant match.
/// "_" parses as an anonymous variable (fresh name per occurrence).
struct AtomArg {
  bool is_var = false;
  std::string var;  // when is_var
  Value constant;   // otherwise

  static AtomArg variable(std::string name) {
    AtomArg a;
    a.is_var = true;
    a.var = std::move(name);
    return a;
  }
  static AtomArg constant_value(Value v) {
    AtomArg a;
    a.constant = std::move(v);
    return a;
  }
  [[nodiscard]] std::string to_string() const;
};

/// A body atom: table name plus variable/constant argument patterns. The
/// first argument is the location (written `@X` in source).
struct BodyAtom {
  std::string table;
  std::vector<AtomArg> args;

  [[nodiscard]] std::string to_string() const;
};

/// The head atom: table name plus full expressions (first = location).
struct HeadAtom {
  std::string table;
  std::vector<ExprPtr> args;

  [[nodiscard]] std::string to_string() const;
};

/// `Var := expr`, evaluated left to right after the joins bind atom vars.
struct Assignment {
  std::string var;
  ExprPtr expr;

  [[nodiscard]] std::string to_string() const;
};

/// Aggregation qualifier: the head variable `var` receives a running
/// aggregate over all firings with the same values for the *other* head
/// arguments (the group). `rule c1 agg count Total wordCount(@R, W, Total)
/// :- wordAt(@R, W, F, L, S).` counts occurrences per (reducer, word).
/// Aggregates are append-only: contributions are never retracted (each new
/// value displaces the previous one via the head table's keys, and the
/// previous aggregate tuple appears in the derivation's provenance, forming
/// the contribution chain).
struct AggSpec {
  enum class Kind : std::uint8_t { kCount, kSum };
  Kind kind = Kind::kCount;
  std::string var;       // the head variable receiving the aggregate
  std::string sum_var;   // kSum: the body variable being summed
  std::size_t head_index = 0;  // resolved by validation

  [[nodiscard]] std::string to_string() const;
};

/// One derivation rule.
struct Rule {
  std::string name;
  HeadAtom head;
  std::vector<BodyAtom> body;
  std::vector<Assignment> assigns;
  std::vector<ExprPtr> constraints;

  /// Aggregation (see AggSpec). Mutually composable with argmax.
  std::optional<AggSpec> agg;

  /// OpenFlow-style longest/highest-priority match support: when set, among
  /// all candidate bindings produced by one triggering event, only the
  /// binding maximizing this (numeric) variable fires. Written
  /// `rule r1 argmax Prio head :- ...` in source. This is our deterministic
  /// stand-in for flow-table priority semantics; see DESIGN.md section 5.
  std::optional<std::string> argmax_var;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace dp
