#include "ndlog/eval.h"

#include "ndlog/functions.h"

namespace dp {

namespace {

Value arith(BinOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_int() && rhs.is_int()) {
    const std::int64_t a = lhs.as_int();
    const std::int64_t b = rhs.as_int();
    switch (op) {
      case BinOp::kAdd: return a + b;
      case BinOp::kSub: return a - b;
      case BinOp::kMul: return a * b;
      case BinOp::kDiv:
        if (b == 0) throw EvalError("integer division by zero");
        return a / b;
      case BinOp::kMod:
        if (b == 0) throw EvalError("integer modulo by zero");
        return a % b;
      case BinOp::kBitAnd: return a & b;
      case BinOp::kBitOr: return a | b;
      case BinOp::kBitXor: return a ^ b;
      case BinOp::kShl: return a << (b & 63);
      case BinOp::kShr:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) >> (b & 63));
      default: break;
    }
  }
  if (lhs.is_numeric() && rhs.is_numeric()) {
    const double a = lhs.numeric();
    const double b = rhs.numeric();
    switch (op) {
      case BinOp::kAdd: return a + b;
      case BinOp::kSub: return a - b;
      case BinOp::kMul: return a * b;
      case BinOp::kDiv:
        if (b == 0.0) throw EvalError("division by zero");
        return a / b;
      default: break;
    }
  }
  if (lhs.is_string() && rhs.is_string() && op == BinOp::kAdd) {
    return lhs.as_string() + rhs.as_string();
  }
  throw EvalError("type error: " + lhs.to_string() + " " +
                  std::string(binop_name(op)) + " " + rhs.to_string());
}

Value compare(BinOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case BinOp::kEq: return std::int64_t{lhs == rhs};
    case BinOp::kNe: return std::int64_t{!(lhs == rhs)};
    default: break;
  }
  if (lhs.type() != rhs.type() &&
      !(lhs.is_numeric() && rhs.is_numeric())) {
    throw EvalError("ordered comparison across types: " + lhs.to_string() +
                    " vs " + rhs.to_string());
  }
  bool lt;
  bool gt;
  if (lhs.is_numeric() && rhs.is_numeric()) {
    lt = lhs.numeric() < rhs.numeric();
    gt = lhs.numeric() > rhs.numeric();
  } else {
    lt = lhs < rhs;
    gt = rhs < lhs;
  }
  switch (op) {
    case BinOp::kLt: return std::int64_t{lt};
    case BinOp::kLe: return std::int64_t{!gt};
    case BinOp::kGt: return std::int64_t{gt};
    case BinOp::kGe: return std::int64_t{!lt};
    default: break;
  }
  throw EvalError("bad comparison operator");
}

}  // namespace

bool is_truthy(const Value& v) {
  if (v.is_int()) return v.as_int() != 0;
  if (v.is_double()) return v.as_double() != 0.0;
  throw EvalError("non-numeric constraint result: " + v.to_string());
}

Value eval_binop(BinOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case BinOp::kAnd:
      return std::int64_t{is_truthy(lhs) && is_truthy(rhs)};
    case BinOp::kOr:
      return std::int64_t{is_truthy(lhs) || is_truthy(rhs)};
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return compare(op, lhs, rhs);
    default:
      return arith(op, lhs, rhs);
  }
}

SlotExpr compile_expr(
    const Expr& expr,
    const std::function<std::size_t(const std::string&)>& resolve) {
  SlotExpr out;
  out.kind = expr.kind;
  switch (expr.kind) {
    case Expr::Kind::kConst:
      out.constant = expr.constant;
      break;
    case Expr::Kind::kVar:
      out.slot = resolve(expr.var);
      break;
    case Expr::Kind::kBinary:
      out.op = expr.op;
      break;
    case Expr::Kind::kCall:
      out.fn = expr.fn;
      break;
    case Expr::Kind::kNeg:
    case Expr::Kind::kNot:
      break;
  }
  out.children.reserve(expr.children.size());
  for (const ExprPtr& child : expr.children) {
    out.children.push_back(compile_expr(*child, resolve));
  }
  return out;
}

Value eval_expr(const SlotExpr& expr, const Regs& regs) {
  switch (expr.kind) {
    case Expr::Kind::kConst:
      return expr.constant;
    case Expr::Kind::kVar:
      return regs[expr.slot];
    case Expr::Kind::kBinary:
      return eval_binop(expr.op, eval_expr(expr.children[0], regs),
                        eval_expr(expr.children[1], regs));
    case Expr::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const SlotExpr& child : expr.children) {
        args.push_back(eval_expr(child, regs));
      }
      return FunctionRegistry::instance().call(expr.fn, args);
    }
    case Expr::Kind::kNeg: {
      const Value v = eval_expr(expr.children[0], regs);
      if (v.is_int()) return -v.as_int();
      if (v.is_double()) return -v.as_double();
      throw EvalError("negation of non-number: " + v.to_string());
    }
    case Expr::Kind::kNot:
      return std::int64_t{!is_truthy(eval_expr(expr.children[0], regs))};
  }
  throw EvalError("corrupt expression");
}

Value eval_expr(const Expr& expr, const Bindings& bindings) {
  switch (expr.kind) {
    case Expr::Kind::kConst:
      return expr.constant;
    case Expr::Kind::kVar: {
      auto it = bindings.find(expr.var);
      if (it == bindings.end()) {
        throw EvalError("unbound variable: " + expr.var);
      }
      return it->second;
    }
    case Expr::Kind::kBinary:
      return eval_binop(expr.op, eval_expr(*expr.children[0], bindings),
                        eval_expr(*expr.children[1], bindings));
    case Expr::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const ExprPtr& child : expr.children) {
        args.push_back(eval_expr(*child, bindings));
      }
      return FunctionRegistry::instance().call(expr.fn, args);
    }
    case Expr::Kind::kNeg: {
      const Value v = eval_expr(*expr.children[0], bindings);
      if (v.is_int()) return -v.as_int();
      if (v.is_double()) return -v.as_double();
      throw EvalError("negation of non-number: " + v.to_string());
    }
    case Expr::Kind::kNot:
      return std::int64_t{!is_truthy(eval_expr(*expr.children[0], bindings))};
  }
  throw EvalError("corrupt expression");
}

}  // namespace dp
