// Expression evaluation over variable bindings.
#pragma once

#include <map>
#include <stdexcept>
#include <string>

#include "ndlog/ast.h"
#include "ndlog/value.h"

namespace dp {

/// Raised on dynamic typing errors, unbound variables, unknown functions, or
/// division by zero. Rule evaluation treats a throwing constraint as a
/// non-match and logs a warning; anywhere else it indicates a model bug.
class EvalError : public std::runtime_error {
 public:
  explicit EvalError(const std::string& what) : std::runtime_error(what) {}
};

/// Variable environment built up during a join.
using Bindings = std::map<std::string, Value>;

/// Evaluates `expr` under `bindings`. Throws EvalError on failure.
Value eval_expr(const Expr& expr, const Bindings& bindings);

/// Evaluates a binary operator over concrete values (shared with the
/// DiffProv formula evaluator). Throws EvalError on type errors.
Value eval_binop(BinOp op, const Value& lhs, const Value& rhs);

/// Truthiness of a constraint result: non-zero int / non-zero double.
bool is_truthy(const Value& v);

}  // namespace dp
