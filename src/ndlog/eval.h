// Expression evaluation over variable bindings.
//
// Two evaluation paths exist:
//  * the name-resolved path (`Bindings` = map<string, Value>), used by
//    DiffProv's reasoning and the engine's reference full-scan joins;
//  * the slot-resolved path (`SlotExpr` over a flat `Regs` register file),
//    produced once per rule by the plan compiler (runtime/plan.h) so the
//    per-firing hot path never touches a string-keyed map.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "ndlog/ast.h"
#include "ndlog/value.h"

namespace dp {

/// Raised on dynamic typing errors, unbound variables, unknown functions, or
/// division by zero. Rule evaluation treats a throwing constraint as a
/// non-match and logs a warning; anywhere else it indicates a model bug.
class EvalError : public std::runtime_error {
 public:
  explicit EvalError(const std::string& what) : std::runtime_error(what) {}
};

/// Variable environment built up during a join.
using Bindings = std::map<std::string, Value>;

/// Evaluates `expr` under `bindings`. Throws EvalError on failure.
Value eval_expr(const Expr& expr, const Bindings& bindings);

/// Flat register file for compiled rule plans: one Value per variable slot.
using Regs = std::vector<Value>;

/// An Expr with every variable resolved to a register slot. Produced at
/// plan-compile time; structurally identical to the source Expr otherwise.
struct SlotExpr {
  Expr::Kind kind = Expr::Kind::kConst;
  Value constant;                 // kConst
  std::size_t slot = 0;           // kVar
  BinOp op = BinOp::kAdd;         // kBinary
  std::string fn;                 // kCall
  std::vector<SlotExpr> children;
};

/// Resolves every variable of `expr` through `resolve` (name -> slot).
/// `resolve` throws EvalError for unknown names (a compile-time bug: program
/// validation guarantees rule safety before plans are built).
SlotExpr compile_expr(
    const Expr& expr,
    const std::function<std::size_t(const std::string&)>& resolve);

/// Evaluates a compiled expression over the register file. All referenced
/// slots must have been written (guaranteed by the plan's static binding
/// discipline). Throws EvalError on dynamic type errors.
Value eval_expr(const SlotExpr& expr, const Regs& regs);

/// Evaluates a binary operator over concrete values (shared with the
/// DiffProv formula evaluator). Throws EvalError on type errors.
Value eval_binop(BinOp op, const Value& lhs, const Value& rhs);

/// Truthiness of a constraint result: non-zero int / non-zero double.
bool is_truthy(const Value& v);

}  // namespace dp
