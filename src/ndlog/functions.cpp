#include "ndlog/functions.h"

#include <algorithm>

#include "ndlog/eval.h"
#include "util/hash.h"

namespace dp {

namespace {

void expect_arity(const std::string& name, const std::vector<Value>& args,
                  std::size_t n) {
  if (args.size() != n) {
    throw EvalError(name + ": expected " + std::to_string(n) +
                    " arguments, got " + std::to_string(args.size()));
  }
}

Ipv4 as_ip(const std::string& name, const Value& v) {
  if (!v.is_ip()) throw EvalError(name + ": expected ip, got " + v.to_string());
  return v.as_ip();
}

IpPrefix as_prefix(const std::string& name, const Value& v) {
  if (!v.is_prefix()) {
    throw EvalError(name + ": expected prefix, got " + v.to_string());
  }
  return v.as_prefix();
}

std::int64_t as_int(const std::string& name, const Value& v) {
  if (!v.is_int()) {
    throw EvalError(name + ": expected int, got " + v.to_string());
  }
  return v.as_int();
}

const std::string& as_str(const std::string& name, const Value& v) {
  if (!v.is_string()) {
    throw EvalError(name + ": expected string, got " + v.to_string());
  }
  return v.as_string();
}

/// f_matches(ip, prefix) -> 0/1. Solver for the prefix argument widens the
/// current prefix by the minimal number of bits so that it covers `ip`
/// (preserving its base address); this models the "make the flow entry
/// general enough" repair of scenario SDN1. Solving for desired == 0 has no
/// unique minimal answer and is refused.
Value fn_matches(const std::vector<Value>& args) {
  expect_arity("f_matches", args, 2);
  return std::int64_t{
      as_prefix("f_matches", args[1]).contains(as_ip("f_matches", args[0]))};
}

std::optional<Value> solve_matches(std::size_t arg_index,
                                   const std::vector<Value>& args,
                                   const Value& desired) {
  if (arg_index != 1 || !desired.is_int() || desired.as_int() != 1) {
    return std::nullopt;
  }
  if (!args[0].is_ip() || !args[1].is_prefix()) return std::nullopt;
  const Ipv4 ip = args[0].as_ip();
  const IpPrefix current = args[1].as_prefix();
  for (int len = current.length(); len >= 0; --len) {
    const IpPrefix widened(current.base(), len);
    if (widened.contains(ip)) return Value(widened);
  }
  return std::nullopt;  // unreachable: /0 contains everything
}

/// f_prefix(ip, len) -> prefix of the given length containing ip.
Value fn_prefix(const std::vector<Value>& args) {
  expect_arity("f_prefix", args, 2);
  return IpPrefix(as_ip("f_prefix", args[0]),
                  static_cast<int>(as_int("f_prefix", args[1])));
}

/// f_octet(ip, i) -> i-th octet (0-based from the left).
Value fn_octet(const std::vector<Value>& args) {
  expect_arity("f_octet", args, 2);
  const auto i = as_int("f_octet", args[1]);
  if (i < 0 || i > 3) throw EvalError("f_octet: index out of range");
  return std::int64_t{as_ip("f_octet", args[0]).octet(static_cast<int>(i))};
}

/// f_last_octet(ip) -> last octet. (The running example of section 4.3.)
Value fn_last_octet(const std::vector<Value>& args) {
  expect_arity("f_last_octet", args, 1);
  return std::int64_t{as_ip("f_last_octet", args[0]).octet(3)};
}

/// f_hash(str) -> non-negative int. Deliberately *no* solver: hashes are the
/// paper's canonical non-invertible computation (section 4.7).
Value fn_hash(const std::vector<Value>& args) {
  expect_arity("f_hash", args, 1);
  return static_cast<std::int64_t>(fnv1a(as_str("f_hash", args[0])) &
                                   0x7FFFFFFF);
}

/// f_checksum(str) -> 16-hex-digit content digest (file/bytecode identity).
Value fn_checksum(const std::vector<Value>& args) {
  expect_arity("f_checksum", args, 1);
  return checksum_hex(as_str("f_checksum", args[0]));
}

/// f_partition(word, n) -> hash(word) % n; the MapReduce shuffle partitioner.
Value fn_partition(const std::vector<Value>& args) {
  expect_arity("f_partition", args, 2);
  const std::int64_t n = as_int("f_partition", args[1]);
  if (n <= 0) throw EvalError("f_partition: non-positive reducer count");
  return static_cast<std::int64_t>(
      (fnv1a(as_str("f_partition", args[0])) & 0x7FFFFFFF) % n);
}

Value fn_min(const std::vector<Value>& args) {
  expect_arity("f_min", args, 2);
  return std::min(as_int("f_min", args[0]), as_int("f_min", args[1]));
}

Value fn_max(const std::vector<Value>& args) {
  expect_arity("f_max", args, 2);
  return std::max(as_int("f_max", args[0]), as_int("f_max", args[1]));
}

Value fn_concat(const std::vector<Value>& args) {
  expect_arity("f_concat", args, 2);
  return as_str("f_concat", args[0]) + as_str("f_concat", args[1]);
}

Value fn_strlen(const std::vector<Value>& args) {
  expect_arity("f_strlen", args, 1);
  return static_cast<std::int64_t>(as_str("f_strlen", args[0]).size());
}

/// f_out(action, i) -> i-th '+'-separated output of a flow action string,
/// or "" when exhausted. "w1+d1" models an OpenFlow multi-output (mirror /
/// multicast) action list.
Value fn_out(const std::vector<Value>& args) {
  expect_arity("f_out", args, 2);
  const std::string& action = as_str("f_out", args[0]);
  std::int64_t index = as_int("f_out", args[1]);
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = action.find('+', start);
    if (index == 0) {
      return pos == std::string::npos
                 ? action.substr(start)
                 : action.substr(start, pos - start);
    }
    if (pos == std::string::npos) return std::string{};
    start = pos + 1;
    --index;
  }
}

/// f_ip(int) -> ip and f_ip_value(ip) -> int: mutually inverse conversions.
Value fn_ip(const std::vector<Value>& args) {
  expect_arity("f_ip", args, 1);
  return Ipv4(static_cast<std::uint32_t>(as_int("f_ip", args[0])));
}

std::optional<Value> solve_ip(std::size_t arg_index,
                              const std::vector<Value>& args,
                              const Value& desired) {
  (void)args;
  if (arg_index != 0 || !desired.is_ip()) return std::nullopt;
  return Value(std::int64_t{desired.as_ip().value()});
}

Value fn_ip_value(const std::vector<Value>& args) {
  expect_arity("f_ip_value", args, 1);
  return std::int64_t{as_ip("f_ip_value", args[0]).value()};
}

std::optional<Value> solve_ip_value(std::size_t arg_index,
                                    const std::vector<Value>& args,
                                    const Value& desired) {
  (void)args;
  if (arg_index != 0 || !desired.is_int()) return std::nullopt;
  return Value(Ipv4(static_cast<std::uint32_t>(desired.as_int())));
}

/// f_nth_word(text, i) -> i-th whitespace-separated word, or "" when out of
/// range. The declarative WordCount mapper (src/mapred) is built from this.
Value fn_nth_word(const std::vector<Value>& args) {
  expect_arity("f_nth_word", args, 2);
  const std::string& text = as_str("f_nth_word", args[0]);
  std::int64_t index = as_int("f_nth_word", args[1]);
  if (index < 0) return std::string{};
  std::size_t pos = 0;
  while (true) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos >= text.size()) return std::string{};
    const std::size_t end = text.find(' ', pos);
    const std::size_t stop = end == std::string::npos ? text.size() : end;
    if (index == 0) return text.substr(pos, stop - pos);
    pos = stop;
    --index;
  }
}

/// f_str(int) -> decimal string; solver parses it back.
Value fn_str(const std::vector<Value>& args) {
  expect_arity("f_str", args, 1);
  return std::to_string(as_int("f_str", args[0]));
}

std::optional<Value> solve_str(std::size_t arg_index,
                               const std::vector<Value>& args,
                               const Value& desired) {
  (void)args;
  if (arg_index != 0 || !desired.is_string()) return std::nullopt;
  try {
    return Value(static_cast<std::int64_t>(std::stoll(desired.as_string())));
  } catch (...) {
    return std::nullopt;
  }
}

/// f_red_node(p) -> reducer node name "rd<p>"; invertible.
Value fn_red_node(const std::vector<Value>& args) {
  expect_arity("f_red_node", args, 1);
  return "rd" + std::to_string(as_int("f_red_node", args[0]));
}

std::optional<Value> solve_red_node(std::size_t arg_index,
                                    const std::vector<Value>& args,
                                    const Value& desired) {
  (void)args;
  if (arg_index != 0 || !desired.is_string()) return std::nullopt;
  const std::string& name = desired.as_string();
  if (name.size() < 3 || name.substr(0, 2) != "rd") return std::nullopt;
  try {
    return Value(static_cast<std::int64_t>(std::stoll(name.substr(2))));
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

FunctionRegistry& FunctionRegistry::instance() {
  static FunctionRegistry registry;
  return registry;
}

FunctionRegistry::FunctionRegistry() {
  register_fn({"f_matches", 2, fn_matches, solve_matches});
  register_fn({"f_prefix", 2, fn_prefix, nullptr});
  register_fn({"f_octet", 2, fn_octet, nullptr});
  register_fn({"f_last_octet", 1, fn_last_octet, nullptr});
  register_fn({"f_hash", 1, fn_hash, nullptr});
  register_fn({"f_checksum", 1, fn_checksum, nullptr});
  register_fn({"f_partition", 2, fn_partition, nullptr});
  register_fn({"f_min", 2, fn_min, nullptr});
  register_fn({"f_max", 2, fn_max, nullptr});
  register_fn({"f_concat", 2, fn_concat, nullptr});
  register_fn({"f_strlen", 1, fn_strlen, nullptr});
  register_fn({"f_out", 2, fn_out, nullptr});
  register_fn({"f_nth_word", 2, fn_nth_word, nullptr});
  register_fn({"f_str", 1, fn_str, solve_str});
  register_fn({"f_red_node", 1, fn_red_node, solve_red_node});
  register_fn({"f_ip", 1, fn_ip, solve_ip});
  register_fn({"f_ip_value", 1, fn_ip_value, solve_ip_value});
}

void FunctionRegistry::register_fn(BuiltinInfo info) {
  for (BuiltinInfo& existing : fns_) {
    if (existing.name == info.name) {
      existing = std::move(info);
      return;
    }
  }
  fns_.push_back(std::move(info));
}

const BuiltinInfo* FunctionRegistry::find(const std::string& name) const {
  for (const BuiltinInfo& info : fns_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

Value FunctionRegistry::call(const std::string& name,
                             const std::vector<Value>& args) const {
  const BuiltinInfo* info = find(name);
  if (info == nullptr) throw EvalError("unknown function: " + name);
  if (info->arity >= 0 &&
      args.size() != static_cast<std::size_t>(info->arity)) {
    throw EvalError(name + ": arity mismatch");
  }
  return info->fn(args);
}

}  // namespace dp
