// Builtin function library for NDlog expressions.
//
// Each function may also register per-argument *solvers*: given the desired
// result, the other argument values, and the current value of one argument,
// a solver computes a new value for that argument that makes the call return
// the desired result. This is how DiffProv inverts computations when it
// propagates taints downward (paper section 4.5) and how it repairs failing
// constraints -- e.g. solving f_matches(4.3.3.1, P) == 1 starting from
// P = 4.3.2.0/24 yields the minimal generalization 4.3.2.0/23, exactly the
// root-cause fix of scenario SDN1. Functions with no solver (e.g. hashes)
// make DiffProv report the attempted change instead (paper section 4.7,
// "false negatives").
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ndlog/value.h"

namespace dp {

/// Computes the function over fully-evaluated arguments. Throws EvalError on
/// type mismatches.
using BuiltinFn = std::function<Value(const std::vector<Value>&)>;

/// Solves for argument `arg_index`: `args` holds the call's argument values
/// with the *current* (unsatisfying) value at `arg_index`; returns a
/// replacement value such that fn(args') == desired, or nullopt if this
/// solver cannot produce one.
using BuiltinSolver = std::function<std::optional<Value>(
    std::size_t arg_index, const std::vector<Value>& args,
    const Value& desired)>;

struct BuiltinInfo {
  std::string name;
  int arity = 0;  // -1 = variadic
  BuiltinFn fn;
  BuiltinSolver solver;  // may be empty (non-invertible)
};

/// Global registry of builtins. The standard library is registered on first
/// access; substrates (e.g. MapReduce) may register additional functions.
class FunctionRegistry {
 public:
  /// Singleton accessor; thread-safe initialization, single-threaded use.
  static FunctionRegistry& instance();

  /// Registers or replaces a builtin.
  void register_fn(BuiltinInfo info);

  /// Looks up a builtin; nullptr if unknown.
  [[nodiscard]] const BuiltinInfo* find(const std::string& name) const;

  /// Calls a builtin; throws EvalError if unknown or arity mismatch.
  Value call(const std::string& name, const std::vector<Value>& args) const;

 private:
  FunctionRegistry();
  std::vector<BuiltinInfo> fns_;
};

}  // namespace dp
