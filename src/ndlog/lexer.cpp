#include "ndlog/lexer.h"

#include <cctype>

namespace dp {

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_space_and_comments();
      Token token = next_token();
      const bool done = token.kind == TokenKind::kEnd;
      out.push_back(std::move(token));
      if (done) return out;
    }
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_space_and_comments() {
    while (!eof()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#' || (c == '/' && peek(1) == '/')) {
        while (!eof() && peek() != '\n') advance();
      } else {
        return;
      }
    }
  }

  Token make(TokenKind kind, std::string text = {}) const {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = token_line_;
    t.column = token_column_;
    return t;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw LexError(message, token_line_, token_column_);
  }

  Token next_token() {
    token_line_ = line_;
    token_column_ = column_;
    if (eof()) return make(TokenKind::kEnd);
    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_ident();
    }
    if (c == '"') return lex_string();
    advance();
    switch (c) {
      case '(': return make(TokenKind::kLParen);
      case ')': return make(TokenKind::kRParen);
      case ',': return make(TokenKind::kComma);
      case '.': return make(TokenKind::kPeriod);
      case '@': return make(TokenKind::kAt);
      case ':':
        if (peek() == '-') {
          advance();
          return make(TokenKind::kTurnstile);
        }
        if (peek() == '=') {
          advance();
          return make(TokenKind::kAssign);
        }
        fail("expected ':-' or ':='");
      case '+': case '-': case '*': case '/': case '%': case '^':
        return make(TokenKind::kOp, std::string(1, c));
      case '&':
        if (peek() == '&') {
          advance();
          return make(TokenKind::kOp, "&&");
        }
        return make(TokenKind::kOp, "&");
      case '|':
        if (peek() == '|') {
          advance();
          return make(TokenKind::kOp, "||");
        }
        return make(TokenKind::kOp, "|");
      case '<':
        if (peek() == '<') {
          advance();
          return make(TokenKind::kOp, "<<");
        }
        if (peek() == '=') {
          advance();
          return make(TokenKind::kOp, "<=");
        }
        return make(TokenKind::kOp, "<");
      case '>':
        if (peek() == '>') {
          advance();
          return make(TokenKind::kOp, ">>");
        }
        if (peek() == '=') {
          advance();
          return make(TokenKind::kOp, ">=");
        }
        return make(TokenKind::kOp, ">");
      case '=':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kOp, "==");
        }
        fail("single '=' (use '==' or ':=')");
      case '!':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kOp, "!=");
        }
        return make(TokenKind::kOp, "!");
      default:
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  // Numbers: 42, 4.2, 4.3.2.1, 4.3.2.0/24. A '.' is only consumed if a digit
  // follows, so the statement-terminating period is never swallowed.
  Token lex_number() {
    std::string text;
    int dots = 0;
    auto eat_digits = [&] {
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
      }
    };
    eat_digits();
    while (peek() == '.' &&
           std::isdigit(static_cast<unsigned char>(peek(1)))) {
      text.push_back(advance());
      ++dots;
      eat_digits();
    }
    if (dots == 0) {
      Token t = make(TokenKind::kInt, text);
      t.literal = Value(static_cast<std::int64_t>(std::stoll(text)));
      return t;
    }
    if (dots == 1) {
      Token t = make(TokenKind::kDouble, text);
      t.literal = Value(std::stod(text));
      return t;
    }
    if (dots != 3) fail("malformed numeric literal: " + text);
    if (peek() == '/' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      text.push_back(advance());
      eat_digits();
      auto prefix = IpPrefix::parse(text);
      if (!prefix) fail("malformed prefix literal: " + text);
      Token t = make(TokenKind::kPrefix, text);
      t.literal = Value(*prefix);
      return t;
    }
    auto ip = Ipv4::parse(text);
    if (!ip) fail("malformed IP literal: " + text);
    Token t = make(TokenKind::kIp, text);
    t.literal = Value(*ip);
    return t;
  }

  Token lex_ident() {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      text.push_back(advance());
    }
    const char first = text[0];
    if (std::isupper(static_cast<unsigned char>(first)) || first == '_') {
      return make(TokenKind::kVar, text);
    }
    return make(TokenKind::kIdent, text);
  }

  Token lex_string() {
    advance();  // opening quote
    std::string text;
    while (true) {
      if (eof()) fail("unterminated string literal");
      const char c = advance();
      if (c == '"') break;
      if (c == '\\') {
        if (eof()) fail("unterminated escape");
        const char esc = advance();
        switch (esc) {
          case 'n': text.push_back('\n'); break;
          case 't': text.push_back('\t'); break;
          case '"': text.push_back('"'); break;
          case '\\': text.push_back('\\'); break;
          default: fail(std::string("bad escape '\\") + esc + "'");
        }
      } else {
        text.push_back(c);
      }
    }
    Token t = make(TokenKind::kString, text);
    t.literal = Value(text);
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace dp
