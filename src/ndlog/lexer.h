// Tokenizer for the NDlog surface syntax.
//
// Literal forms: integers (42), doubles (4.2), strings ("web1"), IPv4
// addresses (4.3.2.1) and CIDR prefixes (4.3.2.0/24). Identifiers starting
// with an uppercase letter (or `_`) are variables; lowercase identifiers are
// table/function names or keywords. `//` and `#` start line comments.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ndlog/value.h"

namespace dp {

enum class TokenKind : std::uint8_t {
  kIdent,    // lowercase identifier / keyword
  kVar,      // Uppercase identifier or _
  kInt,
  kDouble,
  kString,
  kIp,
  kPrefix,
  kLParen,   // (
  kRParen,   // )
  kComma,    // ,
  kPeriod,   // .
  kAt,       // @
  kTurnstile,  // :-
  kAssign,   // :=
  kOp,       // an operator spelling: + - * / % & | ^ << >> == != < <= > >= && || !
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier / operator spelling
  Value literal;      // for literal kinds
  int line = 1;
  int column = 1;
};

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line, int column)
      : std::runtime_error("lex error at " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + message) {}
};

/// Tokenizes the whole input; the final token is kEnd. Throws LexError.
std::vector<Token> lex(std::string_view source);

}  // namespace dp
