#include "ndlog/parser.h"

#include <map>

#include "ndlog/lexer.h"
#include "util/strings.h"

namespace dp {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex(source)) {}

  Program parse_program() {
    Program program;
    while (!at(TokenKind::kEnd)) {
      if (at_keyword("table")) {
        program.declare(parse_table_decl());
      } else if (at_keyword("rule")) {
        program.add_rule(parse_rule());
      } else {
        fail("expected 'table' or 'rule'");
      }
    }
    program.validate();
    return program;
  }

  ExprPtr parse_standalone_expression() {
    ExprPtr expr = parse_expr();
    expect(TokenKind::kEnd, "end of input");
    return expr;
  }

  Tuple parse_ground_tuple() {
    const std::string table = expect(TokenKind::kIdent, "table name").text;
    expect(TokenKind::kLParen, "'('");
    std::vector<Value> values;
    if (at(TokenKind::kAt)) advance();  // optional '@' on the location
    values.push_back(parse_ground_value(/*allow_node_name=*/true));
    while (at(TokenKind::kComma)) {
      advance();
      values.push_back(parse_ground_value(/*allow_node_name=*/false));
    }
    expect(TokenKind::kRParen, "')'");
    expect(TokenKind::kEnd, "end of input");
    return Tuple(table, std::move(values));
  }

 private:
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }
  [[nodiscard]] bool at_keyword(std::string_view kw) const {
    return at(TokenKind::kIdent) && peek().text == kw;
  }
  [[nodiscard]] bool at_op(std::string_view op) const {
    return at(TokenKind::kOp) && peek().text == op;
  }

  const Token& advance() { return tokens_[pos_++]; }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message + " (got '" + describe(peek()) + "')",
                     peek().line, peek().column);
  }

  static std::string describe(const Token& token) {
    switch (token.kind) {
      case TokenKind::kEnd: return "<end>";
      case TokenKind::kLParen: return "(";
      case TokenKind::kRParen: return ")";
      case TokenKind::kComma: return ",";
      case TokenKind::kPeriod: return ".";
      case TokenKind::kAt: return "@";
      case TokenKind::kTurnstile: return ":-";
      case TokenKind::kAssign: return ":=";
      default: return token.text.empty() ? token.literal.to_string()
                                         : token.text;
    }
  }

  const Token& expect(TokenKind kind, const std::string& what) {
    if (!at(kind)) fail("expected " + what);
    return advance();
  }

  void expect_keyword(std::string_view kw) {
    if (!at_keyword(kw)) fail("expected '" + std::string(kw) + "'");
    advance();
  }

  std::int64_t expect_int() {
    const Token& t = expect(TokenKind::kInt, "integer");
    return t.literal.as_int();
  }

  // table NAME(ARITY) [keys(...)] [base|derived] [mutable|immutable] [event].
  TableDecl parse_table_decl() {
    expect_keyword("table");
    TableDecl decl;
    decl.name = expect(TokenKind::kIdent, "table name").text;
    expect(TokenKind::kLParen, "'('");
    decl.arity = static_cast<std::size_t>(expect_int());
    expect(TokenKind::kRParen, "')'");
    while (!at(TokenKind::kPeriod)) {
      if (at_keyword("keys")) {
        advance();
        expect(TokenKind::kLParen, "'('");
        decl.key_columns.push_back(static_cast<std::size_t>(expect_int()));
        while (at(TokenKind::kComma)) {
          advance();
          decl.key_columns.push_back(static_cast<std::size_t>(expect_int()));
        }
        expect(TokenKind::kRParen, "')'");
      } else if (at_keyword("base")) {
        advance();
        decl.kind = TupleKind::kBase;
      } else if (at_keyword("derived")) {
        advance();
        decl.kind = TupleKind::kDerived;
      } else if (at_keyword("mutable")) {
        advance();
        decl.mutability = Mutability::kMutable;
      } else if (at_keyword("immutable")) {
        advance();
        decl.mutability = Mutability::kImmutable;
      } else if (at_keyword("event")) {
        advance();
        decl.materialized = false;
      } else {
        fail("expected table qualifier or '.'");
      }
    }
    advance();  // '.'
    return decl;
  }

  // rule NAME [argmax Var] head :- body.
  Rule parse_rule() {
    expect_keyword("rule");
    Rule rule;
    rule.name = expect(TokenKind::kIdent, "rule name").text;
    if (at_keyword("argmax")) {
      advance();
      rule.argmax_var = expect(TokenKind::kVar, "argmax variable").text;
    }
    if (at_keyword("agg")) {
      advance();
      AggSpec agg;
      if (at_keyword("count")) {
        advance();
        agg.kind = AggSpec::Kind::kCount;
        agg.var = expect(TokenKind::kVar, "aggregate variable").text;
      } else if (at_keyword("sum")) {
        advance();
        agg.kind = AggSpec::Kind::kSum;
        agg.var = expect(TokenKind::kVar, "aggregate variable").text;
        agg.sum_var = expect(TokenKind::kVar, "summed variable").text;
      } else {
        fail("expected 'count' or 'sum' after 'agg'");
      }
      rule.agg = std::move(agg);
    }
    rule.head = parse_head();
    expect(TokenKind::kTurnstile, "':-'");
    parse_body_element(rule);
    while (at(TokenKind::kComma)) {
      advance();
      parse_body_element(rule);
    }
    expect(TokenKind::kPeriod, "'.'");
    return rule;
  }

  HeadAtom parse_head() {
    HeadAtom head;
    head.table = expect(TokenKind::kIdent, "head table name").text;
    expect(TokenKind::kLParen, "'('");
    expect(TokenKind::kAt, "'@' before head location");
    head.args.push_back(parse_expr());
    while (at(TokenKind::kComma)) {
      advance();
      head.args.push_back(parse_expr());
    }
    expect(TokenKind::kRParen, "')'");
    return head;
  }

  void parse_body_element(Rule& rule) {
    // Assignment?
    if (at(TokenKind::kVar) && peek(1).kind == TokenKind::kAssign) {
      Assignment assign;
      assign.var = advance().text;
      advance();  // ':='
      assign.expr = parse_expr();
      rule.assigns.push_back(std::move(assign));
      return;
    }
    // Atom? (lowercase identifier that is not a builtin call)
    if (at(TokenKind::kIdent) && !starts_with(peek().text, "f_")) {
      rule.body.push_back(parse_atom());
      return;
    }
    rule.constraints.push_back(parse_expr());
  }

  BodyAtom parse_atom() {
    BodyAtom atom;
    atom.table = expect(TokenKind::kIdent, "table name").text;
    expect(TokenKind::kLParen, "'('");
    expect(TokenKind::kAt, "'@' before atom location");
    atom.args.push_back(parse_atom_arg());
    while (at(TokenKind::kComma)) {
      advance();
      atom.args.push_back(parse_atom_arg());
    }
    expect(TokenKind::kRParen, "')'");
    return atom;
  }

  AtomArg parse_atom_arg() {
    if (at(TokenKind::kVar)) {
      std::string name = advance().text;
      if (name == "_") {
        // Anonymous variable: fresh name per occurrence, never referenced.
        name = "_anon" + std::to_string(anon_counter_++);
      }
      return AtomArg::variable(std::move(name));
    }
    switch (peek().kind) {
      case TokenKind::kInt:
      case TokenKind::kDouble:
      case TokenKind::kString:
      case TokenKind::kIp:
      case TokenKind::kPrefix:
        return AtomArg::constant_value(advance().literal);
      default:
        fail("expected variable or literal atom argument");
    }
  }

  // Expression precedence climbing. Levels from loosest to tightest:
  // || ; && ; ==/!= ; </<=/>/>= ; | ; ^ ; & ; <</>> ; +/- ; * / % ; unary.
  ExprPtr parse_expr() { return parse_binary(0); }

  struct Level {
    std::map<std::string, BinOp> ops;
  };

  static const std::vector<Level>& levels() {
    static const std::vector<Level> kLevels = {
        {{{"||", BinOp::kOr}}},
        {{{"&&", BinOp::kAnd}}},
        {{{"==", BinOp::kEq}, {"!=", BinOp::kNe}}},
        {{{"<", BinOp::kLt},
          {"<=", BinOp::kLe},
          {">", BinOp::kGt},
          {">=", BinOp::kGe}}},
        {{{"|", BinOp::kBitOr}}},
        {{{"^", BinOp::kBitXor}}},
        {{{"&", BinOp::kBitAnd}}},
        {{{"<<", BinOp::kShl}, {">>", BinOp::kShr}}},
        {{{"+", BinOp::kAdd}, {"-", BinOp::kSub}}},
        {{{"*", BinOp::kMul}, {"/", BinOp::kDiv}, {"%", BinOp::kMod}}},
    };
    return kLevels;
  }

  ExprPtr parse_binary(std::size_t level) {
    if (level >= levels().size()) return parse_unary();
    ExprPtr lhs = parse_binary(level + 1);
    while (at(TokenKind::kOp)) {
      auto it = levels()[level].ops.find(peek().text);
      if (it == levels()[level].ops.end()) break;
      advance();
      ExprPtr rhs = parse_binary(level + 1);
      lhs = Expr::make_binary(it->second, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at_op("-")) {
      advance();
      return Expr::make_neg(parse_unary());
    }
    if (at_op("!")) {
      advance();
      return Expr::make_not(parse_unary());
    }
    return parse_primary();
  }

  /// A literal value; bare identifiers are accepted as node-name strings
  /// when `allow_node_name` is set (so `delivered(@w2, ...)` round-trips).
  Value parse_ground_value(bool allow_node_name) {
    bool negate = false;
    if (at_op("-")) {
      advance();
      negate = true;
    }
    switch (peek().kind) {
      case TokenKind::kInt:
        return negate ? Value(-advance().literal.as_int())
                      : advance().literal;
      case TokenKind::kDouble:
        return negate ? Value(-advance().literal.as_double())
                      : advance().literal;
      case TokenKind::kString:
      case TokenKind::kIp:
      case TokenKind::kPrefix:
        if (negate) fail("cannot negate this literal");
        return advance().literal;
      case TokenKind::kIdent:
      case TokenKind::kVar:
        if (!allow_node_name) fail("expected a literal value");
        return Value(advance().text);
      default:
        fail("expected a literal value");
    }
  }

  ExprPtr parse_primary() {
    switch (peek().kind) {
      case TokenKind::kInt:
      case TokenKind::kDouble:
      case TokenKind::kString:
      case TokenKind::kIp:
      case TokenKind::kPrefix:
        return Expr::make_const(advance().literal);
      case TokenKind::kVar:
        return Expr::make_var(advance().text);
      case TokenKind::kIdent: {
        const std::string name = advance().text;
        expect(TokenKind::kLParen, "'(' after function name");
        std::vector<ExprPtr> args;
        if (!at(TokenKind::kRParen)) {
          args.push_back(parse_expr());
          while (at(TokenKind::kComma)) {
            advance();
            args.push_back(parse_expr());
          }
        }
        expect(TokenKind::kRParen, "')'");
        return Expr::make_call(name, std::move(args));
      }
      case TokenKind::kLParen: {
        advance();
        ExprPtr inner = parse_expr();
        expect(TokenKind::kRParen, "')'");
        return inner;
      }
      default:
        fail("expected expression");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int anon_counter_ = 0;
};

}  // namespace

Program parse_program(std::string_view source) {
  return Parser(source).parse_program();
}

ExprPtr parse_expression(std::string_view source) {
  return Parser(source).parse_standalone_expression();
}

Tuple parse_tuple(std::string_view source) {
  return Parser(source).parse_ground_tuple();
}

}  // namespace dp
