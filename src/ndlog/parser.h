// Recursive-descent parser for NDlog programs.
//
// Surface syntax (see also Program::to_string, which round-trips):
//
//   table flowEntry(5) keys(0, 2) base mutable.
//   table packet(4) base immutable event.
//   table packetOut(4) derived.
//   rule r1 argmax Prio
//     packetOut(@Next, Pkt, Dst) :-
//       packet(@Sw, Pkt, Dst),
//       flowEntry(@Sw, Prio, Prefix, Next),
//       f_matches(Dst, Prefix) == 1.
//
// Body elements are disambiguated as follows: an element starting with a
// lowercase identifier is an atom unless the identifier begins with "f_"
// (builtin call => constraint); `Var := expr` is an assignment; anything
// else is a constraint expression.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "ndlog/program.h"
#include "ndlog/tuple.h"

namespace dp {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column)
      : std::runtime_error("parse error at " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + message) {}
};

/// Parses and validates a complete program. Throws LexError / ParseError /
/// ProgramError.
Program parse_program(std::string_view source);

/// Parses a standalone expression (testing / tooling convenience).
ExprPtr parse_expression(std::string_view source);

/// Parses a ground tuple, e.g. `delivered(@w2, 2, 4.3.3.1, "x")`. The
/// leading '@' on the location is optional; all arguments must be literals
/// (the location may also be a bare identifier, read as a node name).
/// Used by the CLI debugger and the text event-log format.
Tuple parse_tuple(std::string_view source);

}  // namespace dp
