#include "ndlog/program.h"

#include <algorithm>
#include <set>

namespace dp {

void Program::declare(TableDecl decl) {
  if (tables_.count(decl.name) != 0) {
    throw ProgramError("table redeclared: " + decl.name);
  }
  if (decl.arity == 0) {
    throw ProgramError("table must have at least the location field: " +
                       decl.name);
  }
  for (std::size_t col : decl.key_columns) {
    if (col >= decl.arity) {
      throw ProgramError("key column out of range in table " + decl.name);
    }
  }
  tables_.emplace(decl.name, std::move(decl));
}

void Program::add_rule(Rule rule) { rules_.push_back(std::move(rule)); }

const TableDecl* Program::find_table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const TableDecl& Program::table(const std::string& name) const {
  const TableDecl* decl = find_table(name);
  if (decl == nullptr) throw ProgramError("unknown table: " + name);
  return *decl;
}

const Rule* Program::find_rule(const std::string& name) const {
  for (const Rule& rule : rules_) {
    if (rule.name == name) return &rule;
  }
  return nullptr;
}

std::vector<std::size_t> Program::rules_listening_to(
    const std::string& table) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    for (const BodyAtom& atom : rules_[i].body) {
      if (atom.table == table) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

std::vector<Program::BodyOccurrence> Program::body_occurrences_of(
    const std::string& table) const {
  std::vector<BodyOccurrence> out;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    for (std::size_t j = 0; j < rules_[i].body.size(); ++j) {
      if (rules_[i].body[j].table == table) out.push_back({i, j});
    }
  }
  return out;
}

void Program::validate() const {
  std::set<std::string> rule_names;
  for (const Rule& rule : rules_) {
    if (!rule_names.insert(rule.name).second) {
      throw ProgramError("duplicate rule name: " + rule.name);
    }
    validate_rule(rule);
  }
}

void Program::validate_rule(const Rule& rule) const {
  auto fail = [&rule](const std::string& message) {
    throw ProgramError("rule " + rule.name + ": " + message);
  };

  if (rule.body.empty()) fail("empty body");

  // Head table must be declared, derived, and arity-consistent.
  const TableDecl* head_decl = find_table(rule.head.table);
  if (head_decl == nullptr) fail("undeclared head table " + rule.head.table);
  if (head_decl->kind != TupleKind::kDerived) {
    fail("head table " + rule.head.table + " is not declared derived");
  }
  if (rule.head.args.size() != head_decl->arity) {
    fail("head arity mismatch for " + rule.head.table);
  }

  // Body atoms: declared, arity-consistent, and localized.
  std::set<std::string> bound;
  std::string location_var;
  for (const BodyAtom& atom : rule.body) {
    const TableDecl* decl = find_table(atom.table);
    if (decl == nullptr) fail("undeclared body table " + atom.table);
    if (atom.args.size() != decl->arity) {
      fail("body arity mismatch for " + atom.table);
    }
    const AtomArg& loc = atom.args.front();
    if (loc.is_var) {
      if (location_var.empty()) {
        location_var = loc.var;
      } else if (location_var != loc.var) {
        fail("not localized: body atoms at @" + location_var + " and @" +
             loc.var);
      }
    } else if (!loc.constant.is_string()) {
      fail("location constant must be a string node name");
    }
    for (const AtomArg& arg : atom.args) {
      if (arg.is_var) bound.insert(arg.var);
    }
  }

  // Assignments bind new variables; their inputs must already be bound.
  auto check_bound = [&](const ExprPtr& expr, const char* where) {
    std::vector<std::string> vars;
    expr->collect_vars(vars);
    for (const std::string& v : vars) {
      if (bound.count(v) == 0) {
        fail(std::string("unbound variable ") + v + " in " + where);
      }
    }
  };
  for (const Assignment& assign : rule.assigns) {
    check_bound(assign.expr, "assignment");
    bound.insert(assign.var);
  }
  for (const ExprPtr& constraint : rule.constraints) {
    check_bound(constraint, "constraint");
  }
  if (rule.agg) {
    if (bound.count(rule.agg->var) != 0) {
      fail("aggregate variable " + rule.agg->var +
           " must not be bound in the body");
    }
    bound.insert(rule.agg->var);  // the engine supplies its value
  }
  for (const ExprPtr& arg : rule.head.args) {
    check_bound(arg, "head");
  }
  if (rule.argmax_var && bound.count(*rule.argmax_var) == 0) {
    fail("argmax variable " + *rule.argmax_var + " is unbound");
  }

  if (rule.agg) {
    const AggSpec& agg = *rule.agg;
    // The aggregate variable must appear exactly once, directly, in the head.
    std::size_t found = rule.head.args.size();
    for (std::size_t i = 0; i < rule.head.args.size(); ++i) {
      std::vector<std::string> vars;
      rule.head.args[i]->collect_vars(vars);
      const bool mentions =
          std::find(vars.begin(), vars.end(), agg.var) != vars.end();
      if (!mentions) continue;
      if (rule.head.args[i]->kind != Expr::Kind::kVar ||
          found != rule.head.args.size()) {
        fail("aggregate variable " + agg.var +
             " must appear exactly once as a plain head argument");
      }
      found = i;
    }
    if (found == rule.head.args.size()) {
      fail("aggregate variable " + agg.var + " does not appear in the head");
    }
    // Mutating the const rule's resolved index is done by the engine via a
    // fresh lookup; validation just confirms the structure here.
    if (agg.kind == AggSpec::Kind::kSum && bound.count(agg.sum_var) == 0) {
      fail("summed variable " + agg.sum_var + " is unbound");
    }
    // The head table's keys must identify the group: declared, and not
    // covering the aggregate column (so each new value displaces the old).
    if (head_decl->key_columns.empty()) {
      fail("aggregate head table " + rule.head.table +
           " needs declared keys (the group)");
    }
    for (std::size_t col : head_decl->key_columns) {
      if (col == found) {
        fail("aggregate column of " + rule.head.table +
             " must not be part of its keys");
      }
    }
    if (head_decl->is_event()) {
      fail("aggregate head table " + rule.head.table + " cannot be an event");
    }
  }
}

std::string Program::to_string() const {
  std::string out;
  for (const auto& [name, decl] : tables_) {
    out += "table " + name + "(" + std::to_string(decl.arity) + ")";
    if (!decl.key_columns.empty()) {
      out += " keys(";
      for (std::size_t i = 0; i < decl.key_columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(decl.key_columns[i]);
      }
      out += ")";
    }
    out += decl.kind == TupleKind::kBase ? " base" : " derived";
    if (decl.kind == TupleKind::kBase) {
      out += decl.mutability == Mutability::kMutable ? " mutable"
                                                     : " immutable";
    }
    if (decl.is_event()) out += " event";
    out += ".\n";
  }
  for (const Rule& rule : rules_) {
    out += rule.to_string() + "\n";
  }
  return out;
}

}  // namespace dp
