// A validated NDlog program: table declarations plus derivation rules.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "ndlog/ast.h"
#include "ndlog/schema.h"

namespace dp {

class ProgramError : public std::runtime_error {
 public:
  explicit ProgramError(const std::string& what) : std::runtime_error(what) {}
};

/// Container for declarations and rules. `validate()` enforces the static
/// well-formedness conditions that the runtime and DiffProv rely on:
///   * every atom's table is declared with matching arity;
///   * rules are localized (all body atoms share one location variable);
///   * rules are safe (head/assignment/constraint variables are bound);
///   * only derived tables appear in rule heads, and base tables never do;
///   * every tuple's location field is field 0.
class Program {
 public:
  /// Declares a table; throws ProgramError on redeclaration.
  void declare(TableDecl decl);

  /// Adds a rule (validated lazily by validate()).
  void add_rule(Rule rule);

  /// Validates the whole program; throws ProgramError on the first problem.
  void validate() const;

  [[nodiscard]] const TableDecl* find_table(const std::string& name) const;
  [[nodiscard]] const TableDecl& table(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, TableDecl>& tables() const {
    return tables_;
  }
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }
  [[nodiscard]] const Rule* find_rule(const std::string& name) const;

  /// Indices of rules with at least one body atom over `table`; used by the
  /// runtime's delta evaluator to react to tuple arrivals.
  [[nodiscard]] std::vector<std::size_t> rules_listening_to(
      const std::string& table) const;

  /// One (rule, body-atom) position where `table` appears. The runtime
  /// compiles one join plan per occurrence: an arriving tuple of `table`
  /// triggers each occurrence in (rule index, atom index) order.
  struct BodyOccurrence {
    std::size_t rule = 0;
    std::size_t atom = 0;
  };

  /// All body occurrences of `table` across the program, in (rule, atom)
  /// order -- the deterministic firing order of the delta evaluator.
  [[nodiscard]] std::vector<BodyOccurrence> body_occurrences_of(
      const std::string& table) const;

  /// Pretty-prints the whole program back to (re-parseable) source text.
  [[nodiscard]] std::string to_string() const;

 private:
  void validate_rule(const Rule& rule) const;

  std::map<std::string, TableDecl> tables_;
  std::vector<Rule> rules_;
};

}  // namespace dp
