// Table declarations: materialization, keys, and mutability.
//
// Mutability is the paper's Refinement #1 (section 3.3): DiffProv may only
// change *mutable* base tuples (configuration state), never immutable ones
// (e.g. packets arriving from outside the operator's control).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dp {

enum class TupleKind : std::uint8_t {
  kBase,     // injected from outside (INSERT vertices in provenance)
  kDerived,  // produced by rules (DERIVE vertices)
};

enum class Mutability : std::uint8_t {
  kMutable,    // DiffProv may propose changes to these base tuples
  kImmutable,  // off limits (packets, external stimuli)
};

/// Declaration of one table. `key_columns` lists the 0-based columns forming
/// the primary key (always including column 0, the location). Inserting a
/// tuple whose key matches an existing row *replaces* that row (RapidNet
/// materialized-table semantics); an empty key list means set semantics over
/// the full tuple.
struct TableDecl {
  std::string name;
  std::size_t arity = 0;
  std::vector<std::size_t> key_columns;  // empty => whole tuple is the key
  TupleKind kind = TupleKind::kBase;
  Mutability mutability = Mutability::kMutable;
  // Events (non-materialized tables) trigger rules but are not stored; their
  // EXIST interval is a single instant. Packets are events.
  bool materialized = true;

  [[nodiscard]] bool is_event() const { return !materialized; }
};

}  // namespace dp
