#include "ndlog/table.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"

namespace dp {

// ---------------------------------------------------------------------------
// Table::JoinIndex

Table::JoinIndex::HashFn Table::JoinIndex::hash_override_ = nullptr;

void Table::JoinIndex::set_hash_for_testing(HashFn fn) { hash_override_ = fn; }

std::uint64_t Table::JoinIndex::hash_key(const std::vector<Value>& key) {
  if (hash_override_ != nullptr) return hash_override_(key);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : key) h = hash_mix(h, v.hash());
  return h;
}

void Table::JoinIndex::prefetch(std::uint64_t hash) const {
  if (slots.empty()) return;
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(&slots[hash & (slots.size() - 1)]);
#endif
}

void Table::JoinIndex::prefetch_bucket(std::uint64_t hash) const {
  if (slots.empty()) return;
#if defined(__GNUC__) || defined(__clang__)
  // Walk the (already prefetched) probe chain to the first hash match and
  // start its bucket's line -- the key compare in lookup() then reads a
  // warm bucket instead of stalling on slot -> bucket -> key in sequence.
  const std::size_t mask = slots.size() - 1;
  for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
    const Slot& slot = slots[i];
    if (slot.bucket == kEmptySlot) return;
    if (slot.hash == hash) {
      __builtin_prefetch(&buckets[slot.bucket]);
      return;
    }
  }
#endif
}

const std::vector<Table::JoinIndex::Entry>* Table::JoinIndex::lookup(
    std::uint64_t hash, const std::vector<Value>& key) const {
  if (slots.empty()) return nullptr;
  const std::size_t mask = slots.size() - 1;
  for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
    const Slot& slot = slots[i];
    // Slots are never vacated, so an empty slot terminates the probe chain
    // soundly: the key, had it ever been inserted, would sit before it.
    if (slot.bucket == kEmptySlot) return nullptr;
    if (slot.hash == hash) {
      const Bucket& bucket = buckets[slot.bucket];
      if (bucket.key == key) {
        return bucket.entries.empty() ? nullptr : &bucket.entries;
      }
    }
  }
}

Table::JoinIndex::Bucket& Table::JoinIndex::bucket_for(
    std::uint64_t hash, const std::vector<Value>& key) {
  // Grow at ~0.7 load (each bucket occupies exactly one slot, forever).
  if (slots.empty() || (buckets.size() + 1) * 10 >= slots.size() * 7) {
    rehash_grow();
  }
  const std::size_t mask = slots.size() - 1;
  for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
    Slot& slot = slots[i];
    if (slot.bucket == kEmptySlot) {
      slot.hash = hash;
      slot.bucket = static_cast<std::uint32_t>(buckets.size());
      buckets.push_back(Bucket{key, {}});
      return buckets.back();
    }
    if (slot.hash == hash && buckets[slot.bucket].key == key) {
      return buckets[slot.bucket];
    }
  }
}

void Table::JoinIndex::rehash_grow() {
  const std::size_t fresh_size = slots.empty() ? 16 : slots.size() * 2;
  std::vector<Slot> fresh(fresh_size);
  const std::size_t mask = fresh_size - 1;
  for (const Slot& old : slots) {
    if (old.bucket == kEmptySlot) continue;
    std::size_t i = old.hash & mask;
    while (fresh[i].bucket != kEmptySlot) i = (i + 1) & mask;
    fresh[i] = old;
  }
  slots.swap(fresh);
}

// ---------------------------------------------------------------------------
// Table

std::vector<Value> Table::key_of(const Tuple& t) const {
  if (decl_.key_columns.empty()) return t.values();
  std::vector<Value> key;
  key.reserve(decl_.key_columns.size());
  for (std::size_t col : decl_.key_columns) {
    assert(col < t.arity());
    key.push_back(t.at(col));
  }
  return key;
}

const std::vector<Value>& Table::key_of(const Tuple& t,
                                        std::vector<Value>& out) const {
  out.clear();
  if (decl_.key_columns.empty()) {
    out.assign(t.values().begin(), t.values().end());
    return out;
  }
  out.reserve(decl_.key_columns.size());
  for (std::size_t col : decl_.key_columns) {
    assert(col < t.arity());
    out.push_back(t.at(col));
  }
  return out;
}

void Table::project(const Tuple& t, const ColumnSet& cols,
                    std::vector<Value>& out) {
  out.clear();
  out.reserve(cols.size());
  for (std::size_t col : cols) {
    assert(col < t.arity());
    out.push_back(t.at(col));
  }
}

void Table::index_live_row(LiveMap::const_iterator it) const {
  for (auto& [cols, index] : indexes_) {
    project(it->second, cols, projection_scratch_);
    auto& entries =
        index
            .bucket_for(JoinIndex::hash_key(projection_scratch_),
                        projection_scratch_)
            .entries;
    const JoinIndex::Entry entry{&it->first, &it->second};
    // Keep the bucket sorted by live-map key: indexed enumeration must match
    // for_each_live()'s relative order (determinism guarantee).
    const auto pos = std::lower_bound(
        entries.begin(), entries.end(), entry,
        [](const JoinIndex::Entry& a, const JoinIndex::Entry& b) {
          return *a.live_key < *b.live_key;
        });
    entries.insert(pos, entry);
  }
}

void Table::unindex_live_row(LiveMap::const_iterator it) const {
  for (auto& [cols, index] : indexes_) {
    project(it->second, cols, projection_scratch_);
    auto& entries =
        index
            .bucket_for(JoinIndex::hash_key(projection_scratch_),
                        projection_scratch_)
            .entries;
    const auto pos = std::lower_bound(
        entries.begin(), entries.end(), it->first,
        [](const JoinIndex::Entry& a, const std::vector<Value>& key) {
          return *a.live_key < key;
        });
    assert(pos != entries.end() && *pos->live_key == it->first);
    entries.erase(pos);
    // The bucket itself stays, empty: slots are never vacated.
  }
}

Table::InsertResult Table::insert(const Tuple& t, LogicalTime now) {
  InsertResult result;
  key_of(t, key_scratch_);
  auto it = live_.find(key_scratch_);
  if (it != live_.end()) {
    if (it->second == t) return result;  // identical tuple already live
    // Key collision: displace the current holder (upsert semantics).
    result.displaced = it->second;
    auto& intervals = rows_[it->second];
    assert(!intervals.empty() && intervals.back().open_ended());
    intervals.back().end = now;
    unindex_live_row(it);
    live_.erase(it);
  }
  rows_[t].push_back(TimeInterval{now, kTimeInfinity});
  const auto inserted = live_.emplace(std::move(key_scratch_), t).first;
  index_live_row(inserted);
  result.inserted = true;
  return result;
}

bool Table::remove(const Tuple& t, LogicalTime now) {
  key_of(t, key_scratch_);
  auto it = live_.find(key_scratch_);
  if (it == live_.end() || !(it->second == t)) return false;
  auto& intervals = rows_[t];
  assert(!intervals.empty() && intervals.back().open_ended());
  intervals.back().end = now;
  unindex_live_row(it);
  live_.erase(it);
  return true;
}

bool Table::is_live(const Tuple& t) const {
  auto it = live_.find(key_of(t, key_scratch_));
  return it != live_.end() && it->second == t;
}

bool Table::existed_at(const Tuple& t, LogicalTime at) const {
  auto it = rows_.find(t);
  if (it == rows_.end()) return false;
  for (const TimeInterval& iv : it->second) {
    if (iv.contains(at)) return true;
  }
  return false;
}

std::optional<LogicalTime> Table::live_since(const Tuple& t) const {
  auto it = rows_.find(t);
  if (it == rows_.end() || it->second.empty()) return std::nullopt;
  const TimeInterval& last = it->second.back();
  if (!last.open_ended()) return std::nullopt;
  return last.start;
}

std::vector<TimeInterval> Table::history(const Tuple& t) const {
  auto it = rows_.find(t);
  if (it == rows_.end()) return {};
  return it->second;
}

void Table::for_each_live(const std::function<void(const Tuple&)>& fn) const {
  for (const auto& [key, tuple] : live_) {
    fn(tuple);
  }
}

const Table::JoinIndex& Table::index_for(const ColumnSet& cols) const {
  assert(!cols.empty());
  assert(std::is_sorted(cols.begin(), cols.end()));
  auto index_it = indexes_.find(cols);
  if (index_it == indexes_.end()) {
    // First probe on this column set: materialize the index from the live
    // view. live_ iterates in ascending key order, so buckets come out
    // sorted without a separate pass.
    index_it = indexes_.emplace(cols, JoinIndex{}).first;
    JoinIndex& index = index_it->second;
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      project(it->second, cols, projection_scratch_);
      index
          .bucket_for(JoinIndex::hash_key(projection_scratch_),
                      projection_scratch_)
          .entries.push_back(JoinIndex::Entry{&it->first, &it->second});
    }
  }
  return index_it->second;
}

void Table::for_each_live_matching(
    const ColumnSet& cols, const std::vector<Value>& probe,
    const std::function<void(const Tuple&)>& fn) const {
  const JoinIndex& index = index_for(cols);
  const auto* entries = index.lookup(JoinIndex::hash_key(probe), probe);
  if (entries == nullptr) return;
  for (const JoinIndex::Entry& entry : *entries) {
    fn(*entry.tuple);
  }
}

void Table::for_each_at(LogicalTime at,
                        const std::function<void(const Tuple&)>& fn) const {
  for (const auto& [tuple, intervals] : rows_) {
    for (const TimeInterval& iv : intervals) {
      if (iv.contains(at)) {
        fn(tuple);
        break;
      }
    }
  }
}

std::vector<Tuple> Table::live_snapshot() const {
  std::vector<Tuple> out;
  out.reserve(live_.size());
  // live_ is keyed by projected key; re-sort by full tuple for determinism.
  for (const auto& [key, tuple] : live_) out.push_back(tuple);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dp
