#include "ndlog/table.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"

namespace dp {

std::size_t Table::ValueVecHash::operator()(
    const std::vector<Value>& values) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : values) h = hash_mix(h, v.hash());
  return static_cast<std::size_t>(h);
}

std::vector<Value> Table::key_of(const Tuple& t) const {
  if (decl_.key_columns.empty()) return t.values();
  std::vector<Value> key;
  key.reserve(decl_.key_columns.size());
  for (std::size_t col : decl_.key_columns) {
    assert(col < t.arity());
    key.push_back(t.at(col));
  }
  return key;
}

const std::vector<Value>& Table::key_of(const Tuple& t,
                                        std::vector<Value>& out) const {
  out.clear();
  if (decl_.key_columns.empty()) {
    out.assign(t.values().begin(), t.values().end());
    return out;
  }
  out.reserve(decl_.key_columns.size());
  for (std::size_t col : decl_.key_columns) {
    assert(col < t.arity());
    out.push_back(t.at(col));
  }
  return out;
}

void Table::project(const Tuple& t, const ColumnSet& cols,
                    std::vector<Value>& out) {
  out.clear();
  out.reserve(cols.size());
  for (std::size_t col : cols) {
    assert(col < t.arity());
    out.push_back(t.at(col));
  }
}

void Table::index_live_row(LiveMap::const_iterator it) const {
  for (auto& [cols, index] : indexes_) {
    project(it->second, cols, projection_scratch_);
    auto& bucket = index.buckets[projection_scratch_];
    const JoinIndex::Entry entry{&it->first, &it->second};
    // Keep the bucket sorted by live-map key: indexed enumeration must match
    // for_each_live()'s relative order (determinism guarantee).
    const auto pos = std::lower_bound(
        bucket.begin(), bucket.end(), entry,
        [](const JoinIndex::Entry& a, const JoinIndex::Entry& b) {
          return *a.live_key < *b.live_key;
        });
    bucket.insert(pos, entry);
  }
}

void Table::unindex_live_row(LiveMap::const_iterator it) const {
  for (auto& [cols, index] : indexes_) {
    project(it->second, cols, projection_scratch_);
    auto bucket_it = index.buckets.find(projection_scratch_);
    assert(bucket_it != index.buckets.end());
    auto& bucket = bucket_it->second;
    const auto pos = std::lower_bound(
        bucket.begin(), bucket.end(), it->first,
        [](const JoinIndex::Entry& a, const std::vector<Value>& key) {
          return *a.live_key < key;
        });
    assert(pos != bucket.end() && *pos->live_key == it->first);
    bucket.erase(pos);
    if (bucket.empty()) index.buckets.erase(bucket_it);
  }
}

Table::InsertResult Table::insert(const Tuple& t, LogicalTime now) {
  InsertResult result;
  key_of(t, key_scratch_);
  auto it = live_.find(key_scratch_);
  if (it != live_.end()) {
    if (it->second == t) return result;  // identical tuple already live
    // Key collision: displace the current holder (upsert semantics).
    result.displaced = it->second;
    auto& intervals = rows_[it->second];
    assert(!intervals.empty() && intervals.back().open_ended());
    intervals.back().end = now;
    unindex_live_row(it);
    live_.erase(it);
  }
  rows_[t].push_back(TimeInterval{now, kTimeInfinity});
  const auto inserted = live_.emplace(std::move(key_scratch_), t).first;
  index_live_row(inserted);
  result.inserted = true;
  return result;
}

bool Table::remove(const Tuple& t, LogicalTime now) {
  key_of(t, key_scratch_);
  auto it = live_.find(key_scratch_);
  if (it == live_.end() || !(it->second == t)) return false;
  auto& intervals = rows_[t];
  assert(!intervals.empty() && intervals.back().open_ended());
  intervals.back().end = now;
  unindex_live_row(it);
  live_.erase(it);
  return true;
}

bool Table::is_live(const Tuple& t) const {
  auto it = live_.find(key_of(t, key_scratch_));
  return it != live_.end() && it->second == t;
}

bool Table::existed_at(const Tuple& t, LogicalTime at) const {
  auto it = rows_.find(t);
  if (it == rows_.end()) return false;
  for (const TimeInterval& iv : it->second) {
    if (iv.contains(at)) return true;
  }
  return false;
}

std::optional<LogicalTime> Table::live_since(const Tuple& t) const {
  auto it = rows_.find(t);
  if (it == rows_.end() || it->second.empty()) return std::nullopt;
  const TimeInterval& last = it->second.back();
  if (!last.open_ended()) return std::nullopt;
  return last.start;
}

std::vector<TimeInterval> Table::history(const Tuple& t) const {
  auto it = rows_.find(t);
  if (it == rows_.end()) return {};
  return it->second;
}

void Table::for_each_live(const std::function<void(const Tuple&)>& fn) const {
  for (const auto& [key, tuple] : live_) {
    fn(tuple);
  }
}

void Table::for_each_live_matching(
    const ColumnSet& cols, const std::vector<Value>& probe,
    const std::function<void(const Tuple&)>& fn) const {
  assert(!cols.empty());
  assert(std::is_sorted(cols.begin(), cols.end()));
  auto index_it = indexes_.find(cols);
  if (index_it == indexes_.end()) {
    // First probe on this column set: materialize the index from the live
    // view. live_ iterates in ascending key order, so buckets come out
    // sorted without a separate pass.
    index_it = indexes_.emplace(cols, JoinIndex{}).first;
    JoinIndex& index = index_it->second;
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      project(it->second, cols, projection_scratch_);
      index.buckets[projection_scratch_].push_back(
          JoinIndex::Entry{&it->first, &it->second});
    }
  }
  const auto bucket_it = index_it->second.buckets.find(probe);
  if (bucket_it == index_it->second.buckets.end()) return;
  for (const JoinIndex::Entry& entry : bucket_it->second) {
    fn(*entry.tuple);
  }
}

void Table::for_each_at(LogicalTime at,
                        const std::function<void(const Tuple&)>& fn) const {
  for (const auto& [tuple, intervals] : rows_) {
    for (const TimeInterval& iv : intervals) {
      if (iv.contains(at)) {
        fn(tuple);
        break;
      }
    }
  }
}

std::vector<Tuple> Table::live_snapshot() const {
  std::vector<Tuple> out;
  out.reserve(live_.size());
  // live_ is keyed by projected key; re-sort by full tuple for determinism.
  for (const auto& [key, tuple] : live_) out.push_back(tuple);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dp
