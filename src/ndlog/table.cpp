#include "ndlog/table.h"

#include <algorithm>
#include <cassert>

namespace dp {

std::vector<Value> Table::key_of(const Tuple& t) const {
  if (decl_.key_columns.empty()) return t.values();
  std::vector<Value> key;
  key.reserve(decl_.key_columns.size());
  for (std::size_t col : decl_.key_columns) {
    assert(col < t.arity());
    key.push_back(t.at(col));
  }
  return key;
}

Table::InsertResult Table::insert(const Tuple& t, LogicalTime now) {
  InsertResult result;
  const std::vector<Value> key = key_of(t);
  auto it = live_.find(key);
  if (it != live_.end()) {
    if (it->second == t) return result;  // identical tuple already live
    // Key collision: displace the current holder (upsert semantics).
    result.displaced = it->second;
    auto& intervals = rows_[it->second];
    assert(!intervals.empty() && intervals.back().open_ended());
    intervals.back().end = now;
    live_.erase(it);
  }
  rows_[t].push_back(TimeInterval{now, kTimeInfinity});
  live_.emplace(key, t);
  result.inserted = true;
  return result;
}

bool Table::remove(const Tuple& t, LogicalTime now) {
  const std::vector<Value> key = key_of(t);
  auto it = live_.find(key);
  if (it == live_.end() || !(it->second == t)) return false;
  auto& intervals = rows_[t];
  assert(!intervals.empty() && intervals.back().open_ended());
  intervals.back().end = now;
  live_.erase(it);
  return true;
}

bool Table::is_live(const Tuple& t) const {
  auto it = live_.find(key_of(t));
  return it != live_.end() && it->second == t;
}

bool Table::existed_at(const Tuple& t, LogicalTime at) const {
  auto it = rows_.find(t);
  if (it == rows_.end()) return false;
  for (const TimeInterval& iv : it->second) {
    if (iv.contains(at)) return true;
  }
  return false;
}

std::optional<LogicalTime> Table::live_since(const Tuple& t) const {
  auto it = rows_.find(t);
  if (it == rows_.end() || it->second.empty()) return std::nullopt;
  const TimeInterval& last = it->second.back();
  if (!last.open_ended()) return std::nullopt;
  return last.start;
}

std::vector<TimeInterval> Table::history(const Tuple& t) const {
  auto it = rows_.find(t);
  if (it == rows_.end()) return {};
  return it->second;
}

void Table::for_each_live(const std::function<void(const Tuple&)>& fn) const {
  for (const auto& [key, tuple] : live_) {
    fn(tuple);
  }
}

void Table::for_each_at(LogicalTime at,
                        const std::function<void(const Tuple&)>& fn) const {
  for (const auto& [tuple, intervals] : rows_) {
    for (const TimeInterval& iv : intervals) {
      if (iv.contains(at)) {
        fn(tuple);
        break;
      }
    }
  }
}

std::vector<Tuple> Table::live_snapshot() const {
  std::vector<Tuple> out;
  out.reserve(live_.size());
  // live_ is keyed by projected key; re-sort by full tuple for determinism.
  for (const auto& [key, tuple] : live_) out.push_back(tuple);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dp
