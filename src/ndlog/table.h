// Temporal tuple tables.
//
// Every tuple carries a history of validity intervals [t1, t2). This is the
// temporal dimension the paper inherits from DTaP (section 3.2): it lets the
// provenance graph "remember" past events, which matters when the reference
// event happened in the past (e.g. scenario SDN3, where the good packet was
// observed before a multicast rule expired).
//
// Insertion follows RapidNet materialized-table semantics: tables declare key
// columns, and inserting a tuple whose key collides with a live row displaces
// that row (it is deleted at the same timestamp). Event tables (materialized
// = false) are not stored at all; they exist for a single instant.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ndlog/schema.h"
#include "ndlog/tuple.h"
#include "util/time.h"

namespace dp {

class Table {
 public:
  explicit Table(TableDecl decl) : decl_(std::move(decl)) {}

  [[nodiscard]] const TableDecl& decl() const { return decl_; }

  /// Outcome of an insert: whether the tuple was new, and which live tuple
  /// (if any) was displaced by key-based upsert.
  struct InsertResult {
    bool inserted = false;            // false if the identical tuple was live
    std::optional<Tuple> displaced;   // key collision victim, already removed
  };

  /// Starts a validity interval for `t` at `now`. No-op if the identical
  /// tuple is already live.
  InsertResult insert(const Tuple& t, LogicalTime now);

  /// Ends the live interval of `t` at `now`. Returns false if not live.
  bool remove(const Tuple& t, LogicalTime now);

  /// True if `t` is live now (interval still open).
  [[nodiscard]] bool is_live(const Tuple& t) const;

  /// True if `t` existed at logical time `at`.
  [[nodiscard]] bool existed_at(const Tuple& t, LogicalTime at) const;

  /// Live interval start of `t`, if live.
  [[nodiscard]] std::optional<LogicalTime> live_since(const Tuple& t) const;

  /// Full interval history of `t` (empty if never seen).
  [[nodiscard]] std::vector<TimeInterval> history(const Tuple& t) const;

  /// Deterministic iteration over live tuples (sorted by tuple value).
  void for_each_live(const std::function<void(const Tuple&)>& fn) const;

  /// Deterministic iteration over tuples alive at time `at`.
  void for_each_at(LogicalTime at,
                   const std::function<void(const Tuple&)>& fn) const;

  /// All live tuples, sorted.
  [[nodiscard]] std::vector<Tuple> live_snapshot() const;

  /// Number of live tuples.
  [[nodiscard]] std::size_t live_count() const { return live_.size(); }

  /// Number of distinct tuples ever seen (live or dead).
  [[nodiscard]] std::size_t total_count() const { return rows_.size(); }

  /// Key projection for upsert (per decl). Exposed for testing.
  [[nodiscard]] std::vector<Value> key_of(const Tuple& t) const;

  /// The live tuple holding `key`, if any (aggregation reads the previous
  /// value through this).
  [[nodiscard]] const Tuple* live_by_key(const std::vector<Value>& key) const {
    auto it = live_.find(key);
    return it == live_.end() ? nullptr : &it->second;
  }

 private:
  TableDecl decl_;
  // Full temporal history; intervals are append-only and non-overlapping.
  std::map<Tuple, std::vector<TimeInterval>> rows_;
  // Live view keyed by the declared key columns (whole tuple if none).
  std::map<std::vector<Value>, Tuple> live_;
};

}  // namespace dp
