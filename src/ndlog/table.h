// Temporal tuple tables.
//
// Every tuple carries a history of validity intervals [t1, t2). This is the
// temporal dimension the paper inherits from DTaP (section 3.2): it lets the
// provenance graph "remember" past events, which matters when the reference
// event happened in the past (e.g. scenario SDN3, where the good packet was
// observed before a multicast rule expired).
//
// Insertion follows RapidNet materialized-table semantics: tables declare key
// columns, and inserting a tuple whose key collides with a live row displaces
// that row (it is deleted at the same timestamp). Event tables (materialized
// = false) are not stored at all; they exist for a single instant.
//
// Secondary join indexes: the runtime's compiled rule plans probe tables by
// a projection of columns bound at join time (see runtime/plan.h). A table
// lazily materializes one hash index per distinct bound-column set on first
// probe and maintains it incrementally in insert/remove, turning each probe
// into an O(1) bucket lookup instead of an O(n) scan. Bucket entries stay
// sorted in live-iteration order so an indexed join enumerates exactly the
// subsequence of for_each_live() that matches -- the engine's outputs are
// byte-identical with or without indexes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ndlog/schema.h"
#include "ndlog/tuple.h"
#include "util/time.h"

namespace dp {

/// Identifier of a secondary index: the sorted 0-based column positions the
/// probe binds.
using ColumnSet = std::vector<std::size_t>;

class Table {
 public:
  /// One secondary index: probe projection -> bucket of live rows, stored as
  /// an open-addressing hash table (power-of-two slot array, linear probing)
  /// shaped for the batch probe pipeline: the engine hashes a whole frontier
  /// of probe keys, prefetches their slot clusters, then looks each up
  /// against slots that are already in cache. Slots and buckets are never
  /// deleted -- a bucket whose rows all die stays behind empty -- so probing
  /// needs no tombstones and bucket indices stay stable. Entries point into
  /// live_ map nodes (stable until erase) and stay sorted by the live-map
  /// key, i.e. in for_each_live() order, which is what keeps indexed joins
  /// byte-identical to the reference scan.
  struct JoinIndex {
    struct Entry {
      const std::vector<Value>* live_key;
      const Tuple* tuple;
    };
    struct Bucket {
      std::vector<Value> key;
      std::vector<Entry> entries;
    };
    static constexpr std::uint32_t kEmptySlot = 0xffffffffu;
    struct Slot {
      std::uint64_t hash = 0;
      std::uint32_t bucket = kEmptySlot;
    };

    using HashFn = std::uint64_t (*)(const std::vector<Value>&);
    /// Testing hook: replaces the probe-key hash process-wide (e.g. a
    /// constant, to force every key into one collision cluster). Must be set
    /// before the indexes under test are built and reset to nullptr after;
    /// an index probed with a different hash than it was built with is
    /// garbage.
    static void set_hash_for_testing(HashFn fn);
    [[nodiscard]] static std::uint64_t hash_key(const std::vector<Value>& key);

    /// Prefetches the slot cluster for `hash` (the gather->hash->prefetch->
    /// lookup stages of the batch probe).
    void prefetch(std::uint64_t hash) const;

    /// Follow-up stage once the slot cluster is in cache: walks the probe
    /// chain to the hash's bucket (if any) and prefetches it, so lookup()'s
    /// key compare does not stall on the slot -> bucket dependency.
    void prefetch_bucket(std::uint64_t hash) const;

    /// The live entries whose projection equals `key`, or nullptr if none.
    /// `hash` must be hash_key(key).
    [[nodiscard]] const std::vector<Entry>* lookup(
        std::uint64_t hash, const std::vector<Value>& key) const;

    // -- maintenance (Table internals; exposed for white-box tests) --
    /// The bucket for `key`, created empty if absent. May rehash.
    Bucket& bucket_for(std::uint64_t hash, const std::vector<Value>& key);

    [[nodiscard]] std::size_t slot_count() const { return slots.size(); }
    [[nodiscard]] std::size_t bucket_count() const { return buckets.size(); }

    std::vector<Slot> slots;
    std::vector<Bucket> buckets;

   private:
    void rehash_grow();
    static HashFn hash_override_;
  };

  explicit Table(TableDecl decl) : decl_(std::move(decl)) {}

  // Copies drop the secondary indexes (they hold pointers into the source's
  // live_ map nodes); they are rebuilt lazily on first probe. Moves keep
  // them: std::map nodes are pointer-stable across a container move.
  Table(const Table& other)
      : decl_(other.decl_), rows_(other.rows_), live_(other.live_) {}
  Table& operator=(const Table& other) {
    if (this != &other) {
      decl_ = other.decl_;
      rows_ = other.rows_;
      live_ = other.live_;
      indexes_.clear();
    }
    return *this;
  }
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  [[nodiscard]] const TableDecl& decl() const { return decl_; }

  /// Outcome of an insert: whether the tuple was new, and which live tuple
  /// (if any) was displaced by key-based upsert.
  struct InsertResult {
    bool inserted = false;            // false if the identical tuple was live
    std::optional<Tuple> displaced;   // key collision victim, already removed
  };

  /// Starts a validity interval for `t` at `now`. No-op if the identical
  /// tuple is already live.
  InsertResult insert(const Tuple& t, LogicalTime now);

  /// Ends the live interval of `t` at `now`. Returns false if not live.
  bool remove(const Tuple& t, LogicalTime now);

  /// True if `t` is live now (interval still open).
  [[nodiscard]] bool is_live(const Tuple& t) const;

  /// True if `t` existed at logical time `at`.
  [[nodiscard]] bool existed_at(const Tuple& t, LogicalTime at) const;

  /// Live interval start of `t`, if live.
  [[nodiscard]] std::optional<LogicalTime> live_since(const Tuple& t) const;

  /// Full interval history of `t` (empty if never seen).
  [[nodiscard]] std::vector<TimeInterval> history(const Tuple& t) const;

  /// Deterministic iteration over live tuples (sorted by key projection).
  void for_each_live(const std::function<void(const Tuple&)>& fn) const;

  /// Deterministic iteration over the live tuples whose projection on
  /// `cols` (sorted column positions, non-empty) equals `probe`, in the same
  /// relative order as for_each_live(). Materializes the index for `cols` on
  /// first use; insert/remove keep it current afterwards.
  void for_each_live_matching(const ColumnSet& cols,
                              const std::vector<Value>& probe,
                              const std::function<void(const Tuple&)>& fn) const;

  /// The secondary index for `cols` (sorted, non-empty), materialized from
  /// the live view on first use and maintained incrementally afterwards.
  /// The batch executor probes it directly (hash_key/prefetch/lookup)
  /// instead of going through the per-probe for_each_live_matching shim.
  [[nodiscard]] const JoinIndex& index_for(const ColumnSet& cols) const;

  /// Deterministic iteration over tuples alive at time `at`.
  void for_each_at(LogicalTime at,
                   const std::function<void(const Tuple&)>& fn) const;

  /// All live tuples, sorted.
  [[nodiscard]] std::vector<Tuple> live_snapshot() const;

  /// Number of live tuples.
  [[nodiscard]] std::size_t live_count() const { return live_.size(); }

  /// Number of distinct tuples ever seen (live or dead).
  [[nodiscard]] std::size_t total_count() const { return rows_.size(); }

  /// Number of materialized secondary indexes (observability/testing).
  [[nodiscard]] std::size_t index_count() const { return indexes_.size(); }

  /// Key projection for upsert (per decl). Exposed for testing.
  [[nodiscard]] std::vector<Value> key_of(const Tuple& t) const;

  /// Allocation-free variant: fills `out` (cleared first) and returns it.
  /// The hot paths (is_live/insert/remove, once per event) reuse one scratch
  /// buffer instead of allocating a fresh vector per call.
  const std::vector<Value>& key_of(const Tuple& t,
                                   std::vector<Value>& out) const;

  /// The live tuple holding `key`, if any (aggregation reads the previous
  /// value through this).
  [[nodiscard]] const Tuple* live_by_key(const std::vector<Value>& key) const {
    auto it = live_.find(key);
    return it == live_.end() ? nullptr : &it->second;
  }

 private:
  using LiveMap = std::map<std::vector<Value>, Tuple>;

  /// Projection of `t` on `cols` into `out` (cleared first).
  static void project(const Tuple& t, const ColumnSet& cols,
                      std::vector<Value>& out);

  /// Adds/removes the live_ node `it` to/from every materialized index.
  /// Removal must happen before live_.erase() (entries point into the node).
  void index_live_row(LiveMap::const_iterator it) const;
  void unindex_live_row(LiveMap::const_iterator it) const;

  TableDecl decl_;
  // Full temporal history; intervals are append-only and non-overlapping.
  std::map<Tuple, std::vector<TimeInterval>> rows_;
  // Live view keyed by the declared key columns (whole tuple if none).
  LiveMap live_;
  // Lazily created secondary indexes, one per probed column set. Mutable:
  // index creation is a cache fill on a logically-const probe.
  mutable std::map<ColumnSet, JoinIndex> indexes_;
  // Scratch buffers for key/probe projections on the hot paths.
  mutable std::vector<Value> key_scratch_;
  mutable std::vector<Value> projection_scratch_;
};

}  // namespace dp
