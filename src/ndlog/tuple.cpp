#include "ndlog/tuple.h"

namespace dp {

Tuple Tuple::with_field(std::size_t i, Value v) const {
  Tuple copy = *this;
  copy.values_[i] = std::move(v);
  return copy;
}

std::uint64_t Tuple::hash() const {
  std::uint64_t h = fnv1a(table_);
  for (const Value& v : values_) {
    h = hash_mix(h, v.hash());
  }
  return h;
}

std::string Tuple::to_string() const {
  std::string out = table_ + "(";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    // Render the location specifier with a leading '@' for readability.
    if (i == 0 && values_[0].is_string()) {
      out += "@" + values_[0].as_string();
    } else {
      out += values_[i].to_string();
    }
  }
  out += ")";
  return out;
}

}  // namespace dp
