// Tuples: the unit of state and event in the system model (paper section 3.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ndlog/value.h"

namespace dp {

/// Nodes are identified by name (e.g. "S2", "controller", "reducer3").
using NodeName = std::string;

/// A tuple is a table name plus a value list. By NDlog convention the first
/// field is the *location specifier* (the node the tuple lives on) -- the `@`
/// argument in rule syntax. Tuple is a regular value type.
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::string table, std::vector<Value> values)
      : table_(std::move(table)), values_(std::move(values)) {}

  [[nodiscard]] const std::string& table() const { return table_; }
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }
  [[nodiscard]] std::size_t arity() const { return values_.size(); }
  [[nodiscard]] const Value& at(std::size_t i) const { return values_[i]; }

  /// The location specifier (field 0). Must be a string node name; enforced
  /// by program validation before any tuple is injected.
  [[nodiscard]] const NodeName& location() const {
    return values_.front().as_string();
  }

  /// Returns a copy with field `i` replaced; used by DiffProv when it
  /// constructs the "expected" tuples of the bad tree.
  [[nodiscard]] Tuple with_field(std::size_t i, Value v) const;

  /// Stable structural hash over table name and all fields.
  [[nodiscard]] std::uint64_t hash() const;

  /// Renders "table(v1, v2, ...)".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.table_ == b.table_ && a.values_ == b.values_;
  }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    if (a.table_ != b.table_) return a.table_ < b.table_;
    return a.values_ < b.values_;
  }

 private:
  std::string table_;
  std::vector<Value> values_;
};

struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    return static_cast<std::size_t>(t.hash());
  }
};

}  // namespace dp
