#include "ndlog/value.h"

#include <cstdio>

namespace dp {

std::string_view value_type_name(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kIp:
      return "ip";
    case ValueType::kPrefix:
      return "prefix";
  }
  return "?";
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      // Keep a decimal marker so the rendering parses back as a double
      // (integral doubles would otherwise read as ints).
      std::string out = buf;
      if (out.find('.') == std::string::npos &&
          out.find('e') == std::string::npos &&
          out.find("inf") == std::string::npos &&
          out.find("nan") == std::string::npos) {
        out += ".0";
      }
      return out;
    }
    case ValueType::kString:
      return "\"" + as_string() + "\"";
    case ValueType::kIp:
      return as_ip().to_string();
    case ValueType::kPrefix:
      return as_prefix().to_string();
  }
  return "?";
}

std::uint64_t Value::hash() const {
  std::uint64_t h = hash_mix(0x517cc1b727220a95ULL,
                             static_cast<std::uint64_t>(type()));
  switch (type()) {
    case ValueType::kInt:
      return hash_mix(h, static_cast<std::uint64_t>(as_int()));
    case ValueType::kDouble: {
      // Bit-pattern hash; NaNs are not used as tuple fields.
      double d = as_double();
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return hash_mix(h, bits);
    }
    case ValueType::kString:
      return hash_mix(h, fnv1a(as_string()));
    case ValueType::kIp:
      return hash_mix(h, as_ip().value());
    case ValueType::kPrefix:
      return hash_mix(hash_mix(h, as_prefix().base().value()),
                      static_cast<std::uint64_t>(as_prefix().length()));
  }
  return h;
}

bool operator<(const Value& a, const Value& b) {
  if (a.type() != b.type()) return a.type() < b.type();
  switch (a.type()) {
    case ValueType::kInt:
      return a.as_int() < b.as_int();
    case ValueType::kDouble:
      return a.as_double() < b.as_double();
    case ValueType::kString:
      return a.as_string() < b.as_string();
    case ValueType::kIp:
      return a.as_ip() < b.as_ip();
    case ValueType::kPrefix:
      return a.as_prefix() < b.as_prefix();
  }
  return false;
}

std::string values_to_string(const std::vector<Value>& values) {
  std::string out = "(";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].to_string();
  }
  out += ")";
  return out;
}

}  // namespace dp
