// Dynamically-typed values carried in NDlog tuples.
//
// The paper's system model (section 3.1) represents all system state as
// tuples whose fields are typed values: integers, strings, IP addresses and
// ranges, switch ports, etc. We model those with a closed variant.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/hash.h"
#include "util/ip.h"

namespace dp {

enum class ValueType : std::uint8_t {
  kInt,
  kDouble,
  kString,
  kIp,
  kPrefix,
};

/// Human-readable type name ("int", "string", ...).
std::string_view value_type_name(ValueType type);

/// A single tuple field. Value is a regular type: copyable, comparable,
/// hashable, printable. Ordering across different types is by type tag first
/// (total order, needed for deterministic table iteration).
class Value {
 public:
  Value() : data_(std::int64_t{0}) {}
  Value(std::int64_t v) : data_(v) {}                    // NOLINT(google-explicit-constructor)
  Value(int v) : data_(std::int64_t{v}) {}               // NOLINT(google-explicit-constructor)
  Value(double v) : data_(v) {}                          // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}          // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}        // NOLINT(google-explicit-constructor)
  Value(Ipv4 v) : data_(v) {}                            // NOLINT(google-explicit-constructor)
  Value(IpPrefix v) : data_(v) {}                        // NOLINT(google-explicit-constructor)

  [[nodiscard]] ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }

  [[nodiscard]] bool is_int() const { return type() == ValueType::kInt; }
  [[nodiscard]] bool is_double() const { return type() == ValueType::kDouble; }
  [[nodiscard]] bool is_string() const { return type() == ValueType::kString; }
  [[nodiscard]] bool is_ip() const { return type() == ValueType::kIp; }
  [[nodiscard]] bool is_prefix() const { return type() == ValueType::kPrefix; }

  /// Accessors; calling the wrong one throws std::bad_variant_access, which
  /// indicates a bug in the caller (rule typing is validated upstream).
  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(data_);
  }
  [[nodiscard]] double as_double() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(data_);
  }
  [[nodiscard]] Ipv4 as_ip() const { return std::get<Ipv4>(data_); }
  [[nodiscard]] IpPrefix as_prefix() const { return std::get<IpPrefix>(data_); }

  /// Numeric value as double (int or double), for mixed arithmetic.
  [[nodiscard]] double numeric() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }
  [[nodiscard]] bool is_numeric() const { return is_int() || is_double(); }

  [[nodiscard]] std::string to_string() const;

  /// Stable structural hash (independent of process / run).
  [[nodiscard]] std::uint64_t hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<std::int64_t, double, std::string, Ipv4, IpPrefix> data_;
};

/// Renders a value list as "(v1, v2, ...)".
std::string values_to_string(const std::vector<Value>& values);

}  // namespace dp
