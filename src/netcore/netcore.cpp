#include "netcore/netcore.h"

#include <cctype>

#include "ndlog/tuple.h"
#include "sdn/program.h"

namespace dp::netcore {

PolicyPtr Policy::fwd(std::string out) {
  auto p = std::make_shared<Policy>();
  p->kind = Kind::kFwd;
  p->out = std::move(out);
  return p;
}

PolicyPtr Policy::mirror(std::string out, std::string copy) {
  auto p = std::make_shared<Policy>();
  p->kind = Kind::kMirror;
  p->out = std::move(out);
  p->mirror_to = std::move(copy);
  return p;
}

PolicyPtr Policy::drop() {
  auto p = std::make_shared<Policy>();
  p->kind = Kind::kDrop;
  return p;
}

PolicyPtr Policy::branch(IpPrefix src, PolicyPtr then_branch,
                         PolicyPtr else_branch) {
  auto p = std::make_shared<Policy>();
  p->kind = Kind::kIf;
  p->src_prefix = src;
  p->then_branch = std::move(then_branch);
  p->else_branch = std::move(else_branch);
  return p;
}

std::string Policy::to_string() const {
  switch (kind) {
    case Kind::kIf:
      return "if src in " + src_prefix.to_string() + " then " +
             then_branch->to_string() + " else " + else_branch->to_string();
    case Kind::kFwd:
      return "fwd(" + out + ")";
    case Kind::kMirror:
      return "mirror(" + out + ", " + mirror_to + ")";
    case Kind::kDrop:
      return "drop";
  }
  return "?";
}

// ----------------------------------------------------------------- parser --

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : src_(source) {}

  std::vector<SwitchPolicy> parse() {
    std::vector<SwitchPolicy> program;
    skip_space();
    while (!eof()) {
      expect_word("switch");
      SwitchPolicy sw;
      sw.switch_name = parse_name();
      expect_char('{');
      sw.policy = parse_policy();
      expect_char('}');
      program.push_back(std::move(sw));
      skip_space();
    }
    if (program.empty()) fail("empty program");
    return program;
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : src_[pos_]; }

  void skip_space() {
    while (!eof()) {
      if (std::isspace(static_cast<unsigned char>(peek()))) {
        ++pos_;
      } else if (peek() == '#' ||
                 (peek() == '/' && pos_ + 1 < src_.size() &&
                  src_[pos_ + 1] == '/')) {
        while (!eof() && peek() != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw NetCoreError("netcore parse error at offset " +
                       std::to_string(pos_) + ": " + message);
  }

  std::string parse_word() {
    skip_space();
    std::string word;
    while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_')) {
      word.push_back(src_[pos_++]);
    }
    if (word.empty()) fail("expected a word");
    return word;
  }

  void expect_word(const std::string& expected) {
    const std::string word = parse_word();
    if (word != expected) {
      fail("expected '" + expected + "', got '" + word + "'");
    }
  }

  void expect_char(char expected) {
    skip_space();
    if (peek() != expected) {
      fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
  }

  std::string parse_name() { return parse_word(); }

  IpPrefix parse_prefix() {
    skip_space();
    std::string text;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == '/')) {
      text.push_back(src_[pos_++]);
    }
    const auto prefix = IpPrefix::parse(text);
    if (!prefix) fail("malformed prefix '" + text + "'");
    return *prefix;
  }

  PolicyPtr parse_policy() {
    const std::string word = parse_word();
    if (word == "if") {
      expect_word("src");
      expect_word("in");
      const IpPrefix prefix = parse_prefix();
      expect_word("then");
      PolicyPtr then_branch = parse_policy();
      expect_word("else");
      PolicyPtr else_branch = parse_policy();
      return Policy::branch(prefix, std::move(then_branch),
                            std::move(else_branch));
    }
    if (word == "fwd") {
      expect_char('(');
      std::string out = parse_name();
      expect_char(')');
      return Policy::fwd(std::move(out));
    }
    if (word == "mirror") {
      expect_char('(');
      std::string out = parse_name();
      expect_char(',');
      std::string copy = parse_name();
      expect_char(')');
      return Policy::mirror(std::move(out), std::move(copy));
    }
    if (word == "drop") return Policy::drop();
    fail("unknown policy form '" + word + "'");
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

/// Restricts every entry of `entries` to `scope` (prefix intersection);
/// disjoint entries vanish -- the standard NetCore classifier restriction.
std::vector<ClassifierEntry> restrict_to(
    const IpPrefix& scope, const std::vector<ClassifierEntry>& entries) {
  std::vector<ClassifierEntry> out;
  for (const ClassifierEntry& entry : entries) {
    if (scope.covers(entry.src)) {
      out.push_back(entry);  // already at least as specific
    } else if (entry.src.covers(scope)) {
      out.push_back({scope, entry.action});
    }
    // else: disjoint, no packets can match inside the scope
  }
  return out;
}

}  // namespace

std::vector<SwitchPolicy> parse_netcore(std::string_view source) {
  return Parser(source).parse();
}

std::vector<ClassifierEntry> compile_policy(const Policy& policy) {
  switch (policy.kind) {
    case Policy::Kind::kFwd:
      return {{IpPrefix(Ipv4(0, 0, 0, 0), 0), policy.out}};
    case Policy::Kind::kMirror:
      return {{IpPrefix(Ipv4(0, 0, 0, 0), 0),
               policy.out + "+" + policy.mirror_to}};
    case Policy::Kind::kDrop:
      return {{IpPrefix(Ipv4(0, 0, 0, 0), 0), "dr"}};
    case Policy::Kind::kIf: {
      // First-match semantics: the then-branch, restricted to the predicate,
      // shadows the else-branch.
      std::vector<ClassifierEntry> out = restrict_to(
          policy.src_prefix, compile_policy(*policy.then_branch));
      for (ClassifierEntry& entry : compile_policy(*policy.else_branch)) {
        out.push_back(std::move(entry));
      }
      return out;
    }
  }
  throw NetCoreError("corrupt policy");
}

void emit_policy_routes(const std::vector<SwitchPolicy>& program,
                        EventLog& log, LogicalTime at, int top_priority) {
  for (const SwitchPolicy& sw : program) {
    const std::vector<ClassifierEntry> classifier =
        compile_policy(*sw.policy);
    if (static_cast<int>(classifier.size()) > top_priority) {
      throw NetCoreError("classifier for " + sw.switch_name +
                         " exceeds the priority budget");
    }
    int priority = top_priority;
    for (const ClassifierEntry& entry : classifier) {
      log.append_insert(
          Tuple("policyRoute",
                {Value(dp::sdn::kController), Value(sw.switch_name),
                 Value(priority--), Value(entry.src), Value(entry.action)}),
          at);
    }
  }
}

}  // namespace dp::netcore
