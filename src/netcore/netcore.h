// A NetCore/Pyretic-style policy front-end (paper section 5: "we have built
// a front-end for controller programs that accepts programs written either
// in native NDlog or in NetCore (part of Pyretic); when a NetCore program is
// provided, our front-end internally converts it to NDlog rules and tuples
// using a technique from Y!").
//
// The language is a small but faithful NetCore subset over source-prefix
// predicates (our data plane classifies on the packet source, as in the
// paper's Figure-1 policy):
//
//   program   := { "switch" NAME "{" policy "}" }
//   policy    := "if" "src" "in" PREFIX "then" policy "else" policy
//              | "fwd" "(" NAME ")"
//              | "mirror" "(" NAME "," NAME ")"     // deliver + copy
//              | "drop"
//
// Compilation classifies each switch's policy into a first-match list of
// (source prefix, action) pairs -- the standard NetCore classifier
// construction -- and then emits them as the controller's policyRoute base
// tuples, i.e. exactly the tuples the NDlog model of src/sdn derives flow
// entries from.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "replay/event_log.h"
#include "util/ip.h"

namespace dp::netcore {

class NetCoreError : public std::runtime_error {
 public:
  explicit NetCoreError(const std::string& what) : std::runtime_error(what) {}
};

struct Policy;
using PolicyPtr = std::shared_ptr<const Policy>;

struct Policy {
  enum class Kind : std::uint8_t { kIf, kFwd, kMirror, kDrop };
  Kind kind = Kind::kDrop;
  IpPrefix src_prefix;     // kIf
  PolicyPtr then_branch;   // kIf
  PolicyPtr else_branch;   // kIf
  std::string out;         // kFwd / kMirror (primary)
  std::string mirror_to;   // kMirror (copy)

  static PolicyPtr fwd(std::string out);
  static PolicyPtr mirror(std::string out, std::string copy);
  static PolicyPtr drop();
  static PolicyPtr branch(IpPrefix src, PolicyPtr then_branch,
                          PolicyPtr else_branch);

  [[nodiscard]] std::string to_string() const;
};

struct SwitchPolicy {
  std::string switch_name;
  PolicyPtr policy;
};

/// One row of a compiled classifier: first-match order.
struct ClassifierEntry {
  IpPrefix src;
  std::string action;  // "sw3", "w1+d1", "dr"

  friend bool operator==(const ClassifierEntry&,
                         const ClassifierEntry&) = default;
};

/// Parses the textual form above. Throws NetCoreError with position info.
std::vector<SwitchPolicy> parse_netcore(std::string_view source);

/// Classifies one policy into a first-match entry list.
std::vector<ClassifierEntry> compile_policy(const Policy& policy);

/// Emits the compiled program as controller policyRoute base tuples into
/// `log` (priorities descend in first-match order from `top_priority`).
void emit_policy_routes(const std::vector<SwitchPolicy>& program,
                        EventLog& log, LogicalTime at = 0,
                        int top_priority = 100);

}  // namespace dp::netcore
