#include "obs/flightrec.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>

#include "obs/json_check.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dp::obs {

namespace flightrec_detail {
std::atomic<bool> g_enabled{false};
}

namespace {

// ---------------------------------------------------------------------------
// Coarse flight clock.
// ---------------------------------------------------------------------------

std::atomic<std::uint64_t> g_flight_clock{0};

// ---------------------------------------------------------------------------
// Ring storage. One Ring per (live or recently-dead) thread; every shared
// field is a relaxed atomic so concurrent snapshot() never races with a
// writer in the C++-memory-model sense -- consistency of a slot's fields is
// what the per-slot sequence number provides, not the individual loads.
// ---------------------------------------------------------------------------

// kFlightNameCap bytes of name, stored as whole 64-bit words.
constexpr std::size_t kNameWords = kFlightNameCap / 8;
static_assert(kFlightNameCap % 8 == 0, "name cap must be word-aligned");
static_assert((kFlightRingSize & (kFlightRingSize - 1)) == 0,
              "ring size must be a power of two");

struct Slot {
  // Odd while a writer is mid-update, even when stable; 0 = never written.
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint64_t> time_us{0};
  std::atomic<std::uint64_t> trace_id{0};
  // Packed: low 32 = duration_us, byte 4 = kind, byte 5 = level,
  // byte 6 = name length.
  std::atomic<std::uint64_t> meta{0};
  std::atomic<std::uint64_t> name[kNameWords];
};

struct Ring {
  std::atomic<std::uint64_t> head{0};  // total records ever written
  std::atomic<std::uint32_t> tid{0};   // last owning thread
  Slot slots[kFlightRingSize];
  Ring* next_free = nullptr;  // free-list link, guarded by Registry::mutex
};

struct Registry {
  std::mutex mutex;
  std::vector<Ring*> rings;  // every ring ever leased; rings are never freed
  Ring* free_list = nullptr;
};

Registry& registry() {
  // Leaked on purpose: connection threads may still be draining through
  // their thread_local RingLease destructors during static destruction.
  static Registry* r = new Registry();
  return *r;
}

Ring* lease_ring() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  if (reg.free_list != nullptr) {
    Ring* ring = reg.free_list;
    reg.free_list = ring->next_free;
    ring->next_free = nullptr;
    return ring;
  }
  Ring* ring = new Ring();
  reg.rings.push_back(ring);
  return ring;
}

void return_ring(Ring* ring) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  // Events are deliberately kept: a crashed worker's final spans stay
  // visible in the next dump even after its thread exited.
  ring->next_free = reg.free_list;
  reg.free_list = ring;
}

// Thread-local lease: acquires a ring on first record, returns it (events
// intact) when the thread exits so long-lived daemons don't grow one ring
// per past connection. The hot-path state (ring pointer, refresh countdown)
// is plain constant-initialized TLS on purpose: a thread_local with a
// destructor is reached through an init-guarded TLS wrapper on every
// access, a measurable tax at record granularity. The destructor lives on
// a separate guard object that the first lease arms.
thread_local Ring* t_ring = nullptr;
thread_local std::uint32_t t_countdown = 0;  // records until clock refresh

struct RingLeaseGuard {
  bool armed = false;
  ~RingLeaseGuard() {
    if (t_ring != nullptr) {
      return_ring(t_ring);
      t_ring = nullptr;
    }
  }
};

thread_local RingLeaseGuard t_guard;

std::uint64_t pack_meta(FlightEvent::Kind kind, std::uint8_t level,
                        std::uint32_t duration_us, std::size_t name_len) {
  return static_cast<std::uint64_t>(duration_us) |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind)) << 32) |
         (static_cast<std::uint64_t>(level) << 40) |
         (static_cast<std::uint64_t>(name_len) << 48);
}

void log_sink_trampoline(LogLevel level, const char* message,
                         std::size_t length) {
  FlightRecorder::instance().record_log(
      static_cast<std::uint8_t>(level), std::string_view(message, length));
}

}  // namespace

std::uint64_t flight_now_us() {
  std::uint64_t now = g_flight_clock.load(std::memory_order_relaxed);
  if (now == 0) {
    refresh_flight_clock();
    now = g_flight_clock.load(std::memory_order_relaxed);
  }
  return now;
}

void refresh_flight_clock() {
  g_flight_clock.store(monotonic_micros(), std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::install_log_hook() {
  set_log_sink(&log_sink_trampoline);
}

void flightrec_detail::record(FlightEvent::Kind kind, std::uint8_t level,
                              std::string_view name, std::uint64_t trace_id,
                              std::uint64_t duration_us) {
  if (t_ring == nullptr) {
    t_guard.armed = true;  // odr-use: registers the thread-exit return
    t_ring = lease_ring();
    t_ring->tid.store(trace_thread_id(), std::memory_order_relaxed);
  }
  if (t_countdown == 0) {
    // Amortized clock refresh: between refreshes (ours, other threads', the
    // service watchdog's) events share a timestamp, which is fine for a
    // "last moments before the hang" recorder.
    refresh_flight_clock();
    t_countdown = 64;
  }
  --t_countdown;

  Ring& ring = *t_ring;
  const std::uint64_t index =
      ring.head.load(std::memory_order_relaxed) & (kFlightRingSize - 1);
  Slot& slot = ring.slots[index];

  const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);  // odd: in progress
  slot.time_us.store(flight_now_us(), std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  const std::size_t name_len = std::min(name.size(), kFlightNameCap);
  const std::uint32_t dur = duration_us > 0xFFFFFFFFu
                                ? 0xFFFFFFFFu
                                : static_cast<std::uint32_t>(duration_us);
  slot.meta.store(pack_meta(kind, level, dur, name_len),
                  std::memory_order_relaxed);
  for (std::size_t w = 0; w * 8 < name_len; ++w) {
    std::uint64_t word = 0;
    const std::size_t n = std::min<std::size_t>(8, name_len - w * 8);
    std::memcpy(&word, name.data() + w * 8, n);
    slot.name[w].store(word, std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);  // even: published
  ring.head.store(ring.head.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<Ring*> rings;
  {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    rings = reg.rings;
  }
  std::vector<FlightEvent> out;
  out.reserve(rings.size() * 8);
  for (Ring* ring : rings) {
    const std::uint32_t tid = ring->tid.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kFlightRingSize; ++i) {
      const Slot& slot = ring->slots[i];
      const std::uint32_t seq_before = slot.seq.load(std::memory_order_acquire);
      if (seq_before == 0 || (seq_before & 1u) != 0) continue;  // empty/busy
      FlightEvent event;
      event.time_us = slot.time_us.load(std::memory_order_relaxed);
      event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      std::uint64_t words[kNameWords];
      for (std::size_t w = 0; w < kNameWords; ++w) {
        words[w] = slot.name[w].load(std::memory_order_relaxed);
      }
      // Re-check: if a writer lapped us mid-read the fields above may mix
      // two events -- drop the slot rather than report a chimera.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq_before) continue;
      event.duration_us = static_cast<std::uint32_t>(meta & 0xFFFFFFFFu);
      event.kind = static_cast<FlightEvent::Kind>((meta >> 32) & 0xFF);
      event.level = static_cast<std::uint8_t>((meta >> 40) & 0xFF);
      const std::size_t name_len =
          std::min<std::size_t>((meta >> 48) & 0xFF, kFlightNameCap);
      std::memcpy(event.name, words, kFlightNameCap);
      event.name[name_len] = '\0';
      event.tid = tid;
      out.push_back(event);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     if (a.time_us != b.time_us) return a.time_us < b.time_us;
                     return a.tid < b.tid;
                   });
  return out;
}

std::string FlightRecorder::to_json() const {
  const std::vector<FlightEvent> events = snapshot();
  std::ostringstream out;
  out << "{\"enabled\": " << (enabled() ? "true" : "false")
      << ", \"ring_size\": " << kFlightRingSize << ", \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    out << (i == 0 ? "" : ", ") << "{\"kind\": \""
        << (e.kind == FlightEvent::Kind::kLog ? "log" : "span")
        << "\", \"name\": " << json_quote(e.name) << ", \"time_us\": "
        << e.time_us << ", \"tid\": " << e.tid;
    if (e.trace_id != 0) {
      out << ", \"trace_id\": \"" << format_trace_id(e.trace_id) << "\"";
    }
    if (e.kind == FlightEvent::Kind::kSpan) {
      out << ", \"duration_us\": " << e.duration_us;
    } else {
      out << ", \"level\": " << static_cast<int>(e.level);
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

void FlightRecorder::dump_to_stderr(std::string_view reason) const {
  std::string line;
  line.reserve(256);
  line += "[dp:FLIGHTREC] ";
  line += reason;
  line += ": ";
  line += to_json();
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void FlightRecorder::clear() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (Ring* ring : reg.rings) {
    for (Slot& slot : ring->slots) {
      // seq -> 0 marks the slot empty; bump past any concurrent writer's
      // window by resetting head too. clear() is a test helper, not expected
      // to race with writers for correctness-critical state.
      slot.seq.store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_relaxed);
  }
}

}  // namespace dp::obs
