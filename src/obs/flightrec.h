// Always-on flight recorder: a lock-free per-thread ring buffer of the last
// N completed spans and emitted DP_LOG lines, dumpable on demand while the
// process keeps serving (diffprovd's /tracez endpoint, the client's
// `flightrec` op) and automatically when a worker panics or the service
// watchdog flags it as stuck.
//
// Design constraints, in order:
//   1. The write path must be cheap enough to leave enabled in production
//      (the bench_obs gate: <= 2% over the obs-compiled-out baseline on a
//      rule-firing-sized workload). Hence: no locks, no allocation, no
//      clock syscalls -- timestamps come from a coarse clock (an atomic
//      refreshed by the service watchdog and, as a fallback, every 64
//      records per thread), and names are bounded byte copies.
//   2. Dumping must be safe while writers keep writing. Each slot is a tiny
//      seqlock: the writer bumps the slot's sequence to odd, stores the
//      payload, then publishes an even sequence with release order; readers
//      retry or skip slots whose sequence is odd or changed underneath them.
//      Every shared field is a relaxed atomic, so the scheme is TSan-clean
//      (no non-atomic access ever races).
//   3. Threads come and go (the daemon runs a thread per connection), so
//      rings are pooled: a thread leases a ring on first use and its exit
//      returns the ring -- events intact, so a dead thread's last moments
//      stay visible in the next dump -- to a free list for reuse.
//
// The recorder is process-wide and disabled by default; diffprovd enables it
// at startup. When obs is compiled out (DP_OBS_ENABLED=0) spans never reach
// it, though the class itself stays linkable so tools can still dump.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dp::obs {

namespace flightrec_detail {
extern std::atomic<bool> g_enabled;
}

/// The Span-side gate: one relaxed load on a namespace-scope atomic -- no
/// magic-static guard check, safe before main() and from any thread.
inline bool flight_recorder_enabled() {
  return flightrec_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Events kept per thread; must be a power of two.
inline constexpr std::size_t kFlightRingSize = 256;
/// Stored name bytes (longer names are truncated).
inline constexpr std::size_t kFlightNameCap = 40;

/// One recorded event, as returned by snapshot() (plain data; the in-ring
/// representation is atomic word arrays).
struct FlightEvent {
  enum class Kind : std::uint8_t { kSpan = 0, kLog = 1 };
  std::uint64_t time_us = 0;   // coarse completion time (see flight_now_us)
  std::uint64_t trace_id = 0;  // propagated context, 0 = none
  std::uint32_t tid = 0;       // trace_thread_id() of the recording thread
  Kind kind = Kind::kSpan;
  std::uint8_t level = 0;          // dp::LogLevel for kLog events
  std::uint32_t duration_us = 0;   // span duration when known (tracer on)
  char name[kFlightNameCap + 1] = {};  // NUL-terminated, truncated
};

namespace flightrec_detail {
/// The out-of-line write path: one seqlocked slot write into the calling
/// thread's leased ring. Callers gate on flight_recorder_enabled() first.
void record(FlightEvent::Kind kind, std::uint8_t level, std::string_view name,
            std::uint64_t trace_id, std::uint64_t duration_us);
}

/// Records a completed span (called by obs::Span). A free function so the
/// hot path touches no magic-static guard (FlightRecorder::instance() would).
inline void flight_record_span(std::string_view name, std::uint64_t trace_id,
                               std::uint64_t duration_us) {
  if (!flight_recorder_enabled()) return;
  flightrec_detail::record(FlightEvent::Kind::kSpan, /*level=*/0, name,
                           trace_id, duration_us);
}

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  void set_enabled(bool enabled) {
    flightrec_detail::g_enabled.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const { return flight_recorder_enabled(); }

  /// Records a completed span (member spelling of flight_record_span).
  void record_span(std::string_view name, std::uint64_t trace_id,
                   std::uint64_t duration_us) {
    flight_record_span(name, trace_id, duration_us);
  }

  /// Records an emitted DP_LOG line (installed as the logging sink by
  /// install_log_hook).
  void record_log(std::uint8_t level, std::string_view message) {
    if (!enabled()) return;
    flightrec_detail::record(FlightEvent::Kind::kLog, level, message,
                             /*trace_id=*/0, /*duration_us=*/0);
  }

  /// Routes emitted DP_LOG lines into the recorder (idempotent). Called by
  /// set_enabled(true) users that want log capture -- diffprovd does.
  static void install_log_hook();

  /// Consistent-enough copy of every ring, oldest first per thread, merged
  /// and sorted by (time, tid). Safe under concurrent writers; slots being
  /// written during the scan are skipped.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Single-line JSON: {"enabled":...,"ring_size":...,"events":[...]}
  /// (single-line so the NDJSON protocol can embed it verbatim).
  [[nodiscard]] std::string to_json() const;

  /// Writes "flight recorder dump: <to_json()>" to stderr in one stdio call
  /// -- the automatic dump on worker panic / watchdog timeout.
  void dump_to_stderr(std::string_view reason) const;

  /// Drops all recorded events (tests).
  void clear();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  FlightRecorder() = default;
};

/// The coarse flight clock: monotonic_micros() as of the last refresh.
/// Refreshed by the service watchdog every tick and by each recording thread
/// every 64 events, so timestamps are accurate to ~the watchdog interval
/// under load and never require a syscall on the record path.
std::uint64_t flight_now_us();
void refresh_flight_clock();

}  // namespace dp::obs
