#include "obs/json_check.h"

#include <cctype>
#include <map>
#include <memory>
#include <vector>

namespace dp::obs {

namespace {

// A tiny JSON value tree -- enough structure for the two checkers below.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0;
  bool boolean = false;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string& error) {
    JsonValue value;
    if (!parse_value(value)) {
      error = "offset " + std::to_string(pos_) + ": " + error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "offset " + std::to_string(pos_) + ": trailing content";
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("truncated escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
                return fail("bad \\u escape");
              }
            }
            out += '?';  // checkers never inspect escaped name content
            pos_ += 4;
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("expected digit");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("expected fraction digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("expected exponent digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                      nullptr);
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return fail("expected ':'");
        }
        ++pos_;
        JsonValue value;
        if (!parse_value(value)) return false;
        out.object.emplace(std::move(key), std::move(value));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!parse_value(value)) return false;
        out.array.push_back(std::move(value));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    out.kind = JsonValue::Kind::kNumber;
    return parse_number(out.number);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string& error) {
  return Parser(text).parse(error);
}

}  // namespace

std::optional<std::string> json_error(std::string_view text) {
  std::string error;
  if (!parse_json(text, error)) return error;
  return std::nullopt;
}

TraceCheck check_chrome_trace(std::string_view text) {
  TraceCheck check;
  std::string error;
  const auto root = parse_json(text, error);
  if (!root) {
    check.error = error;
    return check;
  }
  if (root->kind != JsonValue::Kind::kObject) {
    check.error = "top level is not an object";
    return check;
  }
  const JsonValue* events = root->find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    check.error = "missing \"traceEvents\" array";
    return check;
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const JsonValue* name = e.find("name");
    const JsonValue* ph = e.find("ph");
    const JsonValue* ts = e.find("ts");
    if (e.kind != JsonValue::Kind::kObject || name == nullptr ||
        name->kind != JsonValue::Kind::kString || ph == nullptr ||
        ph->kind != JsonValue::Kind::kString || ts == nullptr ||
        ts->kind != JsonValue::Kind::kNumber) {
      check.error = "event " + std::to_string(i) +
                    " lacks string name/ph or numeric ts";
      return check;
    }
    check.names.insert(name->string);
  }
  check.events = events->array.size();
  check.ok = true;
  return check;
}

MetricsCheck check_metrics_json(std::string_view text) {
  MetricsCheck check;
  std::string error;
  const auto root = parse_json(text, error);
  if (!root) {
    check.error = error;
    return check;
  }
  if (root->kind != JsonValue::Kind::kObject) {
    check.error = "top level is not an object";
    return check;
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* group = root->find(section);
    if (group == nullptr || group->kind != JsonValue::Kind::kObject) {
      check.error = std::string("missing \"") + section + "\" object";
      return check;
    }
    for (const auto& [name, value] : group->object) {
      check.names.insert(name);
      ++check.series;
      if (std::string_view(section) == "histograms") {
        const JsonValue* buckets = value.find("buckets");
        const JsonValue* count = value.find("count");
        if (buckets == nullptr || buckets->kind != JsonValue::Kind::kArray ||
            count == nullptr || count->kind != JsonValue::Kind::kNumber) {
          check.error = "histogram " + name + " lacks buckets/count";
          return check;
        }
      } else if (value.kind != JsonValue::Kind::kNumber) {
        check.error = section + (" entry " + name) + " is not a number";
        return check;
      }
    }
  }
  check.ok = true;
  return check;
}

}  // namespace dp::obs
