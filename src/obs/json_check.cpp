#include "obs/json_check.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dp::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse(std::string& error) {
    Json value;
    if (!parse_value(value)) {
      error = "offset " + std::to_string(pos_) + ": " + error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "offset " + std::to_string(pos_) + ": trailing content";
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("truncated escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            std::uint32_t cp = 0;
            if (!parse_hex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00..\uDFFF.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return fail("unpaired surrogate");
              }
              pos_ += 2;
              std::uint32_t low = 0;
              if (!parse_hex4(low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return fail("unpaired surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("unpaired surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("expected digit");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("expected fraction digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("expected exponent digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                      nullptr);
    return true;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = Json::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return fail("expected ':'");
        }
        ++pos_;
        Json value;
        if (!parse_value(value)) return false;
        out.object.emplace(std::move(key), std::move(value));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = Json::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Json value;
        if (!parse_value(value)) return false;
        out.array.push_back(std::move(value));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = Json::Kind::kString;
      return parse_string(out.string);
    }
    if (c == 't') {
      out.kind = Json::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = Json::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = Json::Kind::kNull;
      return literal("null");
    }
    out.kind = Json::Kind::kNumber;
    return parse_number(out.number);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string& error) {
  return Parser(text).parse(error);
}

std::string Json::get_string(const std::string& key,
                             std::string fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind == Kind::kString ? v->string
                                                  : std::move(fallback);
}

double Json::get_number(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->boolean : fallback;
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::optional<std::string> json_error(std::string_view text) {
  std::string error;
  if (!Json::parse(text, error)) return error;
  return std::nullopt;
}

TraceCheck check_chrome_trace(std::string_view text) {
  TraceCheck check;
  std::string error;
  const auto root = Json::parse(text, error);
  if (!root) {
    check.error = error;
    return check;
  }
  if (root->kind != Json::Kind::kObject) {
    check.error = "top level is not an object";
    return check;
  }
  const Json* events = root->find("traceEvents");
  if (events == nullptr || events->kind != Json::Kind::kArray) {
    check.error = "missing \"traceEvents\" array";
    return check;
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const Json& e = events->array[i];
    const Json* name = e.find("name");
    const Json* ph = e.find("ph");
    const Json* ts = e.find("ts");
    if (e.kind != Json::Kind::kObject || name == nullptr ||
        name->kind != Json::Kind::kString || ph == nullptr ||
        ph->kind != Json::Kind::kString || ts == nullptr ||
        ts->kind != Json::Kind::kNumber) {
      check.error = "event " + std::to_string(i) +
                    " lacks string name/ph or numeric ts";
      return check;
    }
    check.names.insert(name->string);
  }
  check.events = events->array.size();
  check.ok = true;
  return check;
}

MetricsCheck check_metrics_json(std::string_view text) {
  MetricsCheck check;
  std::string error;
  const auto root = Json::parse(text, error);
  if (!root) {
    check.error = error;
    return check;
  }
  if (root->kind != Json::Kind::kObject) {
    check.error = "top level is not an object";
    return check;
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const Json* group = root->find(section);
    if (group == nullptr || group->kind != Json::Kind::kObject) {
      check.error = std::string("missing \"") + section + "\" object";
      return check;
    }
    for (const auto& [name, value] : group->object) {
      check.names.insert(name);
      ++check.series;
      if (std::string_view(section) == "histograms") {
        const Json* buckets = value.find("buckets");
        const Json* count = value.find("count");
        const Json* sum = value.find("sum");
        if (buckets == nullptr || buckets->kind != Json::Kind::kArray ||
            count == nullptr || count->kind != Json::Kind::kNumber) {
          check.error = "histogram " + name + " lacks buckets/count";
          return check;
        }
        // Semantic checks: bounds strictly increase and end at +Inf, the
        // per-bucket counts sum to `count`, latency sums are non-negative.
        double prev_le = -1;
        bool saw_inf = false;
        double bucket_total = 0;
        for (std::size_t b = 0; b < buckets->array.size(); ++b) {
          const Json& bucket = buckets->array[b];
          const Json* le = bucket.find("le");
          const Json* bc = bucket.find("count");
          if (bc == nullptr || bc->kind != Json::Kind::kNumber ||
              bc->number < 0) {
            check.error = "histogram " + name + " bucket " +
                          std::to_string(b) + " lacks a non-negative count";
            return check;
          }
          bucket_total += bc->number;
          if (le != nullptr && le->kind == Json::Kind::kString &&
              le->string == "+Inf") {
            if (b + 1 != buckets->array.size()) {
              check.error =
                  "histogram " + name + " has +Inf before the last bucket";
              return check;
            }
            saw_inf = true;
          } else if (le != nullptr && le->kind == Json::Kind::kNumber) {
            if (!(le->number > prev_le)) {
              check.error = "histogram " + name +
                            " le bounds not strictly increasing at bucket " +
                            std::to_string(b);
              return check;
            }
            prev_le = le->number;
          } else {
            check.error = "histogram " + name + " bucket " +
                          std::to_string(b) + " has a malformed le";
            return check;
          }
        }
        if (!saw_inf) {
          check.error = "histogram " + name + " lacks a +Inf bucket";
          return check;
        }
        if (bucket_total != count->number) {
          check.error = "histogram " + name + " bucket counts sum to " +
                        std::to_string(bucket_total) + " but count is " +
                        std::to_string(count->number);
          return check;
        }
        const bool latency = name.size() >= 3 &&
                             (name.compare(name.size() - 3, 3, "_us") == 0 ||
                              name.compare(name.size() - 3, 3, ".us") == 0);
        if (latency && (sum == nullptr || sum->kind != Json::Kind::kNumber ||
                        sum->number < 0)) {
          check.error = "latency histogram " + name + " has a negative sum";
          return check;
        }
      } else if (value.kind != Json::Kind::kNumber) {
        check.error = section + (" entry " + name) + " is not a number";
        return check;
      }
    }
  }
  // "sketches" is optional (older dumps lack it) but validated when present:
  // quantiles must be monotone and bracketed by the exact min/max.
  if (const Json* sketches = root->find("sketches"); sketches != nullptr) {
    if (sketches->kind != Json::Kind::kObject) {
      check.error = "\"sketches\" is not an object";
      return check;
    }
    for (const auto& [name, value] : sketches->object) {
      check.names.insert(name);
      ++check.series;
      double fields[7];
      const char* keys[7] = {"count", "min", "max", "p50",
                             "p95",   "p99", "p999"};
      for (int k = 0; k < 7; ++k) {
        const Json* field = value.find(keys[k]);
        if (field == nullptr || field->kind != Json::Kind::kNumber) {
          check.error =
              "sketch " + name + " lacks numeric " + std::string(keys[k]);
          return check;
        }
        fields[k] = field->number;
      }
      const double count = fields[0], min = fields[1], max = fields[2];
      const double p50 = fields[3], p95 = fields[4], p99 = fields[5];
      const double p999 = fields[6];
      if (count < 0) {
        check.error = "sketch " + name + " has a negative count";
        return check;
      }
      if (!(p50 <= p95 && p95 <= p99 && p99 <= p999)) {
        check.error = "sketch " + name + " quantiles are not monotone";
        return check;
      }
      if (count > 0 && !(min <= p50 && p999 <= max)) {
        check.error =
            "sketch " + name + " quantiles escape the [min, max] range";
        return check;
      }
    }
  }
  check.ok = true;
  return check;
}

namespace {

/// One parsed Prometheus sample line: name, optional le label, value.
struct PromSample {
  std::string name;
  std::string le;  // empty if no {le="..."} label
  double value = 0;
};

bool parse_prom_sample(std::string_view line, PromSample& out,
                       std::string& error) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != ' ' && line[i] != '{') ++i;
  if (i == 0) {
    error = "sample line lacks a metric name";
    return false;
  }
  out.name = std::string(line.substr(0, i));
  if (i < line.size() && line[i] == '{') {
    const std::size_t close = line.find('}', i);
    if (close == std::string_view::npos) {
      error = "unterminated label set";
      return false;
    }
    const std::string_view labels = line.substr(i + 1, close - i - 1);
    // The registry only emits the `le` label; accept exactly that form.
    constexpr std::string_view kLe = "le=\"";
    if (labels.substr(0, kLe.size()) != kLe || labels.empty() ||
        labels.back() != '"') {
      error = "unsupported label set {" + std::string(labels) + "}";
      return false;
    }
    out.le = std::string(labels.substr(kLe.size(),
                                       labels.size() - kLe.size() - 1));
    i = close + 1;
  }
  if (i >= line.size() || line[i] != ' ') {
    error = "sample lacks a value";
    return false;
  }
  ++i;
  const std::string value_text(line.substr(i));
  char* end = nullptr;
  out.value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str() || *end != '\0') {
    error = "malformed sample value \"" + value_text + "\"";
    return false;
  }
  return true;
}

/// Accumulated histogram state while scanning a scrape.
struct PromHistogram {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative count)
  bool saw_inf = false;
  double inf_count = 0;
  bool saw_sum = false;
  double sum = 0;
  bool saw_count = false;
  double count = 0;
};

}  // namespace

PrometheusCheck check_prometheus_text(std::string_view text) {
  PrometheusCheck check;
  std::map<std::string, std::string> types;        // name -> TYPE
  std::map<std::string, PromHistogram> histograms; // base name -> state
  std::map<std::string, double> scalars;           // gauge/counter values

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;
    const auto fail = [&](const std::string& message) {
      check.error = "line " + std::to_string(line_no) + ": " + message;
      return check;
    };
    if (line[0] == '#') {
      constexpr std::string_view kType = "# TYPE ";
      if (line.substr(0, kType.size()) != kType) continue;  // comment/HELP
      const std::string_view rest = line.substr(kType.size());
      const std::size_t space = rest.find(' ');
      if (space == std::string_view::npos) {
        return fail("malformed TYPE line");
      }
      const std::string name(rest.substr(0, space));
      const std::string type(rest.substr(space + 1));
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return fail("unknown type \"" + type + "\"");
      }
      if (!types.emplace(name, type).second) {
        return fail("duplicate TYPE for " + name);
      }
      continue;
    }
    PromSample sample;
    std::string error;
    if (!parse_prom_sample(line, sample, error)) return fail(error);

    // Resolve the sample to its declared family (histograms expose
    // name_bucket/name_sum/name_count under one TYPE line).
    std::string base = sample.name;
    std::string suffix;
    for (const char* s : {"_bucket", "_sum", "_count"}) {
      const std::string_view sv(s);
      if (base.size() > sv.size() &&
          std::string_view(base).substr(base.size() - sv.size()) == sv &&
          types.count(base.substr(0, base.size() - sv.size())) != 0 &&
          types[base.substr(0, base.size() - sv.size())] == "histogram") {
        suffix = s;
        base = base.substr(0, base.size() - sv.size());
        break;
      }
    }
    const auto type_it = types.find(base);
    if (type_it == types.end()) {
      return fail("sample " + sample.name + " has no preceding TYPE");
    }
    if (type_it->second == "histogram") {
      PromHistogram& h = histograms[base];
      if (suffix == "_bucket") {
        if (sample.le.empty()) return fail(sample.name + " lacks an le label");
        if (sample.value < 0) {
          return fail(sample.name + " bucket count is negative");
        }
        if (sample.le == "+Inf") {
          if (h.saw_inf) return fail(base + " has two +Inf buckets");
          h.saw_inf = true;
          h.inf_count = sample.value;
        } else {
          if (h.saw_inf) return fail(base + " has a bucket after +Inf");
          char* end = nullptr;
          const double le = std::strtod(sample.le.c_str(), &end);
          if (end == sample.le.c_str() || *end != '\0') {
            return fail(base + " has a non-numeric le \"" + sample.le + "\"");
          }
          if (!h.buckets.empty()) {
            if (!(le > h.buckets.back().first)) {
              return fail(base + " le bounds not strictly increasing");
            }
            if (sample.value < h.buckets.back().second) {
              return fail(base + " cumulative bucket counts decrease");
            }
          }
          h.buckets.emplace_back(le, sample.value);
        }
      } else if (suffix == "_sum") {
        h.saw_sum = true;
        h.sum = sample.value;
      } else if (suffix == "_count") {
        h.saw_count = true;
        h.count = sample.value;
      } else {
        return fail("bare sample " + sample.name +
                    " for histogram-typed family");
      }
      continue;
    }
    if (type_it->second == "counter" && sample.value < 0) {
      return fail("counter " + sample.name + " is negative");
    }
    scalars[sample.name] = sample.value;
    check.names.insert(sample.name);
    ++check.series;
  }

  for (const auto& [name, h] : histograms) {
    const auto fail = [&](const std::string& message) {
      check.error = "histogram " + name + ": " + message;
      return check;
    };
    if (!h.saw_inf) return fail("missing +Inf bucket");
    if (!h.saw_count || !h.saw_sum) return fail("missing _sum or _count");
    if (!h.buckets.empty() && h.inf_count < h.buckets.back().second) {
      return fail("+Inf bucket below the last finite bucket");
    }
    if (h.inf_count != h.count) return fail("+Inf bucket != _count");
    for (const auto& [le, cumulative] : h.buckets) {
      if (cumulative > h.count) {
        return fail("cumulative bucket count exceeds _count");
      }
    }
    const bool latency =
        name.size() >= 3 && name.compare(name.size() - 3, 3, "_us") == 0;
    if (latency && h.sum < 0) return fail("latency histogram has negative sum");
    check.names.insert(name);
    ++check.series;
  }

  // Quantile-sketch families: every *_p999 gauge anchors a family that must
  // carry monotone p50 <= p95 <= p99 <= p999, all bounded by the exact _max,
  // and (when the paired histogram exists) a _sketch_count consistent with
  // the histogram's _count. The exporter renders both from live lock-free
  // instruments, so a scrape racing observes can legitimately see the two
  // counts differ by the observes that landed in between; allow 1% + 8.
  constexpr std::string_view kP999 = "_p999";
  for (const auto& [name, value] : scalars) {
    if (name.size() <= kP999.size() ||
        std::string_view(name).substr(name.size() - kP999.size()) != kP999) {
      continue;
    }
    const std::string base = name.substr(0, name.size() - kP999.size());
    const auto fail = [&](const std::string& message) {
      check.error = "sketch " + base + ": " + message;
      return check;
    };
    double q[3];
    const char* suffixes[3] = {"_p50", "_p95", "_p99"};
    for (int i = 0; i < 3; ++i) {
      const auto it = scalars.find(base + suffixes[i]);
      if (it == scalars.end()) {
        return fail(std::string("missing ") + suffixes[i] +
                    " alongside _p999");
      }
      q[i] = it->second;
    }
    if (!(q[0] <= q[1] && q[1] <= q[2] && q[2] <= value)) {
      return fail("quantiles are not monotone");
    }
    const auto max_it = scalars.find(base + "_max");
    if (max_it == scalars.end()) return fail("missing _max alongside _p999");
    if (value > max_it->second) {
      return fail("_p999 exceeds the observed _max");
    }
    const auto sketch_count_it = scalars.find(base + "_sketch_count");
    if (sketch_count_it == scalars.end()) {
      return fail("missing _sketch_count alongside _p999");
    }
    const auto hist_it = histograms.find(base);
    if (hist_it != histograms.end()) {
      const double a = sketch_count_it->second;
      const double b = hist_it->second.count;
      const double slack = 8 + 0.01 * (a > b ? a : b);
      if (a > b + slack || b > a + slack) {
        return fail("_sketch_count diverges from the histogram _count");
      }
    }
  }
  check.ok = true;
  return check;
}

}  // namespace dp::obs
