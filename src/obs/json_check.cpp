#include "obs/json_check.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dp::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse(std::string& error) {
    Json value;
    if (!parse_value(value)) {
      error = "offset " + std::to_string(pos_) + ": " + error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "offset " + std::to_string(pos_) + ": trailing content";
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("truncated escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            std::uint32_t cp = 0;
            if (!parse_hex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00..\uDFFF.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return fail("unpaired surrogate");
              }
              pos_ += 2;
              std::uint32_t low = 0;
              if (!parse_hex4(low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return fail("unpaired surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("unpaired surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("expected digit");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("expected fraction digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("expected exponent digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                      nullptr);
    return true;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = Json::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return fail("expected ':'");
        }
        ++pos_;
        Json value;
        if (!parse_value(value)) return false;
        out.object.emplace(std::move(key), std::move(value));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = Json::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Json value;
        if (!parse_value(value)) return false;
        out.array.push_back(std::move(value));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = Json::Kind::kString;
      return parse_string(out.string);
    }
    if (c == 't') {
      out.kind = Json::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = Json::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = Json::Kind::kNull;
      return literal("null");
    }
    out.kind = Json::Kind::kNumber;
    return parse_number(out.number);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string& error) {
  return Parser(text).parse(error);
}

std::string Json::get_string(const std::string& key,
                             std::string fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind == Kind::kString ? v->string
                                                  : std::move(fallback);
}

double Json::get_number(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->boolean : fallback;
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::optional<std::string> json_error(std::string_view text) {
  std::string error;
  if (!Json::parse(text, error)) return error;
  return std::nullopt;
}

TraceCheck check_chrome_trace(std::string_view text) {
  TraceCheck check;
  std::string error;
  const auto root = Json::parse(text, error);
  if (!root) {
    check.error = error;
    return check;
  }
  if (root->kind != Json::Kind::kObject) {
    check.error = "top level is not an object";
    return check;
  }
  const Json* events = root->find("traceEvents");
  if (events == nullptr || events->kind != Json::Kind::kArray) {
    check.error = "missing \"traceEvents\" array";
    return check;
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const Json& e = events->array[i];
    const Json* name = e.find("name");
    const Json* ph = e.find("ph");
    const Json* ts = e.find("ts");
    if (e.kind != Json::Kind::kObject || name == nullptr ||
        name->kind != Json::Kind::kString || ph == nullptr ||
        ph->kind != Json::Kind::kString || ts == nullptr ||
        ts->kind != Json::Kind::kNumber) {
      check.error = "event " + std::to_string(i) +
                    " lacks string name/ph or numeric ts";
      return check;
    }
    check.names.insert(name->string);
  }
  check.events = events->array.size();
  check.ok = true;
  return check;
}

MetricsCheck check_metrics_json(std::string_view text) {
  MetricsCheck check;
  std::string error;
  const auto root = Json::parse(text, error);
  if (!root) {
    check.error = error;
    return check;
  }
  if (root->kind != Json::Kind::kObject) {
    check.error = "top level is not an object";
    return check;
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const Json* group = root->find(section);
    if (group == nullptr || group->kind != Json::Kind::kObject) {
      check.error = std::string("missing \"") + section + "\" object";
      return check;
    }
    for (const auto& [name, value] : group->object) {
      check.names.insert(name);
      ++check.series;
      if (std::string_view(section) == "histograms") {
        const Json* buckets = value.find("buckets");
        const Json* count = value.find("count");
        if (buckets == nullptr || buckets->kind != Json::Kind::kArray ||
            count == nullptr || count->kind != Json::Kind::kNumber) {
          check.error = "histogram " + name + " lacks buckets/count";
          return check;
        }
      } else if (value.kind != Json::Kind::kNumber) {
        check.error = section + (" entry " + name) + " is not a number";
        return check;
      }
    }
  }
  check.ok = true;
  return check;
}

}  // namespace dp::obs
