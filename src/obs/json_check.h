// Minimal JSON support for this codebase's wire and artifact formats:
// Chrome trace-event dumps (--trace-out), metrics dumps (--metrics-out), and
// the diffprovd newline-delimited-JSON protocol.
//
// `Json` is a strict (RFC 8259, no trailing commas) parsed value tree plus
// an escaping writer. The `check_*` helpers validate the two artifact shapes
// for tests and the obs_check CLI. This is deliberately not a general JSON
// library: no streaming, no number round-tripping guarantees beyond double.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace dp::obs {

/// A parsed JSON value. Objects keep one entry per key (duplicate keys:
/// first wins, matching the previous checker behaviour).
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0;
  bool boolean = false;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  /// Strict parse of `text` as a single JSON value; on failure returns
  /// nullopt and sets `error` to "offset N: ...".
  static std::optional<Json> parse(std::string_view text, std::string& error);

  [[nodiscard]] const Json* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  // Typed lookups for flat protocol objects: the value if present and of the
  // right type, else the fallback.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback = "") const;
  [[nodiscard]] double get_number(const std::string& key,
                                  double fallback = 0) const;
  [[nodiscard]] bool get_bool(const std::string& key,
                              bool fallback = false) const;
};

/// Renders `text` as a JSON string literal, quotes included: control
/// characters become \uXXXX (or the short escapes), '"' and '\\' are
/// escaped, everything else passes through byte-for-byte.
std::string json_quote(std::string_view text);

/// Strict parse of `text` as a single JSON value. Returns an error message
/// ("offset N: ...") or nullopt if well-formed.
std::optional<std::string> json_error(std::string_view text);

struct TraceCheck {
  bool ok = false;
  std::string error;
  std::size_t events = 0;
  std::set<std::string> names;  // distinct event names
};

/// Validates a Chrome trace: well-formed JSON, top-level object with a
/// "traceEvents" array whose elements each carry a string "name", a string
/// "ph" and a numeric "ts".
TraceCheck check_chrome_trace(std::string_view text);

struct MetricsCheck {
  bool ok = false;
  std::string error;
  std::size_t series = 0;       // counters + gauges + histograms
  std::set<std::string> names;  // metric names
};

/// Validates a MetricsRegistry::to_json() dump: well-formed JSON with
/// "counters"/"gauges"/"histograms" objects, plus histogram *semantics*:
/// finite "le" bounds strictly increasing and ending in "+Inf", per-bucket
/// counts summing exactly to "count", and "sum" >= 0 for latency histograms
/// (names ending in "_us" or ".us").
MetricsCheck check_metrics_json(std::string_view text);

struct PrometheusCheck {
  bool ok = false;
  std::string error;
  std::size_t series = 0;       // samples excluding histogram component lines
  std::set<std::string> names;  // metric names as exposed (mangled)
};

/// Validates a MetricsRegistry::to_prometheus() scrape (the /metrics
/// endpoint): every sample is "name[{labels}] number", every name has a
/// preceding "# TYPE", and histogram series are semantically sound --
/// "le" strictly increasing with a final +Inf bucket, *cumulative* bucket
/// counts non-decreasing and <= the "_count" sample (+Inf == count), and
/// "_sum" >= 0 for latency histograms (names ending in "_us").
PrometheusCheck check_prometheus_text(std::string_view text);

}  // namespace dp::obs
