// Minimal JSON well-formedness checking for the files this layer emits:
// Chrome trace-event dumps (--trace-out) and metrics dumps (--metrics-out).
//
// Used by tests (parse our own output back) and by the obs_check CLI that CI
// runs over the uploaded artifacts. This is a validator, not a general JSON
// library: it parses strictly (RFC 8259 grammar, no trailing commas) and
// surfaces only what the checks need -- span/metric names and counts.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <string_view>

namespace dp::obs {

/// Strict parse of `text` as a single JSON value. Returns an error message
/// ("offset N: ...") or nullopt if well-formed.
std::optional<std::string> json_error(std::string_view text);

struct TraceCheck {
  bool ok = false;
  std::string error;
  std::size_t events = 0;
  std::set<std::string> names;  // distinct event names
};

/// Validates a Chrome trace: well-formed JSON, top-level object with a
/// "traceEvents" array whose elements each carry a string "name", a string
/// "ph" and a numeric "ts".
TraceCheck check_chrome_trace(std::string_view text);

struct MetricsCheck {
  bool ok = false;
  std::string error;
  std::size_t series = 0;       // counters + gauges + histograms
  std::set<std::string> names;  // metric names
};

/// Validates a MetricsRegistry::to_json() dump: well-formed JSON with
/// "counters"/"gauges"/"histograms" objects.
MetricsCheck check_metrics_json(std::string_view text);

}  // namespace dp::obs
