#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace dp::obs {

namespace {

/// JSON-safe number formatting (no locale, fixed precision for doubles).
std::string json_number(double v) {
  if (std::isfinite(v) && v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("histogram needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("histogram bounds must strictly increase");
    }
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  // Binary search for the first bound >= v (le semantics).
  std::size_t lo = 0;
  std::size_t hi = bounds_.size();  // hi == size() -> overflow bucket
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (bounds_[mid] >= v) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  buckets_[lo].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

const std::vector<double>& latency_us_bounds() {
  static const std::vector<double> bounds = {
      1,    2,    5,     10,    20,    50,     100,    200,
      500,  1000, 2000,  5000,  10000, 20000,  50000,  100000,
      200000, 500000, 1000000};
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        upper_bounds.empty() ? latency_us_bounds() : std::move(upper_bounds));
  }
  return *slot;
}

QuantileSketch& MetricsRegistry::sketch(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = sketches_[name];
  if (!slot) slot = std::make_unique<QuantileSketch>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : sketches_) s->reset();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         sketches_.size();
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " counter\n" << p << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " histogram\n";
    const auto counts = h->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += counts[i];
      out << p << "_bucket{le=\"" << json_number(h->bounds()[i]) << "\"} "
          << cumulative << "\n";
    }
    out << p << "_bucket{le=\"+Inf\"} " << h->count() << "\n";
    out << p << "_sum " << json_number(h->sum()) << "\n";
    out << p << "_count " << h->count() << "\n";
  }
  // Sketch quantiles export as per-quantile gauge families (suffixes that
  // never collide with the paired histogram's _bucket/_sum/_count) plus a
  // _sketch_count counter for cross-checking against the histogram.
  for (const auto& [name, s] : sketches_) {
    const std::string p = prometheus_name(name);
    const QuantileSketch::Snapshot snap = s->snapshot();
    const std::pair<const char*, double> quantiles[] = {
        {"_p50", snap.p50},   {"_p95", snap.p95}, {"_p99", snap.p99},
        {"_p999", snap.p999}, {"_max", snap.max},
    };
    for (const auto& [suffix, value] : quantiles) {
      out << "# TYPE " << p << suffix << " gauge\n"
          << p << suffix << " " << json_number(value) << "\n";
    }
    out << "# TYPE " << p << "_sketch_count counter\n"
        << p << "_sketch_count " << snap.count << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << g->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"count\": " << h->count()
        << ", \"sum\": " << json_number(h->sum()) << ", \"buckets\": [";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) out << ", ";
      out << "{\"le\": ";
      if (i < h->bounds().size()) {
        out << json_number(h->bounds()[i]);
      } else {
        out << "\"+Inf\"";
      }
      out << ", \"count\": " << counts[i] << "}";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"sketches\": {";
  first = true;
  for (const auto& [name, s] : sketches_) {
    const QuantileSketch::Snapshot snap = s->snapshot();
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"count\": " << snap.count
        << ", \"min\": " << json_number(snap.min)
        << ", \"max\": " << json_number(snap.max)
        << ", \"p50\": " << json_number(snap.p50)
        << ", \"p95\": " << json_number(snap.p95)
        << ", \"p99\": " << json_number(snap.p99)
        << ", \"p999\": " << json_number(snap.p999) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-48s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out << buf;
  }
  for (const auto& [name, g] : gauges_) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-48s %20lld\n", name.c_str(),
                  static_cast<long long>(g->value()));
    out << buf;
  }
  for (const auto& [name, h] : histograms_) {
    const double mean = h->count() == 0 ? 0 : h->sum() / h->count();
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "  %-48s count=%llu sum=%.1f mean=%.2f\n", name.c_str(),
                  static_cast<unsigned long long>(h->count()), h->sum(), mean);
    out << buf;
  }
  for (const auto& [name, s] : sketches_) {
    const QuantileSketch::Snapshot snap = s->snapshot();
    char buf[240];
    std::snprintf(buf, sizeof(buf),
                  "  %-48s n=%llu p50=%.1f p95=%.1f p99=%.1f p999=%.1f "
                  "max=%.1f\n",
                  (name + " (sketch)").c_str(),
                  static_cast<unsigned long long>(snap.count), snap.p50,
                  snap.p95, snap.p99, snap.p999, snap.max);
    out << buf;
  }
  return out.str();
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

std::string sanitize_metric_segment(std::string_view segment) {
  std::string out(segment);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace dp::obs
