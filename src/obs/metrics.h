// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Naming scheme: `dp.<layer>.<name>` (e.g. dp.runtime.tuples_scanned,
// dp.prov.vertex.derive, dp.diffprov.rounds). Dots become underscores in the
// Prometheus dump, which forbids them in metric names.
//
// All instruments are updatable from multiple threads (relaxed atomics); the
// registry itself serializes creation/enumeration with a mutex. Hot paths
// should look an instrument up once and keep the reference -- lookups take
// the registry lock, updates never do.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sketch.h"

namespace dp::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// set(v) only if v exceeds the current value (high-water mark). Racy
  /// max -- good enough for diagnostics, never below any single observation
  /// made after the last reset by the calling thread.
  void set_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram with Prometheus `le` (inclusive upper bound)
/// semantics: observe(v) lands in the first bucket whose bound >= v; values
/// above the last bound land in the implicit +Inf overflow bucket.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// One count per bound plus the +Inf overflow bucket (size bounds()+1).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Default bucket bounds for microsecond latencies (1us .. 1s, log-ish).
const std::vector<double>& latency_us_bounds();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is used only on first creation (empty = latency_us
  /// defaults); later calls return the existing histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = {});
  /// Quantile sketch (sketch.h). Conventionally registered under the same
  /// name as the histogram it augments (e.g. dp.service.exec_us), exported
  /// as <name>_p50/_p95/_p99/_p999/_max gauges plus <name>_sketch_count.
  QuantileSketch& sketch(const std::string& name);

  /// Zeroes every instrument (the instruments survive; references stay
  /// valid).
  void reset();

  [[nodiscard]] std::size_t size() const;

  /// Prometheus text exposition format ('.' in names becomes '_').
  [[nodiscard]] std::string to_prometheus() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  ///  buckets: [{le, count}...]}}, "sketches": {name: {count, min, max, p50,
  ///  p95, p99, p999}}} -- the +Inf bound is the string "+Inf".
  [[nodiscard]] std::string to_json() const;
  /// Human-readable table for --stats.
  [[nodiscard]] std::string to_text() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<QuantileSketch>> sketches_;
};

/// The process-wide registry: the provenance and diffprov layers publish
/// here; the CLI dumps it via --metrics-out / --stats. Engines default to a
/// private registry but can be pointed here (EngineConfig::metrics).
MetricsRegistry& default_registry();

/// Replaces characters outside [A-Za-z0-9_.] with '_' (for metric-name
/// segments built from rule or node names).
std::string sanitize_metric_segment(std::string_view segment);

}  // namespace dp::obs
