// Umbrella header + macros for the observability layer.
//
// Compile-time guard: build with -DDP_OBS_ENABLED=0 to compile every macro
// below to nothing (for overhead baselines; see bench/bench_obs.cpp, which
// compiles the same workload both ways). Default is on; the *runtime* cost
// with the tracer disabled is one relaxed load + branch per span.
//
// Usage:
//   DP_SPAN("dp.diffprov.find_seed");       // RAII span to end of scope
//   obs::default_registry().counter("dp.prov.vertex.derive").inc();
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef DP_OBS_ENABLED
#define DP_OBS_ENABLED 1
#endif

#if DP_OBS_ENABLED

#define DP_OBS_CONCAT_INNER(a, b) a##b
#define DP_OBS_CONCAT(a, b) DP_OBS_CONCAT_INNER(a, b)

/// Scoped span on the default tracer (inert unless the tracer is enabled).
#define DP_SPAN(name)                                 \
  ::dp::obs::Span DP_OBS_CONCAT(dp_obs_span_, __LINE__)( \
      ::dp::obs::default_tracer(), (name))

/// Scoped span with an explicit category string literal.
#define DP_SPAN_CAT(name, cat)                        \
  ::dp::obs::Span DP_OBS_CONCAT(dp_obs_span_, __LINE__)( \
      ::dp::obs::default_tracer(), (name), (cat))

/// True if the default tracer records (guards optional timing work).
#define DP_OBS_TRACING() (::dp::obs::default_tracer().enabled())

#else  // DP_OBS_ENABLED == 0

#define DP_SPAN(name) ((void)0)
#define DP_SPAN_CAT(name, cat) ((void)0)
#define DP_OBS_TRACING() (false)

#endif
