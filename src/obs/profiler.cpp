#include "obs/profiler.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace dp::obs {

namespace profiler_detail {
std::atomic<bool> g_enabled{false};
thread_local Stack* t_stack = nullptr;
}

namespace {

using profiler_detail::Stack;

/// Bound on the recent-sample ring the slow-query slices draw from. At a
/// 10ms sampling interval this covers the last ~40s of one busy thread, or
/// proportionally less across many -- plenty for per-query attribution.
constexpr std::size_t kRecentCap = 4096;

/// Pool of stacks, leaked on purpose (thread_local leases can outlive static
/// destruction; flightrec's Registry has the same shape and rationale).
struct StackRegistry {
  std::mutex mutex;
  std::vector<Stack*> stacks;
  Stack* free_list = nullptr;
};

StackRegistry& stack_registry() {
  static StackRegistry* r = new StackRegistry();
  return *r;
}

void return_stack(Stack* s) {
  // Zero the depth under the seqlock so the sampler never attributes a dead
  // thread's frames to the next leaseholder.
  const std::uint32_t seq = s->seq.load(std::memory_order_relaxed);
  s->seq.store(seq + 1, std::memory_order_relaxed);
  s->depth.store(0, std::memory_order_relaxed);
  s->seq.store(seq + 2, std::memory_order_release);
  StackRegistry& reg = stack_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  s->next_free = reg.free_list;
  reg.free_list = s;
}

/// Returns the thread's leased stack at thread exit. Lives apart from the
/// t_stack pointer itself so the hot-path access stays wrapper-free (see
/// profiler.h); lease_stack() arms it.
struct StackLeaseGuard {
  bool armed = false;
  ~StackLeaseGuard() {
    if (profiler_detail::t_stack != nullptr) {
      return_stack(profiler_detail::t_stack);
      profiler_detail::t_stack = nullptr;
    }
  }
};

thread_local StackLeaseGuard t_stack_guard;

/// Seqlock-consistent read of one stack into root-first "a;b;c" form.
/// False for empty stacks or after repeated writer contention (the sample is
/// simply dropped; the next tick tries again).
bool read_stack(const Stack& s, std::string& out, std::uint32_t& tid) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint32_t seq_before = s.seq.load(std::memory_order_acquire);
    if ((seq_before & 1u) != 0) continue;
    std::uint32_t depth = s.depth.load(std::memory_order_relaxed);
    if (depth > kProfileMaxDepth) depth = kProfileMaxDepth;
    char names[kProfileMaxDepth][kProfileNameCap];
    std::uint32_t lens[kProfileMaxDepth];
    for (std::uint32_t d = 0; d < depth; ++d) {
      const profiler_detail::Frame& f = s.frames[d];
      const char* ptr = f.name.load(std::memory_order_relaxed);
      const std::uint32_t len = f.len.load(std::memory_order_relaxed);
      lens[d] = len > kProfileNameCap ? kProfileNameCap : len;
      // Dereferencing before the seq recheck is safe: frame names point at
      // immortal bytes (Span's borrow contract), never freed storage.
      if (ptr != nullptr && lens[d] != 0) {
        std::memcpy(names[d], ptr, lens[d]);
      } else {
        lens[d] = 0;
      }
    }
    const std::uint32_t tid_read = s.tid.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != seq_before) continue;
    if (depth == 0) return false;
    out.clear();
    for (std::uint32_t d = 0; d < depth; ++d) {
      if (d != 0) out.push_back(';');
      out.append(names[d], lens[d]);
    }
    tid = tid_read;
    return true;
  }
  return false;
}

struct RecentSample {
  std::uint64_t time_us = 0;
  std::uint32_t tid = 0;
  std::string stack;
};

struct ProfileState {
  mutable std::mutex mutex;
  std::map<std::string, std::uint64_t> weights;
  std::deque<RecentSample> recent;
  std::uint64_t samples = 0;

  std::mutex sampler_mutex;
  std::condition_variable sampler_cv;
  std::thread sampler;
  bool sampler_running = false;
  bool sampler_stop = false;
  std::chrono::milliseconds interval{10};
};

ProfileState& state() {
  static ProfileState* s = new ProfileState();
  return *s;
}

std::string render_collapsed(
    const std::map<std::string, std::uint64_t>& weights) {
  std::vector<std::pair<std::string, std::uint64_t>> rows(weights.begin(),
                                                          weights.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const std::pair<std::string, std::uint64_t>& a,
                      const std::pair<std::string, std::uint64_t>& b) {
                     return a.second > b.second;
                   });
  std::string out;
  for (const auto& [stack, weight] : rows) {
    out += stack;
    out += ' ';
    out += std::to_string(weight);
    out += '\n';
  }
  return out;
}

}  // namespace

namespace profiler_detail {

Stack* lease_stack() {
  t_stack_guard.armed = true;  // odr-use: registers the thread-exit return
  StackRegistry& reg = stack_registry();
  Stack* s;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    s = reg.free_list;
    if (s != nullptr) {
      reg.free_list = s->next_free;
      s->next_free = nullptr;
    } else {
      s = new Stack();
      reg.stacks.push_back(s);
    }
  }
  s->tid.store(trace_thread_id(), std::memory_order_relaxed);
  t_stack = s;
  return s;
}

}  // namespace profiler_detail

ScopeProfiler& ScopeProfiler::instance() {
  static ScopeProfiler* p = new ScopeProfiler();
  return *p;
}

void ScopeProfiler::set_enabled(bool on) {
  profiler_detail::g_enabled.store(on, std::memory_order_relaxed);
}

void ScopeProfiler::start_sampler(std::chrono::milliseconds interval) {
  stop_sampler();
  set_enabled(true);
  ProfileState& st = state();
  std::lock_guard<std::mutex> lock(st.sampler_mutex);
  st.sampler_stop = false;
  st.interval = interval.count() < 1 ? std::chrono::milliseconds(1) : interval;
  st.sampler = std::thread([this] { sampler_main(); });
  st.sampler_running = true;
}

void ScopeProfiler::stop_sampler() {
  ProfileState& st = state();
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(st.sampler_mutex);
    if (!st.sampler_running) return;
    st.sampler_stop = true;
    st.sampler_cv.notify_all();
    joinable = std::move(st.sampler);
    st.sampler_running = false;
  }
  joinable.join();
}

bool ScopeProfiler::sampler_running() const {
  ProfileState& st = state();
  std::lock_guard<std::mutex> lock(st.sampler_mutex);
  return st.sampler_running;
}

void ScopeProfiler::sampler_main() {
  ProfileState& st = state();
  std::unique_lock<std::mutex> lock(st.sampler_mutex);
  while (!st.sampler_stop) {
    st.sampler_cv.wait_for(lock, st.interval);
    if (st.sampler_stop) break;
    lock.unlock();
    sample_once();
    lock.lock();
  }
}

std::size_t ScopeProfiler::sample_once() {
  std::vector<Stack*> stacks;
  {
    StackRegistry& reg = stack_registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    // Freed stacks stay in the vector with depth 0; read_stack skips them.
    stacks = reg.stacks;
  }
  const std::uint64_t now = monotonic_micros();
  ProfileState& st = state();
  std::size_t folded = 0;
  std::string key;
  std::uint32_t tid = 0;
  for (const Stack* s : stacks) {
    if (!read_stack(*s, key, tid)) continue;
    std::lock_guard<std::mutex> lock(st.mutex);
    ++st.weights[key];
    ++st.samples;
    st.recent.push_back({now, tid, key});
    if (st.recent.size() > kRecentCap) st.recent.pop_front();
    ++folded;
  }
  return folded;
}

std::uint64_t ScopeProfiler::samples() const {
  ProfileState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.samples;
}

std::string ScopeProfiler::collapsed() const {
  ProfileState& st = state();
  std::map<std::string, std::uint64_t> weights;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    weights = st.weights;
  }
  return render_collapsed(weights);
}

std::string ScopeProfiler::self_slice(std::uint64_t since_us) {
  std::map<std::string, std::uint64_t> weights;
  const std::uint32_t me = trace_thread_id();
  ProfileState& st = state();
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    for (const RecentSample& sample : st.recent) {
      if (sample.tid == me && sample.time_us >= since_us) {
        ++weights[sample.stack];
      }
    }
  }
  // Synchronous self-sample: even when the query outran every sampler tick,
  // the slice still names where the thread is right now.
  Stack* own = profiler_detail::t_stack;
  if (own != nullptr) {
    std::string key;
    std::uint32_t tid = 0;
    if (read_stack(*own, key, tid)) ++weights[key];
  }
  return render_collapsed(weights);
}

void ScopeProfiler::clear() {
  ProfileState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.weights.clear();
  st.recent.clear();
  st.samples = 0;
}

}  // namespace dp::obs
