#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

/// Always-on sampling scope profiler.
///
/// Every obs::Span (DP_SPAN) additionally maintains a per-thread *scope
/// stack* while the profiler is enabled: a bounded, seqlocked array of frame
/// names that mirrors the code's live span nesting. A background sampler
/// thread wakes on a timer and snapshots every thread's stack -- no signals
/// are delivered into arbitrary frames; the sampler only ever reads atomics,
/// reusing the flight recorder's seqlock-ring discipline -- and folds the
/// snapshots into weighted collapsed stacks ("outer;inner;leaf count"),
/// directly consumable by flamegraph tooling.
///
/// Two consumers:
///   - /profilez (and diffprov_cli --profile-out) serve the accumulated
///     collapsed-stack profile for the whole process.
///   - the slow-query capture path calls self_slice() on the worker thread to
///     attach "where did this query spend its time" evidence to a /slowz
///     journal entry: the sampler hits on that thread since the query began,
///     plus one synchronous self-sample so the slice is never empty.
///
/// Push/pop cost when enabled is a handful of relaxed atomic stores: a frame
/// *borrows* the span's name pointer rather than copying the bytes, valid
/// because every DP_SPAN site passes a string literal or an interned rule
/// label that outlives the span (the exact contract flight-only spans
/// already rely on; see obs::Span). The sampler copies the bytes out, capped
/// at kProfileNameCap, before validating its seqlock read. When disabled the
/// cost is one relaxed load in the Span constructor. Stacks are pooled and
/// leased per thread exactly like the flight recorder's rings, so
/// short-lived threads recycle slots and the sampler never walks freed
/// memory.
namespace dp::obs {

/// Frames deeper than this are counted but not named (the sampler renders
/// what fits; deeper pushes only bump the depth counter).
inline constexpr std::size_t kProfileMaxDepth = 24;
/// Bytes of a frame name that survive into a sample (flightrec's cap; the
/// sampler truncates longer names when it copies them out).
inline constexpr std::size_t kProfileNameCap = 40;

namespace profiler_detail {
extern std::atomic<bool> g_enabled;

/// One thread's scope stack (definition lives here so the push/pop fast path
/// inlines into the Span constructor). Writer (the owning thread) is the
/// only mutator; the sampler reads under the per-stack seqlock, exactly the
/// flight recorder's slot discipline: odd seq while frames are in flux,
/// release on the even store, acquire + re-check on the read side. A frame
/// borrows the span's name pointer (immortal bytes: string literals and
/// interned rule labels -- the Span borrow contract), so the sampler may
/// dereference it even when the seqlock recheck later discards the read.
struct Frame {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint32_t> len{0};
};

struct Stack {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint32_t> depth{0};
  std::atomic<std::uint32_t> tid{0};
  Frame frames[kProfileMaxDepth];
  Stack* next_free = nullptr;
};

/// The calling thread's leased stack, or nullptr before the first push. A
/// plain constant-initialized pointer on purpose: a thread_local with a
/// destructor is reached through an init-guarded TLS wrapper on every
/// access, which is most of the push cost at span granularity. The
/// destructor lives on a separate guard object that lease_stack() arms.
extern thread_local Stack* t_stack;

/// Slow path: leases a pooled stack for this thread (and arms the guard
/// that returns it at thread exit). Called once per thread.
Stack* lease_stack();
}  // namespace profiler_detail

/// The Span-side gate: one relaxed load, safe before main() and from any
/// thread.
inline bool profiler_enabled() {
  return profiler_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Called by obs::Span when profiler_enabled() was true at construction.
/// push returns an opaque handle to the thread's stack, which the span hands
/// back to pop -- this keeps push/pop balanced even if the profiler toggles
/// mid-span, and spares pop the thread-local lookup.
inline void* profiler_push_scope(std::string_view name) {
  using profiler_detail::Stack;
  Stack* s = profiler_detail::t_stack;
  if (s == nullptr) s = profiler_detail::lease_stack();
  const std::uint32_t d = s->depth.load(std::memory_order_relaxed);
  if (d >= kProfileMaxDepth) {
    // Counted but not named: the frames array is untouched, so no seq bump.
    s->depth.store(d + 1, std::memory_order_relaxed);
    return s;
  }
  const std::uint32_t seq = s->seq.load(std::memory_order_relaxed);
  s->seq.store(seq + 1, std::memory_order_relaxed);
  profiler_detail::Frame& f = s->frames[d];
  // Borrow, don't copy: span names are string literals or interned labels
  // that outlive the span (see the class comment above).
  f.name.store(name.data(), std::memory_order_relaxed);
  f.len.store(static_cast<std::uint32_t>(name.size()),
              std::memory_order_relaxed);
  s->depth.store(d + 1, std::memory_order_relaxed);
  s->seq.store(seq + 2, std::memory_order_release);
  return s;
}

inline void profiler_pop_scope(void* handle) {
  auto* s = static_cast<profiler_detail::Stack*>(handle);
  const std::uint32_t d = s->depth.load(std::memory_order_relaxed);
  if (d == 0) return;
  // A pop mutates nothing a concurrent reader could be copying -- the frames
  // below the new depth are untouched, and the popped slot only becomes
  // unreliable when a later *push* overwrites it (which bumps the seqlock).
  // So a single depth store suffices; the reader's snapshot stays a valid
  // photograph of the stack as of its depth load.
  s->depth.store(d - 1, std::memory_order_release);
}

class ScopeProfiler {
 public:
  /// Process-wide instance (leaked, like the flight recorder: thread-local
  /// leases may outlive static destruction order).
  static ScopeProfiler& instance();

  /// Arms (or disarms) the Span push/pop hooks. Enabling without a sampler
  /// thread is useful in tests: sample_once() can then drive it manually.
  void set_enabled(bool on);
  bool enabled() const { return profiler_enabled(); }

  /// Starts the background sampler at `interval` (implies set_enabled(true)).
  /// Restarts with the new interval if already running.
  void start_sampler(std::chrono::milliseconds interval);
  void stop_sampler();
  bool sampler_running() const;

  /// One sweep over every live thread stack; returns how many non-empty
  /// stacks were folded in. The sampler thread calls this on its timer;
  /// tests call it directly for determinism.
  std::size_t sample_once();

  /// Total stack samples folded in since the last clear().
  std::uint64_t samples() const;

  /// The accumulated profile as collapsed-stack text: one
  /// "frame;frame;frame <count>" line per distinct stack, heaviest first.
  /// Empty string when nothing was sampled yet.
  std::string collapsed() const;

  /// Collapsed-stack slice for the *calling* thread: sampler hits attributed
  /// to this thread with sample time >= since_us, plus one synchronous
  /// self-sample of the current stack. Non-empty whenever the profiler is
  /// enabled and the caller holds at least one live span.
  std::string self_slice(std::uint64_t since_us);

  /// Drops accumulated weights and recent samples (not the live stacks).
  void clear();

 private:
  ScopeProfiler() = default;
  void sampler_main();
};

}  // namespace dp::obs
