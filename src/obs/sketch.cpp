#include "obs/sketch.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace dp::obs {

namespace {

/// Keep the 11 exponent bits plus the top 6 mantissa bits: 64 linear
/// sub-buckets per octave.
constexpr int kIndexShift = 46;
/// (bits of 2^-20) >> 46: exponent field 1003, mantissa 0.
constexpr std::uint64_t kBaseIndex = 1003ull << 6;

std::uint64_t to_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double from_bits(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

/// Lowest value covered by its own bucket; anything smaller (zero, negative,
/// NaN via the negated comparison) lands in bucket 0 and relies on min() for
/// exactness.
constexpr double kMinTracked = 0x1p-20;

void update_min(std::atomic<std::uint64_t>& slot, double v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < from_bits(cur)) {
    if (slot.compare_exchange_weak(cur, to_bits(v),
                                   std::memory_order_relaxed)) {
      break;
    }
  }
}

void update_max(std::atomic<std::uint64_t>& slot, double v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > from_bits(cur)) {
    if (slot.compare_exchange_weak(cur, to_bits(v),
                                   std::memory_order_relaxed)) {
      break;
    }
  }
}

double clamp_into(double v, double lo, double hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

}  // namespace

QuantileSketch::QuantileSketch()
    : min_bits_(to_bits(std::numeric_limits<double>::infinity())),
      max_bits_(to_bits(-std::numeric_limits<double>::infinity())) {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

std::size_t QuantileSketch::index_for(double value) {
  if (!(value >= kMinTracked)) return 0;  // also catches NaN
  const std::size_t raw = static_cast<std::size_t>(to_bits(value) >> kIndexShift);
  const std::size_t index = raw - static_cast<std::size_t>(kBaseIndex);
  return index >= kBuckets ? kBuckets - 1 : index;
}

double QuantileSketch::bucket_mid(std::size_t index) {
  const std::uint64_t lo_bits = (kBaseIndex + index) << kIndexShift;
  const std::uint64_t hi_bits = (kBaseIndex + index + 1) << kIndexShift;
  return std::sqrt(from_bits(lo_bits) * from_bits(hi_bits));
}

void QuantileSketch::observe(double value) {
  buckets_[index_for(value)].fetch_add(1, std::memory_order_relaxed);
  update_min(min_bits_, value);
  update_max(max_bits_, value);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  std::uint64_t added = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
      added += n;
    }
  }
  if (added != 0) {
    update_min(min_bits_, other.min());
    update_max(max_bits_, other.max());
  }
}

std::uint64_t QuantileSketch::count() const {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double QuantileSketch::min() const {
  const double v = from_bits(min_bits_.load(std::memory_order_relaxed));
  return v == std::numeric_limits<double>::infinity() ? 0 : v;
}

double QuantileSketch::max() const {
  const double v = from_bits(max_bits_.load(std::memory_order_relaxed));
  return v == -std::numeric_limits<double>::infinity() ? 0 : v;
}

namespace {

/// Value at rank ceil(q * total) over a local (consistent) bucket copy.
double quantile_over(const std::vector<std::uint64_t>& buckets,
                     std::uint64_t total, double q, double lo, double hi) {
  if (total == 0) return 0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return clamp_into(QuantileSketch::bucket_mid(i), lo, hi);
    }
  }
  return hi;  // unreachable: seen == total >= rank by the end
}

}  // namespace

double QuantileSketch::quantile(double q) const {
  std::vector<std::uint64_t> local(kBuckets);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    local[i] = buckets_[i].load(std::memory_order_relaxed);
    total += local[i];
  }
  if (total == 0) return 0;
  return quantile_over(local, total, q,
                       from_bits(min_bits_.load(std::memory_order_relaxed)),
                       from_bits(max_bits_.load(std::memory_order_relaxed)));
}

QuantileSketch::Snapshot QuantileSketch::snapshot() const {
  std::vector<std::uint64_t> local(kBuckets);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    local[i] = buckets_[i].load(std::memory_order_relaxed);
    total += local[i];
  }
  Snapshot snap;
  snap.count = total;
  if (total == 0) return snap;
  const double lo = from_bits(min_bits_.load(std::memory_order_relaxed));
  const double hi = from_bits(max_bits_.load(std::memory_order_relaxed));
  snap.min = lo;
  snap.max = hi;
  snap.p50 = quantile_over(local, total, 0.50, lo, hi);
  snap.p95 = quantile_over(local, total, 0.95, lo, hi);
  snap.p99 = quantile_over(local, total, 0.99, lo, hi);
  snap.p999 = quantile_over(local, total, 0.999, lo, hi);
  return snap;
}

void QuantileSketch::reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  min_bits_.store(to_bits(std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(to_bits(-std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
}

}  // namespace dp::obs
