#pragma once

#include <array>
#include <atomic>
#include <cstdint>

/// Log-bucketed quantile sketch (DDSketch-family) for latency attribution.
///
/// Histograms answer "how many firings took 100us-1ms?"; they cannot answer
/// "what is the live p99?" without interpolation error that grows with the
/// bucket span. The sketch keeps one counter per ~1.1%-wide geometric bucket,
/// so any quantile is recoverable with bounded *relative* error -- the
/// property that matters for tail latencies, where p99 may be 1000x p50.
///
/// Design constraints (mirrors the flight recorder's):
///   - observe() is lock-free and wait-free: one relaxed fetch_add plus a
///     min/max CAS that almost never retries (the total count is derived by
///     summing buckets on the read side, so the hot path pays no second
///     fetch_add). Safe from any thread, any time.
///   - Buckets are derived from the double's bit pattern (exponent + top six
///     mantissa bits), so indexing costs a shift, not a std::log call.
///   - Sketches merge by bucket-wise addition, so per-shard sketches can be
///     combined into a fleet view without losing the error bound.
///
/// Bucket geometry: 64 sub-buckets per octave over [2^-20, 2^44), i.e. 4096
/// buckets spanning sub-microsecond to ~200 days when values are in
/// microseconds. Within an octave the sub-buckets are linear (HdrHistogram
/// style); the worst-case bucket width ratio is 1 + 1/64, and reporting the
/// geometric midpoint of a bucket bounds the relative error at
/// sqrt(1 + 1/64) - 1 < 0.8%, comfortably under the 1% target. Values
/// outside the covered range clamp to the edge buckets (the min/max fields
/// stay exact, and quantile() clamps into [min, max], so a clamped outlier
/// can shift a quantile by at most one bucket, never invent a value).
namespace dp::obs {

class QuantileSketch {
 public:
  /// Guaranteed bound on |estimate - exact| / exact for quantiles of values
  /// within the covered range. sqrt(1 + 1/64) - 1 rounded up.
  static constexpr double kMaxRelativeError = 0.008;

  QuantileSketch();

  QuantileSketch(const QuantileSketch&) = delete;
  QuantileSketch& operator=(const QuantileSketch&) = delete;

  /// Records one value. Lock-free; any thread.
  void observe(double value);

  /// Adds `other`'s observations into this sketch. Bucket-wise, so merging
  /// is associative and commutative and preserves the error bound. Safe
  /// against concurrent observe() on either side (the result is some
  /// interleaving, as with any lock-free snapshot).
  void merge(const QuantileSketch& other);

  /// Total observations (one pass over the buckets; read-side only).
  std::uint64_t count() const;
  /// Exact smallest / largest observed value; 0 when empty.
  double min() const;
  double max() const;

  /// Value at quantile q in [0, 1]; 0 when empty. Clamped into [min, max]
  /// so q=0 / q=1 are exact and bucket midpoints never exceed the observed
  /// range.
  double quantile(double q) const;

  /// One consistent pass over the buckets for exporters that need several
  /// quantiles at once (cheaper and self-consistent vs. repeated quantile()
  /// calls racing concurrent observes).
  struct Snapshot {
    std::uint64_t count = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double p999 = 0;
  };
  Snapshot snapshot() const;

  /// Forgets everything. Not linearizable against concurrent observe();
  /// callers quiesce first (test/bench hygiene, same as Histogram::reset).
  void reset();

  /// Number of buckets (exposed for tests).
  static constexpr std::size_t kBuckets = 4096;

  /// Geometric midpoint of a bucket -- the representative every value in the
  /// bucket is reported as. Exposed for the relative-error property test.
  static double bucket_mid(std::size_t index);

 private:
  static std::size_t index_for(double value);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_;
  /// Bit patterns of the extreme values (CAS loop compares as doubles, so
  /// ordering is correct for any mix of signs). min at +inf doubles as the
  /// "never observed" sentinel for min()/max().
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;
};

}  // namespace dp::obs
