#include "obs/trace.h"

#include <chrono>
#include <sstream>

namespace dp::obs {

namespace {

thread_local TraceContext t_current_context;

}  // namespace

std::uint64_t monotonic_micros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            origin)
          .count());
}

std::uint32_t trace_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1);
  return id;
}

TraceContext current_trace_context() { return t_current_context; }

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

ScopedTraceContext::ScopedTraceContext(TraceContext context)
    : previous_(t_current_context) {
  t_current_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { t_current_context = previous_; }

void Span::install(TraceContext context) { t_current_context = context; }

bool parse_trace_id(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  if (value == 0) return false;
  out = value;
  return true;
}

std::string format_trace_id(std::uint64_t id) {
  char buf[17];
  int i = 16;
  buf[16] = '\0';
  do {
    buf[--i] = "0123456789abcdef"[id & 0xF];
    id >>= 4;
  } while (id != 0);
  return std::string(buf + i);
}

void Tracer::record_complete(std::string name, const char* category,
                             std::uint64_t start_us, std::uint64_t duration_us,
                             std::uint64_t trace_id, std::uint64_t span_id,
                             std::uint64_t parent_span_id) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.start_us = start_us;
  event.duration_us = duration_us;
  event.tid = trace_thread_id();
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_span_id = parent_span_id;
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out << (i == 0 ? "\n" : ",\n") << "  {\"name\": \"";
    for (char c : e.name) {  // names are metric-style; escape defensively
      if (c == '"' || c == '\\') out << '\\';
      out << (static_cast<unsigned char>(c) < 0x20 ? '_' : c);
    }
    out << "\", \"cat\": \"" << e.category << "\", \"ph\": \"X\", \"ts\": "
        << e.start_us << ", \"dur\": " << e.duration_us
        << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.span_id != 0) {
      out << ", \"args\": {";
      if (e.trace_id != 0) {
        out << "\"trace_id\": \"" << format_trace_id(e.trace_id) << "\", ";
      }
      out << "\"span_id\": " << e.span_id << ", \"parent_span_id\": "
          << e.parent_span_id << "}";
    }
    out << "}";
  }
  out << (events_.empty() ? "" : "\n") << "]}\n";
  return out.str();
}

Tracer& default_tracer() {
  static Tracer tracer;
  return tracer;
}

}  // namespace dp::obs
