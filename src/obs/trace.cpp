#include "obs/trace.h"

#include <chrono>
#include <sstream>

namespace dp::obs {

std::uint64_t monotonic_micros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            origin)
          .count());
}

std::uint32_t trace_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1);
  return id;
}

void Tracer::record_complete(std::string name, const char* category,
                             std::uint64_t start_us,
                             std::uint64_t duration_us) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.start_us = start_us;
  event.duration_us = duration_us;
  event.tid = trace_thread_id();
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out << (i == 0 ? "\n" : ",\n") << "  {\"name\": \"";
    for (char c : e.name) {  // names are metric-style; escape defensively
      if (c == '"' || c == '\\') out << '\\';
      out << (static_cast<unsigned char>(c) < 0x20 ? '_' : c);
    }
    out << "\", \"cat\": \"" << e.category << "\", \"ph\": \"X\", \"ts\": "
        << e.start_us << ", \"dur\": " << e.duration_us
        << ", \"pid\": 1, \"tid\": " << e.tid << "}";
  }
  out << (events_.empty() ? "" : "\n") << "]}\n";
  return out.str();
}

Tracer& default_tracer() {
  static Tracer tracer;
  return tracer;
}

}  // namespace dp::obs
