// Hierarchical tracing on a monotonic clock, exported as Chrome trace-event
// JSON (loadable in chrome://tracing and ui.perfetto.dev).
//
// Spans are RAII: construction captures a start timestamp, destruction
// appends one "complete" ('ph':'X') event. Events on the same thread nest by
// time containment, which the viewers render as a flame chart -- no explicit
// parent pointers are needed because a child span always closes before its
// enclosing span (stack discipline).
//
// Cost model: when the tracer is disabled a span costs one relaxed atomic
// load and a branch; nothing is allocated or timestamped. When compiled out
// (DP_OBS_ENABLED=0, see obs.h) the macros vanish entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dp::obs {

/// Microseconds on the process-local monotonic clock (steady_clock, zeroed
/// at first use). Never wall-clock: trace timestamps must be monotonic.
std::uint64_t monotonic_micros();

/// Small dense id of the calling thread (1, 2, ... in first-use order);
/// becomes the Chrome trace 'tid'.
std::uint32_t trace_thread_id();

struct TraceEvent {
  std::string name;
  const char* category = "dp";  // must point at a string literal
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint32_t tid = 0;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one complete event (thread-safe). Called by ~Span; direct use
  /// is fine for events timed by other means.
  void record_complete(std::string name, const char* category,
                       std::uint64_t start_us, std::uint64_t duration_us);

  void clear();
  [[nodiscard]] std::size_t size() const;
  /// Snapshot of the recorded events (copy; for tests and tools).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} -- the Chrome
  /// trace-event JSON array-of-complete-events format.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// The process-wide tracer all DP_SPAN macros record into. Enabled by the
/// CLI's --trace-out (or tests); disabled by default.
Tracer& default_tracer();

/// RAII span. If the tracer is disabled at construction the span is inert
/// (the name is never copied). end() closes the span early; the destructor
/// closes it otherwise.
class Span {
 public:
  Span(Tracer& tracer, std::string_view name, const char* category = "dp") {
    if (tracer.enabled()) {
      tracer_ = &tracer;
      name_ = std::string(name);
      category_ = category;
      start_us_ = monotonic_micros();
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// True if the span will record an event (the tracer was enabled at
  /// construction and end() has not run yet).
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  /// Records the event now (idempotent).
  void end() {
    if (tracer_ == nullptr) return;
    Tracer* t = tracer_;
    tracer_ = nullptr;
    t->record_complete(std::move(name_), category_, start_us_,
                       monotonic_micros() - start_us_);
  }

 private:
  Tracer* tracer_ = nullptr;  // null = inert
  std::string name_;
  const char* category_ = "dp";
  std::uint64_t start_us_ = 0;
};

}  // namespace dp::obs
