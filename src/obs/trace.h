// Hierarchical tracing on a monotonic clock, exported as Chrome trace-event
// JSON (loadable in chrome://tracing and ui.perfetto.dev).
//
// Spans are RAII: construction captures a start timestamp, destruction
// appends one "complete" ('ph':'X') event. Events on the same thread nest by
// time containment, which the viewers render as a flame chart; in addition
// every recorded span carries explicit ids -- a process-unique span id, the
// id of its parent span, and a trace id -- so one *logical* operation that
// hops threads (client -> daemon connection thread -> worker) still reads as
// one connected trace.
//
// Trace-context propagation: each thread holds a current TraceContext
// (trace id + innermost live span id). A recording Span adopts the current
// context as its parent and installs itself for its scope (stack
// discipline), so same-thread parentage is automatic. Crossing a thread
// boundary is explicit: the sending side snapshots a TraceContext and the
// receiving side installs it with ScopedTraceContext -- the diffprovd worker
// does exactly this with the context minted by diffprov_client and carried
// in the NDJSON `trace` field.
//
// Cost model: when the tracer is disabled a span costs three relaxed atomic
// loads and branches (tracer + flight recorder + profiler gates); nothing is
// allocated or timestamped. When compiled out (DP_OBS_ENABLED=0, see obs.h) the macros
// vanish entirely. Spans whose tracer is off but whose flight recorder is on
// take the cheap path described in flightrec.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flightrec.h"
#include "obs/profiler.h"

namespace dp::obs {

/// Microseconds on the process-local monotonic clock (steady_clock, zeroed
/// at first use). Never wall-clock: trace timestamps must be monotonic.
std::uint64_t monotonic_micros();

/// Small dense id of the calling thread (1, 2, ... in first-use order);
/// becomes the Chrome trace 'tid'.
std::uint32_t trace_thread_id();

/// The ambient identity a span inherits: which trace this thread is working
/// for and which span is its would-be parent. trace_id == 0 means "no
/// propagated context" (spans still chain locally for flame-graph nesting).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// This thread's current context (what a new span would inherit).
TraceContext current_trace_context();

/// Process-unique, nonzero span id (relaxed atomic counter).
std::uint64_t next_span_id();

/// Installs `context` as the calling thread's current trace context for the
/// scope, restoring the previous one on destruction. Use at thread-hop
/// boundaries (worker picks up a job, connection thread serves a request);
/// within a thread, Span handles propagation itself.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext context);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
};

/// Parses 1-16 hex digits into a nonzero u64. Returns false (and leaves
/// `out` untouched) on empty, oversized, non-hex, or zero input -- the
/// validation the wire protocol applies to client-minted ids.
bool parse_trace_id(std::string_view text, std::uint64_t& out);

/// Lower-case hex, no leading zeros (inverse of parse_trace_id).
std::string format_trace_id(std::uint64_t id);

struct TraceEvent {
  std::string name;
  const char* category = "dp";  // must point at a string literal
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint32_t tid = 0;
  /// 0 = span recorded with no propagated trace context.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one complete event (thread-safe). Called by ~Span; direct use
  /// is fine for events timed by other means.
  void record_complete(std::string name, const char* category,
                       std::uint64_t start_us, std::uint64_t duration_us,
                       std::uint64_t trace_id = 0, std::uint64_t span_id = 0,
                       std::uint64_t parent_span_id = 0);

  void clear();
  [[nodiscard]] std::size_t size() const;
  /// Snapshot of the recorded events (copy; for tests and tools).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} -- the Chrome
  /// trace-event JSON array-of-complete-events format. Spans with ids carry
  /// them in "args" (trace_id as hex; viewers show args on click, tools can
  /// re-link cross-thread parentage from them).
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// The process-wide tracer all DP_SPAN macros record into. Enabled by the
/// CLI's --trace-out (or tests); disabled by default.
Tracer& default_tracer();

/// RAII span. If the tracer is disabled at construction the span is inert --
/// unless the flight recorder is on, in which case the span takes the cheap
/// flight path: no clock reads or copies at construction, one ring-buffer
/// write at end(). In flight-only mode -- and whenever the scope profiler is
/// enabled, whose per-thread stack borrows the same buffer -- the `name`
/// buffer must outlive the span (string literals and the engine's interned
/// rule labels do; every DP_SPAN site passes one of those). end() closes the
/// span early; the destructor closes it otherwise.
class Span {
 public:
  Span(Tracer& tracer, std::string_view name, const char* category = "dp") {
    if (tracer.enabled()) {
      tracer_ = &tracer;
      name_ = std::string(name);
      category_ = category;
      start_us_ = monotonic_micros();
      parent_ = current_trace_context();
      span_id_ = next_span_id();
      install({parent_.trace_id, span_id_});
    } else if (flight_recorder_enabled()) {
      flight_ = true;
      name_view_ = name;
    }
    // Third gate, independent of the other two: while the scope profiler is
    // on, every span additionally mirrors itself onto the thread's sampled
    // scope stack (profiler.h). The returned handle keeps push/pop balanced
    // even if the profiler toggles mid-span.
    if (profiler_enabled()) {
      prof_scope_ = profiler_push_scope(name);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// True if the span will record a trace event (the tracer was enabled at
  /// construction and end() has not run yet).
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  /// Records the event now (idempotent).
  void end() {
    if (prof_scope_ != nullptr) {
      profiler_pop_scope(prof_scope_);
      prof_scope_ = nullptr;
    }
    if (tracer_ != nullptr) {
      Tracer* t = tracer_;
      tracer_ = nullptr;
      install(parent_);
      const std::uint64_t duration = monotonic_micros() - start_us_;
      if (flight_recorder_enabled()) {
        flight_record_span(name_, parent_.trace_id, duration);
      }
      t->record_complete(std::move(name_), category_, start_us_, duration,
                         parent_.trace_id, span_id_, parent_.span_id);
    } else if (flight_) {
      flight_ = false;
      flight_record_span(name_view_, current_trace_context().trace_id,
                         /*duration_us=*/0);
    }
  }

 private:
  static void install(TraceContext context);

  Tracer* tracer_ = nullptr;    // null = not tracing
  bool flight_ = false;         // flight-only mode (tracer off, recorder on)
  void* prof_scope_ = nullptr;  // profiler stack this span was pushed onto
  std::string name_;
  std::string_view name_view_;  // flight-only: borrowed, see class comment
  const char* category_ = "dp";
  std::uint64_t start_us_ = 0;
  TraceContext parent_{};
  std::uint64_t span_id_ = 0;
};

}  // namespace dp::obs
