#include "provenance/graph.h"

#include <cassert>

#include "obs/obs.h"

namespace dp {

namespace {

/// Latency histogram for provenance lookups, sampled only while the tracer
/// is enabled (a steady_clock read per lookup is too expensive otherwise).
obs::Histogram& lookup_histogram() {
  static obs::Histogram& hist =
      obs::default_registry().histogram("dp.prov.lookup_us");
  return hist;
}

/// Samples one lookup: counts it always, times it only when tracing.
class LookupSample {
 public:
  explicit LookupSample(std::uint64_t& counter) {
    ++counter;
    if (DP_OBS_TRACING()) start_us_ = obs::monotonic_micros();
  }
  ~LookupSample() {
    if (start_us_ != kOff) {
      lookup_histogram().observe(double(obs::monotonic_micros() - start_us_));
    }
  }
  LookupSample(const LookupSample&) = delete;
  LookupSample& operator=(const LookupSample&) = delete;

 private:
  static constexpr std::uint64_t kOff = ~std::uint64_t{0};
  std::uint64_t start_us_ = kOff;
};

}  // namespace

std::string_view vertex_kind_name(VertexKind kind) {
  switch (kind) {
    case VertexKind::kInsert: return "INSERT";
    case VertexKind::kDelete: return "DELETE";
    case VertexKind::kExist: return "EXIST";
    case VertexKind::kDerive: return "DERIVE";
    case VertexKind::kUnderive: return "UNDERIVE";
    case VertexKind::kAppear: return "APPEAR";
    case VertexKind::kDisappear: return "DISAPPEAR";
  }
  return "?";
}

std::string Vertex::label() const {
  std::string out(vertex_kind_name(kind));
  out += " ";
  out += tuple.to_string();
  if (!rule.empty()) out += " via " + rule;
  if (kind == VertexKind::kExist) {
    out += " @[" + std::to_string(interval.start) + ", " +
           (interval.open_ended() ? "inf" : std::to_string(interval.end)) +
           ")";
  } else {
    out += " @" + std::to_string(time);
  }
  return out;
}

VertexId ProvenanceGraph::add_vertex(Vertex v) {
  ++counters_.by_kind[static_cast<std::size_t>(v.kind)];
  nodes_.push_back(std::move(v));
  return static_cast<VertexId>(nodes_.size() - 1);
}

std::optional<VertexId> ProvenanceGraph::live_exist(const Tuple& tuple) const {
  auto it = exist_index_.find(tuple);
  if (it == exist_index_.end() || it->second.empty()) return std::nullopt;
  const VertexId last = it->second.back();
  if (!nodes_[last].interval.open_ended()) return std::nullopt;
  return last;
}

void ProvenanceGraph::close_exist(const Tuple& tuple, LogicalTime t) {
  auto live = live_exist(tuple);
  if (live) nodes_[*live].interval.end = t;
}

VertexId ProvenanceGraph::record_base_insert(const Tuple& tuple, LogicalTime t,
                                             bool is_event) {
  Vertex insert;
  insert.kind = VertexKind::kInsert;
  insert.tuple = tuple;
  insert.time = t;
  const VertexId insert_id = add_vertex(std::move(insert));

  Vertex appear;
  appear.kind = VertexKind::kAppear;
  appear.tuple = tuple;
  appear.time = t;
  appear.children = {insert_id};
  const VertexId appear_id = add_vertex(std::move(appear));

  Vertex exist;
  exist.kind = VertexKind::kExist;
  exist.tuple = tuple;
  exist.time = t;
  exist.interval = is_event ? TimeInterval{t, t + 1}
                            : TimeInterval{t, kTimeInfinity};
  exist.children = {appear_id};
  const VertexId exist_id = add_vertex(std::move(exist));
  exist_index_[tuple].push_back(exist_id);
  return exist_id;
}

VertexId ProvenanceGraph::record_derive(const Tuple& head,
                                        const std::string& rule,
                                        const std::vector<Tuple>& body,
                                        std::size_t trigger_index,
                                        LogicalTime t, bool is_event) {
  // Resolve the body tuples to their EXIST vertices as of `t`. A body tuple
  // must have been recorded before it can support a derivation; event
  // triggers have a one-instant interval, so fall back to the latest EXIST.
  std::vector<VertexId> body_ids;
  body_ids.reserve(body.size());
  for (const Tuple& b : body) {
    std::optional<VertexId> id = exist_at(b, t);
    if (!id) id = latest_exist_before(b, t);
    if (!id) {
      // Only possible under selective (filtered) recording: the body tuple's
      // own provenance was pruned. Record a boundary EXIST so the projected
      // tree remains well-formed; it reads as an unexpanded base fact.
      id = record_base_insert(b, t, false);
    }
    body_ids.push_back(*id);
  }

  Vertex derive;
  derive.kind = VertexKind::kDerive;
  derive.tuple = head;
  derive.rule = rule;
  derive.time = t;
  derive.children = body_ids;
  derive.trigger_index = static_cast<std::int32_t>(trigger_index);
  const VertexId derive_id = add_vertex(std::move(derive));
  trigger_index_[body_ids[trigger_index]].push_back(derive_id);

  // Additional support for an already-live head: attach the new DERIVE to
  // the existing APPEAR and keep the open EXIST.
  if (auto live = live_exist(head)) {
    const VertexId appear_id = nodes_[*live].children.front();
    nodes_[appear_id].children.push_back(derive_id);
    return *live;
  }

  Vertex appear;
  appear.kind = VertexKind::kAppear;
  appear.tuple = head;
  appear.time = t;
  appear.children = {derive_id};
  const VertexId appear_id = add_vertex(std::move(appear));

  Vertex exist;
  exist.kind = VertexKind::kExist;
  exist.tuple = head;
  exist.time = t;
  exist.interval = is_event ? TimeInterval{t, t + 1}
                            : TimeInterval{t, kTimeInfinity};
  exist.children = {appear_id};
  const VertexId exist_id = add_vertex(std::move(exist));
  exist_index_[head].push_back(exist_id);
  return exist_id;
}

void ProvenanceGraph::record_base_delete(const Tuple& tuple, LogicalTime t) {
  Vertex del;
  del.kind = VertexKind::kDelete;
  del.tuple = tuple;
  del.time = t;
  const VertexId del_id = add_vertex(std::move(del));

  Vertex disappear;
  disappear.kind = VertexKind::kDisappear;
  disappear.tuple = tuple;
  disappear.time = t;
  disappear.children = {del_id};
  add_vertex(std::move(disappear));
  close_exist(tuple, t);
}

void ProvenanceGraph::record_underive(const Tuple& tuple,
                                      const std::string& rule,
                                      LogicalTime t) {
  Vertex underive;
  underive.kind = VertexKind::kUnderive;
  underive.tuple = tuple;
  underive.rule = rule;
  underive.time = t;
  const VertexId underive_id = add_vertex(std::move(underive));

  Vertex disappear;
  disappear.kind = VertexKind::kDisappear;
  disappear.tuple = tuple;
  disappear.time = t;
  disappear.children = {underive_id};
  add_vertex(std::move(disappear));
  close_exist(tuple, t);
}

std::optional<VertexId> ProvenanceGraph::exist_at(const Tuple& tuple,
                                                  LogicalTime at) const {
  LookupSample sample(counters_.lookups);
  auto it = exist_index_.find(tuple);
  if (it == exist_index_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (nodes_[*rit].interval.contains(at)) return *rit;
  }
  return std::nullopt;
}

std::optional<VertexId> ProvenanceGraph::latest_exist_before(
    const Tuple& tuple, LogicalTime at) const {
  LookupSample sample(counters_.lookups);
  auto it = exist_index_.find(tuple);
  if (it == exist_index_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (nodes_[*rit].interval.start <= at) return *rit;
  }
  return std::nullopt;
}

std::vector<VertexId> ProvenanceGraph::exists_of(const Tuple& tuple) const {
  auto it = exist_index_.find(tuple);
  return it == exist_index_.end() ? std::vector<VertexId>{} : it->second;
}

std::vector<VertexId> ProvenanceGraph::derivations_triggered_by(
    VertexId exist) const {
  auto it = trigger_index_.find(exist);
  return it == trigger_index_.end() ? std::vector<VertexId>{} : it->second;
}

void ProvenanceGraph::publish_metrics(obs::MetricsRegistry& registry) {
  static constexpr std::array<const char*, 7> kKindMetric = {
      "dp.prov.vertex.insert",   "dp.prov.vertex.delete",
      "dp.prov.vertex.exist",    "dp.prov.vertex.derive",
      "dp.prov.vertex.underive", "dp.prov.vertex.appear",
      "dp.prov.vertex.disappear"};
  std::uint64_t total_delta = 0;
  for (std::size_t k = 0; k < kKindMetric.size(); ++k) {
    const std::uint64_t cur = counters_.by_kind[k];
    std::uint64_t& seen = published_.by_kind[k];
    if (cur > seen) {
      registry.counter(kKindMetric[k]).inc(cur - seen);
      total_delta += cur - seen;
      seen = cur;
    }
  }
  if (total_delta != 0) registry.counter("dp.prov.vertices").inc(total_delta);
  if (counters_.lookups > published_.lookups) {
    registry.counter("dp.prov.lookups")
        .inc(counters_.lookups - published_.lookups);
    published_.lookups = counters_.lookups;
  }
  registry.gauge("dp.prov.graph_vertices")
      .set_max(static_cast<std::int64_t>(nodes_.size()));
}

}  // namespace dp
