#include "provenance/graph.h"

#include <algorithm>
#include <cassert>

#include "obs/obs.h"

namespace dp {

namespace {

/// Latency histogram for provenance lookups, sampled only while the tracer
/// is enabled (a steady_clock read per lookup is too expensive otherwise).
obs::Histogram& lookup_histogram() {
  static obs::Histogram& hist =
      obs::default_registry().histogram("dp.prov.lookup_us");
  return hist;
}

/// Quantile-sketch twin of lookup_histogram() (same series, tail quantiles).
obs::QuantileSketch& lookup_sketch() {
  static obs::QuantileSketch& sketch =
      obs::default_registry().sketch("dp.prov.lookup_us");
  return sketch;
}

/// Samples one lookup: counts it always, times it only when tracing.
class LookupSample {
 public:
  explicit LookupSample(std::uint64_t& counter) {
    ++counter;
    if (DP_OBS_TRACING()) start_us_ = obs::monotonic_micros();
  }
  ~LookupSample() {
    if (start_us_ != kOff) {
      const auto us = double(obs::monotonic_micros() - start_us_);
      lookup_histogram().observe(us);
      lookup_sketch().observe(us);
    }
  }
  LookupSample(const LookupSample&) = delete;
  LookupSample& operator=(const LookupSample&) = delete;

 private:
  static constexpr std::uint64_t kOff = ~std::uint64_t{0};
  std::uint64_t start_us_ = kOff;
};

}  // namespace

std::string_view vertex_kind_name(VertexKind kind) {
  switch (kind) {
    case VertexKind::kInsert: return "INSERT";
    case VertexKind::kDelete: return "DELETE";
    case VertexKind::kExist: return "EXIST";
    case VertexKind::kDerive: return "DERIVE";
    case VertexKind::kUnderive: return "UNDERIVE";
    case VertexKind::kAppear: return "APPEAR";
    case VertexKind::kDisappear: return "DISAPPEAR";
  }
  return "?";
}

std::string Vertex::label() const {
  std::string out(vertex_kind_name(kind));
  out += " ";
  out += tuple().to_string();
  if (rule_ref != kNoName && !rule().empty()) out += " via " + rule();
  if (kind == VertexKind::kExist) {
    out += " @[" + std::to_string(interval.start) + ", " +
           (interval.open_ended() ? "inf" : std::to_string(interval.end)) +
           ")";
  } else {
    out += " @" + std::to_string(time);
  }
  return out;
}

VertexId ProvenanceGraph::add_vertex(VertexKind kind, TupleRef tuple,
                                     NameRef rule, LogicalTime t) {
  ++counters_.by_kind[static_cast<std::size_t>(kind)];
  const auto id = static_cast<VertexId>(kind_.size());
  kind_.push_back(kind);
  tuple_.push_back(tuple);
  rule_.push_back(rule);
  time_.push_back(t);
  exist_end_.push_back(kTimeInfinity);
  trigger_.push_back(-1);
  // The caller appends this vertex's children (add_edge) before creating the
  // next vertex, so the CSR span starts at the current edge cursor.
  edge_begin_.push_back(static_cast<std::uint32_t>(edges_.size()));
  edge_count_.push_back(0);
  return id;
}

Vertex ProvenanceGraph::vertex(VertexId id) const {
  Vertex v;
  v.kind = kind_[id];
  v.tuple_ref = tuple_[id];
  v.rule_ref = rule_[id];
  v.time = time_[id];
  v.interval = interval_of(id);
  v.trigger_index = trigger_[id];
  v.children = children_of(id);
  return v;
}

std::vector<VertexId> ProvenanceGraph::children_of(VertexId id) const {
  std::vector<VertexId> out;
  out.reserve(child_count(id));
  for_each_child(id, [&out](VertexId child) { out.push_back(child); });
  return out;
}

std::optional<VertexId> ProvenanceGraph::live_exist(TupleRef tuple) const {
  auto it = exist_index_.find(tuple);
  if (it == exist_index_.end() || it->second.empty()) return std::nullopt;
  const VertexId last = it->second.back();
  if (exist_end_[last] != kTimeInfinity) return std::nullopt;
  return last;
}

void ProvenanceGraph::close_exist(TupleRef tuple, LogicalTime t) {
  auto live = live_exist(tuple);
  if (live) exist_end_[*live] = t;
}

VertexId ProvenanceGraph::record_base_insert(TupleRef tuple, LogicalTime t,
                                             bool is_event) {
  const VertexId insert_id =
      add_vertex(VertexKind::kInsert, tuple, kNoName, t);

  const VertexId appear_id =
      add_vertex(VertexKind::kAppear, tuple, kNoName, t);
  add_edge(insert_id);
  edge_count_[appear_id] = 1;

  const VertexId exist_id = add_vertex(VertexKind::kExist, tuple, kNoName, t);
  add_edge(appear_id);
  edge_count_[exist_id] = 1;
  if (is_event) exist_end_[exist_id] = t + 1;
  exist_index_[tuple].push_back(exist_id);
  return exist_id;
}

VertexId ProvenanceGraph::record_derive(TupleRef head, NameRef rule,
                                        const std::vector<TupleRef>& body,
                                        std::size_t trigger_index,
                                        LogicalTime t, bool is_event) {
  // Resolve the body tuples to their EXIST vertices as of `t`. A body tuple
  // must have been recorded before it can support a derivation; event
  // triggers have a one-instant interval, so fall back to the latest EXIST.
  std::vector<VertexId> body_ids;
  body_ids.reserve(body.size());
  for (const TupleRef b : body) {
    std::optional<VertexId> id = exist_at(b, t);
    if (!id) id = latest_exist_before(b, t);
    if (!id) {
      // Only possible under selective (filtered) recording: the body tuple's
      // own provenance was pruned. Record a boundary EXIST so the projected
      // tree remains well-formed; it reads as an unexpanded base fact.
      id = record_base_insert(b, t, false);
    }
    body_ids.push_back(*id);
  }

  const VertexId derive_id = add_vertex(VertexKind::kDerive, head, rule, t);
  add_edges(body_ids);
  edge_count_[derive_id] = static_cast<std::uint32_t>(body_ids.size());
  trigger_[derive_id] = static_cast<std::int32_t>(trigger_index);
  trigger_index_[body_ids[trigger_index]].push_back(derive_id);

  // Additional support for an already-live head: attach the new DERIVE to
  // the existing APPEAR and keep the open EXIST. The APPEAR's CSR span is
  // frozen, so the append lands in the overflow table (causal order is CSR
  // span first, then appends -- identical to the former push_back order).
  if (auto live = live_exist(head)) {
    const VertexId appear_id = first_child(*live);
    extra_edges_[appear_id].push_back(derive_id);
    return *live;
  }

  const VertexId appear_id = add_vertex(VertexKind::kAppear, head, kNoName, t);
  add_edge(derive_id);
  edge_count_[appear_id] = 1;

  const VertexId exist_id = add_vertex(VertexKind::kExist, head, kNoName, t);
  add_edge(appear_id);
  edge_count_[exist_id] = 1;
  if (is_event) exist_end_[exist_id] = t + 1;
  exist_index_[head].push_back(exist_id);
  return exist_id;
}

VertexId ProvenanceGraph::record_derive(const Tuple& head,
                                        const std::string& rule,
                                        const std::vector<Tuple>& body,
                                        std::size_t trigger_index,
                                        LogicalTime t, bool is_event) {
  std::vector<TupleRef> body_refs;
  body_refs.reserve(body.size());
  for (const Tuple& b : body) body_refs.push_back(intern_tuple(b));
  return record_derive(intern_tuple(head), intern_name(rule), body_refs,
                       trigger_index, t, is_event);
}

void ProvenanceGraph::record_base_delete(TupleRef tuple, LogicalTime t) {
  const VertexId del_id = add_vertex(VertexKind::kDelete, tuple, kNoName, t);

  const VertexId dis_id = add_vertex(VertexKind::kDisappear, tuple, kNoName, t);
  add_edge(del_id);
  edge_count_[dis_id] = 1;
  close_exist(tuple, t);
}

void ProvenanceGraph::record_underive(TupleRef tuple, NameRef rule,
                                      LogicalTime t) {
  const VertexId underive_id =
      add_vertex(VertexKind::kUnderive, tuple, rule, t);

  const VertexId dis_id = add_vertex(VertexKind::kDisappear, tuple, kNoName, t);
  add_edge(underive_id);
  edge_count_[dis_id] = 1;
  close_exist(tuple, t);
}

std::optional<VertexId> ProvenanceGraph::exist_at(TupleRef tuple,
                                                  LogicalTime at) const {
  LookupSample sample(counters_.lookups);
  auto it = exist_index_.find(tuple);
  if (it == exist_index_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (interval_of(*rit).contains(at)) return *rit;
  }
  return std::nullopt;
}

std::optional<VertexId> ProvenanceGraph::exist_at(const Tuple& tuple,
                                                  LogicalTime at) const {
  const TupleRef ref = global_store().find(tuple);
  if (ref == kNoTupleRef) {
    LookupSample sample(counters_.lookups);  // count the miss, as before
    return std::nullopt;
  }
  return exist_at(ref, at);
}

std::optional<VertexId> ProvenanceGraph::latest_exist_before(
    TupleRef tuple, LogicalTime at) const {
  LookupSample sample(counters_.lookups);
  auto it = exist_index_.find(tuple);
  if (it == exist_index_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (time_[*rit] <= at) return *rit;
  }
  return std::nullopt;
}

std::optional<VertexId> ProvenanceGraph::latest_exist_before(
    const Tuple& tuple, LogicalTime at) const {
  const TupleRef ref = global_store().find(tuple);
  if (ref == kNoTupleRef) {
    LookupSample sample(counters_.lookups);
    return std::nullopt;
  }
  return latest_exist_before(ref, at);
}

std::vector<VertexId> ProvenanceGraph::exists_of(TupleRef tuple) const {
  auto it = exist_index_.find(tuple);
  return it == exist_index_.end() ? std::vector<VertexId>{} : it->second;
}

std::vector<VertexId> ProvenanceGraph::exists_of(const Tuple& tuple) const {
  const TupleRef ref = global_store().find(tuple);
  return ref == kNoTupleRef ? std::vector<VertexId>{} : exists_of(ref);
}

const std::vector<TupleRef>& ProvenanceGraph::sorted_tuples() const {
  if (sorted_tuples_.size() != exist_index_.size()) {
    sorted_tuples_.clear();
    sorted_tuples_.reserve(exist_index_.size());
    for (const auto& [ref, exists] : exist_index_) {
      sorted_tuples_.push_back(ref);
    }
    TupleStore& store = global_store();
    std::sort(sorted_tuples_.begin(), sorted_tuples_.end(),
              [&store](TupleRef a, TupleRef b) { return store.less(a, b); });
  }
  return sorted_tuples_;
}

std::vector<VertexId> ProvenanceGraph::derivations_triggered_by(
    VertexId exist) const {
  auto it = trigger_index_.find(exist);
  return it == trigger_index_.end() ? std::vector<VertexId>{} : it->second;
}

std::size_t ProvenanceGraph::resident_bytes() const {
  const std::size_t per_vertex =
      sizeof(VertexKind) + sizeof(TupleRef) + sizeof(NameRef) +
      2 * sizeof(LogicalTime) + sizeof(std::int32_t) +
      2 * sizeof(std::uint32_t);
  std::size_t bytes = kind_.size() * per_vertex +
                      edges_.capacity() * sizeof(VertexId);
  for (const auto& [id, extra] : extra_edges_) {
    bytes += sizeof(id) + extra.capacity() * sizeof(VertexId) +
             2 * sizeof(void*);
  }
  for (const auto& [ref, exists] : exist_index_) {
    bytes += sizeof(ref) + exists.capacity() * sizeof(VertexId) +
             2 * sizeof(void*);
  }
  for (const auto& [id, derives] : trigger_index_) {
    bytes += sizeof(id) + derives.capacity() * sizeof(VertexId) +
             2 * sizeof(void*);
  }
  bytes += sorted_tuples_.capacity() * sizeof(TupleRef);
  return bytes;
}

void ProvenanceGraph::publish_metrics(obs::MetricsRegistry& registry) {
  static constexpr std::array<const char*, 7> kKindMetric = {
      "dp.prov.vertex.insert",   "dp.prov.vertex.delete",
      "dp.prov.vertex.exist",    "dp.prov.vertex.derive",
      "dp.prov.vertex.underive", "dp.prov.vertex.appear",
      "dp.prov.vertex.disappear"};
  std::uint64_t total_delta = 0;
  for (std::size_t k = 0; k < kKindMetric.size(); ++k) {
    const std::uint64_t cur = counters_.by_kind[k];
    std::uint64_t& seen = published_.by_kind[k];
    if (cur > seen) {
      registry.counter(kKindMetric[k]).inc(cur - seen);
      total_delta += cur - seen;
      seen = cur;
    }
  }
  if (total_delta != 0) registry.counter("dp.prov.vertices").inc(total_delta);
  if (counters_.lookups > published_.lookups) {
    registry.counter("dp.prov.lookups")
        .inc(counters_.lookups - published_.lookups);
    published_.lookups = counters_.lookups;
  }
  registry.gauge("dp.prov.graph_vertices")
      .set_max(static_cast<std::int64_t>(kind_.size()));
  // The storage the graph references lives in the shared store; publish its
  // gauges alongside so a metrics dump shows both sides of the split.
  global_store().publish_metrics(registry);
}

}  // namespace dp
