#include "provenance/graph.h"

#include <cassert>

namespace dp {

std::string_view vertex_kind_name(VertexKind kind) {
  switch (kind) {
    case VertexKind::kInsert: return "INSERT";
    case VertexKind::kDelete: return "DELETE";
    case VertexKind::kExist: return "EXIST";
    case VertexKind::kDerive: return "DERIVE";
    case VertexKind::kUnderive: return "UNDERIVE";
    case VertexKind::kAppear: return "APPEAR";
    case VertexKind::kDisappear: return "DISAPPEAR";
  }
  return "?";
}

std::string Vertex::label() const {
  std::string out(vertex_kind_name(kind));
  out += " ";
  out += tuple.to_string();
  if (!rule.empty()) out += " via " + rule;
  if (kind == VertexKind::kExist) {
    out += " @[" + std::to_string(interval.start) + ", " +
           (interval.open_ended() ? "inf" : std::to_string(interval.end)) +
           ")";
  } else {
    out += " @" + std::to_string(time);
  }
  return out;
}

VertexId ProvenanceGraph::add_vertex(Vertex v) {
  nodes_.push_back(std::move(v));
  return static_cast<VertexId>(nodes_.size() - 1);
}

std::optional<VertexId> ProvenanceGraph::live_exist(const Tuple& tuple) const {
  auto it = exist_index_.find(tuple);
  if (it == exist_index_.end() || it->second.empty()) return std::nullopt;
  const VertexId last = it->second.back();
  if (!nodes_[last].interval.open_ended()) return std::nullopt;
  return last;
}

void ProvenanceGraph::close_exist(const Tuple& tuple, LogicalTime t) {
  auto live = live_exist(tuple);
  if (live) nodes_[*live].interval.end = t;
}

VertexId ProvenanceGraph::record_base_insert(const Tuple& tuple, LogicalTime t,
                                             bool is_event) {
  Vertex insert;
  insert.kind = VertexKind::kInsert;
  insert.tuple = tuple;
  insert.time = t;
  const VertexId insert_id = add_vertex(std::move(insert));

  Vertex appear;
  appear.kind = VertexKind::kAppear;
  appear.tuple = tuple;
  appear.time = t;
  appear.children = {insert_id};
  const VertexId appear_id = add_vertex(std::move(appear));

  Vertex exist;
  exist.kind = VertexKind::kExist;
  exist.tuple = tuple;
  exist.time = t;
  exist.interval = is_event ? TimeInterval{t, t + 1}
                            : TimeInterval{t, kTimeInfinity};
  exist.children = {appear_id};
  const VertexId exist_id = add_vertex(std::move(exist));
  exist_index_[tuple].push_back(exist_id);
  return exist_id;
}

VertexId ProvenanceGraph::record_derive(const Tuple& head,
                                        const std::string& rule,
                                        const std::vector<Tuple>& body,
                                        std::size_t trigger_index,
                                        LogicalTime t, bool is_event) {
  // Resolve the body tuples to their EXIST vertices as of `t`. A body tuple
  // must have been recorded before it can support a derivation; event
  // triggers have a one-instant interval, so fall back to the latest EXIST.
  std::vector<VertexId> body_ids;
  body_ids.reserve(body.size());
  for (const Tuple& b : body) {
    std::optional<VertexId> id = exist_at(b, t);
    if (!id) id = latest_exist_before(b, t);
    if (!id) {
      // Only possible under selective (filtered) recording: the body tuple's
      // own provenance was pruned. Record a boundary EXIST so the projected
      // tree remains well-formed; it reads as an unexpanded base fact.
      id = record_base_insert(b, t, false);
    }
    body_ids.push_back(*id);
  }

  Vertex derive;
  derive.kind = VertexKind::kDerive;
  derive.tuple = head;
  derive.rule = rule;
  derive.time = t;
  derive.children = body_ids;
  derive.trigger_index = static_cast<std::int32_t>(trigger_index);
  const VertexId derive_id = add_vertex(std::move(derive));
  trigger_index_[body_ids[trigger_index]].push_back(derive_id);

  // Additional support for an already-live head: attach the new DERIVE to
  // the existing APPEAR and keep the open EXIST.
  if (auto live = live_exist(head)) {
    const VertexId appear_id = nodes_[*live].children.front();
    nodes_[appear_id].children.push_back(derive_id);
    return *live;
  }

  Vertex appear;
  appear.kind = VertexKind::kAppear;
  appear.tuple = head;
  appear.time = t;
  appear.children = {derive_id};
  const VertexId appear_id = add_vertex(std::move(appear));

  Vertex exist;
  exist.kind = VertexKind::kExist;
  exist.tuple = head;
  exist.time = t;
  exist.interval = is_event ? TimeInterval{t, t + 1}
                            : TimeInterval{t, kTimeInfinity};
  exist.children = {appear_id};
  const VertexId exist_id = add_vertex(std::move(exist));
  exist_index_[head].push_back(exist_id);
  return exist_id;
}

void ProvenanceGraph::record_base_delete(const Tuple& tuple, LogicalTime t) {
  Vertex del;
  del.kind = VertexKind::kDelete;
  del.tuple = tuple;
  del.time = t;
  const VertexId del_id = add_vertex(std::move(del));

  Vertex disappear;
  disappear.kind = VertexKind::kDisappear;
  disappear.tuple = tuple;
  disappear.time = t;
  disappear.children = {del_id};
  add_vertex(std::move(disappear));
  close_exist(tuple, t);
}

void ProvenanceGraph::record_underive(const Tuple& tuple,
                                      const std::string& rule,
                                      LogicalTime t) {
  Vertex underive;
  underive.kind = VertexKind::kUnderive;
  underive.tuple = tuple;
  underive.rule = rule;
  underive.time = t;
  const VertexId underive_id = add_vertex(std::move(underive));

  Vertex disappear;
  disappear.kind = VertexKind::kDisappear;
  disappear.tuple = tuple;
  disappear.time = t;
  disappear.children = {underive_id};
  add_vertex(std::move(disappear));
  close_exist(tuple, t);
}

std::optional<VertexId> ProvenanceGraph::exist_at(const Tuple& tuple,
                                                  LogicalTime at) const {
  auto it = exist_index_.find(tuple);
  if (it == exist_index_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (nodes_[*rit].interval.contains(at)) return *rit;
  }
  return std::nullopt;
}

std::optional<VertexId> ProvenanceGraph::latest_exist_before(
    const Tuple& tuple, LogicalTime at) const {
  auto it = exist_index_.find(tuple);
  if (it == exist_index_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (nodes_[*rit].interval.start <= at) return *rit;
  }
  return std::nullopt;
}

std::vector<VertexId> ProvenanceGraph::exists_of(const Tuple& tuple) const {
  auto it = exist_index_.find(tuple);
  return it == exist_index_.end() ? std::vector<VertexId>{} : it->second;
}

std::vector<VertexId> ProvenanceGraph::derivations_triggered_by(
    VertexId exist) const {
  auto it = trigger_index_.find(exist);
  return it == trigger_index_.end() ? std::vector<VertexId>{} : it->second;
}

}  // namespace dp
