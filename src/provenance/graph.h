// Append-only temporal provenance graph.
//
// Built incrementally while the (primary or replayed) system runs. Supports
// the lookups DiffProv needs: the EXIST vertex of a tuple alive at a given
// time, the latest derivation "triggered by" a tuple (to climb the spine
// from a seed), and tree projection (see tree.h).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "provenance/vertex.h"

namespace dp {

class ProvenanceGraph {
 public:
  /// Records INSERT -> APPEAR -> EXIST for a base tuple. Event tuples get a
  /// closed one-instant EXIST interval [t, t+1). Returns the EXIST vertex.
  VertexId record_base_insert(const Tuple& tuple, LogicalTime t,
                              bool is_event);

  /// Records DERIVE -> APPEAR -> EXIST for a derived tuple, with the DERIVE
  /// pointing at the live EXIST vertices of the body tuples. If the head is
  /// already alive (additional support), only a DERIVE vertex is added and
  /// attached to the existing APPEAR. Returns the head's EXIST vertex.
  VertexId record_derive(const Tuple& head, const std::string& rule,
                         const std::vector<Tuple>& body,
                         std::size_t trigger_index, LogicalTime t,
                         bool is_event);

  /// Records DELETE -> DISAPPEAR and closes the live EXIST interval.
  void record_base_delete(const Tuple& tuple, LogicalTime t);

  /// Records UNDERIVE -> DISAPPEAR and closes the live EXIST interval.
  void record_underive(const Tuple& tuple, const std::string& rule,
                       LogicalTime t);

  [[nodiscard]] const Vertex& vertex(VertexId id) const { return nodes_[id]; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// EXIST vertex of `tuple` alive at `at` (interval contains `at`), if any.
  [[nodiscard]] std::optional<VertexId> exist_at(const Tuple& tuple,
                                                 LogicalTime at) const;

  /// EXIST vertex of `tuple` with the latest interval start <= `at`
  /// (regardless of whether it is still alive at `at`). Used to locate event
  /// tuples, whose EXIST closes immediately.
  [[nodiscard]] std::optional<VertexId> latest_exist_before(
      const Tuple& tuple, LogicalTime at) const;

  /// All EXIST vertices of `tuple`, in insertion (time) order.
  [[nodiscard]] std::vector<VertexId> exists_of(const Tuple& tuple) const;

  /// Iterates every distinct tuple the graph has seen, with its EXIST
  /// vertices (deterministic order). Used by the reference finder.
  void for_each_tuple(
      const std::function<void(const Tuple&, const std::vector<VertexId>&)>&
          fn) const {
    for (const auto& [tuple, exists] : exist_index_) fn(tuple, exists);
  }

  /// DERIVE vertices whose *trigger* child is the EXIST vertex `exist`.
  /// Climbing these edges from a seed reaches the event the seed caused
  /// (used to re-root the bad tree after a replay round).
  [[nodiscard]] std::vector<VertexId> derivations_triggered_by(
      VertexId exist) const;

  /// The APPEAR time of the tuple behind an EXIST vertex (== interval
  /// start); the quantity compared when looking for the "last" precondition.
  [[nodiscard]] LogicalTime appear_time(VertexId exist) const {
    return nodes_[exist].interval.start;
  }

  /// Growth and query counters, maintained as plain fields on the hot path.
  struct Counters {
    std::array<std::uint64_t, 7> by_kind{};  // indexed by VertexKind
    std::uint64_t lookups = 0;  // exist_at + latest_exist_before calls
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Delta-publishes this graph's counters into `registry` as dp.prov.*
  /// (vertex counts per kind, total vertices, lookup count) plus a
  /// dp.prov.graph_vertices high-water gauge. Safe to call repeatedly; only
  /// growth since the last publish reaches the registry.
  void publish_metrics(obs::MetricsRegistry& registry);

 private:
  VertexId add_vertex(Vertex v);
  [[nodiscard]] std::optional<VertexId> live_exist(const Tuple& tuple) const;
  void close_exist(const Tuple& tuple, LogicalTime t);

  std::vector<Vertex> nodes_;
  // All EXIST vertices per tuple, in chronological order.
  std::map<Tuple, std::vector<VertexId>> exist_index_;
  // trigger EXIST -> DERIVE vertices it triggered.
  std::map<VertexId, std::vector<VertexId>> trigger_index_;
  // mutable: the const lookups count themselves.
  mutable Counters counters_;
  Counters published_;
};

}  // namespace dp
