// Append-only temporal provenance graph, stored column-wise.
//
// Built incrementally while the (primary or replayed) system runs. Supports
// the lookups DiffProv needs: the EXIST vertex of a tuple alive at a given
// time, the latest derivation "triggered by" a tuple (to climb the spine
// from a seed), and tree projection (see tree.h).
//
// Storage is struct-of-arrays: parallel kind/tuple-ref/rule-ref/time columns
// plus a CSR-style flat edge array (children appended after a vertex was
// created -- only APPEARs gaining additional support -- go to a small
// overflow table). Tuples themselves live once in the process-wide interned
// store; a vertex carries a 32-bit TupleRef, so a tuple derived 10k times
// costs 10k refs, not 10k copies. The exist-index is keyed by TupleRef
// (O(1) hash on a 4-byte key) instead of the former std::map<Tuple,...>,
// which both ordered-compared and *stored* a second copy of every tuple.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "provenance/vertex.h"
#include "store/store.h"

namespace dp {

class ProvenanceGraph {
 public:
  /// Records INSERT -> APPEAR -> EXIST for a base tuple. Event tuples get a
  /// closed one-instant EXIST interval [t, t+1). Returns the EXIST vertex.
  VertexId record_base_insert(TupleRef tuple, LogicalTime t, bool is_event);
  VertexId record_base_insert(const Tuple& tuple, LogicalTime t,
                              bool is_event) {
    return record_base_insert(intern_tuple(tuple), t, is_event);
  }

  /// Records DERIVE -> APPEAR -> EXIST for a derived tuple, with the DERIVE
  /// pointing at the live EXIST vertices of the body tuples. If the head is
  /// already alive (additional support), only a DERIVE vertex is added and
  /// attached to the existing APPEAR. Returns the head's EXIST vertex.
  VertexId record_derive(TupleRef head, NameRef rule,
                         const std::vector<TupleRef>& body,
                         std::size_t trigger_index, LogicalTime t,
                         bool is_event);
  VertexId record_derive(const Tuple& head, const std::string& rule,
                         const std::vector<Tuple>& body,
                         std::size_t trigger_index, LogicalTime t,
                         bool is_event);

  /// Records DELETE -> DISAPPEAR and closes the live EXIST interval.
  void record_base_delete(TupleRef tuple, LogicalTime t);
  void record_base_delete(const Tuple& tuple, LogicalTime t) {
    record_base_delete(intern_tuple(tuple), t);
  }

  /// Records UNDERIVE -> DISAPPEAR and closes the live EXIST interval.
  void record_underive(TupleRef tuple, NameRef rule, LogicalTime t);
  void record_underive(const Tuple& tuple, const std::string& rule,
                       LogicalTime t) {
    record_underive(intern_tuple(tuple), intern_name(rule), t);
  }

  /// Materializes the vertex view (columns + children copied into one
  /// struct). Bind to `const Vertex&` or a value; the view stays meaningful
  /// after further recording (refs are stable, children of a finished vertex
  /// only ever grow for APPEARs gaining support).
  [[nodiscard]] Vertex vertex(VertexId id) const;
  [[nodiscard]] std::size_t size() const { return kind_.size(); }

  // --- columnar accessors (no materialization; the hot-path API) ---
  [[nodiscard]] VertexKind kind(VertexId id) const { return kind_[id]; }
  [[nodiscard]] TupleRef tuple_ref(VertexId id) const { return tuple_[id]; }
  [[nodiscard]] NameRef rule_ref(VertexId id) const { return rule_[id]; }
  [[nodiscard]] LogicalTime time_of(VertexId id) const { return time_[id]; }
  [[nodiscard]] std::int32_t trigger_of(VertexId id) const {
    return trigger_[id];
  }
  [[nodiscard]] TimeInterval interval_of(VertexId id) const {
    if (kind_[id] != VertexKind::kExist) return {};
    return {time_[id], exist_end_[id]};
  }
  [[nodiscard]] std::size_t child_count(VertexId id) const {
    const auto it = extra_edges_.find(id);
    return edge_count_[id] + (it == extra_edges_.end() ? 0 : it->second.size());
  }
  /// First child (causal order). Precondition: child_count(id) > 0.
  [[nodiscard]] VertexId first_child(VertexId id) const {
    return edge_count_[id] > 0 ? edges_[edge_begin_[id]]
                               : extra_edges_.find(id)->second.front();
  }
  /// Children in causal order: the CSR span, then post-creation appends.
  template <typename Visitor>
  void for_each_child(VertexId id, Visitor&& fn) const {
    const std::uint32_t begin = edge_begin_[id];
    for (std::uint32_t i = 0; i < edge_count_[id]; ++i) fn(edges_[begin + i]);
    if (const auto it = extra_edges_.find(id); it != extra_edges_.end()) {
      for (const VertexId child : it->second) fn(child);
    }
  }
  [[nodiscard]] std::vector<VertexId> children_of(VertexId id) const;

  /// Pulls the cache lines holding `id`'s column entries (kind/tuple/time
  /// and the CSR span descriptor). Tree projection calls this for every
  /// child the moment it is discovered, so by the time the DFS pops the
  /// child its columns are already in cache. No-op on compilers without
  /// __builtin_prefetch.
  void prefetch_vertex(VertexId id) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&kind_[id]);
    __builtin_prefetch(&tuple_[id]);
    __builtin_prefetch(&time_[id]);
    __builtin_prefetch(&edge_begin_[id]);
#else
    (void)id;
#endif
  }

  /// EXIST vertex of `tuple` alive at `at` (interval contains `at`), if any.
  [[nodiscard]] std::optional<VertexId> exist_at(TupleRef tuple,
                                                 LogicalTime at) const;
  [[nodiscard]] std::optional<VertexId> exist_at(const Tuple& tuple,
                                                 LogicalTime at) const;

  /// EXIST vertex of `tuple` with the latest interval start <= `at`
  /// (regardless of whether it is still alive at `at`). Used to locate event
  /// tuples, whose EXIST closes immediately.
  [[nodiscard]] std::optional<VertexId> latest_exist_before(
      TupleRef tuple, LogicalTime at) const;
  [[nodiscard]] std::optional<VertexId> latest_exist_before(
      const Tuple& tuple, LogicalTime at) const;

  /// All EXIST vertices of `tuple`, in insertion (time) order.
  [[nodiscard]] std::vector<VertexId> exists_of(TupleRef tuple) const;
  [[nodiscard]] std::vector<VertexId> exists_of(const Tuple& tuple) const;

  /// Iterates every distinct tuple the graph has seen, with its EXIST
  /// vertices, in structural tuple order (deterministic; identical to the
  /// former std::map iteration). Used by the reference finder. `fn` is any
  /// callable taking (const Tuple&, const std::vector<VertexId>&); a
  /// template rather than std::function so tight visitors inline.
  template <typename Visitor>
  void for_each_tuple(Visitor&& fn) const {
    for (const TupleRef ref : sorted_tuples()) {
      fn(global_store().resolve(ref), exist_index_.find(ref)->second);
    }
  }

  /// DERIVE vertices whose *trigger* child is the EXIST vertex `exist`.
  /// Climbing these edges from a seed reaches the event the seed caused
  /// (used to re-root the bad tree after a replay round).
  [[nodiscard]] std::vector<VertexId> derivations_triggered_by(
      VertexId exist) const;

  /// The APPEAR time of the tuple behind an EXIST vertex (== interval
  /// start); the quantity compared when looking for the "last" precondition.
  [[nodiscard]] LogicalTime appear_time(VertexId exist) const {
    return time_[exist];
  }

  /// Resident bytes of this graph's own storage (columns, edge array,
  /// indexes). The interned tuples are shared process-wide and accounted in
  /// dp.store.bytes, not here.
  [[nodiscard]] std::size_t resident_bytes() const;

  /// Growth and query counters, maintained as plain fields on the hot path.
  struct Counters {
    std::array<std::uint64_t, 7> by_kind{};  // indexed by VertexKind
    std::uint64_t lookups = 0;  // exist_at + latest_exist_before calls
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Delta-publishes this graph's counters into `registry` as dp.prov.*
  /// (vertex counts per kind, total vertices, lookup count) plus a
  /// dp.prov.graph_vertices high-water gauge. Safe to call repeatedly; only
  /// growth since the last publish reaches the registry.
  void publish_metrics(obs::MetricsRegistry& registry);

 private:
  VertexId add_vertex(VertexKind kind, TupleRef tuple, NameRef rule,
                      LogicalTime t);
  void add_edge(VertexId child) { edges_.push_back(child); }
  /// Ranged CSR append: one insert for a whole child list (a DERIVE's body),
  /// a single capacity check + memcpy instead of a push_back per edge.
  void add_edges(const std::vector<VertexId>& children) {
    edges_.insert(edges_.end(), children.begin(), children.end());
  }
  [[nodiscard]] std::optional<VertexId> live_exist(TupleRef tuple) const;
  void close_exist(TupleRef tuple, LogicalTime t);
  [[nodiscard]] const std::vector<TupleRef>& sorted_tuples() const;

  // Vertex columns (struct of arrays; one entry per vertex).
  std::vector<VertexKind> kind_;
  std::vector<TupleRef> tuple_;
  std::vector<NameRef> rule_;
  std::vector<LogicalTime> time_;
  std::vector<LogicalTime> exist_end_;  // EXIST: interval end, else +inf
  std::vector<std::int32_t> trigger_;
  // CSR edge storage: vertex id -> [edge_begin_, +edge_count_) in edges_.
  // Vertices are closed in creation order, so each span is contiguous.
  std::vector<std::uint32_t> edge_begin_;
  std::vector<std::uint32_t> edge_count_;
  std::vector<VertexId> edges_;
  // Children attached after creation (APPEARs gaining additional support).
  std::unordered_map<VertexId, std::vector<VertexId>> extra_edges_;

  // All EXIST vertices per tuple, in chronological order.
  std::unordered_map<TupleRef, std::vector<VertexId>> exist_index_;
  // Structurally-sorted exist-index keys, rebuilt lazily when the key set
  // grew (for_each_tuple determinism).
  mutable std::vector<TupleRef> sorted_tuples_;
  // trigger EXIST -> DERIVE vertices it triggered.
  std::unordered_map<VertexId, std::vector<VertexId>> trigger_index_;
  // mutable: the const lookups count themselves.
  mutable Counters counters_;
  Counters published_;
};

}  // namespace dp
