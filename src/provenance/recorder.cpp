#include "provenance/recorder.h"

namespace dp {

void ProvenanceRecorder::on_base_insert(const Tuple& tuple, LogicalTime t,
                                        bool is_event) {
  if (!wanted(tuple)) return;
  graph_.record_base_insert(tuple, t, is_event);
}

void ProvenanceRecorder::on_base_delete(const Tuple& tuple, LogicalTime t) {
  if (!wanted(tuple)) return;
  graph_.record_base_delete(tuple, t);
}

void ProvenanceRecorder::on_derive(const Tuple& head, const std::string& rule,
                                   const std::vector<Tuple>& body,
                                   std::size_t trigger_index, LogicalTime t,
                                   bool is_event) {
  if (!wanted(head)) return;
  graph_.record_derive(head, rule, body, trigger_index, t, is_event);
}

void ProvenanceRecorder::on_underive(const Tuple& head,
                                     const std::string& rule,
                                     const Tuple& cause, LogicalTime t) {
  (void)cause;
  if (!wanted(head)) return;
  graph_.record_underive(head, rule, t);
}

}  // namespace dp
