#include "provenance/recorder.h"

namespace dp {

void ProvenanceRecorder::on_base_insert(TupleRef tuple, LogicalTime t,
                                        bool is_event) {
  if (!wanted(tuple)) return;
  graph_.record_base_insert(tuple, t, is_event);
}

void ProvenanceRecorder::on_base_delete(TupleRef tuple, LogicalTime t) {
  if (!wanted(tuple)) return;
  graph_.record_base_delete(tuple, t);
}

void ProvenanceRecorder::on_derive(TupleRef head, NameRef rule,
                                   const std::vector<TupleRef>& body,
                                   std::size_t trigger_index, LogicalTime t,
                                   bool is_event) {
  if (!wanted(head)) return;
  graph_.record_derive(head, rule, body, trigger_index, t, is_event);
}

void ProvenanceRecorder::on_underive(TupleRef head, NameRef rule,
                                     TupleRef cause, LogicalTime t) {
  (void)cause;
  if (!wanted(head)) return;
  graph_.record_underive(head, rule, t);
}

void ProvenanceRecorder::report_derivation(const Tuple& head,
                                           const std::string& rule,
                                           const std::vector<Tuple>& body,
                                           std::size_t trigger_index,
                                           LogicalTime t, bool is_event) {
  std::vector<TupleRef> body_refs;
  body_refs.reserve(body.size());
  for (const Tuple& b : body) body_refs.push_back(intern_tuple(b));
  on_derive(intern_tuple(head), intern_name(rule), body_refs, trigger_index,
            t, is_event);
}

}  // namespace dp
