// Provenance recorder (paper section 5).
//
// Three acquisition modes are supported, matching the paper:
//  * "infer"  -- attach the recorder as a RuntimeObserver on the NDlog
//                runtime; provenance is inferred from rule firings.
//  * "report" -- an instrumented imperative system (src/mapred's WordCount)
//                calls report_* directly.
//  * "external specification" -- a black-box interpreter (src/sdn's
//                trace-based OpenFlow spec, section 6.7) reconstructs
//                derivations from packet traces and reports them here.
//
// A node filter enables the *selective reconstruction* optimization from
// section 5: during replay, only provenance on relevant nodes is expanded;
// pruned dependencies appear as unexpanded boundary facts.
#pragma once

#include <functional>
#include <string>

#include "provenance/graph.h"
#include "runtime/observer.h"

namespace dp {

class ProvenanceRecorder final : public RuntimeObserver {
 public:
  ProvenanceRecorder() = default;

  [[nodiscard]] const ProvenanceGraph& graph() const { return graph_; }
  [[nodiscard]] ProvenanceGraph& graph() { return graph_; }

  /// Selective reconstruction: record only tuples for which `filter` returns
  /// true (default: everything). Dependencies of recorded derivations that
  /// were themselves filtered out appear as boundary base facts.
  void set_filter(std::function<bool(const Tuple&)> filter) {
    filter_ = std::move(filter);
  }

  /// Pauses/resumes recording entirely (used to measure logging overheads).
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // --- RuntimeObserver (the "infer" mode) ---
  void on_base_insert(TupleRef tuple, LogicalTime t, bool is_event) override;
  void on_base_delete(TupleRef tuple, LogicalTime t) override;
  void on_derive(TupleRef head, NameRef rule,
                 const std::vector<TupleRef>& body, std::size_t trigger_index,
                 LogicalTime t, bool is_event) override;
  void on_underive(TupleRef head, NameRef rule, TupleRef cause,
                   LogicalTime t) override;

  // --- direct reporting (the "report" / "external specification" modes) ---
  // Tuple-valued: instrumented imperative systems hold real tuples, so these
  // intern on entry and forward to the ref paths.
  void report_base(const Tuple& tuple, LogicalTime t, bool is_event = false) {
    on_base_insert(intern_tuple(tuple), t, is_event);
  }
  void report_delete(const Tuple& tuple, LogicalTime t) {
    on_base_delete(intern_tuple(tuple), t);
  }
  void report_derivation(const Tuple& head, const std::string& rule,
                         const std::vector<Tuple>& body,
                         std::size_t trigger_index, LogicalTime t,
                         bool is_event = false);

 private:
  /// The selective-reconstruction filter speaks Tuples (it comes from
  /// ReplayOptions); resolving a ref returns the store's canonical copy, so
  /// no materialization happens after the first query of a given tuple.
  [[nodiscard]] bool wanted(TupleRef tuple) const {
    return enabled_ && (!filter_ || filter_(resolve_tuple(tuple)));
  }

  ProvenanceGraph graph_;
  std::function<bool(const Tuple&)> filter_;
  bool enabled_ = true;
};

}  // namespace dp
