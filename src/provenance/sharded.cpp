#include "provenance/sharded.h"

#include <set>

#include "obs/obs.h"

namespace dp {

ProvenanceGraph& ShardedProvenance::shard_for(TupleRef tuple) {
  return shards_[global_store().location(tuple)];
}

void ShardedProvenance::on_base_insert(TupleRef tuple, LogicalTime t,
                                       bool is_event) {
  shard_for(tuple).record_base_insert(tuple, t, is_event);
}

void ShardedProvenance::on_base_delete(TupleRef tuple, LogicalTime t) {
  shard_for(tuple).record_base_delete(tuple, t);
}

void ShardedProvenance::on_derive(TupleRef head, NameRef rule,
                                  const std::vector<TupleRef>& body,
                                  std::size_t trigger_index, LogicalTime t,
                                  bool is_event) {
  // The head's shard records the derivation; body tuples that live on other
  // nodes appear as local stub EXISTs (record_derive creates boundaries for
  // tuples the shard never saw), which project() resolves on demand.
  shard_for(head).record_derive(head, rule, body, trigger_index, t, is_event);
}

void ShardedProvenance::on_underive(TupleRef head, NameRef rule,
                                    TupleRef cause, LogicalTime t) {
  (void)cause;
  shard_for(head).record_underive(head, rule, t);
}

const ProvenanceGraph* ShardedProvenance::shard(const NodeName& node) const {
  auto it = shards_.find(node);
  return it == shards_.end() ? nullptr : &it->second;
}

std::map<NodeName, std::size_t> ShardedProvenance::shard_sizes() const {
  std::map<NodeName, std::size_t> out;
  for (const auto& [node, graph] : shards_) {
    out.emplace(node, graph.size());
  }
  return out;
}

std::optional<ProvTree> ShardedProvenance::project(const Tuple& event) {
  DP_SPAN_CAT("dp.prov.project", "prov");
  stats_ = QueryStats{};
  const auto owner = shards_.find(event.location());
  if (owner == shards_.end()) return std::nullopt;
  const auto root = owner->second.latest_exist_before(event, kTimeInfinity);
  if (!root) return std::nullopt;

  std::set<NodeName> touched = {owner->first};
  ProvTreeBuilder builder;
  struct Frame {
    const ProvenanceGraph* graph;
    const NodeName* shard;
    VertexId id;
    ProvTree::NodeIndex parent;
  };
  std::vector<Frame> stack = {
      {&owner->second, &owner->first, *root, ProvTree::kNoNode}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    Vertex v = frame.graph->vertex(frame.id);

    // A local stub for a remote tuple: materialize the owning shard's
    // vertex on demand and continue the walk there.
    if (v.kind == VertexKind::kExist && v.node() != *frame.shard) {
      const auto remote_it = shards_.find(v.node());
      if (remote_it != shards_.end()) {
        auto remote =
            remote_it->second.exist_at(v.tuple_ref, v.interval.start);
        if (!remote) {
          remote = remote_it->second.latest_exist_before(v.tuple_ref,
                                                         v.interval.start);
        }
        if (remote) {
          ++stats_.remote_fetches;
          touched.insert(remote_it->first);
          frame.graph = &remote_it->second;
          frame.shard = &remote_it->first;
          frame.id = *remote;
          v = frame.graph->vertex(frame.id);
        }
      }
    }

    ++stats_.vertices_visited;
    const std::vector<VertexId> children = v.children;
    const ProvTree::NodeIndex index = builder.add(std::move(v), frame.parent);
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({frame.graph, frame.shard, *it, index});
    }
  }
  stats_.shards_touched = touched.size();
  // Once per projection (queries are rare next to recording): the
  // materialization cost model, aggregated across queries.
  auto& registry = obs::default_registry();
  registry.counter("dp.prov.projections").inc();
  registry.counter("dp.prov.project_vertices").inc(stats_.vertices_visited);
  registry.counter("dp.prov.remote_fetches").inc(stats_.remote_fetches);
  registry.gauge("dp.prov.shards")
      .set_max(static_cast<std::int64_t>(shards_.size()));
  return std::move(builder).take();
}

}  // namespace dp
