// Distributed (sharded) provenance storage — paper section 4.8:
//
//   "in actual operation, DiffProv is decentralized: it never performs any
//    global operation on the provenance trees ... each node in the
//    distributed system only stores the provenance of its local tuples.
//    When a node needs to invoke an operation on a vertex that is stored on
//    another node, only that part of the provenance tree is materialized on
//    demand."
//
// ShardedProvenance keeps one ProvenanceGraph per node. A derivation whose
// head travels to another node leaves *stub* EXIST vertices for its remote
// body tuples in the head's shard; tree projection follows such stubs into
// the owning shard and counts every crossing as a remote materialization.
// The projected ProvTree is bit-identical in structure to what a monolithic
// recorder would produce (verified by tests), so DiffProv runs unchanged on
// top -- only the storage and query-cost model differ.
#pragma once

#include <map>

#include "provenance/graph.h"
#include "provenance/tree.h"
#include "runtime/observer.h"

namespace dp {

class ShardedProvenance final : public RuntimeObserver {
 public:
  // --- RuntimeObserver: records route to the shard of the tuple's node ---
  void on_base_insert(TupleRef tuple, LogicalTime t, bool is_event) override;
  void on_base_delete(TupleRef tuple, LogicalTime t) override;
  void on_derive(TupleRef head, NameRef rule,
                 const std::vector<TupleRef>& body, std::size_t trigger_index,
                 LogicalTime t, bool is_event) override;
  void on_underive(TupleRef head, NameRef rule, TupleRef cause,
                   LogicalTime t) override;

  /// The shard of one node (nullptr if nothing was ever stored there).
  [[nodiscard]] const ProvenanceGraph* shard(const NodeName& node) const;

  /// Number of shards (nodes that stored anything).
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Vertices stored per shard, for the storage-distribution bench.
  [[nodiscard]] std::map<NodeName, std::size_t> shard_sizes() const;

  /// Per-query materialization cost, reset by each project() call.
  struct QueryStats {
    std::size_t vertices_visited = 0;   // total tree vertices materialized
    std::size_t remote_fetches = 0;     // shard crossings (on-demand pulls)
    std::size_t shards_touched = 0;
  };
  [[nodiscard]] const QueryStats& last_query_stats() const { return stats_; }

  /// Projects the provenance tree of `event` across shards, materializing
  /// remote subtrees on demand. Returns nullopt if the event was never
  /// recorded.
  [[nodiscard]] std::optional<ProvTree> project(const Tuple& event);

 private:
  ProvenanceGraph& shard_for(TupleRef tuple);

  std::map<NodeName, ProvenanceGraph> shards_;
  QueryStats stats_;
};

}  // namespace dp
