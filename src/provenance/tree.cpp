#include "provenance/tree.h"

#include <algorithm>

namespace dp {

ProvTree ProvTree::project(const ProvenanceGraph& graph, VertexId root) {
  ProvTree tree;
  // Iterative DFS that assigns node indices in pre-order, keeping child
  // order identical to the graph's (causal) child order.
  struct Frame {
    VertexId vertex;
    NodeIndex parent;
  };
  std::vector<Frame> stack = {{root, kNoNode}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const auto index = static_cast<NodeIndex>(tree.nodes_.size());
    tree.nodes_.push_back(Node{frame.vertex, frame.parent, {}});
    // Assemble the view straight from the graph's columns (one pass per
    // column) and prefetch each child's column entries as it is discovered
    // -- by the time the DFS pops the child, its lines are in cache.
    Vertex v;
    v.kind = graph.kind(frame.vertex);
    v.tuple_ref = graph.tuple_ref(frame.vertex);
    v.rule_ref = graph.rule_ref(frame.vertex);
    v.time = graph.time_of(frame.vertex);
    v.interval = graph.interval_of(frame.vertex);
    v.trigger_index = graph.trigger_of(frame.vertex);
    v.children.reserve(graph.child_count(frame.vertex));
    graph.for_each_child(frame.vertex, [&graph, &v](VertexId child) {
      graph.prefetch_vertex(child);
      v.children.push_back(child);
    });
    tree.vertices_.push_back(std::move(v));
    if (frame.parent != kNoNode) {
      tree.nodes_[static_cast<std::size_t>(frame.parent)].children.push_back(
          index);
    }
    // Push children in reverse so they are visited (and numbered) in order.
    const std::vector<VertexId>& children = tree.vertices_.back().children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, index});
    }
  }
  return tree;
}

std::map<VertexKind, std::size_t> ProvTree::kind_histogram() const {
  std::map<VertexKind, std::size_t> out;
  for (const Vertex& v : vertices_) {
    ++out[v.kind];
  }
  return out;
}

std::size_t ProvTree::depth() const {
  std::size_t best = 0;
  std::vector<std::size_t> depth_of(nodes_.size(), 1);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent != kNoNode) {
      depth_of[i] = depth_of[static_cast<std::size_t>(nodes_[i].parent)] + 1;
    }
    best = std::max(best, depth_of[i]);
  }
  return best;
}

std::string ProvTree::to_text(std::size_t max_nodes) const {
  std::string out;
  std::vector<std::size_t> indent(nodes_.size(), 0);
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent != kNoNode) {
      indent[i] = indent[static_cast<std::size_t>(nodes_[i].parent)] + 1;
    }
    if (max_nodes != 0 && emitted >= max_nodes) {
      out += "... (" + std::to_string(nodes_.size() - emitted) +
             " more vertexes)\n";
      break;
    }
    out += std::string(indent[i] * 2, ' ');
    out += vertices_[i].label();
    out += "\n";
    ++emitted;
  }
  return out;
}

std::string ProvTree::to_dot() const {
  std::string out = "digraph provenance {\n  rankdir=BT;\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out += "  n" + std::to_string(i) + " [label=\"" +
           vertices_[i].label() + "\"];\n";
    if (nodes_[i].parent != kNoNode) {
      out += "  n" + std::to_string(i) + " -> n" +
             std::to_string(nodes_[i].parent) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

void ProvTree::visit(const std::function<void(NodeIndex)>& fn) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    fn(static_cast<NodeIndex>(i));
  }
}

ProvTree::NodeIndex ProvTreeBuilder::add(Vertex vertex,
                                         ProvTree::NodeIndex parent) {
  const auto index = static_cast<ProvTree::NodeIndex>(tree_.nodes_.size());
  tree_.nodes_.push_back(ProvTree::Node{kNoVertex, parent, {}});
  tree_.vertices_.push_back(std::move(vertex));
  if (parent != ProvTree::kNoNode) {
    tree_.nodes_[static_cast<std::size_t>(parent)].children.push_back(index);
  }
  return index;
}

ProvTree ProvTreeBuilder::take() && { return std::move(tree_); }

}  // namespace dp
