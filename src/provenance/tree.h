// Provenance tree projection.
//
// The provenance of an event is the tree rooted at its vertex in the
// provenance graph (paper section 2.1): shared sub-DAGs are expanded, so a
// vertex reused by two derivations appears twice, exactly as in the paper's
// vertex counts (e.g. Figure 2's 201-vertex tree).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "provenance/graph.h"

namespace dp {

class ProvTree {
 public:
  /// Index of a node within this tree (not a graph VertexId).
  using NodeIndex = std::int32_t;
  static constexpr NodeIndex kNoNode = -1;

  struct Node {
    VertexId vertex = kNoVertex;
    NodeIndex parent = kNoNode;
    std::vector<NodeIndex> children;
  };

  /// Projects the tree rooted at `root` out of `graph`. The tree is
  /// self-contained: it copies the vertices it references, so it remains
  /// valid after the graph (e.g. a replay's recorder) is gone -- DiffProv
  /// routinely compares trees across independent replays.
  static ProvTree project(const ProvenanceGraph& graph, VertexId root);

  [[nodiscard]] NodeIndex root() const { return 0; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeIndex i) const {
    return nodes_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const Vertex& vertex_of(NodeIndex i) const {
    return vertices_[static_cast<std::size_t>(i)];
  }

  /// Count of nodes per vertex kind (Table 1 reports total vertex counts).
  [[nodiscard]] std::map<VertexKind, std::size_t> kind_histogram() const;

  /// Depth of the deepest leaf (root = 1).
  [[nodiscard]] std::size_t depth() const;

  /// Indented human-readable rendering (one vertex per line).
  [[nodiscard]] std::string to_text(std::size_t max_nodes = 0) const;

  /// Graphviz rendering for inspection.
  [[nodiscard]] std::string to_dot() const;

  /// Pre-order traversal.
  void visit(const std::function<void(NodeIndex)>& fn) const;

 private:
  friend class ProvTreeBuilder;
  std::vector<Node> nodes_;
  std::vector<Vertex> vertices_;  // one copy per node, aligned with nodes_
};

/// Incremental construction of a ProvTree from vertices gathered elsewhere --
/// used by the distributed (sharded) provenance store, whose trees span
/// several per-node graphs (paper section 4.8). Nodes must be added in
/// pre-order: the parent before any of its children.
class ProvTreeBuilder {
 public:
  /// Adds a node and returns its index. `parent` is kNoNode for the root.
  ProvTree::NodeIndex add(Vertex vertex, ProvTree::NodeIndex parent);

  /// Finalizes the tree (must contain at least the root).
  [[nodiscard]] ProvTree take() &&;

 private:
  ProvTree tree_;
};

}  // namespace dp
