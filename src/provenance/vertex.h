// The seven vertex types of the temporal provenance graph (paper section
// 3.2, following DTaP [35]):
//
//   INSERT / DELETE    base tuple inserted / deleted on a node at time t
//   EXIST              tuple existed on a node during [t1, t2)
//   DERIVE / UNDERIVE  tuple (under)derived via a rule at time t
//   APPEAR / DISAPPEAR tuple appeared / disappeared on a node at time t
//
// Edges run from effects to their direct causes: EXIST -> APPEAR ->
// (INSERT | DERIVE), and DERIVE -> the EXIST vertices of the rule body. The
// graph is append-only; deletions add negative vertices rather than removing
// anything (paper section 3.1).
//
// A Vertex does not own its tuple or rule name: it carries 32-bit refs into
// the process-wide interned store (store/store.h) and resolves them on
// access. ProvenanceGraph stores vertices column-wise and materializes a
// Vertex view on demand; ProvTree copies these views, which stay valid for
// the process lifetime because interned records are never freed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ndlog/tuple.h"
#include "store/store.h"
#include "util/time.h"

namespace dp {

enum class VertexKind : std::uint8_t {
  kInsert,
  kDelete,
  kExist,
  kDerive,
  kUnderive,
  kAppear,
  kDisappear,
};

std::string_view vertex_kind_name(VertexKind kind);

using VertexId = std::uint32_t;
inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);

struct Vertex {
  VertexKind kind = VertexKind::kInsert;
  TupleRef tuple_ref = kNoTupleRef;  // interned in global_store()
  NameRef rule_ref = kNoName;        // DERIVE / UNDERIVE only
  LogicalTime time = 0;              // instant kinds; for EXIST, == interval.start
  TimeInterval interval;             // EXIST only
  // Direct causes, in causal order. For DERIVE vertices these are the EXIST
  // vertices of the body tuples, in rule body order.
  std::vector<VertexId> children;
  // For DERIVE: index into `children` of the body tuple whose appearance
  // triggered the rule (the paper's "last precondition"; section 4.2).
  std::int32_t trigger_index = -1;

  /// The canonical interned tuple (resolved lazily; one shared copy per
  /// distinct tuple, stable for the process lifetime).
  [[nodiscard]] const Tuple& tuple() const { return resolve_tuple(tuple_ref); }
  /// The rule name; empty for non-(UN)DERIVE kinds.
  [[nodiscard]] const std::string& rule() const {
    return resolve_name(rule_ref);
  }
  [[nodiscard]] const NodeName& node() const {
    return global_store().location(tuple_ref);
  }
  [[nodiscard]] std::string label() const;
};

}  // namespace dp
