// The seven vertex types of the temporal provenance graph (paper section
// 3.2, following DTaP [35]):
//
//   INSERT / DELETE    base tuple inserted / deleted on a node at time t
//   EXIST              tuple existed on a node during [t1, t2)
//   DERIVE / UNDERIVE  tuple (under)derived via a rule at time t
//   APPEAR / DISAPPEAR tuple appeared / disappeared on a node at time t
//
// Edges run from effects to their direct causes: EXIST -> APPEAR ->
// (INSERT | DERIVE), and DERIVE -> the EXIST vertices of the rule body. The
// graph is append-only; deletions add negative vertices rather than removing
// anything (paper section 3.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ndlog/tuple.h"
#include "util/time.h"

namespace dp {

enum class VertexKind : std::uint8_t {
  kInsert,
  kDelete,
  kExist,
  kDerive,
  kUnderive,
  kAppear,
  kDisappear,
};

std::string_view vertex_kind_name(VertexKind kind);

using VertexId = std::uint32_t;
inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);

struct Vertex {
  VertexKind kind = VertexKind::kInsert;
  Tuple tuple;
  std::string rule;        // DERIVE / UNDERIVE only
  LogicalTime time = 0;    // instant kinds; for EXIST, == interval.start
  TimeInterval interval;   // EXIST only
  // Direct causes, in causal order. For DERIVE vertices these are the EXIST
  // vertices of the body tuples, in rule body order.
  std::vector<VertexId> children;
  // For DERIVE: index into `children` of the body tuple whose appearance
  // triggered the rule (the paper's "last precondition"; section 4.2).
  std::int32_t trigger_index = -1;

  [[nodiscard]] const NodeName& node() const { return tuple.location(); }
  [[nodiscard]] std::string label() const;
};

}  // namespace dp
