#include "replay/checkpoint.h"

#include <stdexcept>

#include "replay/event_log.h"

namespace dp {

Checkpoint Checkpoint::capture(const Engine& engine) {
  Checkpoint checkpoint;
  checkpoint.captured_at_ = engine.now();
  for (const auto& [table_name, decl] : engine.program().tables()) {
    if (decl.kind != TupleKind::kBase || decl.is_event()) continue;
    for (Tuple& t : engine.live_tuples(table_name)) {
      checkpoint.tuples_.push_back(std::move(t));
    }
  }
  return checkpoint;
}

void Checkpoint::schedule_into(Engine& engine, LogicalTime at) const {
  for (const Tuple& t : tuples_) {
    engine.schedule_insert(t, at);
  }
}

void Checkpoint::serialize(std::ostream& out) const {
  EventLog log;
  for (const Tuple& t : tuples_) {
    log.append_insert(t, captured_at_);
  }
  log.serialize(out);
}

Checkpoint Checkpoint::deserialize(std::istream& in) {
  // Reuses the event-log record format; EventLog::deserialize reports
  // truncation/corruption with the offending byte offset. On top of that, a
  // checkpoint is a *snapshot*: every record must be an insert, and all
  // records must share one capture time -- anything else is not a checkpoint
  // that `capture` could have produced, so reject it instead of restoring a
  // half-meaningful state.
  const EventLog log = EventLog::deserialize(in);
  Checkpoint checkpoint;
  std::uint64_t offset = 0;
  for (std::size_t i = 0; i < log.records().size(); ++i) {
    const LogRecord& record = log.records()[i];
    if (record.op != LogRecord::Op::kInsert) {
      throw std::runtime_error(
          "checkpoint: record " + std::to_string(i) +
          " is a delete (byte offset " + std::to_string(offset) +
          "); checkpoints hold only live base tuples");
    }
    if (i > 0 && record.time != checkpoint.captured_at_) {
      throw std::runtime_error(
          "checkpoint: record " + std::to_string(i) + " captured at t=" +
          std::to_string(record.time) + " but the checkpoint was captured at t=" +
          std::to_string(checkpoint.captured_at_) + " (byte offset " +
          std::to_string(offset) + ")");
    }
    checkpoint.captured_at_ = record.time;
    checkpoint.tuples_.push_back(record.tuple());
    offset += EventLog::record_size(record);
  }
  return checkpoint;
}

}  // namespace dp
