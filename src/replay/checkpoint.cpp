#include "replay/checkpoint.h"

#include "replay/event_log.h"

namespace dp {

Checkpoint Checkpoint::capture(const Engine& engine) {
  Checkpoint checkpoint;
  checkpoint.captured_at_ = engine.now();
  for (const auto& [table_name, decl] : engine.program().tables()) {
    if (decl.kind != TupleKind::kBase || decl.is_event()) continue;
    for (Tuple& t : engine.live_tuples(table_name)) {
      checkpoint.tuples_.push_back(std::move(t));
    }
  }
  return checkpoint;
}

void Checkpoint::schedule_into(Engine& engine, LogicalTime at) const {
  for (const Tuple& t : tuples_) {
    engine.schedule_insert(t, at);
  }
}

void Checkpoint::serialize(std::ostream& out) const {
  EventLog log;
  for (const Tuple& t : tuples_) {
    log.append_insert(t, captured_at_);
  }
  log.serialize(out);
}

Checkpoint Checkpoint::deserialize(std::istream& in) {
  const EventLog log = EventLog::deserialize(in);
  Checkpoint checkpoint;
  for (const LogRecord& record : log.records()) {
    checkpoint.captured_at_ = record.time;
    checkpoint.tuples_.push_back(record.tuple);
  }
  return checkpoint;
}

}  // namespace dp
