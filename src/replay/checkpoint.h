// Checkpoints of base state (paper section 4.8: "a log of tuple updates
// along with some checkpoints, so that the system state at any point in the
// past can be efficiently reconstructed").
//
// A checkpoint captures all *base* tuples live at capture time; restoring
// re-injects them into a fresh engine, whose derivation rules reconverge to
// the same derived state deterministically. Replaying the log suffix after
// the checkpoint then reconstructs any later point, without paying for the
// full history. The ablation bench compares suffix-replay-from-checkpoint
// against full replay.
#pragma once

#include <iosfwd>
#include <vector>

#include "runtime/engine.h"

namespace dp {

class Checkpoint {
 public:
  /// Captures every live base tuple of `engine` (derived state is excluded:
  /// it is a deterministic function of base state and reconverges).
  static Checkpoint capture(const Engine& engine);

  /// Schedules all captured tuples into `engine` at time `at`.
  void schedule_into(Engine& engine, LogicalTime at) const;

  [[nodiscard]] const std::vector<Tuple>& base_tuples() const {
    return tuples_;
  }
  [[nodiscard]] LogicalTime captured_at() const { return captured_at_; }

  /// Binary round-trip, reusing the event-log record format.
  void serialize(std::ostream& out) const;
  static Checkpoint deserialize(std::istream& in);

 private:
  std::vector<Tuple> tuples_;
  LogicalTime captured_at_ = 0;
};

}  // namespace dp
