#include "replay/event_log.h"

#include "ndlog/parser.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace dp {

namespace {

void put_u8(std::ostream& out, std::uint8_t v) {
  out.put(static_cast<char>(v));
}

void put_u16(std::ostream& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
  put_u8(out, static_cast<std::uint8_t>(v));
}

void put_u32(std::ostream& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

void put_u64(std::ostream& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_string(std::ostream& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

// The daemon feeds these decoders bytes straight off the wire, so every
// failure must be a clean exception naming the offending byte offset --
// never an assert, an unbounded allocation, or silently-partial state.
constexpr std::uint32_t kMaxNameLen = 1u << 16;    // table names
constexpr std::uint32_t kMaxStringLen = 1u << 24;  // string field payloads
constexpr std::uint16_t kMaxArity = 1024;
constexpr std::uint32_t kMaxRefTable = 1u << 26;   // distinct tuples per log

// Ref-table format marker; the legacy flat format starts with an op byte
// (0/1), so the first byte disambiguates.
constexpr char kMagic[4] = {'D', 'P', 'L', '2'};

/// Byte-counting reader over an istream: every primitive read advances
/// `offset`, and every failure reports the offset where decoding stopped.
struct ByteReader {
  std::istream& in;
  std::uint64_t offset = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("event log: " + what + " at byte offset " +
                             std::to_string(offset));
  }

  std::uint8_t u8() {
    const int c = in.get();
    if (c == EOF) fail("truncated input");
    ++offset;
    return static_cast<std::uint8_t>(c);
  }

  std::uint16_t u16() {
    const auto hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }

  std::uint32_t u32() {
    const auto hi = u16();
    return (static_cast<std::uint32_t>(hi) << 16) | u16();
  }

  std::uint64_t u64() {
    const auto hi = u32();
    return (static_cast<std::uint64_t>(hi) << 32) | u32();
  }

  std::string string(std::uint32_t max_len) {
    const std::uint32_t size = u32();
    if (size > max_len) {
      fail("implausible string length " + std::to_string(size) +
           " (limit " + std::to_string(max_len) + ")");
    }
    std::string s(size, '\0');
    in.read(s.data(), static_cast<std::streamsize>(size));
    if (in.gcount() != static_cast<std::streamsize>(size)) {
      offset += static_cast<std::uint64_t>(in.gcount());
      fail("truncated string");
    }
    offset += size;
    return s;
  }

  [[nodiscard]] bool at_eof() { return in.peek() == EOF; }
};

void put_value(std::ostream& out, const Value& v) {
  put_u8(out, static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt:
      put_u64(out, static_cast<std::uint64_t>(v.as_int()));
      break;
    case ValueType::kDouble: {
      double d = v.as_double();
      std::uint64_t bits = 0;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      put_u64(out, bits);
      break;
    }
    case ValueType::kString:
      put_string(out, v.as_string());
      break;
    case ValueType::kIp:
      put_u32(out, v.as_ip().value());
      break;
    case ValueType::kPrefix:
      put_u32(out, v.as_prefix().base().value());
      put_u8(out, static_cast<std::uint8_t>(v.as_prefix().length()));
      break;
  }
}

Value get_value(ByteReader& reader) {
  const std::uint64_t tag_offset = reader.offset;
  const std::uint8_t raw_tag = reader.u8();
  const auto type = static_cast<ValueType>(raw_tag);
  switch (type) {
    case ValueType::kInt:
      return Value(static_cast<std::int64_t>(reader.u64()));
    case ValueType::kDouble: {
      const std::uint64_t bits = reader.u64();
      double d = 0;
      __builtin_memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case ValueType::kString:
      return Value(reader.string(kMaxStringLen));
    case ValueType::kIp:
      return Value(Ipv4(reader.u32()));
    case ValueType::kPrefix: {
      const Ipv4 base(reader.u32());
      const std::uint8_t length = reader.u8();
      if (length > 32) {
        reader.fail("prefix length " + std::to_string(length) + " exceeds 32");
      }
      return Value(IpPrefix(base, length));
    }
  }
  throw std::runtime_error("event log: corrupt value tag " +
                           std::to_string(raw_tag) + " at byte offset " +
                           std::to_string(tag_offset));
}

std::uint64_t value_size(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
    case ValueType::kDouble:
      return 1 + 8;
    case ValueType::kString:
      return 1 + 4 + v.as_string().size();
    case ValueType::kIp:
      return 1 + 4;
    case ValueType::kPrefix:
      return 1 + 5;
  }
  return 1;
}

/// Ref-table entry size: table name (len-prefixed) + field count + fields.
std::uint64_t tuple_payload_size(const Tuple& tuple) {
  std::uint64_t size = 4 + tuple.table().size() + 2;
  for (const Value& v : tuple.values()) size += value_size(v);
  return size;
}

void put_tuple(std::ostream& out, const Tuple& tuple) {
  put_string(out, tuple.table());
  put_u16(out, static_cast<std::uint16_t>(tuple.arity()));
  for (const Value& v : tuple.values()) put_value(out, v);
}

Tuple get_tuple(ByteReader& reader) {
  std::string table = reader.string(kMaxNameLen);
  const std::uint16_t arity = reader.u16();
  if (arity > kMaxArity) {
    reader.fail("implausible arity " + std::to_string(arity));
  }
  std::vector<Value> values;
  values.reserve(arity);
  for (std::uint16_t i = 0; i < arity; ++i) {
    values.push_back(get_value(reader));
  }
  return Tuple(std::move(table), std::move(values));
}

// op + time + ref-table index.
constexpr std::uint64_t kRecordFixedSize = 1 + 8 + 4;

}  // namespace

std::uint64_t EventLog::record_size(const LogRecord& record) {
  return 1 + 8 + tuple_payload_size(record.tuple());
}

void EventLog::append(LogRecord record) {
  const auto [it, inserted] = ref_index_.emplace(
      record.tuple_ref, static_cast<std::uint32_t>(ref_table_.size()));
  if (inserted) {
    ref_table_.push_back(record.tuple_ref);
    byte_size_ += tuple_payload_size(record.tuple());
  }
  byte_size_ += kRecordFixedSize;
  records_.push_back(record);
}

void EventLog::append_insert(const Tuple& tuple, LogicalTime t) {
  append(LogRecord{LogRecord::Op::kInsert, t, intern_tuple(tuple)});
}

void EventLog::append_delete(const Tuple& tuple, LogicalTime t) {
  append(LogRecord{LogRecord::Op::kDelete, t, intern_tuple(tuple)});
}

void EventLog::append_insert(TupleRef tuple, LogicalTime t) {
  append(LogRecord{LogRecord::Op::kInsert, t, tuple});
}

void EventLog::append_delete(TupleRef tuple, LogicalTime t) {
  append(LogRecord{LogRecord::Op::kDelete, t, tuple});
}

void EventLog::serialize(std::ostream& out) const {
  out.write(kMagic, sizeof(kMagic));
  put_u32(out, static_cast<std::uint32_t>(ref_table_.size()));
  for (const TupleRef ref : ref_table_) {
    put_tuple(out, resolve_tuple(ref));
  }
  for (const LogRecord& record : records_) {
    put_u8(out, static_cast<std::uint8_t>(record.op));
    put_u64(out, static_cast<std::uint64_t>(record.time));
    put_u32(out, ref_index_.find(record.tuple_ref)->second);
  }
}

std::string EventLog::to_text() const {
  std::string out;
  for (const LogRecord& record : records_) {
    out += record.op == LogRecord::Op::kInsert ? "+ " : "- ";
    out += record.tuple().to_string();
    out += " @ " + std::to_string(record.time) + "\n";
  }
  return out;
}

EventLog EventLog::from_text(std::string_view text) {
  EventLog log;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    std::string_view line = text.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;
    // Strip comments and whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;
    auto fail = [line_no](const std::string& what) -> std::runtime_error {
      return std::runtime_error("event log text, line " +
                                std::to_string(line_no) + ": " + what);
    };
    LogRecord record;
    if (line.front() == '+') {
      record.op = LogRecord::Op::kInsert;
    } else if (line.front() == '-') {
      record.op = LogRecord::Op::kDelete;
    } else {
      throw fail("expected '+' or '-'");
    }
    line.remove_prefix(1);
    const std::size_t at = line.rfind('@');
    if (at == std::string_view::npos) throw fail("missing '@ <time>'");
    // The '@' of the timestamp is the one after the closing paren.
    const std::size_t paren = line.rfind(')');
    if (paren == std::string_view::npos || at < paren) {
      throw fail("missing '@ <time>' after the tuple");
    }
    try {
      record.time = std::stoll(std::string(line.substr(at + 1)));
    } catch (...) {
      throw fail("malformed timestamp");
    }
    // Anything between the tuple and the '@' must be whitespace, or the
    // record is ambiguous (e.g. two tuples on one line).
    for (char c : line.substr(paren + 1, at - paren - 1)) {
      if (c != ' ' && c != '\t') throw fail("trailing content after tuple");
    }
    try {
      record.tuple_ref = intern_tuple(parse_tuple(line.substr(0, paren + 1)));
    } catch (const std::exception& e) {
      throw fail(e.what());
    }
    log.append(record);
  }
  return log;
}

EventLog EventLog::deserialize(std::istream& in) {
  EventLog log;
  ByteReader reader{in};
  if (reader.at_eof()) return log;

  if (in.peek() == kMagic[0]) {
    // Ref-table format: magic, table of distinct tuples, then records.
    for (char expected : kMagic) {
      const std::uint64_t magic_offset = reader.offset;
      const std::uint8_t b = reader.u8();
      if (b != static_cast<std::uint8_t>(expected)) {
        throw std::runtime_error("event log: corrupt format magic at byte "
                                 "offset " +
                                 std::to_string(magic_offset));
      }
    }
    const std::uint32_t count = reader.u32();
    if (count > kMaxRefTable) {
      reader.fail("implausible ref-table count " + std::to_string(count));
    }
    std::vector<TupleRef> refs;
    refs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      refs.push_back(intern_tuple(get_tuple(reader)));
    }
    while (!reader.at_eof()) {
      const std::uint64_t record_offset = reader.offset;
      const std::uint8_t op = reader.u8();
      if (op > static_cast<std::uint8_t>(LogRecord::Op::kDelete)) {
        throw std::runtime_error("event log: corrupt op byte " +
                                 std::to_string(op) + " at byte offset " +
                                 std::to_string(record_offset));
      }
      const auto time = static_cast<LogicalTime>(reader.u64());
      const std::uint32_t index = reader.u32();
      if (index >= count) {
        throw std::runtime_error(
            "event log: ref-table index " + std::to_string(index) +
            " out of range (table holds " + std::to_string(count) +
            ") at byte offset " + std::to_string(record_offset));
      }
      log.append(LogRecord{static_cast<LogRecord::Op>(op), time,
                           refs[index]});
    }
    return log;
  }

  // Legacy flat format: every record carries the full tuple payload.
  while (!reader.at_eof()) {
    LogRecord record;
    const std::uint64_t record_offset = reader.offset;
    const std::uint8_t op = reader.u8();
    if (op > static_cast<std::uint8_t>(LogRecord::Op::kDelete)) {
      throw std::runtime_error("event log: corrupt op byte " +
                               std::to_string(op) + " at byte offset " +
                               std::to_string(record_offset));
    }
    record.op = static_cast<LogRecord::Op>(op);
    record.time = static_cast<LogicalTime>(reader.u64());
    record.tuple_ref = intern_tuple(get_tuple(reader));
    log.append(record);
  }
  return log;
}

}  // namespace dp
