// Base-event log with binary serialization, stored as interned refs.
//
// The paper's logging engine (section 5) supports two approaches; the one
// used in the evaluation is *query-time*: at runtime only base events are
// written down (for packets: fixed-size header + timestamp, cf. section
// 6.5), and derivations are reconstructed by deterministic replay when a
// diagnostic query arrives. The log is also the unit whose growth rate
// Figures 5 and 6 measure, so records have a well-defined serialized size.
//
// Storage: a record is (op, time, TupleRef) -- 16 bytes however wide the
// tuple is -- with the tuple itself interned once in the process-wide store
// (store/store.h). The wire format matches: a *ref table* of the distinct
// tuples (serialized once each, in first-appearance order) followed by the
// record stream as 4-byte table indexes, so a config tuple toggled 1k times
// costs its payload once plus 1k fixed-size records. `deserialize` also
// reads the legacy flat format (tuple payload repeated per record) that
// pre-ref-table logs were written in.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "ndlog/tuple.h"
#include "store/store.h"
#include "util/time.h"

namespace dp {

struct LogRecord {
  enum class Op : std::uint8_t { kInsert = 0, kDelete = 1 };
  Op op = Op::kInsert;
  LogicalTime time = 0;
  TupleRef tuple_ref = kNoTupleRef;  // interned in global_store()

  LogRecord() = default;
  LogRecord(Op op_in, LogicalTime time_in, TupleRef ref)
      : op(op_in), time(time_in), tuple_ref(ref) {}
  LogRecord(Op op_in, LogicalTime time_in, const Tuple& tuple)
      : op(op_in), time(time_in), tuple_ref(intern_tuple(tuple)) {}

  /// The store's canonical copy of the logged tuple (shared, never freed).
  [[nodiscard]] const Tuple& tuple() const { return resolve_tuple(tuple_ref); }

  // Refs are interned in one shared store, so ref equality is structural
  // tuple equality.
  friend bool operator==(const LogRecord&, const LogRecord&) = default;
};

/// Append-only in-memory log with a byte-accurate serialized form.
class EventLog {
 public:
  void append(LogRecord record);
  void append_insert(const Tuple& tuple, LogicalTime t);
  void append_delete(const Tuple& tuple, LogicalTime t);
  void append_insert(TupleRef tuple, LogicalTime t);
  void append_delete(TupleRef tuple, LogicalTime t);

  [[nodiscard]] const std::vector<LogRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  /// The distinct tuples this log references, in first-appearance order --
  /// the serialized ref table.
  [[nodiscard]] const std::vector<TupleRef>& ref_table() const {
    return ref_table_;
  }

  /// Serialized size in bytes (maintained incrementally; equals the length
  /// of serialize()'s output).
  [[nodiscard]] std::uint64_t byte_size() const { return byte_size_; }

  /// Binary round-trip. Format: magic "DPL2", u32 ref-table count, the
  /// distinct tuples once each (table-name len-prefixed, field-count(2),
  /// fields as tag + payload), then per record op(1) time(8) ref-index(4).
  /// deserialize also accepts the legacy format (no magic; the full tuple
  /// payload inlined in every record).
  void serialize(std::ostream& out) const;
  static EventLog deserialize(std::istream& in);

  /// Human-readable text form, one record per line:
  ///   + policyRoute(@ctl, "sw2", 100, 4.3.2.0/24, "sw6") @ 0
  ///   - policyRoute(@ctl, "sw2", 100, 4.3.2.0/24, "sw6") @ 1050
  /// '#' starts a comment; blank lines are skipped. Round-trips with
  /// from_text. Used by the CLI debugger's --log files.
  [[nodiscard]] std::string to_text() const;
  static EventLog from_text(std::string_view text);

  /// Standalone serialized size of a single record -- op + time + the full
  /// tuple payload, i.e. the legacy per-record wire cost. This is the
  /// paper-accurate unit the logging-rate figures (5/6) bill per event,
  /// independent of ref-table sharing within a particular log.
  static std::uint64_t record_size(const LogRecord& record);

 private:
  std::vector<LogRecord> records_;
  // Ref table: first-appearance order, with the inverse index used to
  // maintain byte_size_ incrementally and to serialize without a scan.
  std::vector<TupleRef> ref_table_;
  std::unordered_map<TupleRef, std::uint32_t> ref_index_;
  std::uint64_t byte_size_ = 8;  // magic + ref-table count
};

}  // namespace dp
