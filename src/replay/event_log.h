// Base-event log with binary serialization.
//
// The paper's logging engine (section 5) supports two approaches; the one
// used in the evaluation is *query-time*: at runtime only base events are
// written down (for packets: fixed-size header + timestamp, cf. section
// 6.5), and derivations are reconstructed by deterministic replay when a
// diagnostic query arrives. The log is also the unit whose growth rate
// Figures 5 and 6 measure, so records have a well-defined serialized size.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ndlog/tuple.h"
#include "util/time.h"

namespace dp {

struct LogRecord {
  enum class Op : std::uint8_t { kInsert = 0, kDelete = 1 };
  Op op = Op::kInsert;
  LogicalTime time = 0;
  Tuple tuple;

  friend bool operator==(const LogRecord&, const LogRecord&) = default;
};

/// Append-only in-memory log with a byte-accurate serialized form.
class EventLog {
 public:
  void append(LogRecord record);
  void append_insert(Tuple tuple, LogicalTime t);
  void append_delete(Tuple tuple, LogicalTime t);

  [[nodiscard]] const std::vector<LogRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  /// Serialized size in bytes (maintained incrementally; equals the length
  /// of serialize()'s output).
  [[nodiscard]] std::uint64_t byte_size() const { return byte_size_; }

  /// Binary round-trip. Format: per record, op(1) time(8) table-name
  /// (len-prefixed) field-count(2) fields (tag + payload).
  void serialize(std::ostream& out) const;
  static EventLog deserialize(std::istream& in);

  /// Human-readable text form, one record per line:
  ///   + policyRoute(@ctl, "sw2", 100, 4.3.2.0/24, "sw6") @ 0
  ///   - policyRoute(@ctl, "sw2", 100, 4.3.2.0/24, "sw6") @ 1050
  /// '#' starts a comment; blank lines are skipped. Round-trips with
  /// from_text. Used by the CLI debugger's --log files.
  [[nodiscard]] std::string to_text() const;
  static EventLog from_text(std::string_view text);

  /// Serialized size of a single record (used by the logging-rate benches).
  static std::uint64_t record_size(const LogRecord& record);

 private:
  std::vector<LogRecord> records_;
  std::uint64_t byte_size_ = 0;
};

}  // namespace dp
