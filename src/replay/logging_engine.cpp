#include "replay/logging_engine.h"

namespace dp {

void LoggingEngine::on_base_insert(TupleRef tuple, LogicalTime t,
                                   bool is_event) {
  if (is_event && !logs_events_at(global_store().location(tuple))) return;
  log_.append_insert(tuple, t);
}

void LoggingEngine::on_base_delete(TupleRef tuple, LogicalTime t) {
  log_.append_delete(tuple, t);
}

void LoggingEngine::on_derive(TupleRef head, NameRef rule,
                              const std::vector<TupleRef>& body,
                              std::size_t trigger_index, LogicalTime t,
                              bool is_event) {
  (void)body;
  (void)trigger_index;
  (void)is_event;
  if (mode_ != LoggingMode::kRuntime) return;
  // Runtime mode writes a derivation record: head tuple + rule name. We
  // account its size but keep it out of the replayable base log.
  derivation_bytes_ +=
      EventLog::record_size(LogRecord{LogRecord::Op::kInsert, t, head}) +
      resolve_name(rule).size();
}

}  // namespace dp
