#include "replay/logging_engine.h"

namespace dp {

void LoggingEngine::on_base_insert(const Tuple& tuple, LogicalTime t,
                                   bool is_event) {
  if (is_event && !logs_events_at(tuple.location())) return;
  log_.append_insert(tuple, t);
}

void LoggingEngine::on_base_delete(const Tuple& tuple, LogicalTime t) {
  log_.append_delete(tuple, t);
}

void LoggingEngine::on_derive(const Tuple& head, const std::string& rule,
                              const std::vector<Tuple>& body,
                              std::size_t trigger_index, LogicalTime t,
                              bool is_event) {
  (void)body;
  (void)trigger_index;
  (void)is_event;
  if (mode_ != LoggingMode::kRuntime) return;
  // Runtime mode writes a derivation record: head tuple + rule name. We
  // account its size but keep it out of the replayable base log.
  LogRecord record{LogRecord::Op::kInsert, t, head};
  derivation_bytes_ += EventLog::record_size(record) + rule.size();
}

}  // namespace dp
