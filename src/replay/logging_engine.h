// The logging engine (paper section 5): a RuntimeObserver that writes the
// event log used for deterministic replay.
//
// Two approaches, as in the paper:
//  * kQueryTime (default, used by the paper's evaluation): log base events
//    only; provenance is reconstructed at query time via replay.
//  * kRuntime: additionally log every derivation, trading log volume for
//    query latency (no replay needed to answer queries).
//
// A node filter restricts logging to designated nodes; the paper logs only
// at *border switches* (section 6.5) because interior derivations can be
// reconstructed by replaying from the edge.
#pragma once

#include <set>
#include <string>

#include "replay/event_log.h"
#include "runtime/observer.h"

namespace dp {

enum class LoggingMode : std::uint8_t { kQueryTime, kRuntime };

class LoggingEngine final : public RuntimeObserver {
 public:
  explicit LoggingEngine(LoggingMode mode = LoggingMode::kQueryTime)
      : mode_(mode) {}

  /// Restrict logging of *event* tuples (packets) to these nodes -- the
  /// border switches. Non-event base tuples (configuration) are always
  /// logged, since replay needs them. Empty set = log events everywhere.
  void set_border_nodes(std::set<NodeName> nodes) {
    border_nodes_ = std::move(nodes);
  }

  [[nodiscard]] const EventLog& log() const { return log_; }
  [[nodiscard]] EventLog take_log() { return std::move(log_); }

  /// Bytes of derivation records written in kRuntime mode (kept separately
  /// so the base log stays replayable on its own).
  [[nodiscard]] std::uint64_t derivation_bytes() const {
    return derivation_bytes_;
  }

  // RuntimeObserver:
  void on_base_insert(TupleRef tuple, LogicalTime t, bool is_event) override;
  void on_base_delete(TupleRef tuple, LogicalTime t) override;
  void on_derive(TupleRef head, NameRef rule,
                 const std::vector<TupleRef>& body, std::size_t trigger_index,
                 LogicalTime t, bool is_event) override;

 private:
  [[nodiscard]] bool logs_events_at(const NodeName& node) const {
    return border_nodes_.empty() || border_nodes_.count(node) != 0;
  }

  LoggingMode mode_;
  std::set<NodeName> border_nodes_;
  EventLog log_;
  std::uint64_t derivation_bytes_ = 0;
};

}  // namespace dp
