#include "replay/replay_engine.h"

namespace dp {

std::string DeltaOp::to_string() const {
  return (kind == Kind::kInsert ? "+ " : "- ") + tuple.to_string() + " @" +
         std::to_string(at);
}

std::string delta_to_string(const Delta& delta) {
  std::string out;
  for (const DeltaOp& op : delta) {
    out += "  " + op.to_string() + "\n";
  }
  return out;
}

ReplayResult replay(const Program& program, const Topology& topology,
                    const EventLog& log, const Delta& delta,
                    const ReplayOptions& options) {
  ReplayResult result;
  result.engine = std::make_unique<Engine>(program, options.engine_config);
  result.recorder = std::make_unique<ProvenanceRecorder>();
  if (options.provenance_filter) {
    result.recorder->set_filter(options.provenance_filter);
  }
  for (const Topology::Link& link : topology.links) {
    result.engine->add_link(link.a, link.b, link.delay);
  }
  result.engine->add_observer(result.recorder.get());

  for (const LogRecord& record : log.records()) {
    if (record.op == LogRecord::Op::kInsert) {
      result.engine->schedule_insert(record.tuple, record.time);
    } else {
      result.engine->schedule_delete(record.tuple, record.time);
    }
  }
  for (const DeltaOp& op : delta) {
    if (op.kind == DeltaOp::Kind::kInsert) {
      result.engine->schedule_insert(op.tuple, op.at);
    } else {
      result.engine->schedule_delete(op.tuple, op.at);
    }
  }

  if (options.until == kTimeInfinity) {
    result.engine->run();
  } else {
    result.engine->run_until(options.until);
  }
  return result;
}

}  // namespace dp
