#include "replay/replay_engine.h"

#include "obs/obs.h"

namespace dp {

std::string DeltaOp::to_string() const {
  return (kind == Kind::kInsert ? "+ " : "- ") + tuple.to_string() + " @" +
         std::to_string(at);
}

std::string delta_to_string(const Delta& delta) {
  std::string out;
  for (const DeltaOp& op : delta) {
    out += "  " + op.to_string() + "\n";
  }
  return out;
}

ReplayResult replay(const Program& program, const Topology& topology,
                    const EventLog& log, const Delta& delta,
                    const ReplayOptions& options) {
  DP_SPAN_CAT("dp.replay.replay", "replay");
  obs::default_registry().counter("dp.replay.replays").inc();
  ReplayResult result;
  result.engine = std::make_unique<Engine>(program, options.engine_config);
  result.recorder = std::make_unique<ProvenanceRecorder>();
  if (options.provenance_filter) {
    result.recorder->set_filter(options.provenance_filter);
  }
  for (const Topology::Link& link : topology.links) {
    result.engine->add_link(link.a, link.b, link.delay);
  }
  result.engine->add_observer(result.recorder.get());
  result.metrics_observer =
      std::make_unique<MetricsObserver>(result.engine->metrics());
  result.engine->add_observer(result.metrics_observer.get());

  for (const LogRecord& record : log.records()) {
    if (record.op == LogRecord::Op::kInsert) {
      result.engine->schedule_insert(record.tuple(), record.time);
    } else {
      result.engine->schedule_delete(record.tuple(), record.time);
    }
  }
  for (const DeltaOp& op : delta) {
    if (op.kind == DeltaOp::Kind::kInsert) {
      result.engine->schedule_insert(op.tuple, op.at);
    } else {
      result.engine->schedule_delete(op.tuple, op.at);
    }
  }

  if (options.until == kTimeInfinity) {
    result.engine->run();
  } else {
    result.engine->run_until(options.until);
  }
  // The recorder's graph publishes alongside the engine: into the shared
  // registry when the caller wired one up, else the process-wide one.
  obs::MetricsRegistry& registry = options.engine_config.metrics != nullptr
                                       ? *options.engine_config.metrics
                                       : obs::default_registry();
  result.recorder->graph().publish_metrics(registry);
  return result;
}

}  // namespace dp
