// Deterministic replay (paper sections 5 and 4.6/4.8).
//
// Given a program, a topology, and the base-event log, `replay` re-executes
// the system and reconstructs its provenance graph. A Delta -- the set of
// base-tuple changes DiffProv is experimenting with -- can be injected into
// the replayed stream; this is the "clone the state, apply the change, roll
// forward" operation of section 4.6, realized as replay (the clone never
// touches the running system). Delta operations are applied "shortly before
// they are needed": the caller sets each op's time.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "provenance/recorder.h"
#include "replay/event_log.h"
#include "runtime/engine.h"
#include "runtime/metrics_observer.h"

namespace dp {

/// One experimental change to a mutable base tuple (insert or delete).
struct DeltaOp {
  enum class Kind : std::uint8_t { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  Tuple tuple;
  LogicalTime at = 0;

  [[nodiscard]] std::string to_string() const;
};

/// A set of changes Δ_{B→G} (paper Definition 1).
using Delta = std::vector<DeltaOp>;

std::string delta_to_string(const Delta& delta);

/// Static description of the simulated network: links with delays.
struct Topology {
  struct Link {
    NodeName a;
    NodeName b;
    LogicalTime delay;
  };
  std::vector<Link> links;

  void connect(NodeName a, NodeName b, LogicalTime delay = 10) {
    links.push_back({std::move(a), std::move(b), delay});
  }
};

struct ReplayResult {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<ProvenanceRecorder> recorder;
  /// Per-table activity counters (dp.runtime.table.*), published into the
  /// engine's metrics registry; kept alive alongside the observing engine.
  std::unique_ptr<MetricsObserver> metrics_observer;

  [[nodiscard]] const ProvenanceGraph& graph() const {
    return recorder->graph();
  }
};

struct ReplayOptions {
  /// Selective reconstruction: record provenance only for tuples passing
  /// this filter (see ProvenanceRecorder::set_filter).
  std::function<bool(const Tuple&)> provenance_filter;
  /// Stop the replay at this logical time (default: run to quiescence).
  LogicalTime until = kTimeInfinity;
  EngineConfig engine_config;
};

/// Replays `log` (merged with `delta`) over a fresh engine and returns the
/// engine plus the reconstructed provenance.
ReplayResult replay(const Program& program, const Topology& topology,
                    const EventLog& log, const Delta& delta = {},
                    const ReplayOptions& options = {});

}  // namespace dp
