#include "runtime/engine.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/logging.h"

namespace dp {

namespace {

/// Never-enabled sink for spans gated off by EngineConfig::trace_rule_firings
/// (Span activates on tracer.enabled(), so pointing it here keeps the gate to
/// one branch without a second code path).
obs::Tracer& disabled_tracer() {
  static obs::Tracer off;
  return off;
}

/// Span + latency sample for one rule firing. Inert -- two relaxed loads and
/// branches -- unless the firing is actually traced; safe across the fire
/// functions' many early returns (RAII).
class FiringScope {
 public:
  FiringScope(bool want, const std::string& label, obs::Histogram* hist)
      : span_(want ? obs::default_tracer() : disabled_tracer(), label,
              "rule") {
    if (span_.active()) {
      hist_ = hist;
      start_us_ = obs::monotonic_micros();
    }
  }
  ~FiringScope() {
    if (hist_ != nullptr) {
      hist_->observe(double(obs::monotonic_micros() - start_us_));
    }
  }
  FiringScope(const FiringScope&) = delete;
  FiringScope& operator=(const FiringScope&) = delete;

 private:
  obs::Span span_;
  obs::Histogram* hist_ = nullptr;
  std::uint64_t start_us_ = 0;
};

}  // namespace

Engine::Engine(Program program, EngineConfig config)
    : program_(std::move(program)), config_(config) {
  program_.validate();
  for (const auto& [name, decl] : program_.tables()) {
    listeners_.emplace(name, program_.rules_listening_to(name));
  }
  if (config_.use_join_plans) plans_ = compile_rule_plans(program_);

  metrics_ = config_.metrics;
  if (metrics_ == nullptr) {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
  const auto& rules = program_.rules();
  rule_firings_.assign(rules.size(), 0);
  rule_firings_published_.assign(rules.size(), 0);
  rule_span_labels_.reserve(rules.size());
  rule_metric_names_.reserve(rules.size());
  for (const Rule& rule : rules) {
    rule_span_labels_.push_back("rule:" + rule.name);
    rule_metric_names_.push_back("dp.runtime.rule_firings." +
                                 obs::sanitize_metric_segment(rule.name));
  }
  fire_hist_ = &metrics_->histogram("dp.runtime.rule_fire_us");
}

void Engine::add_link(const NodeName& a, const NodeName& b,
                      LogicalTime delay) {
  links_[{a, b}] = delay;
  links_[{b, a}] = delay;
}

void Engine::add_observer(RuntimeObserver* observer) {
  observers_.push_back(observer);
}

LogicalTime Engine::delivery_delay(const NodeName& from,
                                   const NodeName& to) const {
  if (from == to) return config_.derive_delay;
  auto it = links_.find({from, to});
  return it == links_.end() ? config_.default_link_delay : it->second;
}

Table& Engine::table_for(const Tuple& tuple) {
  auto& node_tables = state_[tuple.location()];
  auto it = node_tables.find(tuple.table());
  if (it == node_tables.end()) {
    it = node_tables.emplace(tuple.table(), Table(program_.table(tuple.table())))
             .first;
  }
  return it->second;
}

const Table* Engine::find_table(const NodeName& node,
                                const std::string& table) const {
  auto node_it = state_.find(node);
  if (node_it == state_.end()) return nullptr;
  auto it = node_it->second.find(table);
  return it == node_it->second.end() ? nullptr : &it->second;
}

bool Engine::is_live(const Tuple& tuple) const {
  const Table* table = find_table(tuple.location(), tuple.table());
  return table != nullptr && table->is_live(tuple);
}

bool Engine::existed_at(const Tuple& tuple, LogicalTime at) const {
  const Table* table = find_table(tuple.location(), tuple.table());
  return table != nullptr && table->existed_at(tuple, at);
}

std::vector<Tuple> Engine::live_tuples(const std::string& table) const {
  std::vector<Tuple> out;
  for (const auto& [node, tables] : state_) {
    auto it = tables.find(table);
    if (it == tables.end()) continue;
    it->second.for_each_live([&out](const Tuple& t) { out.push_back(t); });
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeName> Engine::nodes() const {
  std::vector<NodeName> out;
  out.reserve(state_.size());
  for (const auto& [node, tables] : state_) out.push_back(node);
  return out;
}

void Engine::push_event(Event event) {
  event.seq = kInternalSeqBand | next_seq_++;
  enqueue(std::move(event));
}

void Engine::push_external_event(Event event) {
  event.seq = next_external_seq_++;
  enqueue(std::move(event));
}

void Engine::enqueue(Event event) {
  queue_.push_back(std::move(event));
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
  if (queue_.size() > queue_depth_max_) queue_depth_max_ = queue_.size();
}

Engine::Event Engine::pop_event() {
  assert(!queue_.empty());
  std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
  Event event = std::move(queue_.back());
  queue_.pop_back();
  return event;
}

void Engine::schedule_insert(Tuple tuple, LogicalTime at) {
  const TableDecl& decl = program_.table(tuple.table());
  if (decl.kind != TupleKind::kBase) {
    throw ProgramError("external insert into derived table " + tuple.table());
  }
  if (tuple.arity() != decl.arity) {
    throw ProgramError("arity mismatch inserting into " + tuple.table());
  }
  if (!tuple.values().front().is_string()) {
    throw ProgramError("tuple location (field 0) must be a node name string");
  }
  if (at < now_) throw ProgramError("insert scheduled in the past");
  Event event;
  event.time = at;
  event.kind = Event::Kind::kBaseInsert;
  event.tuple = std::move(tuple);
  push_external_event(std::move(event));
}

void Engine::schedule_delete(Tuple tuple, LogicalTime at) {
  const TableDecl& decl = program_.table(tuple.table());
  if (decl.kind != TupleKind::kBase) {
    throw ProgramError("external delete from derived table " + tuple.table());
  }
  if (decl.is_event()) {
    throw ProgramError("cannot delete event tuple " + tuple.table());
  }
  if (at < now_) throw ProgramError("delete scheduled in the past");
  Event event;
  event.time = at;
  event.kind = Event::Kind::kBaseDelete;
  event.tuple = std::move(tuple);
  push_external_event(std::move(event));
}

void Engine::run() {
  DP_SPAN_CAT("dp.runtime.run", "runtime");
  while (!queue_.empty()) {
    const Event event = pop_event();
    process(event);
  }
  publish_metrics();
}

void Engine::run_until(LogicalTime until) {
  DP_SPAN_CAT("dp.runtime.run_until", "runtime");
  while (!queue_.empty() && queue_.front().time <= until) {
    const Event event = pop_event();
    process(event);
  }
  now_ = std::max(now_, until);
  publish_metrics();
}

void Engine::process(const Event& event) {
  assert(event.time >= now_);
  now_ = event.time;
  ++stats_.events_processed;
  if (config_.max_events != 0 && stats_.events_processed > config_.max_events) {
    throw ProgramError(
        "event budget exceeded (" + std::to_string(config_.max_events) +
        "): the program is probably deriving forever (e.g. a forwarding "
        "loop); raise EngineConfig::max_events if the workload is genuinely "
        "this large");
  }
  switch (event.kind) {
    case Event::Kind::kBaseInsert:
    case Event::Kind::kDerivedInsert:
      process_insert(event);
      break;
    case Event::Kind::kAggregate:
      process_aggregate(event);
      break;
    case Event::Kind::kBaseDelete:
      process_delete(event.tuple, event.time);
      break;
  }
}

void Engine::process_aggregate(const Event& event) {
  const Rule* rule = program_.find_rule(event.rule);
  if (rule == nullptr || !rule->agg) return;  // defensive: validated upstream
  // Resolve the aggregate column (the head argument that is the agg var).
  std::size_t agg_index = event.tuple.arity();
  for (std::size_t i = 0; i < rule->head.args.size(); ++i) {
    if (rule->head.args[i]->kind == Expr::Kind::kVar &&
        rule->head.args[i]->var == rule->agg->var) {
      agg_index = i;
      break;
    }
  }
  if (agg_index == event.tuple.arity()) return;

  Table& table = table_for(event.tuple);
  const Tuple* previous = table.live_by_key(table.key_of(event.tuple));
  const std::int64_t old_value =
      previous != nullptr && previous->at(agg_index).is_int()
          ? previous->at(agg_index).as_int()
          : 0;

  Event resolved;
  resolved.time = event.time;
  resolved.kind = Event::Kind::kDerivedInsert;
  resolved.rule = event.rule;
  resolved.trigger_index = event.trigger_index;
  resolved.body = event.body;
  // The previous aggregate value joins the provenance as the tail of the
  // contribution chain.
  if (previous != nullptr) resolved.body.push_back(*previous);
  resolved.tuple =
      event.tuple.with_field(agg_index, Value(old_value + event.agg_delta));
  process_insert(resolved);
}

void Engine::process_insert(const Event& event) {
  const Tuple& tuple = event.tuple;
  const TableDecl& decl = program_.table(tuple.table());
  const bool is_base = event.kind == Event::Kind::kBaseInsert;
  const bool is_event = decl.is_event();

  const bool notify = !observers_.empty();
  bool newly_appeared = true;
  if (!is_event) {
    Table& table = table_for(tuple);
    const Table::InsertResult result = table.insert(tuple, event.time);
    if (result.displaced) {
      // Key upsert displaced a live row: observers see its disappearance
      // first, and its dependents are underived at the same timestamp. The
      // displaced row may legitimately be absent from the store (recorded
      // with no observers attached); then nothing can reference it either.
      ++stats_.base_deletes;
      const TupleRef displaced_ref =
          notify ? intern_tuple(*result.displaced)
                 : global_store().find(*result.displaced);
      for (RuntimeObserver* obs : observers_) {
        obs->on_base_delete(displaced_ref, event.time);
      }
      if (displaced_ref != kNoTupleRef) {
        retract_dependents_of(displaced_ref, event.time);
      }
    }
    newly_appeared = result.inserted;
  }

  // Notify observers and maintain support bookkeeping. Tuples are interned
  // once here; every observer (recorder, event log, metrics) and the support
  // maps share the resulting refs.
  if (is_base) {
    ++stats_.base_inserts;
    if (notify) {
      const TupleRef ref = intern_tuple(tuple);
      for (RuntimeObserver* obs : observers_) {
        obs->on_base_insert(ref, event.time, is_event);
      }
    }
  } else {
    ++stats_.derivations;
    // Derivations triggered by an event tuple are one-shot: the event is
    // gone the instant after, so the head is a fact about something that
    // happened (e.g. "this packet was delivered") and is not subject to
    // incremental view maintenance. Only derivations whose entire body is
    // materialized state participate in support counting.
    bool event_triggered = false;
    for (const Tuple& b : event.body) {
      if (program_.table(b.table()).is_event()) {
        event_triggered = true;
        break;
      }
    }
    const bool track_support = !is_event && !event_triggered;
    if (notify || track_support) {
      const TupleRef head_ref = intern_tuple(tuple);
      const NameRef rule_ref = intern_name(event.rule);
      body_refs_scratch_.clear();
      body_refs_scratch_.reserve(event.body.size());
      for (const Tuple& b : event.body) {
        body_refs_scratch_.push_back(intern_tuple(b));
      }
      for (RuntimeObserver* obs : observers_) {
        obs->on_derive(head_ref, rule_ref, body_refs_scratch_,
                       event.trigger_index, event.time, is_event);
      }
      if (track_support) {
        const std::size_t record_id = records_.size();
        records_.push_back(DerivRecord{head_ref, rule_ref, true});
        records_by_head_[head_ref].push_back(record_id);
        for (const TupleRef b : body_refs_scratch_) {
          records_by_body_[b].push_back(record_id);
        }
        ++support_[head_ref];
      }
    }
  }

  if (!newly_appeared && !is_event) return;  // no new appearance: no firing

  // Delta evaluation: the new tuple may trigger any rule with a body atom
  // over its table. Plans fire in (rule, atom) order -- the exact order of
  // the reference evaluator's nested loop below.
  if (config_.use_join_plans) {
    if (auto it = plans_.find(tuple.table()); it != plans_.end()) {
      for (const RulePlan& plan : it->second) {
        fire_rule_planned(plan, tuple, event.time);
      }
    }
    return;
  }
  for (std::size_t rule_index : listeners_.at(tuple.table())) {
    const Rule& rule = program_.rules()[rule_index];
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      if (rule.body[i].table == tuple.table()) {
        fire_rule(rule, i, tuple, event.time);
      }
    }
  }
}

void Engine::process_delete(const Tuple& tuple, LogicalTime t) {
  Table& table = table_for(tuple);
  if (!table.remove(tuple, t)) {
    DP_WARN << "external delete of non-live tuple " << tuple.to_string();
    return;
  }
  ++stats_.base_deletes;
  const TupleRef ref = observers_.empty() ? global_store().find(tuple)
                                          : intern_tuple(tuple);
  for (RuntimeObserver* obs : observers_) {
    obs->on_base_delete(ref, t);
  }
  // Absent from the store means nothing was ever recorded against it, so no
  // derivation record can reference it either.
  if (ref != kNoTupleRef) retract_dependents_of(ref, t);
}

void Engine::retract_dependents_of(TupleRef tuple, LogicalTime t) {
  // Deactivate this tuple's own derivation records (it is gone). Its support
  // entry is erased outright -- leaving a zero behind would grow the map by
  // one dead entry per underived tuple for the lifetime of the engine.
  if (auto it = records_by_head_.find(tuple); it != records_by_head_.end()) {
    for (std::size_t id : it->second) records_[id].active = false;
    support_.erase(tuple);
  }
  // Derivations that consumed the tuple lose one unit of support.
  auto it = records_by_body_.find(tuple);
  if (it == records_by_body_.end()) return;
  // Copy: retraction can recurse and grow/invalidate the map.
  const std::vector<std::size_t> record_ids = it->second;
  for (std::size_t id : record_ids) {
    DerivRecord& record = records_[id];
    if (!record.active) continue;
    record.active = false;
    auto support_it = support_.find(record.head);
    if (support_it == support_.end() || support_it->second <= 0) continue;
    if (--support_it->second > 0) continue;
    support_.erase(support_it);
    // Support exhausted: underive the head now (same timestamp).
    const Tuple& head = resolve_tuple(record.head);
    Table& head_table = table_for(head);
    if (!head_table.remove(head, t)) continue;
    ++stats_.underivations;
    for (RuntimeObserver* obs : observers_) {
      obs->on_underive(record.head, record.rule, tuple, t);
    }
    retract_dependents_of(record.head, t);
  }
}

bool Engine::unify(const BodyAtom& atom, const Tuple& tuple,
                   Bindings& bindings) {
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    const AtomArg& arg = atom.args[i];
    const Value& v = tuple.at(i);
    if (arg.is_var) {
      auto [it, inserted] = bindings.emplace(arg.var, v);
      if (!inserted && !(it->second == v)) return false;
    } else if (!(arg.constant == v)) {
      return false;
    }
  }
  return true;
}

void Engine::fire_rule(const Rule& rule, std::size_t atom_index,
                       const Tuple& arrival, LogicalTime t) {
  const std::size_t rule_index =
      static_cast<std::size_t>(&rule - program_.rules().data());
  FiringScope firing_scope(config_.trace_rule_firings,
                           rule_span_labels_[rule_index], fire_hist_);
  const NodeName& node = arrival.location();

  // Depth-first join over the remaining body atoms, in body order.
  std::vector<Bindings> complete;
  Bindings initial;
  if (!unify(rule.body[atom_index], arrival, initial)) return;

  struct Frame {
    std::size_t atom = 0;
    Bindings bindings;
  };
  std::vector<Frame> stack = {{0, std::move(initial)}};
  std::vector<std::pair<std::string, Value>> new_bindings;
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    // Skip the already-bound trigger atom.
    while (frame.atom == atom_index) ++frame.atom;
    if (frame.atom >= rule.body.size()) {
      complete.push_back(std::move(frame.bindings));
      continue;
    }
    const BodyAtom& atom = rule.body[frame.atom];
    const Table* table = find_table(node, atom.table);
    if (table == nullptr) continue;
    table->for_each_live([&](const Tuple& candidate) {
      // Two-phase unification: validate against the current bindings and
      // collect the new variable bindings *before* paying for a map copy.
      // With selective rules (e.g. constant join keys) almost every
      // candidate fails cheaply here.
      ++stats_.tuples_scanned;
      new_bindings.clear();
      bool ok = true;
      for (std::size_t i = 0; ok && i < atom.args.size(); ++i) {
        const AtomArg& arg = atom.args[i];
        const Value& v = candidate.at(i);
        if (!arg.is_var) {
          ok = arg.constant == v;
          continue;
        }
        auto bound = frame.bindings.find(arg.var);
        if (bound != frame.bindings.end()) {
          ok = bound->second == v;
          continue;
        }
        for (const auto& [var, value] : new_bindings) {
          if (var == arg.var) {
            ok = value == v;
            break;
          }
        }
        if (ok) new_bindings.emplace_back(arg.var, v);
      }
      if (!ok) return;
      ++stats_.tuples_matched;
      Bindings extended = frame.bindings;
      for (auto& [var, value] : new_bindings) {
        extended.emplace(std::move(var), std::move(value));
      }
      stack.push_back({frame.atom + 1, std::move(extended)});
    });
  }
  if (complete.empty()) return;

  // Assignments and constraints.
  std::vector<Bindings> satisfying;
  for (Bindings& bindings : complete) {
    bool ok = true;
    try {
      for (const Assignment& assign : rule.assigns) {
        bindings[assign.var] = eval_expr(*assign.expr, bindings);
      }
      for (const ExprPtr& constraint : rule.constraints) {
        if (!is_truthy(eval_expr(*constraint, bindings))) {
          ok = false;
          break;
        }
      }
    } catch (const EvalError& e) {
      if (config_.strict_eval) throw;
      DP_WARN << "rule " << rule.name << ": constraint error: " << e.what();
      ok = false;
    }
    if (ok) satisfying.push_back(std::move(bindings));
  }
  if (satisfying.empty()) return;

  // argmax selection (OpenFlow priority semantics): keep only the binding
  // maximizing the declared variable; deterministic tie-break by binding
  // content.
  if (rule.argmax_var) {
    const Bindings* best = nullptr;
    for (const Bindings& bindings : satisfying) {
      if (best == nullptr) {
        best = &bindings;
        continue;
      }
      const Value& current = bindings.at(*rule.argmax_var);
      const Value& best_value = best->at(*rule.argmax_var);
      if (best_value < current ||
          (!(current < best_value) && bindings < *best)) {
        best = &bindings;
      }
    }
    std::vector<Bindings> winner = {*best};
    satisfying = std::move(winner);
  }

  // Fire: evaluate the head and schedule its arrival. For aggregate rules
  // the aggregate column gets a placeholder; the value is resolved when the
  // event is processed (serialized, so contributions never race).
  for (const Bindings& bindings : satisfying) {
    std::vector<Value> head_values;
    head_values.reserve(rule.head.args.size());
    try {
      for (const ExprPtr& arg : rule.head.args) {
        if (rule.agg && arg->kind == Expr::Kind::kVar &&
            arg->var == rule.agg->var) {
          head_values.emplace_back(std::int64_t{0});  // placeholder
          continue;
        }
        head_values.push_back(eval_expr(*arg, bindings));
      }
    } catch (const EvalError& e) {
      if (config_.strict_eval) throw;
      DP_WARN << "rule " << rule.name << ": head error: " << e.what();
      continue;
    }
    if (!head_values.front().is_string()) {
      DP_WARN << "rule " << rule.name << ": head location is not a node name";
      continue;
    }
    Tuple head(rule.head.table, std::move(head_values));
    const NodeName& target = head.location();
    if (target != node) {
      ++stats_.remote_messages;
      ++remote_by_node_[target];
    }
    ++rule_firings_[rule_index];

    // Reconstruct the body instantiation, in body order, for provenance.
    Event event;
    event.time = t + delivery_delay(node, target);
    event.kind = rule.agg ? Event::Kind::kAggregate
                          : Event::Kind::kDerivedInsert;
    if (rule.agg) {
      event.agg_delta =
          rule.agg->kind == AggSpec::Kind::kCount
              ? 1
              : bindings.at(rule.agg->sum_var).as_int();
    }
    event.rule = rule.name;
    event.trigger_index = atom_index;
    event.body.reserve(rule.body.size());
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      if (i == atom_index) {
        event.body.push_back(arrival);
        continue;
      }
      std::vector<Value> values;
      values.reserve(rule.body[i].args.size());
      for (const AtomArg& arg : rule.body[i].args) {
        values.push_back(arg.is_var ? bindings.at(arg.var) : arg.constant);
      }
      event.body.emplace_back(rule.body[i].table, std::move(values));
    }
    event.tuple = std::move(head);
    push_event(std::move(event));
  }
}

void Engine::fire_rule_planned(const RulePlan& plan, const Tuple& arrival,
                               LogicalTime t) {
  const Rule& rule = program_.rules()[plan.rule_index];
  FiringScope firing_scope(config_.trace_rule_firings,
                           rule_span_labels_[plan.rule_index], fire_hist_);
  const NodeName& node = arrival.location();

  // Unify the arriving tuple against the trigger atom.
  Regs regs(plan.slot_count);
  for (const ColOp& op : plan.trigger_ops) {
    const Value& v = arrival.at(op.col);
    switch (op.kind) {
      case ColOp::Kind::kConst:
        if (!(op.constant == v)) return;
        break;
      case ColOp::Kind::kCheck:
        if (!(regs[op.slot] == v)) return;
        break;
      case ColOp::Kind::kBind:
        regs[op.slot] = v;
        break;
    }
  }

  // Depth-first join over the planned steps. Registers are written exactly
  // once per root-to-leaf path before any read (static binding discipline),
  // so backtracking needs no save/restore; complete matches snapshot the
  // register file.
  struct Match {
    Regs regs;
    std::vector<const Tuple*> chosen;  // per original body index
  };
  std::vector<Match> matches;
  std::vector<const Tuple*> chosen(rule.body.size(), nullptr);
  chosen[plan.trigger_atom] = &arrival;

  auto descend = [&](auto&& self, std::size_t depth) -> void {
    if (depth == plan.steps.size()) {
      matches.push_back(Match{regs, chosen});
      return;
    }
    const JoinStep& step = plan.steps[depth];
    const Table* table = find_table(node, step.table);
    if (table == nullptr) return;
    const auto try_candidate = [&](const Tuple& candidate,
                                   const std::vector<ColOp>& ops) {
      ++stats_.tuples_scanned;
      for (const ColOp& op : ops) {
        const Value& v = candidate.at(op.col);
        switch (op.kind) {
          case ColOp::Kind::kConst:
            if (!(op.constant == v)) return;
            break;
          case ColOp::Kind::kCheck:
            if (!(regs[op.slot] == v)) return;
            break;
          case ColOp::Kind::kBind:
            regs[op.slot] = v;
            break;
        }
      }
      ++stats_.tuples_matched;
      chosen[step.body_index] = &candidate;
      self(self, depth + 1);
    };
    if (step.probe_cols.empty()) {
      // Nothing bound: full scan (rare -- a cross join).
      table->for_each_live(
          [&](const Tuple& candidate) { try_candidate(candidate, step.ops); });
      return;
    }
    // Indexed probe: build the key from constants and bound registers, then
    // enumerate only the matching bucket. Residual ops cover the columns the
    // key does not pin (fresh variables, intra-atom repeats).
    std::vector<Value> probe_key;
    probe_key.reserve(plan.steps[depth].probe.size());
    for (const ColOp& op : step.probe) {
      probe_key.push_back(op.kind == ColOp::Kind::kConst ? op.constant
                                                         : regs[op.slot]);
    }
    ++stats_.index_probes;
    table->for_each_live_matching(step.probe_cols, probe_key,
                                  [&](const Tuple& candidate) {
                                    try_candidate(candidate, step.residual);
                                  });
  };
  descend(descend, 0);
  if (matches.empty()) return;

  // Restore the reference evaluator's enumeration order. The reference DFS
  // (fire_rule) expands body atoms in body order and pops candidates from a
  // stack, which yields matches in reverse-lexicographic order of the
  // chosen rows' scan positions (= their key projections) per body atom.
  // Sorting the reordered join's matches by that same key, descending,
  // makes both evaluators fire identical event sequences.
  if (matches.size() > 1) {
    std::vector<std::vector<Value>> sort_keys(matches.size());
    for (std::size_t m = 0; m < matches.size(); ++m) {
      std::vector<Value>& key = sort_keys[m];
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        if (i == plan.trigger_atom) continue;
        const Tuple& row = *matches[m].chosen[i];
        const ColumnSet& cols = plan.body_key_cols[i];
        if (cols.empty()) {
          key.insert(key.end(), row.values().begin(), row.values().end());
        } else {
          for (std::size_t col : cols) key.push_back(row.at(col));
        }
      }
    }
    std::vector<std::size_t> order(matches.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&sort_keys](std::size_t a, std::size_t b) {
                return sort_keys[b] < sort_keys[a];  // descending
              });
    std::vector<Match> sorted;
    sorted.reserve(matches.size());
    for (std::size_t m : order) sorted.push_back(std::move(matches[m]));
    matches = std::move(sorted);
  }

  // Assignments and constraints (slot-compiled).
  std::vector<std::size_t> satisfying;
  for (std::size_t m = 0; m < matches.size(); ++m) {
    Regs& r = matches[m].regs;
    bool ok = true;
    try {
      for (const RulePlan::CompiledAssign& assign : plan.assigns) {
        r[assign.slot] = eval_expr(assign.expr, r);
      }
      for (const SlotExpr& constraint : plan.constraints) {
        if (!is_truthy(eval_expr(constraint, r))) {
          ok = false;
          break;
        }
      }
    } catch (const EvalError& e) {
      if (config_.strict_eval) throw;
      DP_WARN << "rule " << rule.name << ": constraint error: " << e.what();
      ok = false;
    }
    if (ok) satisfying.push_back(m);
  }
  if (satisfying.empty()) return;

  // argmax selection; ties break exactly like the reference evaluator's
  // Bindings-map comparison (register values in variable-name order).
  if (plan.argmax_slot) {
    const auto regs_less = [&plan](const Regs& a, const Regs& b) {
      for (std::size_t slot : plan.slots_by_name) {
        if (a[slot] < b[slot]) return true;
        if (b[slot] < a[slot]) return false;
      }
      return false;
    };
    std::size_t best = satisfying.front();
    for (std::size_t i = 1; i < satisfying.size(); ++i) {
      const Regs& current = matches[satisfying[i]].regs;
      const Regs& best_regs = matches[best].regs;
      const Value& current_value = current[*plan.argmax_slot];
      const Value& best_value = best_regs[*plan.argmax_slot];
      if (best_value < current_value ||
          (!(current_value < best_value) && regs_less(current, best_regs))) {
        best = satisfying[i];
      }
    }
    satisfying = {best};
  }

  // Fire: evaluate the head and schedule its arrival. The provenance body
  // is the chosen rows themselves, in original body order.
  for (std::size_t m : satisfying) {
    const Match& match = matches[m];
    std::vector<Value> head_values;
    head_values.reserve(plan.head_args.size());
    try {
      for (const SlotExpr& arg : plan.head_args) {
        head_values.push_back(eval_expr(arg, match.regs));
      }
    } catch (const EvalError& e) {
      if (config_.strict_eval) throw;
      DP_WARN << "rule " << rule.name << ": head error: " << e.what();
      continue;
    }
    if (!head_values.front().is_string()) {
      DP_WARN << "rule " << rule.name << ": head location is not a node name";
      continue;
    }
    Tuple head(rule.head.table, std::move(head_values));
    const NodeName& target = head.location();
    if (target != node) {
      ++stats_.remote_messages;
      ++remote_by_node_[target];
    }
    ++rule_firings_[plan.rule_index];

    Event event;
    event.time = t + delivery_delay(node, target);
    event.kind = rule.agg ? Event::Kind::kAggregate
                          : Event::Kind::kDerivedInsert;
    if (rule.agg) {
      event.agg_delta = rule.agg->kind == AggSpec::Kind::kCount
                            ? 1
                            : match.regs[*plan.agg_sum_slot].as_int();
    }
    event.rule = rule.name;
    event.trigger_index = plan.trigger_atom;
    event.body.reserve(rule.body.size());
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      event.body.push_back(*match.chosen[i]);
    }
    event.tuple = std::move(head);
    push_event(std::move(event));
  }
}

void Engine::publish_metrics() {
  // Delta-publish: only the growth since the last publish reaches the
  // registry, so a shared registry (EngineConfig::metrics) aggregates
  // correctly across engines and repeated runs.
  const auto publish =
      [this](const char* name, std::uint64_t cur, std::uint64_t& seen) {
        if (cur > seen) {
          metrics_->counter(name).inc(cur - seen);
          seen = cur;
        }
      };
  publish("dp.runtime.base_inserts", stats_.base_inserts,
          published_.base_inserts);
  publish("dp.runtime.base_deletes", stats_.base_deletes,
          published_.base_deletes);
  publish("dp.runtime.derivations", stats_.derivations,
          published_.derivations);
  publish("dp.runtime.underivations", stats_.underivations,
          published_.underivations);
  publish("dp.runtime.remote_messages", stats_.remote_messages,
          published_.remote_messages);
  publish("dp.runtime.events_processed", stats_.events_processed,
          published_.events_processed);
  publish("dp.runtime.index_probes", stats_.index_probes,
          published_.index_probes);
  publish("dp.runtime.tuples_scanned", stats_.tuples_scanned,
          published_.tuples_scanned);
  publish("dp.runtime.tuples_matched", stats_.tuples_matched,
          published_.tuples_matched);
  for (std::size_t i = 0; i < rule_firings_.size(); ++i) {
    if (rule_firings_[i] > rule_firings_published_[i]) {
      metrics_->counter(rule_metric_names_[i])
          .inc(rule_firings_[i] - rule_firings_published_[i]);
      rule_firings_published_[i] = rule_firings_[i];
    }
  }
  for (const auto& [node, count] : remote_by_node_) {
    std::uint64_t& seen = remote_by_node_published_[node];
    if (count > seen) {
      metrics_
          ->counter("dp.runtime.remote_messages_to." +
                    obs::sanitize_metric_segment(node))
          .inc(count - seen);
      seen = count;
    }
  }
  metrics_->gauge("dp.runtime.queue_depth")
      .set(static_cast<std::int64_t>(queue_.size()));
  metrics_->gauge("dp.runtime.queue_depth_max")
      .set_max(static_cast<std::int64_t>(queue_depth_max_));
}

void Engine::reset_stats() {
  stats_ = Stats{};
  published_ = Stats{};
  std::fill(rule_firings_.begin(), rule_firings_.end(), 0);
  std::fill(rule_firings_published_.begin(), rule_firings_published_.end(), 0);
  remote_by_node_.clear();
  remote_by_node_published_.clear();
  queue_depth_max_ = queue_.size();
  // A private registry belongs to this engine alone, so wipe it too; a
  // shared one keeps its cumulative totals (the published_ baselines above
  // make sure this engine re-contributes from zero, not negatively).
  if (own_metrics_ != nullptr) own_metrics_->reset();
}

}  // namespace dp
