#include "runtime/engine.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/logging.h"

namespace dp {

namespace {

/// Never-enabled sink for spans gated off by EngineConfig::trace_rule_firings
/// (Span activates on tracer.enabled(), so pointing it here keeps the gate to
/// one branch without a second code path).
obs::Tracer& disabled_tracer() {
  static obs::Tracer off;
  return off;
}

/// Span + latency sample for one rule firing. Inert -- two relaxed loads and
/// branches -- unless the firing is actually traced; safe across the fire
/// functions' many early returns (RAII).
class FiringScope {
 public:
  FiringScope(bool want, const std::string& label, obs::Histogram* hist,
              obs::QuantileSketch* sketch)
      : span_(want ? obs::default_tracer() : disabled_tracer(), label,
              "rule") {
    if (span_.active()) {
      hist_ = hist;
      sketch_ = sketch;
      start_us_ = obs::monotonic_micros();
    }
  }
  ~FiringScope() {
    if (hist_ != nullptr) {
      const auto us = double(obs::monotonic_micros() - start_us_);
      hist_->observe(us);
      if (sketch_ != nullptr) sketch_->observe(us);
    }
  }
  FiringScope(const FiringScope&) = delete;
  FiringScope& operator=(const FiringScope&) = delete;

 private:
  obs::Span span_;
  obs::Histogram* hist_ = nullptr;
  obs::QuantileSketch* sketch_ = nullptr;
  std::uint64_t start_us_ = 0;
};

}  // namespace

Engine::Engine(Program program, EngineConfig config)
    : program_(std::move(program)), config_(config) {
  program_.validate();
  for (const auto& [name, decl] : program_.tables()) {
    listeners_.emplace(name, program_.rules_listening_to(name));
  }
  if (config_.use_join_plans) plans_ = compile_rule_plans(program_);
  if (config_.use_join_plans && config_.use_batch_exec) {
    // Batch-formation metadata: per trigger table, the set of tables its
    // plans read (probe or scan), as a bitmask over table ordinals. An event
    // whose table is in the running union of the masks of already-admitted
    // deltas cannot join the batch -- their firings must not see its tuple.
    std::uint32_t ord = 0;
    for (const auto& [name, decl] : program_.tables()) {
      table_ord_.emplace(name, ord++);
    }
    mask_words_ = (table_ord_.size() + 63) / 64;
    probe_masks_.assign(table_ord_.size() * mask_words_, 0);
    for (const auto& [trigger_table, plans] : plans_) {
      std::uint64_t* row = probe_masks_.data() +
                           table_ord_.at(trigger_table) * mask_words_;
      for (const RulePlan& plan : plans) {
        for (const JoinStep& step : plan.steps) {
          const std::uint32_t bit = table_ord_.at(step.table);
          row[bit / 64] |= std::uint64_t{1} << (bit % 64);
        }
      }
    }
    forbidden_scratch_.assign(mask_words_, 0);
  }

  metrics_ = config_.metrics;
  if (metrics_ == nullptr) {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
  const auto& rules = program_.rules();
  rule_firings_.assign(rules.size(), 0);
  rule_firings_published_.assign(rules.size(), 0);
  rule_span_labels_.reserve(rules.size());
  rule_metric_names_.reserve(rules.size());
  for (const Rule& rule : rules) {
    rule_span_labels_.push_back("rule:" + rule.name);
    rule_metric_names_.push_back("dp.runtime.rule_firings." +
                                 obs::sanitize_metric_segment(rule.name));
  }
  fire_hist_ = &metrics_->histogram("dp.runtime.rule_fire_us");
  fire_sketch_ = &metrics_->sketch("dp.runtime.rule_fire_us");
  batch_size_hist_ = &metrics_->histogram(
      "dp.engine.batch.size",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});
}

void Engine::add_link(const NodeName& a, const NodeName& b,
                      LogicalTime delay) {
  links_[{a, b}] = delay;
  links_[{b, a}] = delay;
}

void Engine::add_observer(RuntimeObserver* observer) {
  observers_.push_back(observer);
}

LogicalTime Engine::delivery_delay(const NodeName& from,
                                   const NodeName& to) const {
  if (from == to) return config_.derive_delay;
  auto it = links_.find({from, to});
  return it == links_.end() ? config_.default_link_delay : it->second;
}

Table& Engine::table_for(const Tuple& tuple) {
  auto& node_tables = state_[tuple.location()];
  auto it = node_tables.find(tuple.table());
  if (it == node_tables.end()) {
    it = node_tables.emplace(tuple.table(), Table(program_.table(tuple.table())))
             .first;
  }
  return it->second;
}

const Table* Engine::find_table(const NodeName& node,
                                const std::string& table) const {
  auto node_it = state_.find(node);
  if (node_it == state_.end()) return nullptr;
  auto it = node_it->second.find(table);
  return it == node_it->second.end() ? nullptr : &it->second;
}

bool Engine::is_live(const Tuple& tuple) const {
  const Table* table = find_table(tuple.location(), tuple.table());
  return table != nullptr && table->is_live(tuple);
}

bool Engine::existed_at(const Tuple& tuple, LogicalTime at) const {
  const Table* table = find_table(tuple.location(), tuple.table());
  return table != nullptr && table->existed_at(tuple, at);
}

std::vector<Tuple> Engine::live_tuples(const std::string& table) const {
  std::vector<Tuple> out;
  for (const auto& [node, tables] : state_) {
    auto it = tables.find(table);
    if (it == tables.end()) continue;
    it->second.for_each_live([&out](const Tuple& t) { out.push_back(t); });
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeName> Engine::nodes() const {
  std::vector<NodeName> out;
  out.reserve(state_.size());
  for (const auto& [node, tables] : state_) out.push_back(node);
  return out;
}

void Engine::push_event(Event event) {
  event.seq = kInternalSeqBand | next_seq_++;
  enqueue(std::move(event));
}

void Engine::push_external_event(Event event) {
  event.seq = next_external_seq_++;
  enqueue(std::move(event));
}

void Engine::enqueue(Event event) {
  queue_.push_back(std::move(event));
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
  if (queue_.size() > queue_depth_max_) queue_depth_max_ = queue_.size();
}

Engine::Event Engine::pop_event() {
  assert(!queue_.empty());
  std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
  Event event = std::move(queue_.back());
  queue_.pop_back();
  return event;
}

void Engine::schedule_insert(Tuple tuple, LogicalTime at) {
  const TableDecl& decl = program_.table(tuple.table());
  if (decl.kind != TupleKind::kBase) {
    throw ProgramError("external insert into derived table " + tuple.table());
  }
  if (tuple.arity() != decl.arity) {
    throw ProgramError("arity mismatch inserting into " + tuple.table());
  }
  if (!tuple.values().front().is_string()) {
    throw ProgramError("tuple location (field 0) must be a node name string");
  }
  if (at < now_) throw ProgramError("insert scheduled in the past");
  Event event;
  event.time = at;
  event.kind = Event::Kind::kBaseInsert;
  event.tuple = std::move(tuple);
  push_external_event(std::move(event));
}

void Engine::schedule_delete(Tuple tuple, LogicalTime at) {
  const TableDecl& decl = program_.table(tuple.table());
  if (decl.kind != TupleKind::kBase) {
    throw ProgramError("external delete from derived table " + tuple.table());
  }
  if (decl.is_event()) {
    throw ProgramError("cannot delete event tuple " + tuple.table());
  }
  if (at < now_) throw ProgramError("delete scheduled in the past");
  Event event;
  event.time = at;
  event.kind = Event::Kind::kBaseDelete;
  event.tuple = std::move(tuple);
  push_external_event(std::move(event));
}

void Engine::run() {
  DP_SPAN_CAT("dp.runtime.run", "runtime");
  while (!queue_.empty()) {
    step_queue(/*bounded=*/false, 0);
  }
  publish_metrics();
}

void Engine::run_until(LogicalTime until) {
  DP_SPAN_CAT("dp.runtime.run_until", "runtime");
  while (!queue_.empty() && queue_.front().time <= until) {
    step_queue(/*bounded=*/true, until);
  }
  now_ = std::max(now_, until);
  publish_metrics();
}

bool Engine::batch_admissible(const Event& event, LogicalTime t,
                              const TableDecl& decl,
                              std::uint32_t ord) const {
  if (event.time != t) return false;
  if (event.kind != Event::Kind::kBaseInsert &&
      event.kind != Event::Kind::kDerivedInsert) {
    return false;  // deletes and aggregates mutate state mid-step: run solo
  }
  const Tuple& tuple = event.tuple;
  // An earlier batched delta's firings must not see this tuple (phase A
  // inserts the whole batch before phase B fires anything, but the row
  // engine would not have inserted it yet).
  const std::uint64_t* forbidden = forbidden_scratch_.data();
  if ((forbidden[ord / 64] >> (ord % 64)) & 1) return false;
  if (decl.is_event()) return true;  // never materialized: nothing to clash
  // A duplicate or key-displacing insert takes the single-event path, where
  // the existing dedup/retraction logic runs in delta order.
  std::vector<Value> key;
  if (decl.key_columns.empty()) {
    key = tuple.values();
  } else {
    key.reserve(decl.key_columns.size());
    for (const std::size_t col : decl.key_columns) key.push_back(tuple.at(col));
  }
  if (const Table* table = find_table(tuple.location(), tuple.table());
      table != nullptr && table->live_by_key(key) != nullptr) {
    return false;
  }
  return pending_keys_.count({tuple.location(), tuple.table(), key}) == 0;
}

void Engine::step_queue(bool bounded, LogicalTime until) {
  (void)bounded;
  (void)until;  // admission beyond the head is same-time, so <= until holds
  if (!config_.use_join_plans || !config_.use_batch_exec) {
    const Event event = pop_event();
    process(event);
    return;
  }

  // Try to grow batches from the queue head: maximal same-time runs of
  // insert events that can all be applied before any of them fires. Events
  // that cannot (deletes, aggregates, duplicates, displacing upserts, an
  // event whose budget crossing must throw, or a tuple an earlier delta's
  // rules probe) flush the batch and take the single-event path, which
  // preserves the row engine's semantics exactly.
  const LogicalTime t = queue_.front().time;

  // One-entry table cache: a run overwhelmingly repeats a handful of tables,
  // so the two ordered-map lookups behind every admission check collapse to
  // one string compare. The cached name must point into storage that stays
  // put between admission checks (the bulk-drained run does; the heap does
  // not -- the per-pop loop below invalidates after every pop).
  const std::string* cached_table = nullptr;
  const TableDecl* cached_decl = nullptr;
  std::uint32_t cached_ord = 0;
  const auto resolve = [&](const std::string& name) {
    if (cached_table == nullptr || *cached_table != name) {
      cached_decl = &program_.table(name);
      cached_ord = table_ord_.at(name);
      cached_table = &name;
    }
  };
  // Admits `head` into the batch being formed (`formed` deltas so far):
  // checks the budget and the admission rules, then records the pending key
  // and the tables its firings will probe. The event that crosses max_events
  // must throw from process(), so admission stops just before the budget and
  // the crossing event arrives there alone.
  const auto admit = [&](const Event& head, std::size_t formed) {
    const bool over_budget =
        config_.max_events != 0 &&
        stats_.events_processed + formed + 1 > config_.max_events;
    if (over_budget) return false;
    const Tuple& tuple = head.tuple;
    resolve(tuple.table());
    if (!batch_admissible(head, t, *cached_decl, cached_ord)) return false;
    if (!cached_decl->is_event()) {
      pending_keys_.emplace(tuple.location(), tuple.table(),
                            cached_decl->key_columns.empty()
                                ? tuple.values()
                                : [&] {
                                    std::vector<Value> key;
                                    key.reserve(cached_decl->key_columns.size());
                                    for (const std::size_t col :
                                         cached_decl->key_columns) {
                                      key.push_back(tuple.at(col));
                                    }
                                    return key;
                                  }());
    }
    const std::uint64_t* mask =
        probe_masks_.data() + cached_ord * mask_words_;
    for (std::size_t w = 0; w < mask_words_; ++w) {
      forbidden_scratch_[w] |= mask[w];
    }
    return true;
  };

  // Bulk drain: when the head's same-time run is long, extract the whole run
  // from the heap in one partition pass -- two moves per event instead of a
  // log(queue)-deep sift per pop -- and consume it right here, batch by
  // batch with ineligible events processed solo in between. Short runs keep
  // the per-pop path below: for them the scan and heap rebuild would cost
  // more than the sifts they replace.
  constexpr std::size_t kBulkDrainMin = 64;
  std::size_t same_time = 0;
  for (const Event& event : queue_) {
    if (event.time == t && ++same_time >= kBulkDrainMin) break;
  }
  if (same_time >= kBulkDrainMin) {
    const auto mid =
        std::partition(queue_.begin(), queue_.end(),
                       [t](const Event& event) { return event.time != t; });
    // All times in the run are equal, so seq order is exactly pop order.
    // The run often comes out already in order -- a wave of schedule calls
    // or a batch's emissions heap-push in increasing seq without sifting --
    // but leftover emissions interleaved with a fresh wave do need sorting.
    // Order 16-byte (seq, position) keys and move each Event once into
    // place rather than letting std::sort shuffle the Event objects around.
    const std::size_t run_len = static_cast<std::size_t>(queue_.end() - mid);
    run_keys_.clear();
    run_keys_.reserve(run_len);
    bool run_sorted = true;
    for (std::size_t i = 0; i < run_len; ++i) {
      const std::uint64_t seq = (mid + static_cast<std::ptrdiff_t>(i))->seq;
      if (!run_keys_.empty() && seq < run_keys_.back().first) {
        run_sorted = false;
      }
      run_keys_.emplace_back(seq, static_cast<std::uint32_t>(i));
    }
    if (!run_sorted) std::sort(run_keys_.begin(), run_keys_.end());
    run_scratch_.clear();
    run_scratch_.reserve(run_len);
    for (const auto& key : run_keys_) {
      run_scratch_.push_back(
          std::move(*(mid + static_cast<std::ptrdiff_t>(key.second))));
    }
    queue_.erase(mid, queue_.end());
    std::make_heap(queue_.begin(), queue_.end(), std::greater<>{});
    std::size_t cursor = 0;
    while (cursor < run_scratch_.size()) {
      std::fill(forbidden_scratch_.begin(), forbidden_scratch_.end(), 0);
      pending_keys_.clear();
      const std::size_t begin = cursor;
      while (cursor < run_scratch_.size() &&
             admit(run_scratch_[cursor], cursor - begin)) {
        ++cursor;
      }
      if (cursor > begin) {
        process_batch(run_scratch_.data() + begin, cursor - begin);
        continue;
      }
      // Head not batchable: single-event path (also the only path that can
      // throw the event-budget error, keeping its timing identical).
      process(run_scratch_[cursor++]);
    }
    run_scratch_.clear();
    return;
  }

  std::fill(forbidden_scratch_.begin(), forbidden_scratch_.end(), 0);
  pending_keys_.clear();
  batch_scratch_.clear();
  while (!queue_.empty() && queue_.front().time == t &&
         admit(queue_.front(), batch_scratch_.size())) {
    batch_scratch_.push_back(pop_event());
    // pop_event sifts other events through the slot the cache points into;
    // unlike the stable bulk-drained run, the bytes there can become a
    // different (valid) table name while cached_decl stays stale.
    cached_table = nullptr;
  }

  if (batch_scratch_.empty()) {
    // Head not batchable: single-event path (also the only path that can
    // throw the event-budget error, keeping its timing identical).
    const Event event = pop_event();
    process(event);
    return;
  }
  process_batch(batch_scratch_.data(), batch_scratch_.size());
}

void Engine::process(const Event& event) {
  assert(event.time >= now_);
  now_ = event.time;
  ++stats_.events_processed;
  if (config_.max_events != 0 && stats_.events_processed > config_.max_events) {
    throw ProgramError(
        "event budget exceeded (" + std::to_string(config_.max_events) +
        "): the program is probably deriving forever (e.g. a forwarding "
        "loop); raise EngineConfig::max_events if the workload is genuinely "
        "this large");
  }
  switch (event.kind) {
    case Event::Kind::kBaseInsert:
    case Event::Kind::kDerivedInsert:
      process_insert(event);
      break;
    case Event::Kind::kAggregate:
      process_aggregate(event);
      break;
    case Event::Kind::kBaseDelete:
      process_delete(event.tuple, event.time);
      break;
  }
}

void Engine::process_aggregate(const Event& event) {
  const Rule* rule = program_.find_rule(event.rule);
  if (rule == nullptr || !rule->agg) return;  // defensive: validated upstream
  // Resolve the aggregate column (the head argument that is the agg var).
  std::size_t agg_index = event.tuple.arity();
  for (std::size_t i = 0; i < rule->head.args.size(); ++i) {
    if (rule->head.args[i]->kind == Expr::Kind::kVar &&
        rule->head.args[i]->var == rule->agg->var) {
      agg_index = i;
      break;
    }
  }
  if (agg_index == event.tuple.arity()) return;

  Table& table = table_for(event.tuple);
  const Tuple* previous = table.live_by_key(table.key_of(event.tuple));
  const std::int64_t old_value =
      previous != nullptr && previous->at(agg_index).is_int()
          ? previous->at(agg_index).as_int()
          : 0;

  Event resolved;
  resolved.time = event.time;
  resolved.kind = Event::Kind::kDerivedInsert;
  resolved.rule = event.rule;
  resolved.trigger_index = event.trigger_index;
  resolved.body = event.body;
  // The previous aggregate value joins the provenance as the tail of the
  // contribution chain.
  if (previous != nullptr) resolved.body.push_back(*previous);
  resolved.tuple =
      event.tuple.with_field(agg_index, Value(old_value + event.agg_delta));
  process_insert(resolved);
}

void Engine::process_insert(const Event& event) {
  const Tuple& tuple = event.tuple;
  const TableDecl& decl = program_.table(tuple.table());
  const bool is_base = event.kind == Event::Kind::kBaseInsert;
  const bool is_event = decl.is_event();

  const bool notify = !observers_.empty();
  bool newly_appeared = true;
  if (!is_event) {
    Table& table = table_for(tuple);
    const Table::InsertResult result = table.insert(tuple, event.time);
    if (result.displaced) {
      // Key upsert displaced a live row: observers see its disappearance
      // first, and its dependents are underived at the same timestamp. The
      // displaced row may legitimately be absent from the store (recorded
      // with no observers attached); then nothing can reference it either.
      ++stats_.base_deletes;
      const TupleRef displaced_ref =
          notify ? intern_tuple(*result.displaced)
                 : global_store().find(*result.displaced);
      for (RuntimeObserver* obs : observers_) {
        obs->on_base_delete(displaced_ref, event.time);
      }
      if (displaced_ref != kNoTupleRef) {
        retract_dependents_of(displaced_ref, event.time);
      }
    }
    newly_appeared = result.inserted;
  }

  // Notify observers and maintain support bookkeeping. Tuples are interned
  // once here; every observer (recorder, event log, metrics) and the support
  // maps share the resulting refs.
  if (is_base) {
    ++stats_.base_inserts;
    if (notify) {
      const TupleRef ref = intern_tuple(tuple);
      for (RuntimeObserver* obs : observers_) {
        obs->on_base_insert(ref, event.time, is_event);
      }
    }
  } else {
    ++stats_.derivations;
    // Derivations triggered by an event tuple are one-shot: the event is
    // gone the instant after, so the head is a fact about something that
    // happened (e.g. "this packet was delivered") and is not subject to
    // incremental view maintenance. Only derivations whose entire body is
    // materialized state participate in support counting.
    bool event_triggered = false;
    for (const Tuple& b : event.body) {
      if (program_.table(b.table()).is_event()) {
        event_triggered = true;
        break;
      }
    }
    const bool track_support = !is_event && !event_triggered;
    if (notify || track_support) {
      const TupleRef head_ref = intern_tuple(tuple);
      const NameRef rule_ref = intern_name(event.rule);
      body_refs_scratch_.clear();
      body_refs_scratch_.reserve(event.body.size());
      for (const Tuple& b : event.body) {
        body_refs_scratch_.push_back(intern_tuple(b));
      }
      for (RuntimeObserver* obs : observers_) {
        obs->on_derive(head_ref, rule_ref, body_refs_scratch_,
                       event.trigger_index, event.time, is_event);
      }
      if (track_support) {
        const std::size_t record_id = records_.size();
        records_.push_back(DerivRecord{head_ref, rule_ref, true});
        records_by_head_[head_ref].push_back(record_id);
        for (const TupleRef b : body_refs_scratch_) {
          records_by_body_[b].push_back(record_id);
        }
        ++support_[head_ref];
      }
    }
  }

  if (!newly_appeared && !is_event) return;  // no new appearance: no firing

  // Delta evaluation: the new tuple may trigger any rule with a body atom
  // over its table. Plans fire in (rule, atom) order -- the exact order of
  // the reference evaluator's nested loop below.
  if (config_.use_join_plans) {
    if (auto it = plans_.find(tuple.table()); it != plans_.end()) {
      for (const RulePlan& plan : it->second) {
        fire_rule_planned(plan, tuple, event.time);
      }
    }
    return;
  }
  for (std::size_t rule_index : listeners_.at(tuple.table())) {
    const Rule& rule = program_.rules()[rule_index];
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      if (rule.body[i].table == tuple.table()) {
        fire_rule(rule, i, tuple, event.time);
      }
    }
  }
}

void Engine::process_delete(const Tuple& tuple, LogicalTime t) {
  Table& table = table_for(tuple);
  if (!table.remove(tuple, t)) {
    DP_WARN << "external delete of non-live tuple " << tuple.to_string();
    return;
  }
  ++stats_.base_deletes;
  const TupleRef ref = observers_.empty() ? global_store().find(tuple)
                                          : intern_tuple(tuple);
  for (RuntimeObserver* obs : observers_) {
    obs->on_base_delete(ref, t);
  }
  // Absent from the store means nothing was ever recorded against it, so no
  // derivation record can reference it either.
  if (ref != kNoTupleRef) retract_dependents_of(ref, t);
}

void Engine::retract_dependents_of(TupleRef tuple, LogicalTime t) {
  // Deactivate this tuple's own derivation records (it is gone). Its support
  // entry is erased outright -- leaving a zero behind would grow the map by
  // one dead entry per underived tuple for the lifetime of the engine.
  if (auto it = records_by_head_.find(tuple); it != records_by_head_.end()) {
    for (std::size_t id : it->second) records_[id].active = false;
    support_.erase(tuple);
  }
  // Derivations that consumed the tuple lose one unit of support.
  auto it = records_by_body_.find(tuple);
  if (it == records_by_body_.end()) return;
  // Copy: retraction can recurse and grow/invalidate the map.
  const std::vector<std::size_t> record_ids = it->second;
  for (std::size_t id : record_ids) {
    DerivRecord& record = records_[id];
    if (!record.active) continue;
    record.active = false;
    auto support_it = support_.find(record.head);
    if (support_it == support_.end() || support_it->second <= 0) continue;
    if (--support_it->second > 0) continue;
    support_.erase(support_it);
    // Support exhausted: underive the head now (same timestamp).
    const Tuple& head = resolve_tuple(record.head);
    Table& head_table = table_for(head);
    if (!head_table.remove(head, t)) continue;
    ++stats_.underivations;
    for (RuntimeObserver* obs : observers_) {
      obs->on_underive(record.head, record.rule, tuple, t);
    }
    retract_dependents_of(record.head, t);
  }
}

bool Engine::unify(const BodyAtom& atom, const Tuple& tuple,
                   Bindings& bindings) {
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    const AtomArg& arg = atom.args[i];
    const Value& v = tuple.at(i);
    if (arg.is_var) {
      auto [it, inserted] = bindings.emplace(arg.var, v);
      if (!inserted && !(it->second == v)) return false;
    } else if (!(arg.constant == v)) {
      return false;
    }
  }
  return true;
}

void Engine::fire_rule(const Rule& rule, std::size_t atom_index,
                       const Tuple& arrival, LogicalTime t) {
  const std::size_t rule_index =
      static_cast<std::size_t>(&rule - program_.rules().data());
  FiringScope firing_scope(config_.trace_rule_firings,
                           rule_span_labels_[rule_index], fire_hist_,
                           fire_sketch_);
  const NodeName& node = arrival.location();

  // Depth-first join over the remaining body atoms, in body order.
  std::vector<Bindings> complete;
  Bindings initial;
  if (!unify(rule.body[atom_index], arrival, initial)) return;

  struct Frame {
    std::size_t atom = 0;
    Bindings bindings;
  };
  std::vector<Frame> stack = {{0, std::move(initial)}};
  std::vector<std::pair<std::string, Value>> new_bindings;
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    // Skip the already-bound trigger atom.
    while (frame.atom == atom_index) ++frame.atom;
    if (frame.atom >= rule.body.size()) {
      complete.push_back(std::move(frame.bindings));
      continue;
    }
    const BodyAtom& atom = rule.body[frame.atom];
    const Table* table = find_table(node, atom.table);
    if (table == nullptr) continue;
    table->for_each_live([&](const Tuple& candidate) {
      // Two-phase unification: validate against the current bindings and
      // collect the new variable bindings *before* paying for a map copy.
      // With selective rules (e.g. constant join keys) almost every
      // candidate fails cheaply here.
      ++stats_.tuples_scanned;
      new_bindings.clear();
      bool ok = true;
      for (std::size_t i = 0; ok && i < atom.args.size(); ++i) {
        const AtomArg& arg = atom.args[i];
        const Value& v = candidate.at(i);
        if (!arg.is_var) {
          ok = arg.constant == v;
          continue;
        }
        auto bound = frame.bindings.find(arg.var);
        if (bound != frame.bindings.end()) {
          ok = bound->second == v;
          continue;
        }
        for (const auto& [var, value] : new_bindings) {
          if (var == arg.var) {
            ok = value == v;
            break;
          }
        }
        if (ok) new_bindings.emplace_back(arg.var, v);
      }
      if (!ok) return;
      ++stats_.tuples_matched;
      Bindings extended = frame.bindings;
      for (auto& [var, value] : new_bindings) {
        extended.emplace(std::move(var), std::move(value));
      }
      stack.push_back({frame.atom + 1, std::move(extended)});
    });
  }
  if (complete.empty()) return;

  // Assignments and constraints.
  std::vector<Bindings> satisfying;
  for (Bindings& bindings : complete) {
    bool ok = true;
    try {
      for (const Assignment& assign : rule.assigns) {
        bindings[assign.var] = eval_expr(*assign.expr, bindings);
      }
      for (const ExprPtr& constraint : rule.constraints) {
        if (!is_truthy(eval_expr(*constraint, bindings))) {
          ok = false;
          break;
        }
      }
    } catch (const EvalError& e) {
      if (config_.strict_eval) throw;
      DP_WARN << "rule " << rule.name << ": constraint error: " << e.what();
      ok = false;
    }
    if (ok) satisfying.push_back(std::move(bindings));
  }
  if (satisfying.empty()) return;

  // argmax selection (OpenFlow priority semantics): keep only the binding
  // maximizing the declared variable; deterministic tie-break by binding
  // content.
  if (rule.argmax_var) {
    const Bindings* best = nullptr;
    for (const Bindings& bindings : satisfying) {
      if (best == nullptr) {
        best = &bindings;
        continue;
      }
      const Value& current = bindings.at(*rule.argmax_var);
      const Value& best_value = best->at(*rule.argmax_var);
      if (best_value < current ||
          (!(current < best_value) && bindings < *best)) {
        best = &bindings;
      }
    }
    std::vector<Bindings> winner = {*best};
    satisfying = std::move(winner);
  }

  // Fire: evaluate the head and schedule its arrival. For aggregate rules
  // the aggregate column gets a placeholder; the value is resolved when the
  // event is processed (serialized, so contributions never race).
  for (const Bindings& bindings : satisfying) {
    std::vector<Value> head_values;
    head_values.reserve(rule.head.args.size());
    try {
      for (const ExprPtr& arg : rule.head.args) {
        if (rule.agg && arg->kind == Expr::Kind::kVar &&
            arg->var == rule.agg->var) {
          head_values.emplace_back(std::int64_t{0});  // placeholder
          continue;
        }
        head_values.push_back(eval_expr(*arg, bindings));
      }
    } catch (const EvalError& e) {
      if (config_.strict_eval) throw;
      DP_WARN << "rule " << rule.name << ": head error: " << e.what();
      continue;
    }
    if (!head_values.front().is_string()) {
      DP_WARN << "rule " << rule.name << ": head location is not a node name";
      continue;
    }
    Tuple head(rule.head.table, std::move(head_values));
    const NodeName& target = head.location();
    if (target != node) {
      ++stats_.remote_messages;
      ++remote_by_node_[target];
    }
    ++rule_firings_[rule_index];

    // Reconstruct the body instantiation, in body order, for provenance.
    Event event;
    event.time = t + delivery_delay(node, target);
    event.kind = rule.agg ? Event::Kind::kAggregate
                          : Event::Kind::kDerivedInsert;
    if (rule.agg) {
      event.agg_delta =
          rule.agg->kind == AggSpec::Kind::kCount
              ? 1
              : bindings.at(rule.agg->sum_var).as_int();
    }
    event.rule = rule.name;
    event.trigger_index = atom_index;
    event.body.reserve(rule.body.size());
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      if (i == atom_index) {
        event.body.push_back(arrival);
        continue;
      }
      std::vector<Value> values;
      values.reserve(rule.body[i].args.size());
      for (const AtomArg& arg : rule.body[i].args) {
        values.push_back(arg.is_var ? bindings.at(arg.var) : arg.constant);
      }
      event.body.emplace_back(rule.body[i].table, std::move(values));
    }
    event.tuple = std::move(head);
    push_event(std::move(event));
  }
}

void Engine::fire_rule_planned(const RulePlan& plan, const Tuple& arrival,
                               LogicalTime t) {
  const Rule& rule = program_.rules()[plan.rule_index];
  FiringScope firing_scope(config_.trace_rule_firings,
                           rule_span_labels_[plan.rule_index], fire_hist_,
                           fire_sketch_);
  const NodeName& node = arrival.location();

  // Unify the arriving tuple against the trigger atom.
  Regs regs(plan.slot_count);
  for (const ColOp& op : plan.trigger_ops) {
    const Value& v = arrival.at(op.col);
    switch (op.kind) {
      case ColOp::Kind::kConst:
        if (!(op.constant == v)) return;
        break;
      case ColOp::Kind::kCheck:
        if (!(regs[op.slot] == v)) return;
        break;
      case ColOp::Kind::kBind:
        regs[op.slot] = v;
        break;
    }
  }

  // Depth-first join over the planned steps. Registers are written exactly
  // once per root-to-leaf path before any read (static binding discipline),
  // so backtracking needs no save/restore; complete matches snapshot the
  // register file.
  std::vector<PlanMatch> matches;
  std::vector<const Tuple*> chosen(rule.body.size(), nullptr);
  chosen[plan.trigger_atom] = &arrival;

  auto descend = [&](auto&& self, std::size_t depth) -> void {
    if (depth == plan.steps.size()) {
      matches.push_back(PlanMatch{regs, chosen});
      return;
    }
    const JoinStep& step = plan.steps[depth];
    const Table* table = find_table(node, step.table);
    if (table == nullptr) return;
    const auto try_candidate = [&](const Tuple& candidate,
                                   const std::vector<ColOp>& ops) {
      ++stats_.tuples_scanned;
      for (const ColOp& op : ops) {
        const Value& v = candidate.at(op.col);
        switch (op.kind) {
          case ColOp::Kind::kConst:
            if (!(op.constant == v)) return;
            break;
          case ColOp::Kind::kCheck:
            if (!(regs[op.slot] == v)) return;
            break;
          case ColOp::Kind::kBind:
            regs[op.slot] = v;
            break;
        }
      }
      ++stats_.tuples_matched;
      chosen[step.body_index] = &candidate;
      self(self, depth + 1);
    };
    if (step.probe_cols.empty()) {
      // Nothing bound: full scan (rare -- a cross join).
      table->for_each_live(
          [&](const Tuple& candidate) { try_candidate(candidate, step.ops); });
      return;
    }
    // Indexed probe: build the key from constants and bound registers, then
    // enumerate only the matching bucket. Residual ops cover the columns the
    // key does not pin (fresh variables, intra-atom repeats).
    std::vector<Value> probe_key;
    probe_key.reserve(plan.steps[depth].probe.size());
    for (const ColOp& op : step.probe) {
      probe_key.push_back(op.kind == ColOp::Kind::kConst ? op.constant
                                                         : regs[op.slot]);
    }
    ++stats_.index_probes;
    table->for_each_live_matching(step.probe_cols, probe_key,
                                  [&](const Tuple& candidate) {
                                    try_candidate(candidate, step.residual);
                                  });
  };
  descend(descend, 0);
  if (matches.empty()) return;
  finish_scratch_.clear();
  finish_planned_matches(plan, matches.data(), matches.size(), t,
                         finish_scratch_);
  for (Event& event : finish_scratch_) {
    push_event(std::move(event));
  }
  finish_scratch_.clear();
}

void Engine::finish_planned_matches(const RulePlan& plan, PlanMatch* matches,
                                    std::size_t count, LogicalTime t,
                                    std::vector<Event>& out) {
  const Rule& rule = program_.rules()[plan.rule_index];
  // Every match in the set descends from one trigger arrival, so the firing
  // node is shared.
  const NodeName& node = matches[0].chosen[plan.trigger_atom]->location();

  // Restore the reference evaluator's enumeration order. The reference DFS
  // (fire_rule) expands body atoms in body order and pops candidates from a
  // stack, which yields matches in reverse-lexicographic order of the
  // chosen rows' scan positions (= their key projections) per body atom.
  // Sorting the reordered join's matches by that same key, descending,
  // makes both evaluators fire identical event sequences. The sort is total
  // -- distinct matches differ in some chosen row, and rows of one table
  // differ in their key projection -- so the callers' enumeration order
  // (row DFS or batch BFS) never shows through.
  if (count > 1) {
    std::vector<std::vector<Value>> sort_keys(count);
    for (std::size_t m = 0; m < count; ++m) {
      std::vector<Value>& key = sort_keys[m];
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        if (i == plan.trigger_atom) continue;
        const Tuple& row = *matches[m].chosen[i];
        const ColumnSet& cols = plan.body_key_cols[i];
        if (cols.empty()) {
          key.insert(key.end(), row.values().begin(), row.values().end());
        } else {
          for (std::size_t col : cols) key.push_back(row.at(col));
        }
      }
    }
    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&sort_keys](std::size_t a, std::size_t b) {
                return sort_keys[b] < sort_keys[a];  // descending
              });
    std::vector<PlanMatch> sorted;
    sorted.reserve(count);
    for (std::size_t m : order) sorted.push_back(std::move(matches[m]));
    std::move(sorted.begin(), sorted.end(), matches);
  }

  // Assignments and constraints (slot-compiled). `satisfying_scratch_` is a
  // member so the per-firing hot path does not allocate (finish runs once
  // per firing on the row path, once per delta run on the batch path).
  std::vector<std::size_t>& satisfying = satisfying_scratch_;
  satisfying.clear();
  for (std::size_t m = 0; m < count; ++m) {
    Regs& r = matches[m].regs;
    bool ok = true;
    try {
      for (const RulePlan::CompiledAssign& assign : plan.assigns) {
        r[assign.slot] = eval_expr(assign.expr, r);
      }
      for (const SlotExpr& constraint : plan.constraints) {
        if (!is_truthy(eval_expr(constraint, r))) {
          ok = false;
          break;
        }
      }
    } catch (const EvalError& e) {
      if (config_.strict_eval) throw;
      DP_WARN << "rule " << rule.name << ": constraint error: " << e.what();
      ok = false;
    }
    if (ok) satisfying.push_back(m);
  }
  if (satisfying.empty()) return;

  // argmax selection; ties break exactly like the reference evaluator's
  // Bindings-map comparison (register values in variable-name order).
  if (plan.argmax_slot) {
    const auto regs_less = [&plan](const Regs& a, const Regs& b) {
      for (std::size_t slot : plan.slots_by_name) {
        if (a[slot] < b[slot]) return true;
        if (b[slot] < a[slot]) return false;
      }
      return false;
    };
    std::size_t best = satisfying.front();
    for (std::size_t i = 1; i < satisfying.size(); ++i) {
      const Regs& current = matches[satisfying[i]].regs;
      const Regs& best_regs = matches[best].regs;
      const Value& current_value = current[*plan.argmax_slot];
      const Value& best_value = best_regs[*plan.argmax_slot];
      if (best_value < current_value ||
          (!(current_value < best_value) && regs_less(current, best_regs))) {
        best = satisfying[i];
      }
    }
    satisfying = {best};
  }

  // Fire: evaluate the head and schedule its arrival. The provenance body
  // is the chosen rows themselves, in original body order.
  for (std::size_t m : satisfying) {
    const PlanMatch& match = matches[m];
    std::vector<Value> head_values;
    head_values.reserve(plan.head_args.size());
    try {
      for (const SlotExpr& arg : plan.head_args) {
        head_values.push_back(eval_expr(arg, match.regs));
      }
    } catch (const EvalError& e) {
      if (config_.strict_eval) throw;
      DP_WARN << "rule " << rule.name << ": head error: " << e.what();
      continue;
    }
    if (!head_values.front().is_string()) {
      DP_WARN << "rule " << rule.name << ": head location is not a node name";
      continue;
    }
    Tuple head(rule.head.table, std::move(head_values));
    const NodeName& target = head.location();
    if (target != node) {
      ++stats_.remote_messages;
      ++remote_by_node_[target];
    }
    ++rule_firings_[plan.rule_index];

    Event event;
    event.time = t + delivery_delay(node, target);
    event.kind = rule.agg ? Event::Kind::kAggregate
                          : Event::Kind::kDerivedInsert;
    if (rule.agg) {
      event.agg_delta = rule.agg->kind == AggSpec::Kind::kCount
                            ? 1
                            : match.regs[*plan.agg_sum_slot].as_int();
    }
    event.rule = rule.name;
    event.trigger_index = plan.trigger_atom;
    event.body.reserve(rule.body.size());
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      event.body.push_back(*match.chosen[i]);
    }
    event.tuple = std::move(head);
    out.push_back(std::move(event));
  }
}

void Engine::process_batch(const Event* batch, std::size_t count) {
  const LogicalTime t = batch[0].time;
  assert(t >= now_);
  now_ = t;
  stats_.events_processed += count;
  ++batch_stats_.batches;
  batch_stats_.events += count;
  batch_size_hist_->observe(static_cast<double>(count));

  const bool notify = !observers_.empty();

  // One-entry declaration cache (same rationale as admission: batches repeat
  // a handful of tables, and the batch slice's storage stays put).
  const std::string* cached_table = nullptr;
  const TableDecl* cached_decl = nullptr;
  const auto decl_of = [&](const std::string& name) -> const TableDecl& {
    if (cached_table == nullptr || *cached_table != name) {
      cached_decl = &program_.table(name);
      cached_table = &name;
    }
    return *cached_decl;
  };

  // Phase A: apply every delta to its table and collect the tuples that need
  // interning -- then intern them through one store batch. Refs layout per
  // delta: base -> [tuple], derived -> [head, body...]. The relative intern
  // order matches the row path's; either way refs are hash-consed in the
  // process-global store, so a tuple's ref is whatever its first-ever intern
  // said, identically across variants.
  struct DeltaInfo {
    bool is_base = false;
    bool is_event = false;
    bool needs_refs = false;
    bool track_support = false;
    std::uint32_t ref_begin = 0;
  };
  std::vector<DeltaInfo> info(count);
  std::vector<const Tuple*> to_intern;
  std::vector<TupleRef> refs;
  for (std::size_t i = 0; i < count; ++i) {
    const Event& event = batch[i];
    const Tuple& tuple = event.tuple;
    DeltaInfo& d = info[i];
    d.is_base = event.kind == Event::Kind::kBaseInsert;
    d.is_event = decl_of(tuple.table()).is_event();
    if (!d.is_event) {
      [[maybe_unused]] const Table::InsertResult result =
          table_for(tuple).insert(tuple, t);
      assert(result.inserted && !result.displaced &&
             "batch formation admitted a duplicate or displacing insert");
    }
    if (d.is_base) {
      d.needs_refs = notify;
      if (d.needs_refs) {
        d.ref_begin = static_cast<std::uint32_t>(to_intern.size());
        to_intern.push_back(&tuple);
      }
      continue;
    }
    // Derivations triggered by an event tuple are one-shot (see
    // process_insert); only all-materialized bodies join support counting.
    bool event_triggered = false;
    for (const Tuple& b : event.body) {
      if (decl_of(b.table()).is_event()) {
        event_triggered = true;
        break;
      }
    }
    d.track_support = !d.is_event && !event_triggered;
    d.needs_refs = notify || d.track_support;
    if (d.needs_refs) {
      d.ref_begin = static_cast<std::uint32_t>(to_intern.size());
      to_intern.push_back(&tuple);
      for (const Tuple& b : event.body) to_intern.push_back(&b);
    }
  }
  global_store().intern_batch(to_intern.data(), to_intern.size(), refs);

  // Observer notification + support bookkeeping, in delta order -- exactly
  // the sequence the row engine would have produced.
  for (std::size_t i = 0; i < count; ++i) {
    const Event& event = batch[i];
    const DeltaInfo& d = info[i];
    if (d.is_base) {
      ++stats_.base_inserts;
      if (d.needs_refs) {
        const TupleRef ref = refs[d.ref_begin];
        for (RuntimeObserver* obs : observers_) {
          obs->on_base_insert(ref, t, d.is_event);
        }
      }
      continue;
    }
    ++stats_.derivations;
    if (!d.needs_refs) continue;
    const TupleRef head_ref = refs[d.ref_begin];
    const NameRef rule_ref = intern_name(event.rule);
    body_refs_scratch_.assign(
        refs.begin() + d.ref_begin + 1,
        refs.begin() + d.ref_begin + 1 +
            static_cast<std::ptrdiff_t>(event.body.size()));
    for (RuntimeObserver* obs : observers_) {
      obs->on_derive(head_ref, rule_ref, body_refs_scratch_,
                     event.trigger_index, t, d.is_event);
    }
    if (d.track_support) {
      const std::size_t record_id = records_.size();
      records_.push_back(DerivRecord{head_ref, rule_ref, true});
      records_by_head_[head_ref].push_back(record_id);
      for (const TupleRef b : body_refs_scratch_) {
        records_by_body_[b].push_back(record_id);
      }
      ++support_[head_ref];
    }
  }

  // Phase B: fire each (rule, trigger) once over all its deltas. Grouping by
  // trigger table (first-appearance order) only changes evaluation order;
  // the emissions are tagged and sorted below, so the scheduling order --
  // and with it every internal sequence number -- matches the row loop's.
  emission_scratch_.clear();
  struct Group {
    const std::string* table;
    const std::vector<RulePlan>* plans;
    std::vector<std::uint32_t> deltas;
  };
  std::vector<Group> groups;
  Group* last_group = nullptr;  // consecutive deltas share a table
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& table = batch[i].tuple.table();
    if (last_group == nullptr || *last_group->table != table) {
      last_group = nullptr;
      for (Group& g : groups) {
        if (*g.table == table) {
          last_group = &g;
          break;
        }
      }
      if (last_group == nullptr) {
        const auto plan_it = plans_.find(table);
        if (plan_it == plans_.end()) {
          // No plans for this table: remember that with a null plans list so
          // a long untriggering run still hits the one-entry check above.
          groups.push_back(Group{&table, nullptr, {}});
        } else {
          groups.push_back(Group{&plan_it->first, &plan_it->second, {}});
        }
        last_group = &groups.back();
      }
    }
    if (last_group->plans != nullptr) {
      last_group->deltas.push_back(static_cast<std::uint32_t>(i));
    }
  }
  for (const Group& group : groups) {
    if (group.plans == nullptr) continue;
    for (std::size_t p = 0; p < group.plans->size(); ++p) {
      fire_rule_batch((*group.plans)[p], static_cast<std::uint32_t>(p), batch,
                      group.deltas, t, emission_scratch_);
    }
  }
  std::stable_sort(emission_scratch_.begin(), emission_scratch_.end(),
                   [](const BufferedEmission& a, const BufferedEmission& b) {
                     if (a.delta != b.delta) return a.delta < b.delta;
                     return a.plan_ordinal < b.plan_ordinal;
                   });
  for (BufferedEmission& emission : emission_scratch_) {
    push_event(std::move(emission.event));
  }
  emission_scratch_.clear();
}

void Engine::fire_rule_batch(const RulePlan& plan, std::uint32_t plan_ordinal,
                             const Event* batch,
                             const std::vector<std::uint32_t>& deltas,
                             LogicalTime t,
                             std::vector<BufferedEmission>& out) {
  const Rule& rule = program_.rules()[plan.rule_index];
  FiringScope firing_scope(config_.trace_rule_firings,
                           rule_span_labels_[plan.rule_index], fire_hist_,
                           fire_sketch_);

  regs_matrix_.reset(plan.slot_count);
  if (stage_rows_.size() < plan.steps.size() + 1) {
    stage_rows_.resize(plan.steps.size() + 1);
  }
  for (auto& stage : stage_rows_) stage.clear();

  // Stage 0: unify every delta's arrival against the trigger atom. Failing
  // rows simply never enter the frontier (no stats, as in the row path).
  std::vector<FrontierRow>& roots = stage_rows_[0];
  for (const std::uint32_t delta : deltas) {
    const Tuple& arrival = batch[delta].tuple;
    const std::size_t row = regs_matrix_.add_row();
    Value* regs = regs_matrix_.row(row);
    bool ok = true;
    for (const ColOp& op : plan.trigger_ops) {
      const Value& v = arrival.at(op.col);
      switch (op.kind) {
        case ColOp::Kind::kConst:
          ok = op.constant == v;
          break;
        case ColOp::Kind::kCheck:
          ok = regs[op.slot] == v;
          break;
        case ColOp::Kind::kBind:
          regs[op.slot] = v;
          break;
      }
      if (!ok) break;
    }
    if (!ok) continue;
    roots.push_back(
        FrontierRow{static_cast<std::uint32_t>(row), delta, 0, &arrival});
  }

  // Advance the whole frontier one join step at a time: gather probe keys
  // into dense scratch, hash them as a group, prefetch every slot cluster,
  // then look up and verify. Counter discipline matches the row DFS: one
  // index probe per frontier row, one scanned per candidate enumerated, one
  // matched per candidate surviving verification.
  bool prev_had_bind = true;  // stage-0 roots each own a fresh register row
  for (std::size_t s = 0; s < plan.steps.size() && !stage_rows_[s].empty();
       ++s) {
    const JoinStep& step = plan.steps[s];
    const std::vector<FrontierRow>& in = stage_rows_[s];
    std::vector<FrontierRow>& survivors = stage_rows_[s + 1];
    batch_stats_.rows_in += in.size();

    bool has_bind = false;
    for (const ColOp& op : step.residual) {
      if (op.kind == ColOp::Kind::kBind) {
        has_bind = true;
        break;
      }
    }
    // Whether every frontier row exclusively owns its register row: true
    // after a binding step (each survivor copied or took over a row), false
    // after a check-only step (survivors share the parent's row). Only an
    // exclusively owned row can hand its registers to its last candidate.
    const bool exclusive_rows = prev_had_bind;
    prev_had_bind = has_bind;
    // Verification reads the candidate (and, for cross-step checks, the
    // parent registers) without writing anything, so a failing candidate
    // costs no register-row copy.
    const auto verify = [&step](const Tuple& candidate, const Value* regs) {
      for (std::size_t i = 0; i < step.residual.size(); ++i) {
        const ColOp& op = step.residual[i];
        const Value& v = candidate.at(op.col);
        switch (op.kind) {
          case ColOp::Kind::kConst:
            if (!(op.constant == v)) return false;
            break;
          case ColOp::Kind::kCheck: {
            const int src = step.residual_src[i];
            const Value& expect =
                src >= 0 ? candidate.at(static_cast<std::size_t>(src))
                         : regs[op.slot];
            if (!(expect == v)) return false;
            break;
          }
          case ColOp::Kind::kBind:
            break;
        }
      }
      return true;
    };
    const auto materialize = [&](std::uint32_t parent_pos,
                                 const Tuple& candidate, bool take_row) {
      ++stats_.tuples_matched;
      const FrontierRow& parent = in[parent_pos];
      std::uint32_t regs_row = parent.regs_row;
      if (has_bind) {
        // Only a binding step pays for a register-row copy (check-only steps
        // share the parent's row -- registers are write-once per path), and
        // only while the parent row can still be read: the last candidate of
        // an exclusively owned row takes the row over and binds in place,
        // which makes fanout-1 joins copy nothing at all.
        if (!take_row) {
          regs_row = static_cast<std::uint32_t>(
              regs_matrix_.add_row_copy(parent.regs_row));
        }
        Value* regs = regs_matrix_.row(regs_row);
        for (const ColOp& op : step.residual) {
          if (op.kind == ColOp::Kind::kBind) {
            regs[op.slot] = candidate.at(op.col);
          }
        }
      }
      survivors.push_back(
          FrontierRow{regs_row, parent.delta, parent_pos, &candidate});
    };

    if (step.probe_cols.empty()) {
      // Nothing bound at probe time: per-row full scan (rare; a cross join).
      for (std::uint32_t r = 0; r < in.size(); ++r) {
        const Table* table =
            find_table(batch[in[r].delta].tuple.location(), step.table);
        if (table == nullptr) continue;
        table->for_each_live([&](const Tuple& candidate) {
          ++stats_.tuples_scanned;
          if (verify(candidate, regs_matrix_.row(in[r].regs_row))) {
            // Scan enumeration gives no last-candidate signal: always copy.
            materialize(r, candidate, /*take_row=*/false);
          }
        });
      }
      batch_stats_.rows_out += survivors.size();
      continue;
    }

    // Per-node table/index resolution, cached (deltas cluster on few nodes).
    struct NodeTables {
      const NodeName* node;
      const Table::JoinIndex* index;
    };
    std::vector<NodeTables> node_cache;
    const auto index_for_node =
        [&](const NodeName& node) -> const Table::JoinIndex* {
      for (const NodeTables& entry : node_cache) {
        if (*entry.node == node) return entry.index;
      }
      const Table* table = find_table(node, step.table);
      node_cache.push_back(NodeTables{
          &node,
          table != nullptr ? &table->index_for(step.probe_cols) : nullptr});
      return node_cache.back().index;
    };

    // Gather + hash.
    if (probe_key_scratch_.size() < in.size()) {
      probe_key_scratch_.resize(in.size());
    }
    probe_hash_scratch_.resize(in.size());
    std::vector<const Table::JoinIndex*> row_index(in.size(), nullptr);
    for (std::size_t r = 0; r < in.size(); ++r) {
      std::vector<Value>& key = probe_key_scratch_[r];
      key.clear();
      const Value* regs = regs_matrix_.row(in[r].regs_row);
      for (const ColOp& op : step.probe) {
        key.push_back(op.kind == ColOp::Kind::kConst ? op.constant
                                                     : regs[op.slot]);
      }
      probe_hash_scratch_[r] = Table::JoinIndex::hash_key(key);
      row_index[r] = index_for_node(batch[in[r].delta].tuple.location());
    }
    // Prefetch every slot cluster before the first lookup touches one, then
    // chase each (now cached) slot to its bucket and start that line too.
    for (std::size_t r = 0; r < in.size(); ++r) {
      if (row_index[r] != nullptr) {
        row_index[r]->prefetch(probe_hash_scratch_[r]);
      }
    }
    for (std::size_t r = 0; r < in.size(); ++r) {
      if (row_index[r] != nullptr) {
        row_index[r]->prefetch_bucket(probe_hash_scratch_[r]);
      }
    }
    // Lookup pass: resolve every row's candidate list before verifying any
    // of them. A hit dereferences a slot -> entry array -> tuple -> values
    // chain of dependent loads; resolving the whole frontier first and
    // prefetching each link lets those misses overlap across rows instead
    // of serializing within each row.
    entries_scratch_.resize(in.size());
    for (std::uint32_t r = 0; r < in.size(); ++r) {
      if (row_index[r] == nullptr) {
        entries_scratch_[r] = nullptr;  // node has no such table
        continue;
      }
      ++stats_.index_probes;
      const auto* entries =
          row_index[r]->lookup(probe_hash_scratch_[r], probe_key_scratch_[r]);
      entries_scratch_[r] = entries;
      if (entries == nullptr) {
        ++batch_stats_.probe_misses;
        continue;
      }
      ++batch_stats_.probe_hits;
      __builtin_prefetch(entries->data());
    }
    for (const std::vector<Table::JoinIndex::Entry>* entries :
         entries_scratch_) {
      if (entries == nullptr) continue;
      for (const Table::JoinIndex::Entry& entry : *entries) {
        __builtin_prefetch(entry.tuple);
      }
    }
    for (const std::vector<Table::JoinIndex::Entry>* entries :
         entries_scratch_) {
      if (entries == nullptr) continue;
      for (const Table::JoinIndex::Entry& entry : *entries) {
        __builtin_prefetch(entry.tuple->values().data());
      }
    }
    // Verify pass.
    for (std::uint32_t r = 0; r < in.size(); ++r) {
      const std::vector<Table::JoinIndex::Entry>* entries =
          entries_scratch_[r];
      if (entries == nullptr) continue;
      const std::size_t n_entries = entries->size();
      std::size_t e = 0;
      for (const Table::JoinIndex::Entry& entry : *entries) {
        ++e;
        ++stats_.tuples_scanned;
        // Re-fetch the register row each iteration: materialize() may grow
        // the matrix and move its storage.
        if (verify(*entry.tuple, regs_matrix_.row(in[r].regs_row))) {
          materialize(r, *entry.tuple,
                      /*take_row=*/exclusive_rows && e == n_entries);
        }
      }
    }
    batch_stats_.rows_out += survivors.size();
  }

  const std::vector<FrontierRow>& finals = stage_rows_[plan.steps.size()];
  if (finals.empty()) return;

  // Complete matches, bucketed by delta. Expansion preserves relative root
  // order stage over stage, so finals is non-decreasing in delta; one linear
  // sweep recovers the per-delta runs. Within a run the order is arbitrary
  // as far as correctness goes -- finish_planned_matches' order-restoring
  // sort is total -- but stats and sort input stay deterministic.
  std::size_t begin = 0;
  while (begin < finals.size()) {
    const std::uint32_t delta = finals[begin].delta;
    std::size_t end = begin;
    while (end < finals.size() && finals[end].delta == delta) ++end;
    const std::size_t match_count = end - begin;
    // Assign into the pool in place: steady-state firings reuse the regs
    // and chosen capacity left behind by earlier ones.
    if (match_pool_.size() < match_count) match_pool_.resize(match_count);
    for (std::size_t f = begin; f < end; ++f) {
      const FrontierRow& final_row = finals[f];
      PlanMatch& match = match_pool_[f - begin];
      const Value* regs = regs_matrix_.row(final_row.regs_row);
      match.regs.assign(regs, regs + plan.slot_count);
      match.chosen.assign(rule.body.size(), nullptr);
      // Walk the parent chain to recover the chosen row per step.
      const FrontierRow* cursor = &final_row;
      for (std::size_t stage = plan.steps.size(); stage > 0; --stage) {
        match.chosen[plan.steps[stage - 1].body_index] = cursor->chosen;
        cursor = &stage_rows_[stage - 1][cursor->parent];
      }
      match.chosen[plan.trigger_atom] = cursor->chosen;
    }
    finish_scratch_.clear();
    finish_planned_matches(plan, match_pool_.data(), match_count, t,
                           finish_scratch_);
    for (Event& event : finish_scratch_) {
      out.push_back(BufferedEmission{delta, plan_ordinal, std::move(event)});
    }
    finish_scratch_.clear();
    begin = end;
  }
}

void Engine::publish_metrics() {
  // Delta-publish: only the growth since the last publish reaches the
  // registry, so a shared registry (EngineConfig::metrics) aggregates
  // correctly across engines and repeated runs.
  const auto publish =
      [this](const char* name, std::uint64_t cur, std::uint64_t& seen) {
        if (cur > seen) {
          metrics_->counter(name).inc(cur - seen);
          seen = cur;
        }
      };
  publish("dp.runtime.base_inserts", stats_.base_inserts,
          published_.base_inserts);
  publish("dp.runtime.base_deletes", stats_.base_deletes,
          published_.base_deletes);
  publish("dp.runtime.derivations", stats_.derivations,
          published_.derivations);
  publish("dp.runtime.underivations", stats_.underivations,
          published_.underivations);
  publish("dp.runtime.remote_messages", stats_.remote_messages,
          published_.remote_messages);
  publish("dp.runtime.events_processed", stats_.events_processed,
          published_.events_processed);
  publish("dp.runtime.index_probes", stats_.index_probes,
          published_.index_probes);
  publish("dp.runtime.tuples_scanned", stats_.tuples_scanned,
          published_.tuples_scanned);
  publish("dp.runtime.tuples_matched", stats_.tuples_matched,
          published_.tuples_matched);
  for (std::size_t i = 0; i < rule_firings_.size(); ++i) {
    if (rule_firings_[i] > rule_firings_published_[i]) {
      metrics_->counter(rule_metric_names_[i])
          .inc(rule_firings_[i] - rule_firings_published_[i]);
      rule_firings_published_[i] = rule_firings_[i];
    }
  }
  for (const auto& [node, count] : remote_by_node_) {
    std::uint64_t& seen = remote_by_node_published_[node];
    if (count > seen) {
      metrics_
          ->counter("dp.runtime.remote_messages_to." +
                    obs::sanitize_metric_segment(node))
          .inc(count - seen);
      seen = count;
    }
  }
  metrics_->gauge("dp.runtime.queue_depth")
      .set(static_cast<std::int64_t>(queue_.size()));
  metrics_->gauge("dp.runtime.queue_depth_max")
      .set_max(static_cast<std::int64_t>(queue_depth_max_));
  publish("dp.engine.batch.batches", batch_stats_.batches,
          batch_published_.batches);
  publish("dp.engine.batch.events", batch_stats_.events,
          batch_published_.events);
  publish("dp.engine.batch.probe_hits", batch_stats_.probe_hits,
          batch_published_.probe_hits);
  publish("dp.engine.batch.probe_misses", batch_stats_.probe_misses,
          batch_published_.probe_misses);
  publish("dp.engine.batch.rows_in", batch_stats_.rows_in,
          batch_published_.rows_in);
  publish("dp.engine.batch.rows_out", batch_stats_.rows_out,
          batch_published_.rows_out);
  if (batch_stats_.rows_in != 0) {
    metrics_->gauge("dp.engine.batch.survival_ratio_ppm")
        .set(static_cast<std::int64_t>(batch_stats_.rows_out * 1'000'000 /
                                       batch_stats_.rows_in));
  }
}

void Engine::reset_stats() {
  stats_ = Stats{};
  published_ = Stats{};
  batch_stats_ = BatchStats{};
  batch_published_ = BatchStats{};
  std::fill(rule_firings_.begin(), rule_firings_.end(), 0);
  std::fill(rule_firings_published_.begin(), rule_firings_published_.end(), 0);
  remote_by_node_.clear();
  remote_by_node_published_.clear();
  queue_depth_max_ = queue_.size();
  // A private registry belongs to this engine alone, so wipe it too; a
  // shared one keeps its cumulative totals (the published_ baselines above
  // make sure this engine re-contributes from zero, not negatively).
  if (own_metrics_ != nullptr) own_metrics_->reset();
}

}  // namespace dp
