// Deterministic distributed NDlog runtime (the RapidNet substitute).
//
// The engine executes a validated Program over a set of named nodes joined
// by links with fixed delays. It is a discrete-event simulator: external
// base-tuple insertions/deletions are scheduled at logical times, rule
// firings are evaluated delta-style (each arriving tuple is joined against
// the materialized state of its node), and derived heads travel to their
// destination node with the link delay. Event ordering is fully
// deterministic -- (time, sequence) -- which is what makes replay-based tree
// updating (paper sections 4.6/4.8) sound.
//
// Joins run through compiled rule plans (runtime/plan.h) by default: body
// atoms are greedily reordered, variables live in a flat register file, and
// each join step probes a secondary hash index on the table instead of
// scanning it. The pre-plan full-scan evaluator is kept as a reference
// implementation (EngineConfig::use_join_plans = false); both paths produce
// byte-identical event orders, outputs, and provenance.
//
// Deletions use counting semantics: each derivation contributes one unit of
// support to its head; when a (base or derived) tuple disappears, dependent
// derivations are deactivated and heads whose support reaches zero are
// underived, recursively (the paper models this as insertion of "delete"
// tuples into an append-only provenance; our observer interface reports the
// same UNDERIVE/DISAPPEAR information).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "ndlog/eval.h"
#include "ndlog/program.h"
#include "ndlog/table.h"
#include "obs/obs.h"
#include "runtime/observer.h"
#include "runtime/plan.h"
#include "store/batch.h"
#include "util/time.h"

namespace dp {

struct EngineConfig {
  /// Latency of a rule firing whose head stays on the same node.
  LogicalTime derive_delay = 1;
  /// Latency of delivering a head tuple to a different node when no explicit
  /// link was configured.
  LogicalTime default_link_delay = 10;
  /// If true, a constraint that throws EvalError aborts the run instead of
  /// being treated as a non-match.
  bool strict_eval = false;
  /// If true (default), rules fire through compiled plans with indexed
  /// joins; if false, through the reference full-scan evaluator. Both are
  /// byte-identical in observable behavior (asserted by the cross-variant
  /// tests); the flag exists for differential testing and benchmarking.
  bool use_join_plans = true;
  /// If true (default) and use_join_plans is set, the event loop drains
  /// same-time runs of insert events into delta batches and evaluates each
  /// (rule, trigger) over the whole batch at once: probe keys are gathered
  /// into dense scratch, hashes computed as a group, index buckets
  /// prefetched, and candidates verified over a selection vector. Outputs
  /// stay byte-identical to the row-at-a-time plan evaluator (and the
  /// full-scan reference); the flag exists so all three variants can be
  /// diffed against each other. Ignored when use_join_plans is false.
  bool use_batch_exec = true;
  /// Runaway guard: run() throws ProgramError after this many processed
  /// events. A forwarding loop in a recursive program (e.g. a routing cycle)
  /// would otherwise derive forever; real RapidNet deployments hit the same
  /// issue via TTLs. 0 disables the guard.
  std::uint64_t max_events = 100'000'000;
  /// Metrics sink for the engine's counters (dp.runtime.*). If null the
  /// engine owns a private registry, so per-engine stats stay isolated; pass
  /// &obs::default_registry() (the CLI does, for --metrics-out) or any
  /// shared registry to aggregate across engines. Counters are accumulated
  /// in plain fields on the hot path and published to the registry when a
  /// run completes or Engine::metrics()/stats() is read -- attaching a
  /// registry adds no per-event cost.
  obs::MetricsRegistry* metrics = nullptr;
  /// Emit a trace span + latency sample per rule firing while the default
  /// tracer is enabled. Costs one branch per firing when tracing is off.
  bool trace_rule_firings = true;
};

class Engine {
 public:
  explicit Engine(Program program, EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Declares a bidirectional link with the given delay. Undeclared pairs
  /// fall back to config.default_link_delay.
  void add_link(const NodeName& a, const NodeName& b, LogicalTime delay);

  /// Observers see base inserts/deletes, derivations and underivations in
  /// deterministic order. Not owned; must outlive the engine.
  void add_observer(RuntimeObserver* observer);

  /// Schedules an external base tuple insertion at logical time `at`
  /// (>= now). Throws ProgramError if the table is unknown/not base or the
  /// tuple is malformed.
  void schedule_insert(Tuple tuple, LogicalTime at);

  /// Schedules an external base tuple deletion.
  void schedule_delete(Tuple tuple, LogicalTime at);

  /// Processes events until the queue is empty (quiescence).
  void run();

  /// Processes events with time <= `until`.
  void run_until(LogicalTime until);

  /// Logical time of the last processed event.
  [[nodiscard]] LogicalTime now() const { return now_; }

  [[nodiscard]] const Program& program() const { return program_; }

  /// Node-local table (nullptr if nothing was ever stored there).
  [[nodiscard]] const Table* find_table(const NodeName& node,
                                        const std::string& table) const;

  /// True if `tuple` is live on its location node.
  [[nodiscard]] bool is_live(const Tuple& tuple) const;

  /// True if `tuple` existed at time `at`.
  [[nodiscard]] bool existed_at(const Tuple& tuple, LogicalTime at) const;

  /// Live tuples of `table` across all nodes, deterministically ordered.
  [[nodiscard]] std::vector<Tuple> live_tuples(const std::string& table) const;

  /// All node names that currently hold any state.
  [[nodiscard]] std::vector<NodeName> nodes() const;

  struct Stats {
    std::uint64_t base_inserts = 0;
    std::uint64_t base_deletes = 0;
    std::uint64_t derivations = 0;
    std::uint64_t underivations = 0;
    std::uint64_t remote_messages = 0;  // head shipped across a link
    std::uint64_t events_processed = 0;
    // Join counters (both evaluators). A healthy indexed run shows
    // tuples_scanned close to tuples_matched; the full-scan reference shows
    // tuples_scanned ~ sum of table sizes per firing.
    std::uint64_t index_probes = 0;    // secondary-index bucket lookups
    std::uint64_t tuples_scanned = 0;  // join candidates examined
    std::uint64_t tuples_matched = 0;  // candidates surviving unification
  };
  /// Façade over the dp.runtime.* registry counters: the struct mirrors what
  /// the engine has published (plus anything not yet published).
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Zeroes the engine's counters -- the Stats façade, the per-rule firing
  /// counts, the per-node remote-message counts and the queue-depth
  /// high-water mark -- so repeated scenario runs on one engine start from
  /// zero. An engine-private registry is reset too; in a shared registry
  /// (EngineConfig::metrics) the cumulative totals are left alone and only
  /// this engine's future contributions restart.
  void reset_stats();

  /// The registry this engine publishes into (after syncing pending
  /// counts). Private unless EngineConfig::metrics was set.
  [[nodiscard]] obs::MetricsRegistry& metrics() {
    publish_metrics();
    return *metrics_;
  }

  /// Number of live entries in the derivation support map (regression guard:
  /// retraction must erase exhausted entries, not leave zeroes behind).
  [[nodiscard]] std::size_t support_entries() const {
    return support_.size();
  }

 private:
  struct Event {
    LogicalTime time = 0;
    std::uint64_t seq = 0;
    enum class Kind : std::uint8_t {
      kBaseInsert,
      kBaseDelete,
      kDerivedInsert,
      kAggregate,  // head carries a placeholder at the aggregate column
    } kind = Kind::kBaseInsert;
    Tuple tuple;
    // For kDerivedInsert/kAggregate: provenance of the firing.
    std::string rule;
    std::vector<Tuple> body;
    std::size_t trigger_index = 0;
    std::int64_t agg_delta = 0;  // kAggregate: the contribution

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // One unit of support for a derived head. The head and rule are interned
  // refs (the record's body registers in records_by_body_ and is not needed
  // afterwards), so a record is 12 bytes however wide the tuples are.
  struct DerivRecord {
    TupleRef head = kNoTupleRef;
    NameRef rule = kNoName;
    bool active = true;
  };

  // Tie-breaking at equal times is (time, seq), with seqs drawn from two
  // bands: externally scheduled base events take [0, 2^48) in scheduling
  // order, engine-generated events (derivations, aggregates) take
  // [2^48, ...) in creation order. Batch callers schedule every base event
  // before run(), so the bands reproduce the historical single-counter
  // order exactly (base events were scheduled first and held the lowest
  // seqs). What the bands add is *incremental* feeding: a base event
  // scheduled mid-run -- after some derivations were already queued -- still
  // sorts before every equal-time derived event, exactly where batch
  // scheduling would have put it. The live-ingest tier (src/ingest) depends
  // on this to keep its always-current engine byte-identical to a full
  // replay of the same event prefix.
  static constexpr std::uint64_t kInternalSeqBand = 1ull << 48;

  /// Enqueues an engine-generated event (internal seq band).
  void push_event(Event event);
  /// Enqueues an externally scheduled base event (low seq band).
  void push_external_event(Event event);
  void enqueue(Event event);
  /// Moves the front (earliest) event out of the queue. Precondition: the
  /// queue is non-empty.
  Event pop_event();
  void process(const Event& event);
  void process_insert(const Event& event);
  void process_delete(const Tuple& tuple, LogicalTime t);

  /// Resolves an aggregate firing: reads the group's previous value, builds
  /// the new head tuple, chains the previous aggregate into the provenance
  /// body, and hands over to process_insert. Serialized through the event
  /// queue, so concurrent contributions never lose updates.
  void process_aggregate(const Event& event);

  /// Cascades support-count maintenance after `tuple` disappeared:
  /// derivations that consumed it are deactivated and heads whose support
  /// reaches zero are underived, recursively (same timestamp).
  void retract_dependents_of(TupleRef tuple, LogicalTime t);

  /// Reference evaluator: joins `arrival` (already bound at body position
  /// `atom_index` of `rule`) against node-local state by scanning each
  /// remaining table, and fires the rule for every satisfying binding.
  void fire_rule(const Rule& rule, std::size_t atom_index,
                 const Tuple& arrival, LogicalTime t);

  /// Plan evaluator: same semantics as fire_rule, but joins through the
  /// compiled plan -- indexed probes, flat registers, reordered atoms --
  /// then restores the reference candidate order before firing, so both
  /// evaluators schedule identical event sequences.
  void fire_rule_planned(const RulePlan& plan, const Tuple& arrival,
                         LogicalTime t);

  // --- batch execution (EngineConfig::use_batch_exec) ---

  /// One complete join match: the register file plus the chosen row per
  /// original body atom. Both plan evaluators (row DFS and batch pipeline)
  /// produce these; finish_planned_matches turns them into events.
  struct PlanMatch {
    Regs regs;
    std::vector<const Tuple*> chosen;
  };

  /// An event produced by a batched firing, tagged with its origin so the
  /// batch can restore the row evaluator's scheduling order: sorting by
  /// (delta position in the batch, plan ordinal for that trigger table),
  /// stably, reproduces exactly the order in which the row loop would have
  /// called push_event -- and therefore the same internal sequence numbers.
  struct BufferedEmission {
    std::uint32_t delta = 0;
    std::uint32_t plan_ordinal = 0;
    Event event;
  };

  /// One row of the batch join frontier: a register-file row, the delta it
  /// descends from, the candidate chosen at this step, and a link to its
  /// parent row one step earlier (the chosen chain is reconstructed by
  /// walking parents).
  struct FrontierRow {
    std::uint32_t regs_row = 0;
    std::uint32_t delta = 0;
    std::uint32_t parent = 0;
    const Tuple* chosen = nullptr;
  };

  /// dp.engine.batch.* counters, delta-published like Stats.
  struct BatchStats {
    std::uint64_t batches = 0;
    std::uint64_t events = 0;        // events processed through batches
    std::uint64_t probe_hits = 0;    // batch probes that found a bucket
    std::uint64_t probe_misses = 0;  // batch probes that found nothing
    std::uint64_t rows_in = 0;       // frontier rows entering a join step
    std::uint64_t rows_out = 0;      // frontier rows surviving it
  };

  /// Pops and processes the next unit of work. Row/full-scan variants: one
  /// event. Batch variant: a same-time run of insert events drained into
  /// delta batches -- long runs are extracted from the heap wholesale (one
  /// partition pass instead of one sift per event) and consumed, batch by
  /// batch with ineligible events processed solo in between, within this
  /// one call. `until` bounds admission when `bounded` (run_until).
  void step_queue(bool bounded, LogicalTime until);

  /// True if `event` can join the batch being formed: an insert at the
  /// batch's time whose tuple neither duplicates/displaces a live row nor
  /// collides with a key already pending in the batch, and whose table is
  /// not probed by any rule an earlier batched delta triggers (those
  /// firings must not see it -- the row engine would not have inserted it
  /// yet). `decl`/`ord` are the event table's declaration and ordinal,
  /// resolved by the caller (admission caches them across a run).
  [[nodiscard]] bool batch_admissible(const Event& event, LogicalTime t,
                                      const TableDecl& decl,
                                      std::uint32_t ord) const;

  /// Processes a run of admissible insert events as one batch: phase A
  /// inserts every tuple and notifies observers in delta order (tuples
  /// interned through one TupleStore::intern_batch), phase B fires each
  /// (rule, trigger) once over all its deltas, then emissions are sorted
  /// back into the row evaluator's scheduling order and enqueued. The batch
  /// is a read-only slice (of the drained run or of batch_scratch_).
  void process_batch(const Event* batch, std::size_t count);

  /// Batch evaluator: joins every delta of `deltas` (indices into `batch`,
  /// all on `plan`'s trigger table) through the plan as one frontier --
  /// gather probe keys, hash, prefetch, lookup, verify -- and appends the
  /// resulting events to `out` tagged for order restoration. Counter
  /// semantics are identical to the row evaluator: one index probe per
  /// frontier row, one scanned per candidate, one matched per survivor.
  void fire_rule_batch(const RulePlan& plan, std::uint32_t plan_ordinal,
                       const Event* batch,
                       const std::vector<std::uint32_t>& deltas, LogicalTime t,
                       std::vector<BufferedEmission>& out);

  /// Shared tail of both plan evaluators: restores the reference candidate
  /// order, evaluates assigns/constraints/argmax and the head, counts the
  /// firing, and appends the scheduled events to `out` (not yet enqueued --
  /// the row path pushes them immediately, the batch path buffers them for
  /// order restoration).
  void finish_planned_matches(const RulePlan& plan, PlanMatch* matches,
                              std::size_t count, LogicalTime t,
                              std::vector<Event>& out);

  /// Attempts to unify `tuple` with `atom` under `bindings`; returns false
  /// on mismatch, otherwise extends `bindings`.
  static bool unify(const BodyAtom& atom, const Tuple& tuple,
                    Bindings& bindings);

  Table& table_for(const Tuple& tuple);
  [[nodiscard]] LogicalTime delivery_delay(const NodeName& from,
                                           const NodeName& to) const;

  /// Syncs the gap between the hot-path counters and what the registry has
  /// already seen (delta-publish, so a shared registry aggregates correctly
  /// across engines and repeated runs).
  void publish_metrics();

  Program program_;
  EngineConfig config_;
  // rules_listening_to() result per table, precomputed: the per-event hot
  // path must not rescan (and reallocate) the rule list.
  std::map<std::string, std::vector<std::size_t>> listeners_;
  // Compiled join plans per trigger table, in (rule, atom) firing order.
  std::map<std::string, std::vector<RulePlan>> plans_;
  std::map<NodeName, std::map<std::string, Table>> state_;
  std::map<std::pair<NodeName, NodeName>, LogicalTime> links_;
  // Min-heap on (time, seq) via std::push_heap/std::pop_heap. A raw vector
  // (rather than std::priority_queue) lets pop_event() move the element out
  // instead of copying the tuple and provenance body on every event.
  std::vector<Event> queue_;
  std::uint64_t next_seq_ = 0;           // internal band (derivations)
  std::uint64_t next_external_seq_ = 0;  // external band (scheduled bases)
  LogicalTime now_ = 0;
  std::vector<RuntimeObserver*> observers_;

  std::vector<DerivRecord> records_;
  // Support bookkeeping keyed by interned refs: O(1) hashes of a 4-byte key
  // instead of ordered full-tuple comparisons, and no second tuple copy.
  std::unordered_map<TupleRef, std::vector<std::size_t>> records_by_body_;
  std::unordered_map<TupleRef, std::vector<std::size_t>> records_by_head_;
  std::unordered_map<TupleRef, std::int64_t> support_;
  // Scratch for the per-derivation body refs handed to observers (reused so
  // the notify path does not allocate per firing).
  std::vector<TupleRef> body_refs_scratch_;

  // Hot-path counters are plain (the engine is single-threaded); they are
  // delta-published into metrics_ when a run completes. published_ /
  // *_published_ remember what the registry has already absorbed.
  Stats stats_;
  Stats published_;
  std::vector<std::uint64_t> rule_firings_;
  std::vector<std::uint64_t> rule_firings_published_;
  std::map<NodeName, std::uint64_t> remote_by_node_;
  std::map<NodeName, std::uint64_t> remote_by_node_published_;
  // Precomputed per-rule labels so the firing hot path never concatenates:
  // span names "rule:<name>" and metric names
  // "dp.runtime.rule_firings.<name>".
  std::vector<std::string> rule_span_labels_;
  std::vector<std::string> rule_metric_names_;
  std::size_t queue_depth_max_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;    // publish target (never null)
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;  // when config.metrics==null
  obs::Histogram* fire_hist_ = nullptr;  // dp.runtime.rule_fire_us, cached
  // Quantile-sketch twin of fire_hist_ (same series name; exported as the
  // _p50/_p95/_p99/_p999 gauges). Observed under the same traced-firing gate,
  // so the untraced hot path stays branch-free.
  obs::QuantileSketch* fire_sketch_ = nullptr;

  // --- batch execution state (only populated when batching is on) ---
  // Per-table bitmask of the tables probed by any plan the table triggers
  // (row-major, mask_words_ words per table). Batch formation refuses to
  // admit an event whose table is probed by an earlier batched delta.
  std::unordered_map<std::string, std::uint32_t> table_ord_;
  std::size_t mask_words_ = 0;
  std::vector<std::uint64_t> probe_masks_;
  // Formation/processing scratch, reused across batches.
  std::vector<std::uint64_t> forbidden_scratch_;
  std::set<std::tuple<NodeName, std::string, std::vector<Value>>>
      pending_keys_;
  std::vector<Event> batch_scratch_;
  // A same-time run bulk-drained out of the heap (see step_queue): extracted
  // with one partition pass instead of one heap sift per event, consumed as
  // batch slices and solo events within a single step.
  std::vector<Event> run_scratch_;
  // (seq, run position) keys for ordering a drained run: sorting these and
  // moving each Event once beats sorting the Event objects themselves.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> run_keys_;
  std::vector<BufferedEmission> emission_scratch_;
  std::vector<Event> finish_scratch_;  // row-path finish_planned_matches out
  // finish_planned_matches' surviving-match indexes (reused per firing).
  std::vector<std::size_t> satisfying_scratch_;
  // Batch-path match staging: grown high-water and reassigned in place, so
  // steady-state firings reuse the regs/chosen capacity of earlier ones.
  std::vector<PlanMatch> match_pool_;
  // Join frontier scratch: one register row per live partial match, one
  // FrontierRow vector per pipeline stage (kept -- chosen chains are
  // reconstructed by walking stage parents).
  store::ValueMatrix regs_matrix_;
  std::vector<std::vector<FrontierRow>> stage_rows_;
  std::vector<std::vector<Value>> probe_key_scratch_;
  std::vector<std::uint64_t> probe_hash_scratch_;
  // Per-frontier-row candidate lists, resolved in one pass so the entry and
  // tuple cache lines can be prefetched before the verify pass reads them.
  std::vector<const std::vector<Table::JoinIndex::Entry>*> entries_scratch_;

  BatchStats batch_stats_;
  BatchStats batch_published_;
  obs::Histogram* batch_size_hist_ = nullptr;  // dp.engine.batch.size, cached
};

}  // namespace dp
