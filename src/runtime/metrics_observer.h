// Per-table activity metrics through the RuntimeObserver interface: counts
// base inserts/deletes and derive/underive events per table into a
// MetricsRegistry as `dp.runtime.table.<table>.<action>`.
//
// This complements the engine's built-in counters (which are per rule, not
// per table) and demonstrates the observer route for attaching metrics to an
// engine one does not own. replay() attaches one to every engine it builds,
// so CLI metrics dumps include the per-table breakdown.
#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "runtime/observer.h"
#include "store/store.h"

namespace dp {

class MetricsObserver final : public RuntimeObserver {
 public:
  explicit MetricsObserver(obs::MetricsRegistry& registry)
      : registry_(registry) {}

  void on_base_insert(TupleRef tuple, LogicalTime /*t*/,
                      bool /*is_event*/) override {
    cell(tuple, kInserts).inc();
  }
  void on_base_delete(TupleRef tuple, LogicalTime /*t*/) override {
    cell(tuple, kDeletes).inc();
  }
  void on_derive(TupleRef head, NameRef /*rule*/,
                 const std::vector<TupleRef>& /*body*/,
                 std::size_t /*trigger_index*/, LogicalTime /*t*/,
                 bool /*is_event*/) override {
    cell(head, kDerives).inc();
  }
  void on_underive(TupleRef head, NameRef /*rule*/, TupleRef /*cause*/,
                   LogicalTime /*t*/) override {
    cell(head, kUnderives).inc();
  }

 private:
  enum Action { kInserts, kDeletes, kDerives, kUnderives };

  // Counter lookups take the registry mutex; cache the resolved pointers,
  // keyed by the interned table id (a 4-byte hash, no string compare), so
  // steady-state cost is one map find + one relaxed add.
  obs::Counter& cell(TupleRef tuple, Action action) {
    static constexpr const char* kActionName[] = {"inserts", "deletes",
                                                  "derives", "underives"};
    const NameRef table = global_store().table_id(tuple);
    obs::Counter*& slot = cache_[table][action];
    if (slot == nullptr) {
      slot = &registry_.counter(
          "dp.runtime.table." +
          obs::sanitize_metric_segment(global_store().table_name(tuple)) +
          "." + kActionName[action]);
    }
    return *slot;
  }

  obs::MetricsRegistry& registry_;
  std::unordered_map<NameRef, std::array<obs::Counter*, 4>> cache_;
};

}  // namespace dp
