// Per-table activity metrics through the RuntimeObserver interface: counts
// base inserts/deletes and derive/underive events per table into a
// MetricsRegistry as `dp.runtime.table.<table>.<action>`.
//
// This complements the engine's built-in counters (which are per rule, not
// per table) and demonstrates the observer route for attaching metrics to an
// engine one does not own. replay() attaches one to every engine it builds,
// so CLI metrics dumps include the per-table breakdown.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "ndlog/tuple.h"
#include "obs/metrics.h"
#include "runtime/observer.h"

namespace dp {

class MetricsObserver final : public RuntimeObserver {
 public:
  explicit MetricsObserver(obs::MetricsRegistry& registry)
      : registry_(registry) {}

  void on_base_insert(const Tuple& tuple, LogicalTime /*t*/,
                      bool /*is_event*/) override {
    cell(tuple.table(), kInserts).inc();
  }
  void on_base_delete(const Tuple& tuple, LogicalTime /*t*/) override {
    cell(tuple.table(), kDeletes).inc();
  }
  void on_derive(const Tuple& head, const std::string& /*rule*/,
                 const std::vector<Tuple>& /*body*/,
                 std::size_t /*trigger_index*/, LogicalTime /*t*/,
                 bool /*is_event*/) override {
    cell(head.table(), kDerives).inc();
  }
  void on_underive(const Tuple& head, const std::string& /*rule*/,
                   const Tuple& /*cause*/, LogicalTime /*t*/) override {
    cell(head.table(), kUnderives).inc();
  }

 private:
  enum Action { kInserts, kDeletes, kDerives, kUnderives };

  // Counter lookups take the registry mutex; cache the resolved pointers so
  // steady-state cost is one map find + one relaxed add.
  obs::Counter& cell(const std::string& table, Action action) {
    static constexpr const char* kActionName[] = {"inserts", "deletes",
                                                  "derives", "underives"};
    obs::Counter*& slot = cache_[table][action];
    if (slot == nullptr) {
      slot = &registry_.counter("dp.runtime.table." +
                                obs::sanitize_metric_segment(table) + "." +
                                kActionName[action]);
    }
    return *slot;
  }

  obs::MetricsRegistry& registry_;
  std::map<std::string, std::array<obs::Counter*, 4>> cache_;
};

}  // namespace dp
