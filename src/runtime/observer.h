// Observer interface through which the runtime reports execution events.
//
// Both the provenance recorder (paper section 5, "provenance recorder") and
// the logging engine (section 5, "logging engine") attach here. Observers
// are notified synchronously, in registration order, in deterministic event
// order.
//
// Callbacks carry interned refs (store/store.h), not tuple copies: the
// engine interns each notified tuple once into the process-wide store, and
// every observer downstream -- recorder, event log, metrics -- shares that
// single record. An observer that needs value semantics resolves the ref
// (`resolve_tuple`), which returns the store's canonical copy.
#pragma once

#include <vector>

#include "store/store.h"
#include "util/time.h"

namespace dp {

class RuntimeObserver {
 public:
  virtual ~RuntimeObserver() = default;

  /// A base tuple was inserted on its location node at `t`. `is_event` is
  /// true for non-materialized (event) tables whose tuples exist only for an
  /// instant.
  virtual void on_base_insert(TupleRef tuple, LogicalTime t, bool is_event) {
    (void)tuple; (void)t; (void)is_event;
  }

  /// A base tuple was deleted (externally, or displaced by key upsert).
  virtual void on_base_delete(TupleRef tuple, LogicalTime t) {
    (void)tuple; (void)t;
  }

  /// `head` was derived via `rule` from `body` (in rule body order); body
  /// tuple `trigger_index` is the one whose appearance triggered the firing.
  virtual void on_derive(TupleRef head, NameRef rule,
                         const std::vector<TupleRef>& body,
                         std::size_t trigger_index, LogicalTime t,
                         bool is_event) {
    (void)head; (void)rule; (void)body; (void)trigger_index; (void)t;
    (void)is_event;
  }

  /// `head` lost its last remaining derivation (support reached zero)
  /// because `cause` was deleted; `rule` is the rule of the removed
  /// derivation.
  virtual void on_underive(TupleRef head, NameRef rule, TupleRef cause,
                           LogicalTime t) {
    (void)head; (void)rule; (void)cause; (void)t;
  }
};

}  // namespace dp
