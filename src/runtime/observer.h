// Observer interface through which the runtime reports execution events.
//
// Both the provenance recorder (paper section 5, "provenance recorder") and
// the logging engine (section 5, "logging engine") attach here. Observers
// are notified synchronously, in registration order, in deterministic event
// order.
#pragma once

#include <string>
#include <vector>

#include "ndlog/tuple.h"
#include "util/time.h"

namespace dp {

class RuntimeObserver {
 public:
  virtual ~RuntimeObserver() = default;

  /// A base tuple was inserted on `tuple.location()` at `t`. `is_event` is
  /// true for non-materialized (event) tables whose tuples exist only for an
  /// instant.
  virtual void on_base_insert(const Tuple& tuple, LogicalTime t,
                              bool is_event) {
    (void)tuple; (void)t; (void)is_event;
  }

  /// A base tuple was deleted (externally, or displaced by key upsert).
  virtual void on_base_delete(const Tuple& tuple, LogicalTime t) {
    (void)tuple; (void)t;
  }

  /// `head` was derived via `rule` from `body` (in rule body order); body
  /// tuple `trigger_index` is the one whose appearance triggered the firing.
  virtual void on_derive(const Tuple& head, const std::string& rule,
                         const std::vector<Tuple>& body,
                         std::size_t trigger_index, LogicalTime t,
                         bool is_event) {
    (void)head; (void)rule; (void)body; (void)trigger_index; (void)t;
    (void)is_event;
  }

  /// `head` lost its last remaining derivation (support reached zero)
  /// because `cause` was deleted; `rule` is the rule of the removed
  /// derivation.
  virtual void on_underive(const Tuple& head, const std::string& rule,
                           const Tuple& cause, LogicalTime t) {
    (void)head; (void)rule; (void)cause; (void)t;
  }
};

}  // namespace dp
