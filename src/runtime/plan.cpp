#include "runtime/plan.h"

#include <algorithm>
#include <set>

namespace dp {

namespace {

/// Variable-name -> register-slot mapping built up during compilation.
class SlotTable {
 public:
  /// Slot of `name`, allocating the next free slot on first use.
  std::size_t slot_of(const std::string& name) {
    auto [it, inserted] = slots_.emplace(name, next_);
    if (inserted) ++next_;
    return it->second;
  }

  /// Slot of `name`; throws if the variable was never allocated (indicates
  /// a rule-safety bug -- validation runs before compilation).
  std::size_t require(const std::string& name) const {
    auto it = slots_.find(name);
    if (it == slots_.end()) {
      throw EvalError("plan compiler: unbound variable " + name);
    }
    return it->second;
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    return slots_.count(name) != 0;
  }

  [[nodiscard]] std::size_t size() const { return next_; }

  /// Slots in variable-name order (std::map iteration).
  [[nodiscard]] std::vector<std::size_t> slots_by_name() const {
    std::vector<std::size_t> out;
    out.reserve(slots_.size());
    for (const auto& [name, slot] : slots_) out.push_back(slot);
    return out;
  }

 private:
  std::map<std::string, std::size_t> slots_;
  std::size_t next_ = 0;
};

/// Number of columns of `atom` that would be bound given `slots` (constants
/// plus variables already carrying a slot).
std::size_t bound_columns(const BodyAtom& atom, const SlotTable& slots) {
  std::size_t n = 0;
  for (const AtomArg& arg : atom.args) {
    if (!arg.is_var || slots.contains(arg.var)) ++n;
  }
  return n;
}

/// Compiles the unification pattern of one atom: constants match, first
/// variable occurrences bind a slot, repeats check it. `slots` gains the
/// newly bound variables.
std::vector<ColOp> compile_atom_ops(const BodyAtom& atom, SlotTable& slots) {
  std::vector<ColOp> ops;
  ops.reserve(atom.args.size());
  std::set<std::string> bound_here;
  for (std::size_t col = 0; col < atom.args.size(); ++col) {
    const AtomArg& arg = atom.args[col];
    ColOp op;
    op.col = col;
    if (!arg.is_var) {
      op.kind = ColOp::Kind::kConst;
      op.constant = arg.constant;
    } else if (slots.contains(arg.var) || bound_here.count(arg.var) != 0) {
      op.kind = ColOp::Kind::kCheck;
      op.slot = slots.slot_of(arg.var);
    } else {
      op.kind = ColOp::Kind::kBind;
      op.slot = slots.slot_of(arg.var);
      bound_here.insert(arg.var);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

RulePlan compile_plan(const Program& program, const Rule& rule,
                      std::size_t rule_index, std::size_t trigger_atom) {
  RulePlan plan;
  plan.rule_index = rule_index;
  plan.trigger_atom = trigger_atom;

  SlotTable slots;
  plan.trigger_ops = compile_atom_ops(rule.body[trigger_atom], slots);

  // Greedy join order over the remaining atoms: always place the atom with
  // the most bound columns next (ties by body position). More bound columns
  // means a narrower index probe, i.e. fewer candidates per step.
  std::vector<std::size_t> remaining;
  for (std::size_t i = 0; i < rule.body.size(); ++i) {
    if (i != trigger_atom) remaining.push_back(i);
  }
  while (!remaining.empty()) {
    std::size_t best = 0;
    std::size_t best_score = 0;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      const std::size_t score = bound_columns(rule.body[remaining[i]], slots);
      if (i == 0 || score > best_score) {
        best = i;
        best_score = score;
      }
    }
    const std::size_t body_index = remaining[best];
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));

    const BodyAtom& atom = rule.body[body_index];
    JoinStep step;
    step.body_index = body_index;
    step.table = atom.table;
    // Identify probe columns *before* this atom binds anything: a variable
    // repeated within the atom only becomes bound mid-candidate.
    std::vector<bool> is_probe(atom.args.size(), false);
    for (std::size_t col = 0; col < atom.args.size(); ++col) {
      const AtomArg& arg = atom.args[col];
      is_probe[col] = !arg.is_var || slots.contains(arg.var);
    }
    step.ops = compile_atom_ops(atom, slots);
    for (const ColOp& op : step.ops) {
      if (is_probe[op.col]) {
        step.probe_cols.push_back(op.col);
        step.probe.push_back(op);
      } else {
        int src = -1;
        if (op.kind == ColOp::Kind::kCheck) {
          // The kBind for this slot precedes it within the same atom (see
          // residual_src's invariant in plan.h).
          for (const ColOp& earlier : step.ops) {
            if (earlier.col >= op.col) break;
            if (earlier.kind == ColOp::Kind::kBind &&
                earlier.slot == op.slot) {
              src = static_cast<int>(earlier.col);
              break;
            }
          }
        }
        step.residual.push_back(op);
        step.residual_src.push_back(src);
      }
    }
    plan.steps.push_back(std::move(step));
  }

  const auto resolve = [&slots](const std::string& name) {
    return slots.require(name);
  };
  for (const Assignment& assign : rule.assigns) {
    RulePlan::CompiledAssign compiled;
    compiled.expr = compile_expr(*assign.expr, resolve);
    compiled.slot = slots.slot_of(assign.var);  // may introduce a new slot
    plan.assigns.push_back(std::move(compiled));
  }
  for (const ExprPtr& constraint : rule.constraints) {
    plan.constraints.push_back(compile_expr(*constraint, resolve));
  }
  plan.head_args.reserve(rule.head.args.size());
  for (const ExprPtr& arg : rule.head.args) {
    if (rule.agg && arg->kind == Expr::Kind::kVar &&
        arg->var == rule.agg->var) {
      // Aggregate placeholder; the real value is resolved when the
      // serialized aggregate event is processed.
      SlotExpr placeholder;
      placeholder.kind = Expr::Kind::kConst;
      placeholder.constant = Value(std::int64_t{0});
      plan.head_args.push_back(std::move(placeholder));
      continue;
    }
    plan.head_args.push_back(compile_expr(*arg, resolve));
  }
  if (rule.argmax_var) plan.argmax_slot = slots.require(*rule.argmax_var);
  if (rule.agg && rule.agg->kind == AggSpec::Kind::kSum) {
    plan.agg_sum_slot = slots.require(rule.agg->sum_var);
  }
  plan.slot_count = slots.size();
  plan.slots_by_name = slots.slots_by_name();
  plan.body_key_cols.reserve(rule.body.size());
  for (const BodyAtom& atom : rule.body) {
    plan.body_key_cols.push_back(program.table(atom.table).key_columns);
  }
  return plan;
}

}  // namespace

std::map<std::string, std::vector<RulePlan>> compile_rule_plans(
    const Program& program) {
  std::map<std::string, std::vector<RulePlan>> plans;
  for (const auto& [table_name, decl] : program.tables()) {
    std::vector<RulePlan> for_table;
    for (const Program::BodyOccurrence& occurrence :
         program.body_occurrences_of(table_name)) {
      for_table.push_back(compile_plan(program,
                                       program.rules()[occurrence.rule],
                                       occurrence.rule, occurrence.atom));
    }
    if (!for_table.empty()) plans.emplace(table_name, std::move(for_table));
  }
  return plans;
}

}  // namespace dp
