// Compiled join plans for the delta evaluator.
//
// The engine fires a rule whenever a tuple arrives for one of its body
// atoms. Instead of re-resolving variable names and scanning whole tables on
// every firing, a compilation pass at Engine construction precomputes, for
// each (rule, trigger-atom) pair:
//
//  * a register file layout: every variable name is resolved once to an
//    integer slot, so the join carries a flat vector<Value> instead of a
//    string-keyed map;
//  * a greedy join order: the remaining body atoms are reordered so atoms
//    with more columns bound (by the trigger and by earlier steps) join
//    first -- those probes are the most selective;
//  * per-step probe specs: the set of columns bound at probe time, which the
//    engine turns into an O(1) lookup on the table's secondary hash index
//    (ndlog/table.h) instead of a full scan;
//  * slot-compiled assignments, constraints, and head expressions
//    (ndlog/eval.h, SlotExpr).
//
// Reordering does not change observable behavior: after enumeration the
// engine restores the reference engine's candidate order (see
// Engine::fire_rule_planned), so scenario outputs and provenance trees are
// byte-identical to the full-scan path.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ndlog/eval.h"
#include "ndlog/program.h"
#include "ndlog/table.h"

namespace dp {

/// One column of a body-atom pattern, resolved at compile time.
struct ColOp {
  enum class Kind : std::uint8_t {
    kConst,  // column must equal `constant`
    kCheck,  // column must equal regs[slot] (slot written earlier)
    kBind,   // write the column value into regs[slot] (first occurrence)
  };
  Kind kind = Kind::kConst;
  std::size_t col = 0;   // column position in the atom
  std::size_t slot = 0;  // kCheck / kBind
  Value constant;        // kConst
};

/// One non-trigger body atom, in greedy execution order.
struct JoinStep {
  std::size_t body_index = 0;  // original position in Rule::body
  std::string table;
  /// Every column, in column order (used on the full-scan fallback).
  std::vector<ColOp> ops;
  /// Columns bound at probe time (sorted): the secondary-index key. Empty
  /// means nothing is bound and the step degrades to a full scan.
  ColumnSet probe_cols;
  /// How to build the probe key, aligned with probe_cols (kConst/kCheck).
  std::vector<ColOp> probe;
  /// Ops for the remaining columns (kBind, plus kCheck for a variable
  /// repeated within this same atom) -- all a bucket candidate still needs.
  std::vector<ColOp> residual;
  /// Aligned with `residual`: for a kCheck op, the column of this same atom
  /// whose kBind wrote the checked slot (every residual kCheck is such an
  /// intra-atom repeat -- a variable bound before the atom puts all its
  /// columns in the probe set); -1 for kBind/kConst ops. Lets the batch
  /// verifier test a candidate column-against-column without materializing
  /// its register writes first.
  std::vector<int> residual_src;
};

/// The full compiled plan for one (rule, trigger-atom) pair.
struct RulePlan {
  std::size_t rule_index = 0;
  std::size_t trigger_atom = 0;  // index into Rule::body
  /// Unification of the arriving tuple against the trigger atom.
  std::vector<ColOp> trigger_ops;
  /// Remaining body atoms, greedily ordered by bound-column count.
  std::vector<JoinStep> steps;
  /// Size of the register file.
  std::size_t slot_count = 0;

  struct CompiledAssign {
    std::size_t slot = 0;
    SlotExpr expr;
  };
  std::vector<CompiledAssign> assigns;   // in source order
  std::vector<SlotExpr> constraints;     // in source order
  /// Head argument expressions; for aggregate rules the aggregate column is
  /// compiled as a constant-0 placeholder (resolved in process_aggregate).
  std::vector<SlotExpr> head_args;
  std::optional<std::size_t> argmax_slot;
  std::optional<std::size_t> agg_sum_slot;  // sum aggregates: the summed var
  /// Slots of all named variables in variable-name order. Comparing regs in
  /// this sequence replicates the reference engine's Bindings-map ordering
  /// (argmax tie-breaking).
  std::vector<std::size_t> slots_by_name;
  /// Per original body atom: that table's declared key columns (empty =
  /// whole tuple). Projecting a chosen row on these yields its enumeration
  /// rank in the reference engine's table scan; used to restore the
  /// reference candidate order after the reordered join.
  std::vector<ColumnSet> body_key_cols;
};

/// Compiles every (rule, trigger-atom) plan of `program`, grouped by trigger
/// table in (rule index, atom index) order -- the delta evaluator's firing
/// order. The program must already be validated.
std::map<std::string, std::vector<RulePlan>> compile_rule_plans(
    const Program& program);

}  // namespace dp
