#include "sdn/program.h"

#include "ndlog/parser.h"

namespace dp::sdn {

std::string_view program_source() {
  return R"(
    // ---------------------------------------------------------- data plane
    table packet(4) base immutable event.       // (@Sw, Pkt, Src, Dst)
    table packetAt(4) derived event.
    table matched(5) derived event.             // (@Sw, Pkt, Src, Dst, Act)
    table delivered(4) derived.                 // (@Host, Pkt, Src, Dst)
    table dropped(4) derived.                   // (@Sw, Pkt, Src, Dst)
    table flowEntry(4) derived keys(0, 1).      // (@Sw, Prio, Prefix, Act)

    // -------------------------------------------------------- control plane
    table policyRoute(5) base mutable keys(0, 1, 2).  // (@C, Sw, Prio, Pfx, Act)
    table switchUp(2) base mutable.                   // (@C, Sw)
    table link(3) base immutable.                     // (@C, Sw, Out)
    table compiled(5) derived keys(0, 1, 2).

    // Policy compilation: a route is only installed if the switch is up and
    // its primary output is physically adjacent; drop rules need no output.
    rule c1 compiled(@Ctl, Sw, Prio, Prefix, Act) :-
        policyRoute(@Ctl, Sw, Prio, Prefix, Act),
        switchUp(@Ctl, Sw),
        link(@Ctl, Sw, Out),
        Out == f_out(Act, 0).
    rule c2 compiled(@Ctl, Sw, Prio, Prefix, Act) :-
        policyRoute(@Ctl, Sw, Prio, Prefix, Act),
        switchUp(@Ctl, Sw),
        Act == "dr".
    rule c3 flowEntry(@Sw, Prio, Prefix, Act) :-
        compiled(@Ctl, Sw, Prio, Prefix, Act).

    // ------------------------------------------------------------ switches
    rule s1 packetAt(@Sw, Pkt, Src, Dst) :- packet(@Sw, Pkt, Src, Dst).

    // OpenFlow semantics: the highest-priority matching entry wins.
    rule s2 argmax Prio
      matched(@Sw, Pkt, Src, Dst, Act) :-
        packetAt(@Sw, Pkt, Src, Dst),
        flowEntry(@Sw, Prio, Prefix, Act),
        f_matches(Src, Prefix) == 1.

    // Actions: forward to a switch, deliver to a host, mirror, or drop.
    rule s3 packetAt(@Out, Pkt, Src, Dst) :-
        matched(@Sw, Pkt, Src, Dst, Act),
        Out := f_out(Act, 0), f_strlen(Out) > 2.
    rule s4 delivered(@Out, Pkt, Src, Dst) :-
        matched(@Sw, Pkt, Src, Dst, Act),
        Out := f_out(Act, 0), f_strlen(Out) <= 2, Out != "dr".
    rule s5 delivered(@Mir, Pkt, Src, Dst) :-
        matched(@Sw, Pkt, Src, Dst, Act),
        Mir := f_out(Act, 1), f_strlen(Mir) > 0, f_strlen(Mir) <= 2.
    rule s6 dropped(@Sw, Pkt, Src, Dst) :-
        matched(@Sw, Pkt, Src, Dst, Act), Act == "dr".
    rule s7 packetAt(@Mir, Pkt, Src, Dst) :-
        matched(@Sw, Pkt, Src, Dst, Act),
        Mir := f_out(Act, 1), f_strlen(Mir) > 2.
  )";
}

Program make_program() { return parse_program(program_source()); }

}  // namespace dp::sdn
