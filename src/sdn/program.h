// The SDN system model: an OpenFlow-style data plane plus a small controller
// that compiles operator policy into flow entries (paper sections 2 and 6.1).
//
// Data plane (per switch):
//   packet(@Sw, Pkt, Src, Dst)         -- external stimulus (immutable event)
//   flowEntry(@Sw, Prio, Prefix, Act)  -- the flow table (derived from the
//                                         controller's compiled policy)
//   matched(...)                       -- the highest-priority matching entry
//                                         wins (argmax = OpenFlow priority)
//   action strings: "sw3" forwards to a switch, "w1" delivers to a host,
//   "w1+d1" delivers and mirrors (multi-output action), "dr" drops.
//   The match field is the packet's *source* address: the paper's SDN1
//   scenario steers traffic from untrusted source subnets.
//
// Control plane (on node "ctl"):
//   policyRoute(@Ctl, Sw, Prio, Prefix, Act) -- operator intent (mutable!)
//   switchUp(@Ctl, Sw)                       -- liveness view (mutable)
//   link(@Ctl, Sw, Out)                      -- physical adjacency
//                                               (immutable: you cannot fix a
//                                               bug by inventing a cable)
//   compiled(...) -> flowEntry(...)          -- the compilation pipeline
//
// Root causes therefore live in policyRoute: DiffProv's repairs propagate
// down through flowEntry -> compiled -> policyRoute via head-expression
// inversion, exactly the downward taint propagation of paper section 4.5.
#pragma once

#include <string_view>

#include "ndlog/program.h"

namespace dp::sdn {

/// NDlog source of the switch + controller model.
std::string_view program_source();

/// Parsed and validated program (fresh instance).
Program make_program();

/// Node-name conventions: switches have names longer than 2 characters
/// ("sw1"), hosts exactly 2 ("w1", "d1", "h1"), the controller is "ctl".
inline constexpr const char* kController = "ctl";

}  // namespace dp::sdn
