#include "sdn/scenario.h"

#include "sdn/program.h"

namespace dp::sdn {

namespace {

Tuple make(const std::string& table, std::vector<Value> values) {
  return Tuple(table, std::move(values));
}

Value ip(const std::string& text) { return Value(*Ipv4::parse(text)); }
Value prefix(const std::string& text) {
  return Value(*IpPrefix::parse(text));
}

constexpr LogicalTime kFirstPacketTime = 1000;

}  // namespace

void add_policy(EventLog& log, const std::string& sw, int prio,
                const std::string& pfx, const std::string& act,
                LogicalTime t) {
  log.append_insert(
      make("policyRoute", {kController, sw, prio, prefix(pfx), act}), t);
}

void add_link(EventLog& log, const std::string& sw, const std::string& out,
              LogicalTime t) {
  log.append_insert(make("link", {kController, sw, out}), t);
}

void add_switch_up(EventLog& log, const std::string& sw, LogicalTime t) {
  log.append_insert(make("switchUp", {kController, sw}), t);
}

void add_packet(EventLog& log, const std::string& ingress, int pkt,
                const std::string& src, const std::string& dst,
                LogicalTime t) {
  log.append_insert(make("packet", {ingress, pkt, ip(src), ip(dst)}), t);
}

Scenario figure1_network(const std::string& untrusted_prefix_on_sw2) {
  Scenario s;
  s.program = make_program();

  // Figure 1: requests enter at sw1 and pass sw2. Untrusted sources go
  // sw2 -> sw6 -> web server w1 (mirrored to the DPI box d1); everything
  // else goes sw2 -> sw3 -> sw4 -> sw5 -> web server w2.
  const std::vector<std::pair<std::string, std::string>> links = {
      {"sw1", "sw2"}, {"sw2", "sw6"}, {"sw2", "sw3"}, {"sw3", "sw4"},
      {"sw4", "sw5"}, {"sw5", "w2"},  {"sw6", "w1"},  {"sw6", "d1"},
  };
  for (const auto& [a, b] : links) {
    add_link(s.log, a, b);
    s.topology.connect(a, b);
  }
  s.topology.connect("ctl", "sw1");
  for (const char* sw : {"sw1", "sw2", "sw3", "sw4", "sw5", "sw6"}) {
    add_switch_up(s.log, sw);
  }

  add_policy(s.log, "sw1", 1, "0.0.0.0/0", "sw2");
  add_policy(s.log, "sw2", 100, untrusted_prefix_on_sw2, "sw6");  // R1
  add_policy(s.log, "sw2", 1, "0.0.0.0/0", "sw3");                // R2
  add_policy(s.log, "sw3", 1, "0.0.0.0/0", "sw4");
  add_policy(s.log, "sw4", 1, "0.0.0.0/0", "sw5");
  add_policy(s.log, "sw5", 1, "0.0.0.0/0", "w2");
  add_policy(s.log, "sw6", 1, "0.0.0.0/0", "w1+d1");  // deliver + mirror
  return s;
}

Scenario sdn1() {
  // The operator wrote 4.3.2.0/24 instead of 4.3.2.0/23 (paper section 2).
  Scenario s = figure1_network("4.3.2.0/24");
  s.name = "SDN1";
  s.description =
      "Broken flow entry: untrusted subnet 4.3.2.0/23 written as /24; "
      "requests from 4.3.3.x reach web server w2 instead of w1.";
  add_packet(s.log, "sw1", 1, "4.3.2.1", "8.8.1.1", kFirstPacketTime);
  add_packet(s.log, "sw1", 2, "4.3.3.1", "8.8.1.1", kFirstPacketTime + 100);
  s.good_event =
      make("delivered", {"w1", 1, ip("4.3.2.1"), ip("8.8.1.1")});
  s.bad_event = make("delivered", {"w2", 2, ip("4.3.3.1"), ip("8.8.1.1")});
  s.expected_root_cause = "4.3.2.0/23";
  return s;
}

Scenario sdn2() {
  // Two controller apps, unaware of each other, install overlapping rules
  // on sw2: app A's low-priority route to the web path, app B's
  // high-priority route to the scrubber (via sw6). Traffic from 4.3.x.x is
  // hijacked even when legitimate.
  Scenario s = figure1_network("4.3.0.0/16");
  s.name = "SDN2";
  s.description =
      "Multi-controller inconsistency: a higher-priority scrubber rule "
      "overlaps the web rule; legitimate traffic is sent to the scrubber.";
  add_packet(s.log, "sw1", 1, "9.9.9.9", "8.8.1.1", kFirstPacketTime);
  add_packet(s.log, "sw1", 2, "4.3.9.9", "8.8.1.1", kFirstPacketTime + 100);
  s.good_event = make("delivered", {"w2", 1, ip("9.9.9.9"), ip("8.8.1.1")});
  s.bad_event = make("delivered", {"w1", 2, ip("4.3.9.9"), ip("8.8.1.1")});
  // Root cause: the overlapping high-priority policy route.
  s.expected_root_cause = "policyRoute(@ctl, \"sw2\", 100, 4.3.0.0/16";
  return s;
}

Scenario sdn3() {
  // Multicast video: the stream crosses sw1..sw3 and fans out at sw4 to two
  // receivers (h1, h2). The multicast rule expires mid-run; later packets of
  // the *same flow* fall through to a lower-priority unicast rule and reach
  // h3 instead. The reference event lies in the past, and the two trees
  // share the whole sw1..sw3 path -- which is why even the plain diff is
  // smaller than the trees here (as in the paper's Table 1).
  Scenario s;
  s.program = make_program();
  s.name = "SDN3";
  s.description =
      "Unexpected rule expiration: after the multicast rule expires, video "
      "traffic is delivered to the wrong host. The reference event is in "
      "the past (temporal provenance).";
  const std::vector<std::pair<std::string, std::string>> links = {
      {"sw1", "sw2"}, {"sw2", "sw3"}, {"sw3", "sw4"},
      {"sw4", "h1"},  {"sw4", "h2"},  {"sw4", "h3"}};
  for (const auto& [a, b] : links) {
    add_link(s.log, a, b);
    s.topology.connect(a, b);
  }
  for (const char* sw : {"sw1", "sw2", "sw3", "sw4"}) {
    add_switch_up(s.log, sw);
  }
  add_policy(s.log, "sw1", 1, "0.0.0.0/0", "sw2");
  add_policy(s.log, "sw2", 1, "0.0.0.0/0", "sw3");
  add_policy(s.log, "sw3", 1, "0.0.0.0/0", "sw4");
  add_policy(s.log, "sw4", 100, "5.5.0.0/16", "h1+h2");  // multicast rule
  add_policy(s.log, "sw4", 1, "0.0.0.0/0", "h3");

  // Same flow, before and after the expiration: identical headers, so the
  // only differences between the trees are the expired rule's consequences.
  add_packet(s.log, "sw1", 7, "5.5.1.1", "9.0.0.1", kFirstPacketTime);
  s.log.append_delete(
      make("policyRoute",
           {kController, "sw4", 100, prefix("5.5.0.0/16"), "h1+h2"}),
      kFirstPacketTime + 50);
  add_packet(s.log, "sw1", 7, "5.5.1.1", "9.0.0.1", kFirstPacketTime + 100);

  s.good_event = make("delivered", {"h2", 7, ip("5.5.1.1"), ip("9.0.0.1")});
  s.bad_event = make("delivered", {"h3", 7, ip("5.5.1.1"), ip("9.0.0.1")});
  s.expected_root_cause = "policyRoute(@ctl, \"sw4\", 100, 5.5.0.0/16";
  return s;
}

Scenario sdn4() {
  // SDN1 extended: a larger topology with two overly specific entries on two
  // consecutive hops (sw2 and sw3a). After the first fault is repaired, the
  // traffic is misrouted by the second; DiffProv proceeds in two rounds.
  Scenario s;
  s.program = make_program();
  s.name = "SDN4";
  s.description =
      "Two faulty entries on consecutive hops; DiffProv identifies both in "
      "two rounds.";
  const std::vector<std::pair<std::string, std::string>> links = {
      {"sw1", "sw2"},  {"sw2", "sw3a"}, {"sw2", "sw4"}, {"sw3a", "sw6"},
      {"sw3a", "sw4"}, {"sw4", "sw5"},  {"sw5", "w2"},  {"sw6", "w1"},
      {"sw6", "d1"}};
  for (const auto& [a, b] : links) {
    add_link(s.log, a, b);
    s.topology.connect(a, b);
  }
  for (const char* sw : {"sw1", "sw2", "sw3a", "sw4", "sw5", "sw6"}) {
    add_switch_up(s.log, sw);
  }
  add_policy(s.log, "sw1", 1, "0.0.0.0/0", "sw2");
  add_policy(s.log, "sw2", 100, "4.3.2.0/24", "sw3a");  // fault 1 (want /23)
  add_policy(s.log, "sw2", 1, "0.0.0.0/0", "sw4");
  add_policy(s.log, "sw3a", 100, "4.3.2.0/24", "sw6");  // fault 2 (want /23)
  add_policy(s.log, "sw3a", 1, "0.0.0.0/0", "sw4");
  add_policy(s.log, "sw4", 1, "0.0.0.0/0", "sw5");
  add_policy(s.log, "sw5", 1, "0.0.0.0/0", "w2");
  add_policy(s.log, "sw6", 1, "0.0.0.0/0", "w1+d1");

  add_packet(s.log, "sw1", 1, "4.3.2.1", "8.8.1.1", kFirstPacketTime);
  add_packet(s.log, "sw1", 2, "4.3.3.1", "8.8.1.1", kFirstPacketTime + 100);
  s.good_event = make("delivered", {"w1", 1, ip("4.3.2.1"), ip("8.8.1.1")});
  s.bad_event = make("delivered", {"w2", 2, ip("4.3.3.1"), ip("8.8.1.1")});
  s.expected_root_cause = "4.3.2.0/23";
  s.expected_changes = 2;
  s.expected_rounds = 2;
  return s;
}

std::vector<Scenario> all_scenarios() {
  std::vector<Scenario> out;
  out.push_back(sdn1());
  out.push_back(sdn2());
  out.push_back(sdn3());
  out.push_back(sdn4());
  return out;
}

Scenario sdn1_with_reference_traffic() {
  Scenario s = sdn1();
  // The additional (well-behaved) flows used as unsuitable references: they
  // enter the network at sw3 / sw4 and reach w2 over paths sw1 never sees.
  for (int i = 0; i < 7; ++i) {
    const std::string ingress = i % 2 == 0 ? "sw3" : "sw4";
    add_packet(s.log, ingress, 100 + i, "7.7.7." + std::to_string(i + 1),
               "8.8.1.1", kFirstPacketTime + 500 + 10 * i);
  }
  return s;
}

std::vector<BadReferenceCase> sdn1_bad_references() {
  std::vector<BadReferenceCase> cases;
  // Three references whose provenance springs from a non-packet seed:
  // configuration state instead of traffic (seed-type mismatch).
  cases.push_back({"flow-entry-as-reference",
                   make("flowEntry",
                        {"sw5", 1, prefix("0.0.0.0/0"), "w2"}),
                   /*expect_seed_mismatch=*/true});
  cases.push_back({"compiled-policy-as-reference",
                   make("compiled", {kController, "sw3", 1,
                                     prefix("0.0.0.0/0"), "sw4"}),
                   true});
  cases.push_back({"policy-route-as-reference",
                   make("policyRoute", {kController, "sw1", 1,
                                        prefix("0.0.0.0/0"), "sw2"}),
                   true});
  // Seven references that are packets, but whose alignment would require
  // changes to immutable state. We inject extra reference traffic at other
  // ingress points (sw3..sw6): aligning the bad event with such a reference
  // would require sw1 to gain the reference path's links.
  for (int i = 0; i < 7; ++i) {
    const std::string ingress = i % 2 == 0 ? "sw3" : "sw4";
    cases.push_back({"packet-from-" + ingress + "-" + std::to_string(i),
                     make("delivered", {"w2", 100 + i,
                                        ip("7.7.7." + std::to_string(i + 1)),
                                        ip("8.8.1.1")}),
                     false});
  }
  return cases;
}

}  // namespace dp::sdn
