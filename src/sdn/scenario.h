// The paper's four SDN diagnostic scenarios (section 6.2), built on the
// Figure-1 network: six switches (sw1..sw6), two web servers (w1, w2), a DPI
// device (d1), and a controller (ctl).
//
//   SDN1  Broken flow entry: the untrusted-subnet route on sw2 was written
//         4.3.2.0/24 instead of 4.3.2.0/23, so traffic from 4.3.3.x falls
//         through to the general rule and reaches the wrong server.
//   SDN2  Multi-controller inconsistency: two apps install overlapping rules
//         with different priorities; legitimate traffic is hijacked by the
//         higher-priority (scrubber) rule.
//   SDN3  Unexpected rule expiration: a multicast rule expires; later
//         traffic is handled by a lower-priority rule and delivered to the
//         wrong host. The reference event lies in the past (temporal
//         provenance).
//   SDN4  Multiple faulty entries on two consecutive hops; DiffProv needs
//         two rounds.
//
// Each scenario carries everything a bench or test needs: the program, the
// topology, the recorded event log, the good/bad events, and a substring the
// root-cause report must contain.
#pragma once

#include <string>
#include <vector>

#include "ndlog/program.h"
#include "replay/replay_engine.h"

namespace dp::sdn {

struct Scenario {
  std::string name;
  std::string description;
  Program program;
  Topology topology;
  EventLog log;
  Tuple good_event;
  Tuple bad_event;
  /// A substring that must appear in DiffProv's change report (the root
  /// cause), used by tests and the Table-1 bench's sanity check.
  std::string expected_root_cause;
  /// Expected number of change records (1 for SDN1-3, 2 for SDN4).
  std::size_t expected_changes = 1;
  /// Expected number of DiffProv rounds.
  int expected_rounds = 1;
};

Scenario sdn1();
Scenario sdn2();
Scenario sdn3();
Scenario sdn4();

/// All four, in order.
std::vector<Scenario> all_scenarios();

/// Unsuitable-reference queries for the section 6.3 experiment: each case is
/// a (reference event, expected failure) pair over the SDN1 network. Three
/// have seeds of the wrong type; the rest require immutable changes (e.g.
/// the reference packet entered at a different ingress, so aligning would
/// need new physical links).
struct BadReferenceCase {
  std::string name;
  Tuple reference_event;
  bool expect_seed_mismatch = false;  // else: expect immutable-change
};
std::vector<BadReferenceCase> sdn1_bad_references();

/// SDN1 plus the extra reference traffic (packets entering at sw3/sw4) that
/// sdn1_bad_references() points at.
Scenario sdn1_with_reference_traffic();

// --- building blocks shared with benches ---

/// Appends controller facts for one policy route.
void add_policy(EventLog& log, const std::string& sw, int prio,
                const std::string& prefix, const std::string& act,
                LogicalTime t = 0);

/// Appends a link fact (controller's adjacency view).
void add_link(EventLog& log, const std::string& sw, const std::string& out,
              LogicalTime t = 1);

/// Appends a switch-liveness fact.
void add_switch_up(EventLog& log, const std::string& sw, LogicalTime t = 2);

/// Appends a packet arrival.
void add_packet(EventLog& log, const std::string& ingress, int pkt,
                const std::string& src, const std::string& dst,
                LogicalTime t);

/// Builds the Figure-1 network (topology + control state) into a scenario
/// shell; scenarios then add their packets and faults. `first_fault_prefix`
/// is the (buggy) prefix installed on sw2's untrusted-subnet rule.
Scenario figure1_network(const std::string& untrusted_prefix_on_sw2);

}  // namespace dp::sdn
