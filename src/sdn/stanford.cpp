#include "sdn/stanford.h"

#include <algorithm>
#include <set>

#include "ndlog/parser.h"
#include "util/rng.h"

namespace dp::sdn {

namespace {

Tuple make(const std::string& table, std::vector<Value> values) {
  return Tuple(table, std::move(values));
}

/// Zone host names: 2 characters ("z1".."z9", "za".."ze").
std::string zone_host(int zone) {
  static constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  return std::string("z") + kDigits[zone % 36];
}

std::string oz_name(int zone) {
  return "oz" + std::string(zone < 10 ? "0" : "") + std::to_string(zone);
}

/// Adds an entry with a per-router unique priority (argmax determinism).
void add_entry(StanfordNetwork& net, std::set<std::pair<NodeName, int>>& used,
               const NodeName& node, int prio, const IpPrefix& prefix,
               const std::string& action) {
  while (used.count({node, prio}) != 0) ++prio;
  used.insert({node, prio});
  net.tables[node].push_back(
      TimedEntry{prio, prefix, action, TimeInterval{0, kTimeInfinity}});
  ++net.total_entries;
}

}  // namespace

std::string_view stanford_spec_source() {
  // External specification of the black box: destination-based OpenFlow
  // match-action. flowEntry is *base* here -- the black box's config is
  // opaque state, not something a modeled controller derives.
  return R"(
    table packet(4) base immutable event.     // (@Sw, Pkt, Src, Dst)
    table packetAt(4) derived event.
    table matched(5) derived event.           // (@Sw, Pkt, Src, Dst, Act)
    table delivered(4) derived.
    table dropped(4) derived.
    table flowEntry(4) base mutable keys(0, 1).  // (@Sw, Prio, Prefix, Act)

    rule s1 packetAt(@Sw, Pkt, Src, Dst) :- packet(@Sw, Pkt, Src, Dst).
    rule s2 argmax Prio
      matched(@Sw, Pkt, Src, Dst, Act) :-
        packetAt(@Sw, Pkt, Src, Dst),
        flowEntry(@Sw, Prio, Prefix, Act),
        f_matches(Dst, Prefix) == 1.
    rule s3 packetAt(@Out, Pkt, Src, Dst) :-
        matched(@Sw, Pkt, Src, Dst, Act),
        Out := f_out(Act, 0), f_strlen(Out) > 2.
    rule s4 delivered(@Out, Pkt, Src, Dst) :-
        matched(@Sw, Pkt, Src, Dst, Act),
        Out := f_out(Act, 0), f_strlen(Out) <= 2, Out != "dr".
    rule s6 dropped(@Sw, Pkt, Src, Dst) :-
        matched(@Sw, Pkt, Src, Dst, Act), Act == "dr".
  )";
}

Program make_stanford_spec() { return parse_program(stanford_spec_source()); }

StanfordNetwork build_stanford(const StanfordConfig& config) {
  StanfordNetwork net;
  net.config = config;
  Rng rng(config.seed);
  std::set<std::pair<NodeName, int>> used_prios;

  // ---- routing structure: OZ routers around two backbones -------------
  for (int zone = 1; zone <= config.oz_routers; ++zone) {
    const NodeName oz = oz_name(zone);
    // Zone subnet 10.<zone>.0.0/16 delivered locally; everything else goes
    // to the primary backbone.
    add_entry(net, used_prios, oz, 20,
              IpPrefix(Ipv4(10, static_cast<std::uint8_t>(zone), 0, 0), 16),
              zone_host(zone));
    add_entry(net, used_prios, oz, 10, IpPrefix(Ipv4(0, 0, 0, 0), 0), "bb01");
  }
  for (int zone = 1; zone <= config.oz_routers; ++zone) {
    add_entry(net, used_prios, "bb01", 20 + zone,
              IpPrefix(Ipv4(10, static_cast<std::uint8_t>(zone), 0, 0), 16),
              oz_name(zone));
    add_entry(net, used_prios, "bb02", 20 + zone,
              IpPrefix(Ipv4(10, static_cast<std::uint8_t>(zone), 0, 0), 16),
              oz_name(zone));
  }
  // H2's zone (oz02) additionally owns the campus subnets of the paper's
  // Forwarding Error: 172.20.0.0/16 (containing H2's 172.20.10.32/27).
  add_entry(net, used_prios, "oz02", 60, *IpPrefix::parse("172.20.0.0/16"),
            "h2");
  add_entry(net, used_prios, "bb01", 60, *IpPrefix::parse("172.20.0.0/16"),
            "oz02");
  add_entry(net, used_prios, "bb02", 60, *IpPrefix::parse("172.20.0.0/16"),
            "oz02");

  // ---- THE fault: a high-priority drop rule for H2's subnet on oz02 ----
  add_entry(net, used_prios, "oz02", 200, *IpPrefix::parse("172.20.10.32/27"),
            "dr");
  net.fault_entry = make("flowEntry", {"oz02", 200,
                                       *IpPrefix::parse("172.20.10.32/27"),
                                       "dr"});

  // ---- filler forwarding entries (757 k in the paper, scaled) ----------
  // Kept in address space disjoint from the zone and campus subnets so they
  // add matching work and table bulk without touching the diagnosed flows.
  const std::vector<NodeName> routers = [&] {
    std::vector<NodeName> out;
    for (int zone = 1; zone <= config.oz_routers; ++zone) {
      out.push_back(oz_name(zone));
    }
    out.emplace_back("bb01");
    out.emplace_back("bb02");
    return out;
  }();
  for (const NodeName& router : routers) {
    for (int i = 0; i < config.filler_entries_per_router; ++i) {
      const IpPrefix prefix(
          Ipv4(203, static_cast<std::uint8_t>(rng.next_below(256)),
               static_cast<std::uint8_t>(rng.next_below(256)), 0),
          24);
      const NodeName out = routers[rng.next_below(routers.size())];
      add_entry(net, used_prios, router, 1000 + i, prefix,
                out == router ? "bb02" : out);
    }
  }

  // ---- ACL drop rules (1.5 k in the paper, scaled) ----------------------
  for (int i = 0; i < config.acl_rules; ++i) {
    const NodeName router = routers[rng.next_below(routers.size())];
    const IpPrefix prefix(
        Ipv4(198, 18, static_cast<std::uint8_t>(rng.next_below(256)), 0), 24);
    add_entry(net, used_prios, router, 5000 + i, prefix, "dr");
    ++net.acl_entries;
  }

  // ---- 20 extra injected faults: 10 on-path, 10 elsewhere --------------
  // Misconfigurations that are causally unrelated to the diagnosed flows:
  // bogus drops and wrong routes for prefixes the two flows never carry.
  const std::vector<NodeName> on_path = {"oz01", "bb01", "oz02"};
  for (int i = 0; i < config.extra_faults; ++i) {
    const bool place_on_path = i < config.extra_faults / 2;
    const NodeName router =
        place_on_path ? on_path[static_cast<std::size_t>(i) % on_path.size()]
                      : routers[3 + rng.next_below(routers.size() - 3)];
    if (i % 2 == 0) {
      add_entry(net, used_prios, router, 7000 + i,
                IpPrefix(Ipv4(10, 77, static_cast<std::uint8_t>(i), 0), 24),
                "dr");
    } else {
      add_entry(net, used_prios, router, 7000 + i,
                IpPrefix(Ipv4(203, 99, static_cast<std::uint8_t>(i), 0), 24),
                "bb02");
    }
  }

  // ---- background traffic: the four applications of section 6.7 --------
  auto rand_host = [&rng](const IpPrefix& subnet) {
    const std::uint32_t host_bits =
        subnet.length() >= 32
            ? 0
            : static_cast<std::uint32_t>(rng.next_below(
                  1ull << (32 - static_cast<unsigned>(subnet.length()))));
    return Ipv4(subnet.base().value() | host_bits);
  };
  const auto zone_subnet = [](int zone) {
    return IpPrefix(Ipv4(10, static_cast<std::uint8_t>(zone), 0, 0), 16);
  };
  std::int64_t next_id = 1000;
  LogicalTime t = 10'000;
  const int n = config.background_packets;
  for (int i = 0; i < n; ++i) {
    PacketEvent pkt;
    pkt.time = t;
    t += 200 + static_cast<LogicalTime>(rng.next_below(400));
    pkt.id = next_id++;
    switch (i % 4) {
      case 0:  // HTTP client: zone-1 hosts fetching from the campus web net
        pkt.ingress = oz_name(1);
        pkt.src = rand_host(zone_subnet(1));
        pkt.dst = rand_host(*IpPrefix::parse("172.20.9.0/24"));
        break;
      case 1:  // bulk download: zone 3 -> zone 5
        pkt.ingress = oz_name(3);
        pkt.src = rand_host(zone_subnet(3));
        pkt.dst = rand_host(zone_subnet(5));
        break;
      case 2:  // NFS crawl: zone 4 -> zone 6, sequential host walk
        pkt.ingress = oz_name(4);
        pkt.src = rand_host(zone_subnet(4));
        pkt.dst = Ipv4(10, 6, 0, static_cast<std::uint8_t>(i / 4 % 250 + 1));
        break;
      default:  // trace replay: random sources, mixed destinations
        pkt.ingress = routers[rng.next_below(routers.size() - 2)];
        pkt.src = rand_host(*IpPrefix::parse("203.0.0.0/8"));
        pkt.dst = rng.next_bool(0.5)
                      ? rand_host(zone_subnet(1 + static_cast<int>(
                                      rng.next_below(static_cast<std::uint64_t>(
                                          config.oz_routers)))))
                      : rand_host(*IpPrefix::parse("198.18.0.0/15"));
        break;
    }
    net.workload.push_back(pkt);
  }

  // ---- the diagnosed flows ---------------------------------------------
  const Ipv4 h1_src(10, 1, 9, 9);
  PacketEvent good;
  good.time = t + 1'000;
  good.ingress = oz_name(1);
  good.id = 1;
  good.src = h1_src;
  good.dst = *Ipv4::parse("172.20.9.1");  // sibling subnet: works
  net.workload.push_back(good);
  PacketEvent bad;
  bad.time = t + 2'000;
  bad.ingress = oz_name(1);
  bad.id = 2;
  bad.src = h1_src;
  bad.dst = *Ipv4::parse("172.20.10.33");  // H2's subnet: dropped at oz02
  net.workload.push_back(bad);

  std::sort(net.workload.begin(), net.workload.end(),
            [](const PacketEvent& a, const PacketEvent& b) {
              return a.time < b.time || (a.time == b.time && a.id < b.id);
            });

  net.good_event = make("delivered", {"h2", good.id, Value(good.src),
                                      Value(good.dst)});
  net.bad_event =
      make("dropped", {"oz02", bad.id, Value(bad.src), Value(bad.dst)});
  return net;
}

// ---------------------------------------------------------------------------

namespace {

/// State produced by one black-box run: the (delta-adjusted) tables plus the
/// delivered/dropped facts, with a StateView for DiffProv.
struct StanfordRun {
  std::map<NodeName, std::vector<TimedEntry>> tables;
  std::map<Tuple, LogicalTime> facts;  // delivered/dropped -> creation time
  std::shared_ptr<ProvenanceRecorder> recorder =
      std::make_shared<ProvenanceRecorder>();
};

class StanfordStateView final : public StateView {
 public:
  explicit StanfordStateView(std::shared_ptr<const StanfordRun> run)
      : run_(std::move(run)) {}

  [[nodiscard]] bool existed_at(const Tuple& tuple,
                                LogicalTime at) const override {
    if (tuple.table() == "flowEntry") {
      auto it = run_->tables.find(tuple.location());
      if (it == run_->tables.end()) return false;
      for (const TimedEntry& entry : it->second) {
        if (entry.valid.contains(at) && entry_tuple_matches(entry, tuple)) {
          return true;
        }
      }
      return false;
    }
    auto it = run_->facts.find(tuple);
    return it != run_->facts.end() && it->second <= at;
  }

  void scan_table(
      const NodeName& node, const std::string& table, LogicalTime at,
      const std::function<void(const Tuple&)>& fn) const override {
    if (table == "flowEntry") {
      auto it = run_->tables.find(node);
      if (it == run_->tables.end()) return;
      for (const TimedEntry& entry : it->second) {
        if (entry.valid.contains(at)) fn(to_tuple(node, entry));
      }
      return;
    }
    for (const auto& [tuple, created] : run_->facts) {
      if (tuple.table() == table && tuple.location() == node &&
          created <= at) {
        fn(tuple);
      }
    }
  }

  static Tuple to_tuple(const NodeName& node, const TimedEntry& entry) {
    return Tuple("flowEntry", {Value(node), Value(entry.prio),
                               Value(entry.prefix), Value(entry.action)});
  }

 private:
  static bool entry_tuple_matches(const TimedEntry& entry,
                                  const Tuple& tuple) {
    return tuple.at(1).is_int() && tuple.at(1).as_int() == entry.prio &&
           tuple.at(2).is_prefix() && tuple.at(2).as_prefix() == entry.prefix &&
           tuple.at(3).is_string() && tuple.at(3).as_string() == entry.action;
  }

  std::shared_ptr<const StanfordRun> run_;
};

void apply_delta(StanfordRun& run, const Delta& delta) {
  for (const DeltaOp& op : delta) {
    if (!op.tuple.table().starts_with("flowEntry")) continue;
    auto& entries = run.tables[op.tuple.location()];
    const int prio = static_cast<int>(op.tuple.at(1).as_int());
    const IpPrefix prefix = op.tuple.at(2).as_prefix();
    const std::string& action = op.tuple.at(3).as_string();
    if (op.kind == DeltaOp::Kind::kInsert) {
      // Upsert on (node, prio): close any active same-priority entry.
      for (TimedEntry& entry : entries) {
        if (entry.prio == prio && entry.valid.contains(op.at)) {
          entry.valid.end = op.at;
        }
      }
      entries.push_back(
          TimedEntry{prio, prefix, action, TimeInterval{op.at, kTimeInfinity}});
    } else {
      for (TimedEntry& entry : entries) {
        if (entry.prio == prio && entry.prefix == prefix &&
            entry.action == action && entry.valid.contains(op.at)) {
          entry.valid.end = op.at;
        }
      }
    }
  }
}

}  // namespace

BadRun StanfordReplayProvider::replay_bad(const Delta& delta) {
  auto run = std::make_shared<StanfordRun>();
  run->tables = net_->tables;
  apply_delta(*run, delta);
  stats_ = Stats{};

  ProvenanceRecorder& recorder = *run->recorder;
  std::set<Tuple> reported_entries;
  // Reports a flow entry's INSERT (and DELETE, if its interval closed) the
  // first time a trace touches it -- the external-specification recorder
  // reconstructs exactly the relevant state (paper section 5).
  const auto report_entry = [&](const NodeName& node, const TimedEntry& e) {
    const Tuple t = StanfordStateView::to_tuple(node, e);
    if (!reported_entries.insert(t).second) return t;
    recorder.report_base(t, e.valid.start);
    if (!e.valid.open_ended()) recorder.report_delete(t, e.valid.end);
    return t;
  };

  for (const PacketEvent& pkt : net_->workload) {
    ++stats_.packets;
    LogicalTime t = pkt.time;
    NodeName node = pkt.ingress;
    const Tuple packet = Tuple(
        "packet", {Value(node), Value(pkt.id), Value(pkt.src), Value(pkt.dst)});
    recorder.report_base(packet, t, /*is_event=*/true);
    t += 1;
    Tuple packet_at = Tuple(
        "packetAt", {Value(node), Value(pkt.id), Value(pkt.src), Value(pkt.dst)});
    recorder.report_derivation(packet_at, "s1", {packet}, 0, t,
                               /*is_event=*/true);

    for (int hop = 0; hop < 32; ++hop) {
      ++stats_.hops;
      // Highest-priority active entry matching the destination.
      const TimedEntry* best = nullptr;
      auto table_it = run->tables.find(node);
      if (table_it != run->tables.end()) {
        for (const TimedEntry& entry : table_it->second) {
          if (!entry.valid.contains(t) || !entry.prefix.contains(pkt.dst)) {
            continue;
          }
          if (best == nullptr || entry.prio > best->prio) best = &entry;
        }
      }
      if (best == nullptr) {
        ++stats_.unmatched;
        break;
      }
      const Tuple entry_tuple = report_entry(node, *best);
      t += 1;
      const Tuple matched =
          Tuple("matched", {Value(node), Value(pkt.id), Value(pkt.src),
                            Value(pkt.dst), Value(best->action)});
      recorder.report_derivation(matched, "s2", {packet_at, entry_tuple}, 0,
                                 t, /*is_event=*/true);
      if (best->action == "dr") {
        t += 1;
        const Tuple dropped =
            Tuple("dropped", {Value(node), Value(pkt.id), Value(pkt.src),
                              Value(pkt.dst)});
        recorder.report_derivation(dropped, "s6", {matched}, 0, t);
        run->facts.emplace(dropped, t);
        ++stats_.dropped;
        break;
      }
      if (best->action.size() <= 2) {
        t += 1;
        const Tuple delivered =
            Tuple("delivered", {Value(best->action), Value(pkt.id),
                                Value(pkt.src), Value(pkt.dst)});
        recorder.report_derivation(delivered, "s4", {matched}, 0, t);
        run->facts.emplace(delivered, t);
        ++stats_.delivered;
        break;
      }
      // Forward to the next router.
      node = best->action;
      t += 10;
      packet_at = Tuple("packetAt", {Value(node), Value(pkt.id),
                                     Value(pkt.src), Value(pkt.dst)});
      recorder.report_derivation(packet_at, "s3", {matched}, 0, t,
                                 /*is_event=*/true);
    }
  }

  BadRun result;
  result.graph =
      std::shared_ptr<const ProvenanceGraph>(run->recorder,
                                             &run->recorder->graph());
  result.state = std::make_shared<StanfordStateView>(run);
  return result;
}

}  // namespace dp::sdn
