// The section 6.7 "complex network diagnostics" substrate.
//
// The paper replicates ATPG's Stanford-backbone setup: 14 Operational-Zone
// routers and 2 backbone routers in a tree-like topology, 757 k forwarding
// entries and 1.5 k ACL rules, emulated with OVS in Mininet and observed as
// a *black box*: the provenance recorder interprets packet traces against an
// external specification of OpenFlow match-action behaviour.
//
// Our reproduction keeps the structure and scales counts (see DESIGN.md,
// Substitutions):
//   * the primary system is a plain C++ forwarding simulator (BlackBoxNet)
//     -- not the NDlog engine -- with per-router flow tables carrying
//     validity intervals;
//   * the recorder replays its traces into the provenance graph following
//     an NDlog *specification* of match-action (mode 3 of section 5);
//   * DiffProv reasons over that specification and re-runs the black box
//     for its UpdateTree step via StanfordReplayProvider.
//
// The diagnosed fault is the paper's "Forwarding Error": a misconfigured
// high-priority entry on H2's zone router drops packets to H2's subnet
// (172.20.10.32/27), while a co-located sibling subnet keeps working and
// provides the reference event. 20 additional faults (10 on-path) and a mix
// of background traffic (HTTP, bulk download, NFS crawl, trace replay) make
// sure DiffProv is not confused by causally-unrelated noise.
#pragma once

#include <map>
#include <vector>

#include "diffprov/diffprov.h"
#include "ndlog/program.h"

namespace dp::sdn {

/// NDlog external specification of the black box's match-action behaviour
/// (destination-based matching; actions as in src/sdn/program.h).
std::string_view stanford_spec_source();
Program make_stanford_spec();

/// One flow-table entry with its validity interval (config changes and
/// DiffProv deltas edit intervals, keeping the box replayable "as of" any
/// time).
struct TimedEntry {
  int prio = 0;
  IpPrefix prefix;
  std::string action;
  TimeInterval valid;
};

struct PacketEvent {
  LogicalTime time = 0;
  NodeName ingress;
  std::int64_t id = 0;
  Ipv4 src;
  Ipv4 dst;
};

struct StanfordConfig {
  int oz_routers = 14;
  int filler_entries_per_router = 120;  // scaled stand-in for 757 k entries
  int acl_rules = 96;                   // scaled stand-in for 1.5 k ACLs
  int extra_faults = 20;                // 10 on-path, 10 elsewhere
  int background_packets = 1200;        // the 4-app traffic mix
  std::uint64_t seed = 7;
};

/// The full §6.7 setting: tables, workload, and the diagnostic events.
struct StanfordNetwork {
  StanfordConfig config;
  std::map<NodeName, std::vector<TimedEntry>> tables;
  std::vector<PacketEvent> workload;  // sorted by time
  Tuple good_event{"delivered", {Value("h2"), Value(0), Value(Ipv4()), Value(Ipv4())}};
  Tuple bad_event = good_event;
  /// The misconfigured drop entry (as a flowEntry tuple), for assertions.
  Tuple fault_entry = good_event;
  std::size_t total_entries = 0;
  std::size_t acl_entries = 0;
};

StanfordNetwork build_stanford(const StanfordConfig& config = {});

/// Runs the black-box simulator over `net` (with `delta` applied to the
/// tables) and reconstructs provenance through the external specification.
class StanfordReplayProvider final : public ReplayProvider {
 public:
  StanfordReplayProvider(const StanfordNetwork& net, const Program& spec)
      : net_(&net), spec_(&spec) {}

  BadRun replay_bad(const Delta& delta) override;

  /// Statistics of the last replay (for benches).
  struct Stats {
    std::size_t packets = 0;
    std::size_t hops = 0;
    std::size_t delivered = 0;
    std::size_t dropped = 0;
    std::size_t unmatched = 0;
  };
  [[nodiscard]] const Stats& last_stats() const { return stats_; }

 private:
  const StanfordNetwork* net_;
  const Program* spec_;
  Stats stats_;
};

}  // namespace dp::sdn
