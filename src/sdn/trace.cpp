#include "sdn/trace.h"

#include <cmath>

namespace dp::sdn {

TraceStats generate_trace(const TraceConfig& config, EventLog& log) {
  TraceStats stats;
  stats.packets_per_second =
      config.rate_mbps * 1e6 / 8.0 / static_cast<double>(config.packet_bytes);
  stats.simulated_seconds = config.duration_s;

  const double total =
      stats.packets_per_second * config.duration_s;
  std::size_t count = static_cast<std::size_t>(std::llround(total));
  if (config.max_packets != 0 && count > config.max_packets) {
    count = config.max_packets;
  }
  const double interarrival_us = 1e6 / stats.packets_per_second;

  Rng rng(config.seed);
  std::vector<IpPrefix> subnets;
  subnets.reserve(config.src_subnets.size());
  for (const std::string& s : config.src_subnets) {
    subnets.push_back(*IpPrefix::parse(s));
  }

  for (std::size_t i = 0; i < count; ++i) {
    const IpPrefix& subnet = subnets[rng.next_below(subnets.size())];
    const std::uint32_t host_bits =
        subnet.length() >= 32
            ? 0
            : static_cast<std::uint32_t>(rng.next_below(
                  1ull << (32 - static_cast<unsigned>(subnet.length()))));
    const Ipv4 src(subnet.base().value() | host_bits);
    const Ipv4 dst(static_cast<std::uint32_t>(0x08080000u) |
                   static_cast<std::uint32_t>(rng.next_below(1 << 16)));
    const LogicalTime t =
        config.start_time +
        static_cast<LogicalTime>(std::llround(interarrival_us * double(i)));
    log.append_insert(
        Tuple("packet", {Value(config.ingress),
                         Value(config.first_packet_id + std::int64_t(i)),
                         Value(src), Value(dst)}),
        t);
    ++stats.packets;
    stats.wire_bytes += config.packet_bytes;
  }
  return stats;
}

}  // namespace dp::sdn
