// Synthetic packet-trace generation (the CAIDA OC-192 stand-in; see
// DESIGN.md section 4, Substitutions).
//
// Figures 5 and 6 only depend on the packet arrival rate and the fixed-size
// per-packet log record (header + timestamp); Table 1 and Figure 7 only
// depend on which rules fire. A seeded deterministic generator with a
// configurable subnet mix exercises the same code paths as a real capture.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "replay/event_log.h"
#include "util/rng.h"

namespace dp::sdn {

struct TraceConfig {
  double rate_mbps = 100.0;     // offered load
  std::size_t packet_bytes = 500;
  double duration_s = 1.0;      // simulated capture length
  std::size_t max_packets = 0;  // hard cap (0 = none); arithmetic still
                                // scales to the full duration
  std::uint64_t seed = 1;
  NodeName ingress = "sw1";
  int first_packet_id = 100000;
  LogicalTime start_time = 5000;  // after control state has converged
  /// Source subnets to draw from (weighted uniformly). Defaults to a mix
  /// that exercises both the specific and the general rule of Figure 1.
  std::vector<std::string> src_subnets = {"4.3.2.0/24", "4.3.3.0/24",
                                          "10.0.0.0/8", "128.32.0.0/16"};
};

struct TraceStats {
  std::size_t packets = 0;
  double simulated_seconds = 0;   // full configured duration
  std::uint64_t wire_bytes = 0;   // packets * packet_bytes (emitted only)
  double packets_per_second = 0;  // offered pps at the configured rate
};

/// Appends packet events to `log` and returns the stats. Deterministic for
/// a given config.
TraceStats generate_trace(const TraceConfig& config, EventLog& log);

}  // namespace dp::sdn
