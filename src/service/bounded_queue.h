// Bounded multi-producer/multi-consumer job queue with explicit rejection.
//
// Admission control for the diagnosis service is "shed, don't block": when
// the queue is at capacity, try_push fails immediately and the caller turns
// that into a reject response -- a producer is never parked waiting for a
// slot (a parked daemon connection thread would just move the queueing into
// the kernel's accept backlog where nothing can observe or shed it).
// Consumers do block: worker threads sleep in pop() until work arrives or
// the queue is closed and drained.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace dp::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues if there is room and the queue is open; returns false (shed)
  /// otherwise.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      depth_.store(items_.size(), std::memory_order_relaxed);
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available (returns it) or the queue is closed
  /// and empty (returns nullopt -- the consumer's signal to exit). Items
  /// enqueued before close() are still handed out: this is the
  /// drain-on-shutdown path.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    depth_.store(items_.size(), std::memory_order_relaxed);
    return item;
  }

  /// Rejects future pushes; pending items remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Closes and removes all pending items, returning them so the caller can
  /// fail their tickets (the no-drain shutdown path).
  std::vector<T> close_and_clear() {
    std::vector<T> orphans;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      orphans.assign(std::make_move_iterator(items_.begin()),
                     std::make_move_iterator(items_.end()));
      items_.clear();
      depth_.store(0, std::memory_order_relaxed);
    }
    ready_.notify_all();
    return orphans;
  }

  /// Lock-free depth read (updated under the lock by push/pop). The sharded
  /// service samples every shard's depth for gauges and stats; taking each
  /// queue's mutex for that would reintroduce cross-thread contention on the
  /// hot path this queue exists to avoid.
  [[nodiscard]] std::size_t size() const {
    return depth_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  std::atomic<std::size_t> depth_{0};
  bool closed_ = false;
};

}  // namespace dp::service
