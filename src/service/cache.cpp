#include "service/cache.h"

#include "util/hash.h"

namespace dp::service {

std::string make_cache_key(std::uint64_t log_hash, const std::string& bad,
                           const std::string& reference, bool minimize,
                           std::uint64_t config_epoch) {
  return std::to_string(log_hash) + "|" + bad + "|" + reference + "|" +
         (minimize ? "min" : "raw") + "|" + std::to_string(config_epoch);
}

std::optional<CachedResult> ResultCache::get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.result;
}

void ResultCache::put(const std::string& key, CachedResult result) {
  if (capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(result), lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

StripedResultCache::StripedResultCache(std::size_t capacity,
                                       std::size_t stripes,
                                       obs::MetricsRegistry* registry) {
  if (stripes == 0) stripes = 1;
  // Ceil so the striped total is never below the requested capacity (a key
  // set that happens to hash into one stripe still gets a useful slice).
  const std::size_t per_stripe = (capacity + stripes - 1) / stripes;
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(capacity == 0 ? 0 : per_stripe));
    if (registry != nullptr) {
      stripes_.back()->hits = &registry->counter(
          "dp.service.cache.stripe." + std::to_string(i) + ".hits");
    }
  }
}

std::size_t StripedResultCache::stripe_of(const std::string& key) const {
  return fnv1a(key) % stripes_.size();
}

StripedResultCache::Admission StripedResultCache::admit(
    const std::string& key, CachedResult* hit,
    const std::function<void(const std::shared_ptr<void>&)>& coalesce,
    const std::function<std::shared_ptr<void>()>& enqueue_leader) {
  Stripe& stripe = stripe_for(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  if (auto cached = stripe.entries.get(key)) {
    if (stripe.hits != nullptr) stripe.hits->inc();
    if (hit != nullptr) *hit = std::move(*cached);
    return Admission::kHit;
  }
  if (auto it = stripe.inflight.find(key); it != stripe.inflight.end()) {
    coalesce(it->second);
    return Admission::kCoalesced;
  }
  std::shared_ptr<void> leader = enqueue_leader();
  if (leader == nullptr) return Admission::kShed;
  stripe.inflight.emplace(key, std::move(leader));
  return Admission::kAccepted;
}

void StripedResultCache::complete(const std::string& key,
                                  const CachedResult& result) {
  Stripe& stripe = stripe_for(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  // Publish before dropping the in-flight entry (one critical section): a
  // duplicate submitted from here on hits the cache, one submitted before
  // this coalesced onto the leader -- no window starts a second run.
  stripe.entries.put(key, result);
  stripe.inflight.erase(key);
}

std::shared_ptr<void> StripedResultCache::take_inflight(
    const std::string& key) {
  Stripe& stripe = stripe_for(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.inflight.find(key);
  if (it == stripe.inflight.end()) return nullptr;
  std::shared_ptr<void> leader = std::move(it->second);
  stripe.inflight.erase(it);
  return leader;
}

std::optional<CachedResult> StripedResultCache::get(const std::string& key) {
  Stripe& stripe = stripe_for(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto cached = stripe.entries.get(key);
  if (cached && stripe.hits != nullptr) stripe.hits->inc();
  return cached;
}

std::size_t StripedResultCache::size() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    total += stripe->entries.size();
  }
  return total;
}

std::uint64_t StripedResultCache::evictions() const {
  std::uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    total += stripe->entries.evictions();
  }
  return total;
}

}  // namespace dp::service
