#include "service/cache.h"

namespace dp::service {

std::string make_cache_key(std::uint64_t log_hash, const std::string& bad,
                           const std::string& reference, bool minimize,
                           std::uint64_t config_epoch) {
  return std::to_string(log_hash) + "|" + bad + "|" + reference + "|" +
         (minimize ? "min" : "raw") + "|" + std::to_string(config_epoch);
}

std::optional<CachedResult> ResultCache::get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.result;
}

void ResultCache::put(const std::string& key, CachedResult result) {
  if (capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(result), lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace dp::service
