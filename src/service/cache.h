// LRU result cache for diagnosis queries.
//
// Keys follow the issue's contract: (log content hash, bad-event tuple,
// reference choice, config epoch) -- plus the minimize flag, which changes
// the answer. The key is rendered as one canonical string so equal queries
// collide however they were phrased (scenario name vs. inline log with the
// same bytes). Single-flight deduplication of *in-flight* queries lives in
// DiagnosisService, which owns the tickets; this class only stores finished
// results.
//
// Thread-compatible, not thread-safe: DiagnosisService calls it under its
// own mutex (lookups are O(log n) map operations -- far off the diagnosis
// critical path).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>

namespace dp::service {

/// Canonical cache-key text. `reference` is the good-event tuple text, or
/// "<auto>" for auto-reference queries.
std::string make_cache_key(std::uint64_t log_hash, const std::string& bad,
                           const std::string& reference, bool minimize,
                           std::uint64_t config_epoch);

/// A finished diagnosis, as served to clients.
struct CachedResult {
  int exit_code = 1;
  std::string out;
  std::string err;
  /// Pre-rendered explain profile of the run that produced this result
  /// (single-line JSON object, empty if the run recorded none). Served
  /// as-is on cache hits: it describes the original execution, and the
  /// per-ticket cache_hit flag tells clients it was not re-measured.
  std::string profile_json;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached result and marks the entry most-recently-used.
  std::optional<CachedResult> get(const std::string& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entries beyond capacity. A zero-capacity cache stores nothing.
  void put(const std::string& key, CachedResult result);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    CachedResult result;
    std::list<std::string>::iterator lru_pos;
  };

  std::size_t capacity_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::uint64_t evictions_ = 0;
};

}  // namespace dp::service
