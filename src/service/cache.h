// LRU result cache for diagnosis queries.
//
// Keys follow the issue's contract: (log content hash, bad-event tuple,
// reference choice, config epoch) -- plus the minimize flag, which changes
// the answer. The key is rendered as one canonical string so equal queries
// collide however they were phrased (scenario name vs. inline log with the
// same bytes).
//
// Two layers live here:
//
//   * ResultCache -- the plain LRU store. Thread-compatible, not
//     thread-safe: callers serialize access themselves (each stripe below
//     owns one under its own mutex).
//   * StripedResultCache -- the concurrent front the sharded service uses.
//     Keys hash to stripes; each stripe has its own mutex, its own LRU slice
//     of the capacity, and its own single-flight table, so lookups against
//     unrelated keys never contend on a shared lock. Single-flight stays
//     per-key: admit() runs the whole hit / coalesce / register-leader
//     decision inside one stripe critical section, and complete() publishes
//     the result *before* dropping the in-flight entry inside another, so a
//     duplicate submitted at any moment either coalesces onto the running
//     leader or hits the cache -- no window admits a second run, exactly the
//     invariant the unsharded service enforced with its global mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dp::service {

/// Canonical cache-key text. `reference` is the good-event tuple text, or
/// "<auto>" for auto-reference queries.
std::string make_cache_key(std::uint64_t log_hash, const std::string& bad,
                           const std::string& reference, bool minimize,
                           std::uint64_t config_epoch);

/// A finished diagnosis, as served to clients.
struct CachedResult {
  int exit_code = 1;
  std::string out;
  std::string err;
  /// Pre-rendered explain profile of the run that produced this result
  /// (single-line JSON object, empty if the run recorded none). Served
  /// as-is on cache hits: it describes the original execution, and the
  /// per-ticket cache_hit flag tells clients it was not re-measured.
  std::string profile_json;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached result and marks the entry most-recently-used.
  std::optional<CachedResult> get(const std::string& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entries beyond capacity. A zero-capacity cache stores nothing.
  void put(const std::string& key, CachedResult result);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    CachedResult result;
    std::list<std::string>::iterator lru_pos;
  };

  std::size_t capacity_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::uint64_t evictions_ = 0;
};

/// Concurrent striped LRU + single-flight table (see file comment). The
/// in-flight leader is opaque to this layer (the service stores its JobState
/// there); the callbacks passed to admit() do the attaching so every
/// coalesce happens under the key's stripe lock.
class StripedResultCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `stripes`
  /// (rounded up per stripe; zero stripes clamps to one). When `registry` is
  /// non-null, each stripe publishes its hit count as
  /// dp.service.cache.stripe.<i>.hits.
  StripedResultCache(std::size_t capacity, std::size_t stripes,
                     obs::MetricsRegistry* registry = nullptr);

  enum class Admission : std::uint8_t {
    kHit,        ///< finished result copied out; nothing registered
    kCoalesced,  ///< attached to the in-flight leader via `coalesce`
    kAccepted,   ///< `enqueue_leader`'s job registered as the new leader
    kShed        ///< `enqueue_leader` returned null; nothing registered
  };

  /// Single-flight admission in one stripe critical section. Exactly one of
  /// the callbacks runs, under the stripe lock:
  ///   * cached result present  -> copied into `*hit`, kHit;
  ///   * leader in flight       -> coalesce(leader), kCoalesced;
  ///   * otherwise              -> enqueue_leader(); a non-null return is
  ///     registered as the in-flight leader (kAccepted), null means the
  ///     caller could not enqueue it -- queue full -- and nothing is
  ///     registered (kShed).
  Admission admit(
      const std::string& key, CachedResult* hit,
      const std::function<void(const std::shared_ptr<void>&)>& coalesce,
      const std::function<std::shared_ptr<void>()>& enqueue_leader);

  /// Single-flight completion: publishes the result, then drops the
  /// in-flight entry, inside one stripe critical section (see file comment).
  /// Harmless when the key is not in flight (a leader that skipped its run
  /// after every waiter cancelled already took itself out).
  void complete(const std::string& key, const CachedResult& result);

  /// Removes and returns the in-flight leader without publishing anything
  /// (the skip-the-run path: every waiter cancelled while queued). Null if
  /// the key was not in flight. After this returns, no further coalesce can
  /// attach to the old leader.
  std::shared_ptr<void> take_inflight(const std::string& key);

  /// Plain lookup (counts as a stripe hit/miss like admit does).
  std::optional<CachedResult> get(const std::string& key);

  [[nodiscard]] std::size_t size() const;        // entries across all stripes
  [[nodiscard]] std::uint64_t evictions() const;  // summed across stripes
  [[nodiscard]] std::size_t stripe_count() const { return stripes_.size(); }
  /// Which stripe `key` lives in (exposed for tests).
  [[nodiscard]] std::size_t stripe_of(const std::string& key) const;

 private:
  struct Stripe {
    explicit Stripe(std::size_t capacity) : entries(capacity) {}
    mutable std::mutex mutex;
    ResultCache entries;
    std::map<std::string, std::shared_ptr<void>> inflight;
    obs::Counter* hits = nullptr;  // dp.service.cache.stripe.<i>.hits
  };

  Stripe& stripe_for(const std::string& key) {
    return *stripes_[stripe_of(key)];
  }

  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace dp::service
