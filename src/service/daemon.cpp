#include "service/daemon.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "service/protocol.h"

namespace dp::service {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Writes all of `data`; returns false on a connection error.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Daemon::Daemon(DiagnosisService& service, std::uint16_t port)
    : service_(service) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
}

Daemon::~Daemon() { stop(); }

void Daemon::serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listener = listen_fd_.load(std::memory_order_acquire);
    if (listener < 0) break;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // stop() closed the listener (or it genuinely failed): wind down.
      break;
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    if (connection.joinable()) connection.join();
  }
}

void Daemon::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // Closing the listener fails the blocking accept() in serve().
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void Daemon::handle_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && open;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      bool shutdown_requested = false;
      std::string response =
          handle_request(service_, line, shutdown_requested);
      response.push_back('\n');
      if (!write_all(fd, response)) open = false;
      if (shutdown_requested) {
        // Drain queued work, then unblock the accept loop. The response was
        // already flushed, so the requesting client gets its ack.
        service_.shutdown(/*drain=*/true);
        stop();
        open = false;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

}  // namespace dp::service
