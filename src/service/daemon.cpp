#include "service/daemon.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/flightrec.h"
#include "obs/profiler.h"
#include "service/http.h"
#include "service/protocol.h"

namespace dp::service {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Writes all of `data`; returns false on a connection error.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Daemon::Daemon(DiagnosisService& service, std::uint16_t port)
    : service_(service), endpoints_(std::make_unique<HttpEndpoints>()) {
  // The scrape surface, one table instead of per-endpoint branches
  // (http.h). Every producer reads lock-free or mutex-guarded state, so
  // serving them from connection threads is safe.
  endpoints_->add("/metrics", "text/plain; version=0.0.4; charset=utf-8",
                  [this] { return service_.metrics().to_prometheus(); });
  endpoints_->add("/healthz", "text/plain; charset=utf-8",
                  [] { return std::string("ok\n"); });
  endpoints_->add("/tracez", "application/json", [] {
    return obs::FlightRecorder::instance().to_json() + "\n";
  });
  endpoints_->add("/profilez", "text/plain; charset=utf-8", [] {
    // Collapsed-stack text, flamegraph-ready (profiler.h).
    return obs::ScopeProfiler::instance().collapsed();
  });
  endpoints_->add("/slowz", "application/json",
                  [this] { return service_.slowz_json() + "\n"; });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
}

Daemon::~Daemon() { stop(); }

void Daemon::serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listener = listen_fd_.load(std::memory_order_acquire);
    if (listener < 0) break;
    const int fd = ::accept(listener, nullptr, nullptr);
    // Each accept also reaps connections that finished since the last one,
    // so the handle set tracks *live* connections (plus at most the ones
    // that finished while accept blocked).
    reap_finished();
    if (fd < 0) {
      if (errno == EINTR) continue;
      // stop() closed the listener (or it genuinely failed): wind down.
      break;
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    const std::uint64_t id = next_connection_id_++;
    connections_.emplace(id, std::thread([this, fd, id] {
                           handle_connection(fd, id);
                         }));
  }
  // Wind-down: join everything still registered, finished or not.
  std::map<std::uint64_t, std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connections.swap(connections_);
    finished_.clear();
  }
  for (auto& [id, connection] : connections) {
    if (connection.joinable()) connection.join();
  }
}

void Daemon::mark_finished(std::uint64_t connection_id) {
  std::lock_guard<std::mutex> lock(threads_mutex_);
  finished_.push_back(connection_id);
}

void Daemon::reap_finished() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (const std::uint64_t id : finished_) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // already taken by wind-down
      to_join.push_back(std::move(it->second));
      connections_.erase(it);
    }
    finished_.clear();
  }
  // Join outside the lock: the threads are past their serving loop (they
  // marked themselves finished), so these joins complete immediately.
  for (auto& thread : to_join) {
    if (thread.joinable()) thread.join();
  }
}

void Daemon::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // Closing the listener fails the blocking accept() in serve().
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void Daemon::handle_connection(int fd, std::uint64_t connection_id) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  char chunk[4096];
  bool open = true;
  // Undecided until enough bytes arrive to distinguish an HTTP GET from the
  // NDJSON protocol ("GET " can only be an HTTP request line: a JSON object
  // line starts with '{').
  enum class Mode { kUndecided, kNdjson, kHttp } mode = Mode::kUndecided;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));

    if (mode == Mode::kUndecided) {
      if (buffer.size() >= 4) {
        mode = looks_like_http(buffer) ? Mode::kHttp : Mode::kNdjson;
      } else if (buffer.find('\n') != std::string::npos) {
        mode = Mode::kNdjson;  // a full (short) line: cannot be HTTP
      } else {
        continue;  // need more bytes to tell
      }
    }
    if (mode == Mode::kHttp) {
      // One request per connection (Connection: close): wait for the end of
      // the header block, answer, done. Good enough for curl and scrapers.
      if (!http_request_complete(buffer)) {
        if (buffer.size() > 64 * 1024) break;  // runaway header block
        continue;
      }
      write_all(fd, endpoints_->respond(buffer));
      break;
    }

    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && open;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      bool shutdown_requested = false;
      std::string response =
          handle_request(service_, line, shutdown_requested);
      response.push_back('\n');
      if (!write_all(fd, response)) open = false;
      if (shutdown_requested) {
        // Drain queued work, then unblock the accept loop. The response was
        // already flushed, so the requesting client gets its ack.
        service_.shutdown(/*drain=*/true);
        stop();
        open = false;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  mark_finished(connection_id);
}

}  // namespace dp::service
