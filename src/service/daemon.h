// diffprovd's transport: newline-delimited JSON over loopback TCP, with a
// minimal HTTP GET fast path on the same listener.
//
// Thread-per-connection on top of the in-process DiagnosisService -- the
// service's own admission control is the backpressure mechanism, so the
// transport stays dumb: read a line, hand it to protocol.h, write a line.
// Binds 127.0.0.1 only (this is a local diagnosis daemon, not a network
// service); port 0 asks the kernel for an ephemeral port, which tests and
// the CI smoke read back via Daemon::port() / --port-file.
//
// Scrape endpoints: a connection whose first four bytes are "GET " is
// served as one HTTP request and closed (sniff/route/respond live in
// http.h, shared by every endpoint) -- `/metrics` (Prometheus text
// exposition of the service registry), `/healthz` ("ok"), `/tracez` (the
// flight-recorder dump as JSON), `/profilez` (the scope profiler's
// collapsed stacks, flamegraph-ready), and `/slowz` (the slow-query
// journal as JSON). Anything else on the socket is the NDJSON protocol, so
// `curl` and `diffprov_client` share the port.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/service.h"

namespace dp::service {

class HttpEndpoints;

class Daemon {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Throws
  /// std::runtime_error on socket failures.
  Daemon(DiagnosisService& service, std::uint16_t port);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// The bound port (the kernel's choice when constructed with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Accepts and serves connections until stop() is called or a client
  /// sends a shutdown op. Blocks; run it on the main thread (diffprovd
  /// does) or a dedicated one (tests do).
  void serve();

  /// Unblocks serve() and closes the listener; in-flight connection threads
  /// are joined, the service itself is left to the caller.
  void stop();

 private:
  void handle_connection(int fd, std::uint64_t connection_id);
  /// Marks a connection thread done; the accept loop joins it later (a
  /// thread cannot join itself).
  void mark_finished(std::uint64_t connection_id);
  /// Joins and forgets every connection thread that has marked itself
  /// finished, so a long-lived daemon holds handles only for *live*
  /// connections instead of accumulating one dead std::thread per past
  /// client.
  void reap_finished();

  DiagnosisService& service_;
  /// The HTTP scrape surface (route table + renderer); built once in the
  /// constructor, read-only afterwards, shared by connection threads.
  std::unique_ptr<HttpEndpoints> endpoints_;
  /// Atomic: stop() swaps in -1 and closes it while serve() is blocked in
  /// accept() on another thread.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  std::mutex threads_mutex_;
  std::map<std::uint64_t, std::thread> connections_;
  std::vector<std::uint64_t> finished_;  // ids awaiting their join
  std::uint64_t next_connection_id_ = 1;
};

}  // namespace dp::service
