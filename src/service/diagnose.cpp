#include "service/diagnose.h"

#include <chrono>

#include "diffprov/reference.h"

namespace dp::service {

namespace {

double micros_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

DiagnoseOutcome diagnose_problem(const Problem& problem,
                                 const DiagnoseSpec& spec,
                                 const ReplayOptions& replay_options,
                                 std::shared_ptr<const BadRun> warm_run) {
  DiagnoseOutcome outcome;

  // The initial bad run: reuse the warm resident replay when the session
  // manager supplies one, else replay the log (the cold path).
  BadRun run;
  if (warm_run != nullptr) {
    outcome.profile.warm_reuse = true;
    run = *warm_run;
  } else {
    const auto replay_start = std::chrono::steady_clock::now();
    LogReplayProvider query_provider(problem.program, problem.topology,
                                     problem.log, replay_options);
    run = query_provider.replay_bad({});
    outcome.profile.initial_replay_us = micros_since(replay_start);
  }

  const auto locate_start = std::chrono::steady_clock::now();
  const auto bad_tree = locate_tree(*run.graph, spec.bad_event);
  outcome.profile.locate_us = micros_since(locate_start);
  if (!bad_tree) {
    outcome.err = "the event of interest " + spec.bad_event.to_string() +
                  " does not occur in the log\n";
    return outcome;
  }
  if (spec.show_tree == "bad") {
    outcome.pre = "provenance of " + spec.bad_event.to_string() + " (" +
                  std::to_string(bad_tree->size()) + " vertexes):\n" +
                  bad_tree->to_text() + "\n";
  }
  if (spec.want_dot) outcome.dot = bad_tree->to_dot();

  LogReplayProvider provider(problem.program, problem.topology, problem.log,
                             replay_options);
  DiffProv diffprov(problem.program, provider);
  DiffProvResult result;
  if (spec.good_event) {
    const auto good_locate_start = std::chrono::steady_clock::now();
    const auto good_tree = locate_tree(*run.graph, *spec.good_event);
    outcome.profile.locate_us += micros_since(good_locate_start);
    if (!good_tree) {
      outcome.err = "the reference event " + spec.good_event->to_string() +
                    " does not occur in the log\n";
      return outcome;
    }
    if (spec.show_tree == "good") {
      outcome.out += "provenance of " + spec.good_event->to_string() + " (" +
                     std::to_string(good_tree->size()) + " vertexes):\n" +
                     good_tree->to_text() + "\n";
    }
    // A warm run stands in for the replay diagnose() would otherwise do
    // first: replay is deterministic, so the result -- and therefore the
    // rendered text -- is identical either way.
    result = warm_run != nullptr
                 ? diffprov.diagnose(*good_tree, spec.bad_event, run)
                 : diffprov.diagnose(*good_tree, spec.bad_event);
    outcome.profile.timing = result.timing;
    if (spec.minimize && result.ok()) {
      const auto minimize_start = std::chrono::steady_clock::now();
      result = diffprov.minimize_delta(*good_tree, result);
      outcome.profile.minimize_us = micros_since(minimize_start);
    }
  } else {
    const AutoDiagnosis auto_result = diagnose_with_auto_reference(
        diffprov, *run.graph, spec.bad_event);
    if (auto_result.reference) {
      outcome.out += "auto-selected reference: " +
                     auto_result.reference->to_string() + " (after trying " +
                     std::to_string(auto_result.candidates_tried) +
                     " candidate(s))\n";
    }
    result = auto_result.result;
    outcome.profile.timing = result.timing;
    if (spec.minimize && result.ok() && auto_result.reference) {
      const auto minimize_start = std::chrono::steady_clock::now();
      const auto good_tree = locate_tree(*run.graph, *auto_result.reference);
      if (good_tree) result = diffprov.minimize_delta(*good_tree, result);
      outcome.profile.minimize_us = micros_since(minimize_start);
    }
  }

  outcome.profile.rounds = result.rounds;
  outcome.profile.good_tree_size = result.good_tree_size;
  outcome.profile.bad_tree_size = result.bad_tree_size;
  outcome.out += result.to_string();
  outcome.exit_code = result.ok() ? 0 : 1;
  return outcome;
}

}  // namespace dp::service
