// The single diagnosis pipeline shared by the one-shot CLI and the
// diffprovd service: replay (or reuse a warm replay), locate the trees, run
// DiffProv (explicit reference or auto-selected), optionally minimize.
//
// Byte-identity is the contract: for the same problem and spec, the `out`
// text is identical whether the query ran cold in-process (CLI) or against a
// warm resident run inside the service. Replay is deterministic, so passing
// a previously-replayed run as the initial bad run changes nothing but the
// time spent; the serving-path acceptance test diffs the two outputs.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "diffprov/diffprov.h"
#include "service/problem.h"

namespace dp::service {

struct DiagnoseSpec {
  std::optional<Tuple> good_event;  // nullopt = auto-reference (section 4.9)
  Tuple bad_event;
  bool minimize = false;
  /// "good" | "bad" | "": print the tree before diagnosing (CLI only).
  std::string show_tree;
  /// Render the bad tree as Graphviz into DiagnoseOutcome::dot (CLI only).
  bool want_dot = false;
};

/// Where one diagnosis spent its wall time, in the paper's §4 phase
/// vocabulary (Figures 7-8), plus the serving-path costs around it. All
/// times are microseconds of wall clock inside diagnose_problem; the service
/// layer adds the phases it owns (session wait, warm-up) and an "other"
/// remainder so the phases sum to the reported exec time.
struct DiagnoseProfile {
  /// The initial bad run came from a warm session (no replay here).
  bool warm_reuse = false;
  double initial_replay_us = 0;  // cold-path replay of the recorded log
  double locate_us = 0;          // projecting the good/bad trees
  DiffProvTiming timing;         // reasoning + UpdateTree replay decomposition
  double minimize_us = 0;        // optional Δ-minimization post-pass
  int rounds = 0;
  std::size_t good_tree_size = 0;
  std::size_t bad_tree_size = 0;
};

struct DiagnoseOutcome {
  /// 0 = diagnosis succeeded; 1 = event missing or diagnosis failed.
  int exit_code = 1;
  /// What the CLI prints to stdout for this query (tree dumps excluded --
  /// those land in `pre` so the CLI can interleave its --dot message).
  std::string out;
  /// Tree dumps requested via show_tree (printed before `out`).
  std::string pre;
  /// Error text (missing events); the CLI sends this to stderr.
  std::string err;
  /// Graphviz of the bad tree when want_dot was set.
  std::string dot;
  /// Wall-time decomposition of this run (see DiagnoseProfile).
  DiagnoseProfile profile;

  [[nodiscard]] bool ok() const { return exit_code == 0; }
};

/// Runs one diagnosis. `warm_run` optionally supplies an already-replayed
/// bad execution (the service's warm-session path); when absent the problem
/// log is replayed first (the CLI's cold path). Both yield identical text.
DiagnoseOutcome diagnose_problem(const Problem& problem,
                                 const DiagnoseSpec& spec,
                                 const ReplayOptions& replay_options,
                                 std::shared_ptr<const BadRun> warm_run = {});

}  // namespace dp::service
