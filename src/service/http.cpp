#include "service/http.h"

namespace dp::service {

void HttpEndpoints::add(std::string path, std::string content_type,
                        std::function<std::string()> body) {
  endpoints_.push_back({std::move(path), std::move(content_type),
                        std::move(body)});
}

std::string HttpEndpoints::respond(const std::string& buffer) const {
  const std::string path = http_request_path(buffer);
  for (const Endpoint& endpoint : endpoints_) {
    if (endpoint.path == path) {
      return render_http_response("200 OK", endpoint.content_type,
                                  endpoint.body());
    }
  }
  return render_http_response("404 Not Found", "text/plain; charset=utf-8",
                              "not found: " + path + "\n");
}

std::vector<std::string> HttpEndpoints::paths() const {
  std::vector<std::string> out;
  out.reserve(endpoints_.size());
  for (const Endpoint& endpoint : endpoints_) out.push_back(endpoint.path);
  return out;
}

bool looks_like_http(const std::string& buffer) {
  return buffer.compare(0, 4, "GET ") == 0;
}

bool http_request_complete(const std::string& buffer) {
  return buffer.find("\r\n\r\n") != std::string::npos ||
         buffer.find("\n\n") != std::string::npos;
}

std::string http_request_path(const std::string& buffer) {
  // Request line: "GET <path>[?query] HTTP/1.x".
  const std::size_t line_end = buffer.find_first_of("\r\n");
  const std::string request_line = buffer.substr(
      0, line_end == std::string::npos ? buffer.size() : line_end);
  std::string path = request_line.size() > 4 ? request_line.substr(4) : "";
  if (const std::size_t space = path.find(' '); space != std::string::npos) {
    path.resize(space);
  }
  if (const std::size_t query = path.find('?'); query != std::string::npos) {
    path.resize(query);
  }
  return path;
}

std::string render_http_response(const std::string& status,
                                 const std::string& content_type,
                                 const std::string& body) {
  std::string response;
  response.reserve(body.size() + 160);
  response += "HTTP/1.1 " + status + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  return response;
}

}  // namespace dp::service
