#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

/// The daemon's HTTP fast path, factored out of the connection loop: one
/// sniff helper ("is this socket speaking HTTP?"), one route table, one
/// response renderer. Every scrape endpoint -- /metrics, /healthz, /tracez,
/// /profilez, /slowz -- registers here instead of growing another branch in
/// daemon.cpp, and tests can exercise routing without a socket.
///
/// Scope stays deliberately tiny: GET only, one request per connection
/// (Connection: close), no keep-alive, no request body. That is exactly what
/// curl and Prometheus scrapers need from a loopback diagnosis daemon.
namespace dp::service {

class HttpEndpoints {
 public:
  /// Registers `path` (exact match, query string stripped before routing)
  /// with a body producer. The producer runs per request on the connection
  /// thread; it must be thread-safe.
  void add(std::string path, std::string content_type,
           std::function<std::string()> body);

  /// Routes the request in `buffer` (a raw header block starting with
  /// "GET ") and renders the complete HTTP/1.1 response, 404 included.
  [[nodiscard]] std::string respond(const std::string& buffer) const;

  /// Registered paths in registration order (for docs/404 listings).
  [[nodiscard]] std::vector<std::string> paths() const;

 private:
  struct Endpoint {
    std::string path;
    std::string content_type;
    std::function<std::string()> body;
  };
  std::vector<Endpoint> endpoints_;
};

/// True once `buffer` provably starts an HTTP GET request ("GET " prefix);
/// false once it provably cannot (diverging prefix or a complete short
/// line). Callers with fewer than 4 bytes and no newline should keep
/// reading.
bool looks_like_http(const std::string& buffer);

/// True when the header block is complete (blank line seen) and `respond`
/// can run.
bool http_request_complete(const std::string& buffer);

/// "GET /slowz?n=1 HTTP/1.1" -> "/slowz" (query stripped). Exposed for
/// tests; respond() uses it internally.
std::string http_request_path(const std::string& buffer);

/// Renders a full HTTP/1.1 response with Content-Length and
/// Connection: close.
std::string render_http_response(const std::string& status,
                                 const std::string& content_type,
                                 const std::string& body);

}  // namespace dp::service
