#include "service/problem.h"

#include <cctype>
#include <ostream>
#include <sstream>

#include "dns/dns.h"
#include "mapred/scenario.h"
#include "ndlog/parser.h"
#include "sdn/scenario.h"
#include "util/hash.h"

namespace dp::service {

std::optional<Problem> builtin_scenario(const std::string& name,
                                        std::ostream& err) {
  for (sdn::Scenario& s : sdn::all_scenarios()) {
    std::string lower = s.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name) {
      return Problem{std::move(s.program), std::move(s.topology),
                     std::move(s.log), s.good_event, s.bad_event};
    }
  }
  for (dns::Scenario& s : dns::all_scenarios()) {
    if (s.name == name) {
      return Problem{std::move(s.program), std::move(s.topology),
                     std::move(s.log), s.good_event, s.bad_event};
    }
  }
  for (const char* mr : {"mr1-d", "mr2-d"}) {
    if (name != mr) continue;
    mapred::Scenario s = name == "mr1-d" ? mapred::mr1_declarative()
                                         : mapred::mr2_declarative();
    // The MR built-ins expose only the bad job's log: a reference event from
    // the good job cannot be folded into the same replay soundly, so they
    // require --auto-reference or an explicit good event from the bad run.
    return Problem{std::move(s.model), Topology{},
                   mapred::declarative_job_log(s.store, s.bad_config),
                   std::nullopt, s.bad_event};
  }
  err << "unknown scenario '" << name << "' (try --list-scenarios)\n";
  return std::nullopt;
}

void list_scenarios(std::ostream& out) {
  out << "built-in scenarios:\n";
  for (const sdn::Scenario& s : sdn::all_scenarios()) {
    std::string lower = s.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    out << "  " << lower << "  -- " << s.description << "\n";
  }
  for (const dns::Scenario& s : dns::all_scenarios()) {
    out << "  " << s.name << "  -- " << s.description << "\n";
  }
  out << "  mr1-d  -- declarative MapReduce, changed reducer count "
         "(use --auto-reference)\n";
  out << "  mr2-d  -- declarative MapReduce, buggy mapper deployment "
         "(use --auto-reference)\n";
}

Problem parse_problem(const std::string& program_text,
                      const std::string& log_text, Topology topology) {
  Problem problem;
  problem.program = parse_program(program_text);
  problem.log = EventLog::from_text(log_text);
  problem.topology = std::move(topology);
  return problem;
}

std::uint64_t log_content_hash(const EventLog& log) {
  std::ostringstream bytes;
  log.serialize(bytes);
  return fnv1a(bytes.str());
}

}  // namespace dp::service
