// A diagnosis problem: everything needed to replay an execution and ask a
// DiffProv query against it -- the program, the topology, the recorded base
// event log, and (optionally) default good/bad events.
//
// Both front-ends assemble problems through this module so they agree on the
// built-in scenario catalogue: the one-shot CLI (src/tools/cli.cpp) and the
// diffprovd service (src/service/service.h), which keys warm sessions and
// cache entries off a problem's content hash.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "replay/replay_engine.h"

namespace dp::service {

struct Problem {
  Program program;
  Topology topology;
  EventLog log;
  std::optional<Tuple> good_event;
  std::optional<Tuple> bad_event;
};

/// Assembles a built-in scenario (sdn1..sdn4, dns1.., mr1-d, mr2-d) by its
/// CLI name. Unknown name: returns nullopt after writing a message to `err`.
std::optional<Problem> builtin_scenario(const std::string& name,
                                        std::ostream& err);

/// Prints the built-in scenario catalogue (the CLI's --list-scenarios).
void list_scenarios(std::ostream& out);

/// Assembles a problem from NDlog program text and event-log text (the
/// EventLog::to_text format). Throws std::runtime_error (with line
/// information) on malformed input -- the daemon feeds this bytes off the
/// wire.
Problem parse_problem(const std::string& program_text,
                      const std::string& log_text, Topology topology = {});

/// Content hash of a problem's recorded log (FNV-1a over the binary
/// serialization). Cache keys use this so two sessions over byte-identical
/// logs share results, whatever name they arrived under.
std::uint64_t log_content_hash(const EventLog& log);

}  // namespace dp::service
