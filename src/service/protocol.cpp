#include "service/protocol.h"

#include <cmath>
#include <sstream>

#include "obs/flightrec.h"
#include "obs/json_check.h"
#include "obs/trace.h"

namespace dp::service {
namespace {

using obs::Json;
using obs::json_quote;

std::string error_response(const std::string& message) {
  return "{\"ok\":false,\"error\":" + json_quote(message) + "}";
}

/// Parses the optional "trace" field (the client-minted trace id) into
/// `trace_id`. Returns false and fills `error` with a named parse error on
/// anything but a 1-16-digit nonzero hex string -- oversized or malformed
/// ids are rejected at the wire, never propagated half-parsed.
bool parse_trace_field(const Json& request, std::uint64_t& trace_id,
                       std::string& error) {
  const Json* trace = request.find("trace");
  if (trace == nullptr) return true;
  if (trace->kind != Json::Kind::kString) {
    error = "trace parse error: \"trace\" must be a string of hex digits";
    return false;
  }
  if (trace->string.size() > 16) {
    error = "trace parse error: trace id exceeds 16 hex digits (got " +
            std::to_string(trace->string.size()) + ")";
    return false;
  }
  if (!obs::parse_trace_id(trace->string, trace_id)) {
    error = "trace parse error: \"" + trace->string +
            "\" is not a nonzero hex trace id";
    return false;
  }
  return true;
}

std::string format_number(double v) {
  // Ticket ids and counters are integral; render them without a fraction so
  // clients (and humans) see "id":7, not "id":7.000000.
  std::ostringstream out;
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    out << static_cast<long long>(v);
  } else {
    out << v;
  }
  return out.str();
}

std::string status_response(std::uint64_t id, const QueryStatus& status) {
  std::ostringstream out;
  out << "{\"ok\":true,\"id\":" << id << ",\"state\":"
      << json_quote(to_string(status.state));
  if (status.state == QueryState::kDone) {
    out << ",\"exit_code\":" << status.result.exit_code
        << ",\"out\":" << json_quote(status.result.out)
        << ",\"err\":" << json_quote(status.result.err);
    if (!status.result.profile_json.empty()) {
      // Pre-rendered by the service at completion time (single-line JSON).
      out << ",\"profile\":" << status.result.profile_json;
    }
  }
  out << ",\"cache_hit\":" << (status.cache_hit ? "true" : "false")
      << ",\"coalesced\":" << (status.coalesced ? "true" : "false")
      << ",\"queue_us\":" << format_number(status.queue_us)
      << ",\"exec_us\":" << format_number(status.exec_us) << "}";
  return out.str();
}

std::string handle_submit(DiagnosisService& service, const Json& request) {
  Query query;
  query.scenario = request.get_string("scenario");
  query.program_text = request.get_string("program");
  query.log_text = request.get_string("log");
  query.stream = request.get_string("stream");
  query.bad = request.get_string("bad");
  query.good = request.get_string("good");
  query.auto_reference = request.get_bool("auto_reference");
  query.minimize = request.get_bool("minimize");
  query.bypass_cache = request.get_bool("bypass_cache");
  std::string trace_error;
  if (!parse_trace_field(request, query.trace_id, trace_error)) {
    return error_response(trace_error);
  }

  const SubmitOutcome outcome = service.submit(query);
  if (!outcome.ok()) {
    std::ostringstream out;
    out << "{\"ok\":false,\"shed\":" << (outcome.shed ? "true" : "false")
        << ",\"error\":" << json_quote(outcome.error) << "}";
    return out.str();
  }
  std::ostringstream out;
  out << "{\"ok\":true,\"id\":" << outcome.id << "}";
  return out.str();
}

std::string handle_status(DiagnosisService& service, const Json& request,
                          bool block) {
  const Json* id_field = request.find("id");
  if (id_field == nullptr || id_field->kind != Json::Kind::kNumber) {
    return error_response("missing numeric \"id\"");
  }
  const auto id = static_cast<std::uint64_t>(id_field->number);
  const std::optional<QueryStatus> status =
      block ? service.wait(id) : service.poll(id);
  if (!status) return error_response("unknown id " + std::to_string(id));
  return status_response(id, *status);
}

std::string handle_cancel(DiagnosisService& service, const Json& request) {
  const Json* id_field = request.find("id");
  if (id_field == nullptr || id_field->kind != Json::Kind::kNumber) {
    return error_response("missing numeric \"id\"");
  }
  const auto id = static_cast<std::uint64_t>(id_field->number);
  const bool cancelled = service.cancel(id);
  return std::string("{\"ok\":true,\"cancelled\":") +
         (cancelled ? "true" : "false") + "}";
}

std::string handle_probe(DiagnosisService& service, const Json& request) {
  const std::string scenario = request.get_string("scenario");
  const std::string tuple = request.get_string("tuple");
  if (scenario.empty() || tuple.empty()) {
    return error_response("probe needs \"scenario\" and \"tuple\"");
  }
  std::uint64_t trace_id = 0;
  std::string trace_error;
  if (!parse_trace_field(request, trace_id, trace_error)) {
    return error_response(trace_error);
  }
  bool live = false;
  const SubmitOutcome outcome = service.probe(scenario, tuple, live, trace_id);
  if (!outcome.ok()) return error_response(outcome.error);
  return std::string("{\"ok\":true,\"live\":") + (live ? "true" : "false") +
         "}";
}

std::string render_stream_stats(const ingest::IngestStreamStats& s) {
  std::ostringstream out;
  out << "{\"events\":" << s.events << ",\"sealed_epochs\":" << s.sealed_epochs
      << ",\"open_records\":" << s.open_records
      << ",\"segments\":" << s.segments << ",\"checkpoints\":" << s.checkpoints
      << ",\"segments_compacted\":" << s.segments_compacted
      << ",\"truncated_segments\":" << s.truncated_segments
      << ",\"truncated_bytes\":" << s.truncated_bytes
      << ",\"live_rebuilds\":" << s.live_rebuilds
      << ",\"snapshots\":" << s.snapshots
      << ",\"resident_bytes\":" << s.resident_bytes
      << ",\"watermark\":" << s.watermark << "}";
  return out.str();
}

std::string ingest_response(const IngestOutcome& outcome) {
  if (!outcome.ok) return error_response(outcome.error);
  return "{\"ok\":true,\"accepted\":" + std::to_string(outcome.accepted) +
         ",\"stream\":" + render_stream_stats(outcome.stream) + "}";
}

std::string handle_ingest_open(DiagnosisService& service,
                               const Json& request) {
  const std::string stream = request.get_string("stream");
  if (stream.empty()) return error_response("ingest_open needs \"stream\"");
  return ingest_response(service.open_stream(
      stream, request.get_string("scenario"), request.get_string("program")));
}

std::string handle_ingest(DiagnosisService& service, const Json& request) {
  const std::string stream = request.get_string("stream");
  if (stream.empty()) return error_response("ingest needs \"stream\"");
  return ingest_response(service.ingest(stream, request.get_string("events"),
                                        request.get_bool("seal")));
}

std::string handle_stats(DiagnosisService& service) {
  const ServiceStats stats = service.stats();
  std::ostringstream out;
  out << "{\"ok\":true,\"stats\":{"
      << "\"submitted\":" << stats.submitted
      << ",\"completed\":" << stats.completed << ",\"shed\":" << stats.shed
      << ",\"cancelled\":" << stats.cancelled << ",\"runs\":" << stats.runs
      << ",\"cache_hits\":" << stats.cache_hits
      << ",\"cache_misses\":" << stats.cache_misses
      << ",\"coalesced\":" << stats.coalesced
      << ",\"queue_depth\":" << stats.queue_depth
      << ",\"queue_capacity\":" << stats.queue_capacity
      << ",\"shards\":" << stats.shards << ",\"shard_queue_depths\":[";
  for (std::size_t i = 0; i < stats.shard_queue_depths.size(); ++i) {
    if (i != 0) out << ",";
    out << stats.shard_queue_depths[i];
  }
  out << "]"
      << ",\"cache_size\":" << stats.cache_size
      << ",\"cache_evictions\":" << stats.cache_evictions
      << ",\"sessions\":" << stats.sessions
      << ",\"warm_sessions\":" << stats.warm_sessions
      << ",\"warm_resident_bytes\":" << stats.warm_resident_bytes
      << ",\"per_session\":{";
  bool first = true;
  for (const auto& [key, s] : stats.per_session) {
    if (!first) out << ",";
    first = false;
    out << json_quote(key) << ":{\"queries\":" << s.queries
        << ",\"warm_hits\":" << s.warm_hits
        << ",\"cold_replays\":" << s.cold_replays << ",\"probes\":" << s.probes
        << ",\"checkpoint_restores\":" << s.checkpoint_restores << "}";
  }
  out << "}"
      << ",\"ingest\":{\"streams\":" << stats.ingest_streams
      << ",\"events\":" << stats.ingest_events
      << ",\"epochs\":" << stats.ingest_epochs
      << ",\"segments\":" << stats.ingest_segments
      << ",\"segments_compacted\":" << stats.ingest_segments_compacted
      << ",\"truncated_bytes\":" << stats.ingest_truncated_bytes
      << ",\"resident_bytes\":" << stats.ingest_resident_bytes
      << ",\"per_stream\":{";
  first = true;
  for (const auto& [name, s] : stats.per_stream) {
    if (!first) out << ",";
    first = false;
    out << json_quote(name) << ":" << render_stream_stats(s);
  }
  out << "}}}}";
  return out.str();
}

}  // namespace

std::string handle_request(DiagnosisService& service, const std::string& line,
                           bool& shutdown_requested) {
  std::string parse_error;
  const std::optional<Json> request = Json::parse(line, parse_error);
  if (!request) return error_response("bad request: " + parse_error);
  if (request->kind != Json::Kind::kObject) {
    return error_response("bad request: expected a JSON object");
  }
  const std::string op = request->get_string("op");
  try {
    if (op == "submit") return handle_submit(service, *request);
    if (op == "poll") return handle_status(service, *request, /*block=*/false);
    if (op == "wait") return handle_status(service, *request, /*block=*/true);
    if (op == "cancel") return handle_cancel(service, *request);
    if (op == "probe") return handle_probe(service, *request);
    if (op == "ingest_open") return handle_ingest_open(service, *request);
    if (op == "ingest") return handle_ingest(service, *request);
    if (op == "stats") return handle_stats(service);
    if (op == "flightrec") {
      // Already single-line JSON, embeddable verbatim in the NDJSON reply.
      return "{\"ok\":true,\"flightrec\":" +
             obs::FlightRecorder::instance().to_json() + "}";
    }
    if (op == "slowz") {
      // The slow-query journal (slowlog.h), same document /slowz serves.
      return "{\"ok\":true,\"slowz\":" + service.slowz_json() + "}";
    }
    if (op == "shutdown") {
      shutdown_requested = true;
      return "{\"ok\":true,\"shutting_down\":true}";
    }
  } catch (const std::exception& e) {
    return error_response(std::string("internal error: ") + e.what());
  }
  return error_response("unknown op \"" + op + "\"");
}

}  // namespace dp::service
