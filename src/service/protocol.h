// The diffprovd wire protocol: newline-delimited JSON, one request object
// per line, one response object per line.
//
// Requests: {"op": "submit" | "poll" | "wait" | "cancel" | "probe" |
//            "stats" | "shutdown", ...}
//   submit   scenario | (program + log), bad?, good?, auto_reference?,
//            minimize?, bypass_cache?
//   poll     id            non-blocking status
//   wait     id            blocks until done/cancelled
//   cancel   id
//   probe    scenario, tuple
//   stats
//   shutdown               drains the queue, then the daemon exits
//
// Responses always carry "ok". Accepted submits carry "id"; shed submits
// carry ok=false, shed=true. Finished queries carry exit_code/out/err --
// `out` is the diagnosis report byte-for-byte as the one-shot CLI prints it
// (json_quote escaping round-trips it losslessly; the acceptance test diffs
// the two).
//
// This module is transport-free (string in, string out) so tests can
// exercise the protocol without sockets; daemon.h owns the TCP loop.
#pragma once

#include <string>

#include "service/service.h"

namespace dp::service {

/// Handles one request line against `service`, returning one response line
/// (no trailing newline). Sets `shutdown_requested` on a shutdown op --
/// the transport decides how to wind down. Malformed input yields an
/// ok=false response naming the parse error; this function does not throw.
std::string handle_request(DiagnosisService& service, const std::string& line,
                           bool& shutdown_requested);

}  // namespace dp::service
