#include "service/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <sstream>

#include "ndlog/parser.h"
#include "obs/flightrec.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "util/hash.h"

namespace dp::service {
namespace {

// Completed tickets retained for poll() after the fact, per shard; beyond
// this, the oldest finished tickets are dropped (sequence numbers are
// monotonic within a shard, so "oldest" is map order).
constexpr std::size_t kMaxRetainedTickets = 1 << 16;

double micros_between(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

// Replays (session warm-ups and diagnosis experiments alike) publish engine
// metrics into the service registry unless the caller wired one explicitly.
ReplayOptions with_metrics(ReplayOptions options, obs::MetricsRegistry* r) {
  if (options.engine_config.metrics == nullptr) {
    options.engine_config.metrics = r;
  }
  return options;
}

/// The explain profile served with a finished response: the paper-§4 phase
/// decomposition plus the serving-path phases around it, an explicit
/// "other_us" remainder (so the phases sum to total_us by construction),
/// the provenance/store footprint this run touched, and its disposition.
std::string render_profile_json(const DiagnoseProfile& profile,
                                double session_wait_us, double warm_replay_us,
                                double ingest_snapshot_us, bool warm_hit,
                                double exec_us, std::uint64_t trace_id,
                                std::uint64_t vertices_delta,
                                std::uint64_t store_tuples,
                                std::uint64_t store_bytes) {
  // Profile times are integral microseconds: precise enough to explain a
  // diagnosis. Each phase is rounded independently, the remainder covers
  // whatever the named phases did not measure, and total is reconciled with
  // the rounded sum so "phases add up to total_us" holds *exactly* (the
  // invariant --explain's percentage column and the tests rely on).
  const auto us = [](double v) { return std::llround(v); };
  const long long phases[] = {us(session_wait_us),
                              us(warm_replay_us),
                              us(ingest_snapshot_us),
                              us(profile.initial_replay_us),
                              us(profile.locate_us),
                              us(profile.timing.find_seed_us),
                              us(profile.timing.annotate_us),
                              us(profile.timing.divergence_us),
                              us(profile.timing.make_appear_us),
                              us(profile.timing.replay_us),
                              us(profile.minimize_us)};
  long long accounted = 0;
  for (const long long phase : phases) accounted += phase;
  long long total = us(exec_us);
  const long long other = total > accounted ? total - accounted : 0;
  total = accounted + other;
  std::ostringstream out;
  out << "{\"total_us\":" << total;
  if (trace_id != 0) {
    out << ",\"trace_id\":\"" << obs::format_trace_id(trace_id) << "\"";
  }
  out << ",\"warm_hit\":" << (warm_hit ? "true" : "false")
      << ",\"phases\":{\"session_wait_us\":" << phases[0]
      << ",\"warm_replay_us\":" << phases[1]
      << ",\"ingest_snapshot_us\":" << phases[2]
      << ",\"replay_us\":" << phases[3]
      << ",\"locate_us\":" << phases[4]
      << ",\"find_seed_us\":" << phases[5]
      << ",\"annotate_us\":" << phases[6]
      << ",\"divergence_us\":" << phases[7]
      << ",\"make_appear_us\":" << phases[8]
      << ",\"diff_replay_us\":" << phases[9]
      << ",\"minimize_us\":" << phases[10]
      << ",\"other_us\":" << other << "}"
      << ",\"rounds\":" << profile.rounds
      << ",\"replays\":" << profile.timing.replays
      << ",\"good_tree_size\":" << profile.good_tree_size
      << ",\"bad_tree_size\":" << profile.bad_tree_size
      << ",\"vertices_delta\":" << vertices_delta
      << ",\"store_tuples\":" << store_tuples
      << ",\"store_bytes\":" << store_bytes << "}";
  return out.str();
}

}  // namespace

std::string to_string(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kRunning:
      return "running";
    case QueryState::kDone:
      return "done";
    case QueryState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string ServiceStats::to_text() const {
  std::ostringstream out;
  out << "submitted " << submitted << " completed " << completed << " shed "
      << shed << " cancelled " << cancelled << " runs " << runs << "\n"
      << "cache hits " << cache_hits << " misses " << cache_misses
      << " coalesced " << coalesced << " entries " << cache_size
      << " evictions " << cache_evictions << "\n"
      << "shards " << shards << " queue " << queue_depth << "/"
      << queue_capacity << " sessions " << sessions << " (" << warm_sessions
      << " warm, " << warm_resident_bytes << " resident bytes)\n"
      << "ingest streams " << ingest_streams << " events " << ingest_events
      << " epochs " << ingest_epochs << " segments " << ingest_segments
      << " (compacted " << ingest_segments_compacted << ", truncated "
      << ingest_truncated_bytes << " bytes, " << ingest_resident_bytes
      << " resident bytes)\n";
  for (const auto& [key, s] : per_session) {
    out << "  session " << key << ": queries " << s.queries << " warm_hits "
        << s.warm_hits << " cold_replays " << s.cold_replays << " probes "
        << s.probes << " checkpoint_restores " << s.checkpoint_restores
        << "\n";
  }
  for (const auto& [name, s] : per_stream) {
    out << "  stream " << name << ": events " << s.events << " epochs "
        << s.sealed_epochs << " (+" << s.open_records << " open) segments "
        << s.segments << " checkpoints " << s.checkpoints << " snapshots "
        << s.snapshots << " rebuilds " << s.live_rebuilds << "\n";
  }
  return out.str();
}

DiagnosisService::Shard::Shard(std::size_t shard_index, std::size_t max_warm,
                               std::shared_ptr<WarmBudgetLedger> ledger,
                               ReplayOptions options,
                               obs::MetricsRegistry& registry,
                               std::size_t queue_capacity,
                               std::size_t slow_journal_capacity)
    : index(shard_index),
      sessions(max_warm, std::move(ledger), shard_index, std::move(options),
               registry),
      queue(queue_capacity),
      queue_depth(registry.gauge("dp.service.shard." +
                                 std::to_string(shard_index) +
                                 ".queue_depth")),
      slow_journal(slow_journal_capacity) {}

DiagnosisService::DiagnosisService(ServiceConfig config)
    : config_(std::move(config)),
      registry_(config_.metrics != nullptr ? config_.metrics
                                           : &obs::default_registry()),
      replay_options_(with_metrics(config_.replay, registry_)),
      ledger_(std::make_shared<WarmBudgetLedger>(
          config_.warm_bytes_budget,
          std::min<std::size_t>(std::max<std::size_t>(config_.shards, 1),
                                kMaxShards),
          /*extra_slots=*/1)),  // the live-ingest tier's slot
      cache_(config_.cache_capacity, config_.cache_stripes, registry_),
      submitted_(registry_->counter("dp.service.submitted")),
      completed_(registry_->counter("dp.service.completed")),
      shed_(registry_->counter("dp.service.shed")),
      cancelled_(registry_->counter("dp.service.cancelled")),
      runs_(registry_->counter("dp.service.runs")),
      cache_hits_(registry_->counter("dp.service.cache.hits")),
      cache_misses_(registry_->counter("dp.service.cache.misses")),
      coalesced_(registry_->counter("dp.service.cache.coalesced")),
      queue_depth_(registry_->gauge("dp.service.queue_depth")),
      worker_stuck_(registry_->gauge("dp.service.worker.stuck")),
      worker_panics_(registry_->counter("dp.service.worker.panics")),
      slow_captured_(registry_->counter("dp.service.slow.captured")),
      queue_wait_us_(registry_->histogram("dp.service.queue_wait_us")),
      exec_us_(registry_->histogram("dp.service.exec_us")),
      queue_wait_sketch_(registry_->sketch("dp.service.queue_wait_us")),
      exec_sketch_(registry_->sketch("dp.service.exec_us")) {
  const std::size_t nshards = std::min<std::size_t>(
      std::max<std::size_t>(config_.shards, 1), kMaxShards);
  // The session-count cap is global; every shard enforces its slice (at
  // least one warm session per shard, or the shard could never serve warm).
  const std::size_t max_warm_per_shard =
      std::max<std::size_t>(1, config_.max_warm_sessions / nshards);
  shards_.reserve(nshards);
  for (std::size_t s = 0; s < nshards; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        s, max_warm_per_shard, ledger_, replay_options_, *registry_,
        config_.queue_capacity, config_.slow_journal_capacity));
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    shard.worker_states.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i) {
      shard.worker_states.push_back(std::make_unique<WorkerState>());
    }
    shard.workers.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i) {
      shard.workers.emplace_back([this, &shard, i] { worker_loop(shard, i); });
    }
  }
  // Ingest streams bill their resident bytes into the ledger's extra slot,
  // so warm sessions and live graphs spend one shared budget. Created before
  // the watchdog, whose tick drives stream maintenance.
  ingest_ = std::make_unique<ingest::IngestManager>(
      replay_options_, config_.ingest, *registry_,
      [ledger = ledger_, slot = nshards](std::uint64_t bytes) {
        ledger->publish(slot, bytes);
      });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

DiagnosisService::~DiagnosisService() { shutdown(/*drain=*/true); }

std::size_t DiagnosisService::shard_of_key(
    const std::string& session_key) const {
  return fnv1a(session_key) % shards_.size();
}

DiagnosisService::Shard* DiagnosisService::shard_for_id(
    std::uint64_t id) const {
  const std::size_t index = static_cast<std::size_t>(id >> kShardShift);
  if (index >= shards_.size()) return nullptr;
  return shards_[index].get();
}

std::uint64_t DiagnosisService::allocate_ticket(
    Shard& shard, std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::uint64_t id = make_ticket_id(shard.index, shard.next_seq++);
  shard.tickets[id].submitted_at = now;
  return id;
}

std::vector<std::uint64_t> DiagnosisService::ticket_ids_of(JobState& job) {
  std::lock_guard<std::mutex> lock(job.ids_mutex);
  return job.ticket_ids;
}

SubmitOutcome DiagnosisService::submit(const Query& query) {
  SubmitOutcome outcome;

  // Route before resolving: the session key alone picks the shard, so every
  // structure touched from here on is shard-local (or a cache stripe).
  std::string session_key;
  std::shared_ptr<ingest::IngestStream> stream;
  if (!query.stream.empty()) {
    if (!query.scenario.empty() || !query.program_text.empty()) {
      outcome.error =
          "query names both a live stream and a scenario/inline problem";
      return outcome;
    }
    stream = ingest_->find(query.stream);
    if (stream == nullptr) {
      outcome.error = "unknown ingest stream \"" + query.stream +
                      "\" (ingest_open first)";
      return outcome;
    }
    session_key = "ingest:" + query.stream;
  } else if (!query.scenario.empty()) {
    session_key = query.scenario;
  } else if (!query.program_text.empty()) {
    session_key = inline_session_key(query.program_text, query.log_text);
  } else {
    outcome.error = "query names neither a scenario nor an inline problem";
    return outcome;
  }
  Shard& shard = *shards_[shard_of_key(session_key)];

  std::shared_ptr<WarmSession> session;
  const std::optional<Tuple>* default_good = nullptr;
  const std::optional<Tuple>* default_bad = nullptr;
  if (stream != nullptr) {
    default_good = &stream->good_event();
    default_bad = &stream->bad_event();
  } else {
    session = query.scenario.empty()
                  ? shard.sessions.get_inline(query.program_text,
                                              query.log_text, outcome.error)
                  : shard.sessions.get_scenario(query.scenario, outcome.error);
    if (session == nullptr) return outcome;
    default_good = &session->problem().good_event;
    default_bad = &session->problem().bad_event;
  }

  DiagnoseSpec spec;
  spec.minimize = query.minimize;
  try {
    if (!query.bad.empty()) {
      spec.bad_event = parse_tuple(query.bad);
    } else if (*default_bad) {
      spec.bad_event = **default_bad;
    } else {
      outcome.error = "no event of interest: pass bad=<tuple>";
      return outcome;
    }
    if (query.auto_reference) {
      spec.good_event.reset();
    } else if (!query.good.empty()) {
      spec.good_event = parse_tuple(query.good);
    } else if (*default_good) {
      spec.good_event = **default_good;
    } else {
      outcome.error =
          "no reference event: pass good=<tuple> or auto_reference";
      return outcome;
    }
  } catch (const std::exception& e) {
    outcome.error = std::string("bad tuple: ") + e.what();
    return outcome;
  }

  // Stream queries key the cache on the stream's *running* content hash:
  // every append advances it, so an entry for an older prefix is simply
  // unreachable, never served stale. (A result may cover a slightly longer
  // prefix than the hash it was keyed under -- appends that landed between
  // submit and snapshot -- which is the freshest answer, not a stale one.)
  const std::uint64_t content_hash =
      stream != nullptr ? hash_mix(fnv1a(session_key), stream->content_hash())
                        : session->log_hash();
  const std::string key = make_cache_key(
      content_hash, spec.bad_event.to_string(),
      spec.good_event ? spec.good_event->to_string() : "<auto>",
      spec.minimize, config_.config_epoch);
  const bool cacheable = !query.bypass_cache;
  const auto now = std::chrono::steady_clock::now();

  if (!accepting_.load(std::memory_order_acquire)) {
    outcome.error = "service is shutting down";
    return outcome;
  }
  submitted_.inc();
  const std::uint64_t id = allocate_ticket(shard, now);

  if (cacheable) {
    CachedResult hit;
    const StripedResultCache::Admission admission = cache_.admit(
        key, &hit,
        // Coalesce: attach this ticket to the running leader's list, under
        // the stripe lock (so the attach is ordered against the leader's
        // completion) and the leader's ids_mutex (so it is ordered against
        // the worker's snapshots).
        [&](const std::shared_ptr<void>& leader) {
          auto leader_job = std::static_pointer_cast<JobState>(leader);
          std::lock_guard<std::mutex> ids_lock(leader_job->ids_mutex);
          leader_job->ticket_ids.push_back(id);
        },
        // No cached result, no leader: become the leader if the shard's
        // queue takes the job. Pushing under the stripe lock keeps "leader
        // registered" and "job queued" atomic -- nobody can coalesce onto a
        // job the queue just rejected.
        [&]() -> std::shared_ptr<void> {
          auto job = std::make_shared<JobState>();
          job->key = key;
          job->shard = shard.index;
          job->session = session;
          job->stream = stream;
          job->spec = spec;
          job->cacheable = true;
          job->trace_id = query.trace_id;
          job->ticket_ids.push_back(id);
          if (!shard.queue.try_push(job)) return nullptr;
          return job;
        });
    switch (admission) {
      case StripedResultCache::Admission::kHit: {
        cache_hits_.inc();
        {
          std::lock_guard<std::mutex> lock(shard.mutex);
          auto it = shard.tickets.find(id);
          if (it != shard.tickets.end()) {
            it->second.state = QueryState::kDone;
            it->second.cache_hit = true;
            it->second.result = std::move(hit);
          }
          completed_.inc();
          trim_tickets_locked(shard);
        }
        outcome.accepted = true;
        outcome.id = id;
        return outcome;
      }
      case StripedResultCache::Admission::kCoalesced: {
        cache_misses_.inc();
        coalesced_.inc();
        {
          std::lock_guard<std::mutex> lock(shard.mutex);
          auto it = shard.tickets.find(id);
          if (it != shard.tickets.end()) it->second.coalesced = true;
        }
        outcome.accepted = true;
        outcome.id = id;
        return outcome;
      }
      case StripedResultCache::Admission::kAccepted: {
        cache_misses_.inc();
        queue_depth_.add(1);
        shard.queue_depth.set(
            static_cast<std::int64_t>(shard.queue.size()));
        outcome.accepted = true;
        outcome.id = id;
        return outcome;
      }
      case StripedResultCache::Admission::kShed: {
        cache_misses_.inc();
        shed_.inc();
        {
          std::lock_guard<std::mutex> lock(shard.mutex);
          shard.tickets.erase(id);
        }
        outcome.shed = true;
        outcome.error = "queue full (capacity " +
                        std::to_string(shard.queue.capacity()) +
                        "): query shed";
        return outcome;
      }
    }
  }

  // Bypass: never reads or writes the cache, never coalesces -- one job, one
  // run, straight onto the shard's queue.
  auto job = std::make_shared<JobState>();
  job->key = key;
  job->shard = shard.index;
  job->session = std::move(session);
  job->stream = std::move(stream);
  job->spec = std::move(spec);
  job->cacheable = false;
  job->trace_id = query.trace_id;
  job->ticket_ids.push_back(id);
  if (!shard.queue.try_push(job)) {
    shed_.inc();
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.tickets.erase(id);
    }
    outcome.shed = true;
    outcome.error = "queue full (capacity " +
                    std::to_string(shard.queue.capacity()) + "): query shed";
    return outcome;
  }
  queue_depth_.add(1);
  shard.queue_depth.set(static_cast<std::int64_t>(shard.queue.size()));
  outcome.accepted = true;
  outcome.id = id;
  return outcome;
}

void DiagnosisService::worker_loop(Shard& shard, std::size_t worker_index) {
  WorkerState& state = *shard.worker_states[worker_index];
  while (auto job = shard.queue.pop()) {
    // 0 is the "idle" sentinel, but monotonic_micros() is zeroed at first
    // use -- the first job a worker ever picks can land on the epoch
    // exactly. Clamp to 1: one microsecond of deadline slack vs. a worker
    // the watchdog would otherwise never see as busy.
    const std::uint64_t busy_at = obs::monotonic_micros();
    state.busy_since_us.store(busy_at == 0 ? 1 : busy_at,
                              std::memory_order_relaxed);
    run_job(shard, *job);
    state.busy_since_us.store(0, std::memory_order_relaxed);
  }
}

void DiagnosisService::watchdog_loop() {
  const std::uint64_t deadline_us =
      static_cast<std::uint64_t>(config_.worker_deadline.count()) * 1000;
  std::int64_t last_stuck = 0;
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, config_.watchdog_interval,
                          [this] { return watchdog_stop_; });
    if (watchdog_stop_) break;
    // Every tick keeps the flight recorder's coarse clock fresh, so ring
    // timestamps are accurate to ~one interval even on threads that record
    // rarely.
    obs::refresh_flight_clock();
    // Ingest maintenance rides the tick: one compaction/truncation pass over
    // every idle stream (busy ones are try_lock-skipped), with pressure
    // truncation when the shared warm/ingest byte budget is exceeded.
    ingest_->maintain(/*under_pressure=*/ledger_->over_budget());
    if (deadline_us == 0) continue;
    const std::uint64_t now = obs::monotonic_micros();
    std::int64_t stuck = 0;
    for (const auto& shard : shards_) {
      for (const auto& ws : shard->worker_states) {
        const std::uint64_t busy_since =
            ws->busy_since_us.load(std::memory_order_relaxed);
        if (busy_since != 0 && now - busy_since > deadline_us) ++stuck;
      }
    }
    worker_stuck_.set(stuck);
    if (stuck > last_stuck) {
      // New stuck episode: capture the last moments once (not every tick --
      // a wedged worker would otherwise flood stderr). The slow-query
      // journal rides along: past tail captures are exactly the context for
      // "why is this worker wedged now".
      const std::string reason = "watchdog: " + std::to_string(stuck) +
                                 " worker(s) past the deadline";
      obs::FlightRecorder::instance().dump_to_stderr(reason);
      dump_slowz_to_stderr(reason);
    }
    last_stuck = stuck;
  }
}

void DiagnosisService::run_job(Shard& shard,
                               const std::shared_ptr<JobState>& job) {
  const auto started_at = std::chrono::steady_clock::now();
  // On the flight clock too: slow-query capture uses it to select profiler
  // samples that landed on this thread while this job ran.
  const std::uint64_t job_start_us = obs::monotonic_micros();
  queue_depth_.add(-1);
  shard.queue_depth.set(static_cast<std::int64_t>(shard.queue.size()));

  std::vector<std::uint64_t> ids = ticket_ids_of(*job);
  bool any_live = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const std::uint64_t id : ids) {
      auto it = shard.tickets.find(id);
      if (it == shard.tickets.end() ||
          it->second.state != QueryState::kQueued) {
        continue;
      }
      it->second.state = QueryState::kRunning;
      it->second.queue_us = micros_between(it->second.submitted_at, started_at);
      queue_wait_us_.observe(it->second.queue_us);
      queue_wait_sketch_.observe(it->second.queue_us);
      any_live = true;
    }
  }
  if (!any_live && job->cacheable) {
    // Everyone we know about cancelled while we were queued. Retire the
    // leadership first, then re-check: a duplicate may have coalesced onto
    // this job between the snapshot above and take_inflight. If one did, it
    // is waiting on us -- run anyway (worst case one redundant run in a
    // vanishingly rare race; never a ticket stuck forever).
    cache_.take_inflight(job->key);
    ids = ticket_ids_of(*job);
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const std::uint64_t id : ids) {
      auto it = shard.tickets.find(id);
      if (it == shard.tickets.end() ||
          it->second.state != QueryState::kQueued) {
        continue;
      }
      it->second.state = QueryState::kRunning;
      it->second.queue_us = micros_between(it->second.submitted_at, started_at);
      queue_wait_us_.observe(it->second.queue_us);
      queue_wait_sketch_.observe(it->second.queue_us);
      any_live = true;
    }
  }
  if (!any_live) return;

  if (config_.on_job_start) config_.on_job_start();

  // The job runs under the submitting client's trace context: every span
  // below (service, session, diffprov, engine) inherits the minted trace id
  // even though we're on a worker thread, not the connection thread.
  obs::ScopedTraceContext trace_scope({job->trace_id, 0});

  const std::uint64_t vertices_before =
      registry_->counter("dp.prov.vertices").value();

  CachedResult result;
  DiagnoseProfile profile;
  double session_wait_us = 0;
  double warm_replay_us = 0;
  double ingest_snapshot_us = 0;
  bool warm_hit = false;
  try {
    DP_SPAN_CAT("dp.service.run", "service");
    // Per-session (or per-stream) serialization: one query at a time against
    // a resident engine; jobs for other sessions/streams proceed on other
    // workers in parallel.
    const auto wait_start = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> session_lock(job->stream != nullptr
                                                 ? job->stream->mutex()
                                                 : job->session->mutex());
    session_wait_us = micros_between(wait_start, std::chrono::steady_clock::now());
    DiagnoseOutcome outcome;
    if (job->stream != nullptr) {
      // Live path: snapshot the stream's always-current graph -- quiescing
      // the in-flight tail of the resident engine, not replaying history.
      // warm_hit reports whether the snapshot avoided a stale-live rebuild.
      const auto snap_start = std::chrono::steady_clock::now();
      bool rebuilt = false;
      std::shared_ptr<const BadRun> run = job->stream->ensure_current(&rebuilt);
      ingest_snapshot_us =
          micros_between(snap_start, std::chrono::steady_clock::now());
      warm_hit = !rebuilt;
      Problem problem;
      problem.program = job->stream->program();
      problem.topology = job->stream->topology();
      problem.log = job->stream->log();
      problem.good_event = job->stream->good_event();
      problem.bad_event = job->stream->bad_event();
      outcome =
          diagnose_problem(problem, job->spec, replay_options_, std::move(run));
    } else {
      warm_hit = job->session->is_warm();
      const auto warm_start = std::chrono::steady_clock::now();
      std::shared_ptr<const BadRun> warm = job->session->ensure_warm();
      warm_replay_us =
          micros_between(warm_start, std::chrono::steady_clock::now());
      outcome = diagnose_problem(job->session->problem(), job->spec,
                                 replay_options_, std::move(warm));
    }
    result.exit_code = outcome.exit_code;
    result.out = outcome.pre + outcome.out;
    result.err = outcome.err;
    profile = outcome.profile;
  } catch (const std::exception& e) {
    // Worker panic: the diagnosis threw past the pipeline's own error
    // handling. Dump the flight recorder (the last spans/logs before the
    // throw are exactly the forensics wanted here), report the failure to
    // the waiting tickets, and keep the worker alive.
    worker_panics_.inc();
    obs::FlightRecorder::instance().dump_to_stderr(
        std::string("worker panic: ") + e.what());
    dump_slowz_to_stderr(std::string("worker panic: ") + e.what());
    result.exit_code = 1;
    result.out.clear();
    result.err = std::string("internal error: ") + e.what() + "\n";
  }
  // The warm-up (or snapshot) above may have changed the measured
  // footprints; publish ingest bytes first so the session budget pass sees
  // the shared ledger's true total, then re-apply the byte budget now that
  // the session/stream lock is released (the budget pass try-locks sessions,
  // so it must not run while we hold one).
  if (job->stream != nullptr) ingest_->publish();
  shard.sessions.enforce_budget();
  runs_.inc();
  const auto finished_at = std::chrono::steady_clock::now();
  const double exec_us = micros_between(started_at, finished_at);
  // Adaptive slow-query threshold: read the live p99 *before* folding this
  // job in, so one slow outlier cannot raise the bar it is judged against.
  const double live_p99 = exec_sketch_.quantile(0.99);
  exec_us_.observe(exec_us);
  exec_sketch_.observe(exec_us);
  result.profile_json = render_profile_json(
      profile, session_wait_us, warm_replay_us, ingest_snapshot_us, warm_hit,
      exec_us, job->trace_id,
      registry_->counter("dp.prov.vertices").value() - vertices_before,
      static_cast<std::uint64_t>(registry_->gauge("dp.store.tuples").value()),
      static_cast<std::uint64_t>(registry_->gauge("dp.store.bytes").value()));

  if (config_.slow_ms >= 0) {
    const double threshold_us =
        std::max(config_.slow_ms * 1000.0, config_.slow_factor * live_p99);
    if (exec_us >= threshold_us) {
      capture_slow(shard, *job, exec_us, threshold_us, result.profile_json,
                   job_start_us);
    }
  }

  // Publish, then complete. complete() publishes the result and drops the
  // in-flight entry inside one stripe critical section, so a duplicate
  // submitted at any moment either coalesced onto this job (its id is in
  // ticket_ids by the time we snapshot below -- coalescing happens under the
  // same stripe lock) or will hit the cache.
  if (job->cacheable) cache_.complete(job->key, result);
  ids = ticket_ids_of(*job);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const std::uint64_t id : ids) {
      complete_locked(shard, id, result, exec_us, finished_at);
    }
    trim_tickets_locked(shard);
  }
  shard.done_cv.notify_all();
}

void DiagnosisService::capture_slow(Shard& shard, const JobState& job,
                                    double exec_us, double threshold_us,
                                    const std::string& profile_json,
                                    std::uint64_t job_start_us) {
  // The span keeps at least one frame live on this thread's profiler stack
  // while self_slice() takes its synchronous self-sample, so the slice is
  // non-empty whenever the profiler is enabled.
  DP_SPAN_CAT("dp.service.slow_capture", "service");
  SlowQueryEntry entry;
  entry.time_us = obs::monotonic_micros();
  entry.trace_id = job.trace_id;
  entry.key = job.key;
  entry.shard = shard.index;
  entry.exec_us = exec_us;
  entry.threshold_us = threshold_us;
  entry.profile_json = profile_json;
  entry.profile_slice = obs::ScopeProfiler::instance().self_slice(job_start_us);
  entry.flightrec_json = obs::FlightRecorder::instance().to_json();
  shard.slow_journal.add(std::move(entry));
  slow_captured_.inc();
}

std::string DiagnosisService::slowz_json() const {
  std::vector<SlowQueryEntry> entries;
  std::uint64_t captured = 0;
  for (const auto& shard : shards_) {
    captured += shard->slow_journal.captured();
    std::vector<SlowQueryEntry> part = shard->slow_journal.snapshot();
    entries.insert(entries.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
                     return a.time_us < b.time_us;
                   });
  return render_slowz_json(entries, captured);
}

void DiagnosisService::dump_slowz_to_stderr(const std::string& reason) const {
  // One fwrite, mirroring FlightRecorder::dump_to_stderr: a single line a
  // log collector keeps intact.
  const std::string line = "[dp:SLOWZ] " + reason + ": " + slowz_json() + "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void DiagnosisService::complete_locked(
    Shard& shard, std::uint64_t id, const CachedResult& result,
    double exec_us, std::chrono::steady_clock::time_point now) {
  auto it = shard.tickets.find(id);
  if (it == shard.tickets.end()) return;
  Ticket& ticket = it->second;
  if (ticket.state == QueryState::kCancelled ||
      ticket.state == QueryState::kDone) {
    return;
  }
  if (ticket.state == QueryState::kQueued) {
    // Coalesced ticket attached after the leader started running.
    ticket.queue_us = micros_between(ticket.submitted_at, now);
  }
  ticket.state = QueryState::kDone;
  ticket.result = result;
  ticket.exec_us = exec_us;
  completed_.inc();
}

void DiagnosisService::trim_tickets_locked(Shard& shard) {
  for (auto it = shard.tickets.begin();
       shard.tickets.size() > kMaxRetainedTickets &&
       it != shard.tickets.end();) {
    if (it->second.state == QueryState::kDone ||
        it->second.state == QueryState::kCancelled) {
      it = shard.tickets.erase(it);
    } else {
      ++it;
    }
  }
}

QueryStatus DiagnosisService::status_of(const Ticket& ticket) {
  QueryStatus status;
  status.state = ticket.state;
  status.cache_hit = ticket.cache_hit;
  status.coalesced = ticket.coalesced;
  status.result = ticket.result;
  status.queue_us = ticket.queue_us;
  status.exec_us = ticket.exec_us;
  return status;
}

std::optional<QueryStatus> DiagnosisService::poll(std::uint64_t id) const {
  Shard* shard = shard_for_id(id);
  if (shard == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(shard->mutex);
  auto it = shard->tickets.find(id);
  if (it == shard->tickets.end()) return std::nullopt;
  return status_of(it->second);
}

std::optional<QueryStatus> DiagnosisService::wait(std::uint64_t id) {
  Shard* shard = shard_for_id(id);
  if (shard == nullptr) return std::nullopt;
  std::unique_lock<std::mutex> lock(shard->mutex);
  auto it = shard->tickets.find(id);
  if (it == shard->tickets.end()) return std::nullopt;
  shard->done_cv.wait(lock, [&] {
    const Ticket& ticket = shard->tickets.at(id);
    return ticket.state == QueryState::kDone ||
           ticket.state == QueryState::kCancelled;
  });
  return status_of(shard->tickets.at(id));
}

bool DiagnosisService::cancel(std::uint64_t id) {
  Shard* shard = shard_for_id(id);
  if (shard == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(shard->mutex);
    auto it = shard->tickets.find(id);
    if (it == shard->tickets.end() ||
        it->second.state != QueryState::kQueued) {
      return false;
    }
    it->second.state = QueryState::kCancelled;
    cancelled_.inc();
  }
  shard->done_cv.notify_all();
  return true;
}

SubmitOutcome DiagnosisService::probe(const std::string& scenario,
                                      const std::string& tuple_text,
                                      bool& live, std::uint64_t trace_id) {
  SubmitOutcome outcome;
  Shard& shard = *shards_[shard_of_key(scenario)];
  std::shared_ptr<WarmSession> session =
      shard.sessions.get_scenario(scenario, outcome.error);
  if (session == nullptr) return outcome;
  Tuple tuple;
  try {
    tuple = parse_tuple(tuple_text);
  } catch (const std::exception& e) {
    outcome.error = std::string("bad tuple: ") + e.what();
    return outcome;
  }
  // Probes run on the caller's (connection) thread; scope its spans to the
  // client's trace the same way run_job does for diagnoses.
  obs::ScopedTraceContext trace_scope({trace_id, 0});
  std::lock_guard<std::mutex> session_lock(session->mutex());
  live = session->probe_live(tuple);
  outcome.accepted = true;
  return outcome;
}

IngestOutcome DiagnosisService::open_stream(const std::string& name,
                                            const std::string& scenario,
                                            const std::string& program_text) {
  IngestOutcome out;
  if (name.empty()) {
    out.error = "open_stream needs a stream name";
    return out;
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    out.error = "service is shutting down";
    return out;
  }
  if (std::shared_ptr<ingest::IngestStream> existing = ingest_->find(name)) {
    std::lock_guard<std::mutex> lock(existing->mutex());
    out.ok = true;
    out.stream = existing->stats();
    return out;
  }
  Problem problem;
  if (!scenario.empty()) {
    std::ostringstream err;
    std::optional<Problem> built = builtin_scenario(scenario, err);
    if (!built) {
      out.error = err.str();
      return out;
    }
    problem = std::move(*built);
  } else if (!program_text.empty()) {
    try {
      problem = parse_problem(program_text, "");
    } catch (const std::exception& e) {
      out.error = e.what();
      return out;
    }
  } else {
    out.error = "open_stream needs a scenario or an inline program";
    return out;
  }
  // The scenario's recorded log is deliberately dropped: a live stream's
  // history arrives only through ingest(), event by event.
  std::shared_ptr<ingest::IngestStream> stream = ingest_->open(
      name, std::move(problem.program), std::move(problem.topology),
      std::move(problem.good_event), std::move(problem.bad_event));
  std::lock_guard<std::mutex> lock(stream->mutex());
  out.ok = true;
  out.stream = stream->stats();
  return out;
}

IngestOutcome DiagnosisService::ingest(const std::string& name,
                                       const std::string& events_text,
                                       bool seal) {
  IngestOutcome out;
  std::shared_ptr<ingest::IngestStream> stream = ingest_->find(name);
  if (stream == nullptr) {
    out.error =
        "unknown ingest stream \"" + name + "\" (ingest_open first)";
    return out;
  }
  try {
    std::lock_guard<std::mutex> lock(stream->mutex());
    out.accepted = stream->append_text(events_text);
    if (seal) stream->seal();
    out.stream = stream->stats();
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }
  out.ok = true;
  ingest_->publish();
  return out;
}

ServiceStats DiagnosisService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.value();
  stats.completed = completed_.value();
  stats.shed = shed_.value();
  stats.cancelled = cancelled_.value();
  stats.runs = runs_.value();
  stats.cache_hits = cache_hits_.value();
  stats.cache_misses = cache_misses_.value();
  stats.coalesced = coalesced_.value();
  stats.queue_capacity = config_.queue_capacity;
  stats.cache_size = cache_.size();
  stats.cache_evictions = cache_.evictions();
  stats.shards = shards_.size();
  stats.shard_queue_depths.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::size_t depth = shard->queue.size();
    stats.shard_queue_depths.push_back(depth);
    stats.queue_depth += depth;
    stats.sessions += shard->sessions.size();
    stats.warm_sessions += shard->sessions.warm_count();
    stats.warm_resident_bytes += shard->sessions.warm_bytes();
    auto per_session = shard->sessions.stats();
    stats.per_session.insert(stats.per_session.end(),
                             std::make_move_iterator(per_session.begin()),
                             std::make_move_iterator(per_session.end()));
  }
  stats.per_stream = ingest_->stats();
  stats.ingest_streams = stats.per_stream.size();
  for (const auto& [name, s] : stats.per_stream) {
    stats.ingest_events += s.events;
    stats.ingest_epochs += s.sealed_epochs;
    stats.ingest_segments += s.segments;
    stats.ingest_segments_compacted += s.segments_compacted;
    stats.ingest_truncated_bytes += s.truncated_bytes;
    stats.ingest_resident_bytes += s.resident_bytes;
  }
  return stats;
}

void DiagnosisService::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  accepting_.store(false, std::memory_order_release);
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::vector<std::shared_ptr<JobState>> orphans;
    if (drain) {
      shard.queue.close();
    } else {
      orphans = shard.queue.close_and_clear();
    }
    for (const auto& job : orphans) {
      if (job->cacheable) cache_.take_inflight(job->key);
      const std::vector<std::uint64_t> ids = ticket_ids_of(*job);
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const std::uint64_t id : ids) {
        auto it = shard.tickets.find(id);
        if (it == shard.tickets.end() ||
            it->second.state != QueryState::kQueued) {
          continue;
        }
        it->second.state = QueryState::kCancelled;
        cancelled_.inc();
      }
    }
    shard.done_cv.notify_all();
  }
  for (auto& shard_ptr : shards_) {
    for (auto& worker : shard_ptr->workers) {
      if (worker.joinable()) worker.join();
    }
  }
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  queue_depth_.set(0);
  worker_stuck_.set(0);
  for (auto& shard_ptr : shards_) shard_ptr->queue_depth.set(0);
}

}  // namespace dp::service
