// DiagnosisService: the in-process core of the diffprovd daemon.
//
// The service is *sharded*: queries route to one of N independent shards by
// the hash of their session key (scenario name or inline-problem content
// hash), and each shard owns a complete serving stack -- its own warm-
// session set, its own bounded MPMC queue, its own worker pool, and its own
// ticket table -- so unrelated diagnoses never contend on a shared lock.
// The PR 5 introspection stack located the scaling ceiling of the unsharded
// design in exactly those shared structures: one service mutex on every
// submit/complete, one session-manager mutex (with a full-session-walk
// budget pass after every job), and one result-cache critical section,
// which held multi-client throughput flat however many workers ran.
//
// The three serving-layer mechanisms compose per shard:
//
//   * Warm sessions (session.h): jobs against the same scenario/log reuse
//     the resident replayed run; different scenarios diagnose in parallel,
//     queries against one warm engine serialize on its session mutex. The
//     warm-set byte budget is global but *rebalanced* across shards through
//     a shared ledger: a hot shard borrows budget idle shards leave unused
//     and cools only once the global total is exceeded (WarmBudgetLedger).
//   * Result cache + single-flight (cache.h): striped -- per-stripe mutex,
//     per-stripe LRU slice, per-stripe in-flight table. A repeat of a
//     finished query is answered from the cache without touching a worker;
//     a duplicate of an *in-flight* query coalesces onto the running job's
//     ticket list and shares its one result. Exactly one underlying
//     DiffProv run per distinct key, however many clients ask, whichever
//     shard the key lives in.
//   * Admission control (bounded_queue.h): when a shard's queue is full,
//     submit returns shed=true immediately -- clients get an explicit
//     reject, the service never blocks producers or grows unbounded
//     backlog.
//
// Ticket ids encode their shard in the high bits, so poll/wait/cancel route
// straight to the owning shard with no shared lookup structure at all.
//
// Everything observable lands in the metrics registry (dp.service.*, plus
// per-shard dp.service.shard.<i>.* and per-stripe
// dp.service.cache.stripe.<i>.*) and the default tracer, in the formats
// PR 2's obs_check validates.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ingest/manager.h"
#include "obs/metrics.h"
#include "service/bounded_queue.h"
#include "service/cache.h"
#include "service/diagnose.h"
#include "service/session.h"
#include "service/slowlog.h"

namespace dp::service {

struct ServiceConfig {
  /// Independent shards (clamped to [1, 32]): each gets its own session
  /// set, queue, and worker pool, keyed by scenario/log hash. One shard
  /// reproduces the PR 3 single-lane behaviour exactly.
  std::size_t shards = 1;
  /// Worker threads *per shard*.
  std::size_t workers = 4;
  /// Admission-control bound *per shard*: jobs waiting for a worker
  /// (coalesced duplicates don't occupy slots).
  std::size_t queue_capacity = 64;
  /// Sessions allowed to keep their replayed run resident, service-wide;
  /// each shard enforces its slice (at least one per shard).
  std::size_t max_warm_sessions = 8;
  /// Byte budget for the warm set, service-wide, measured against each
  /// session's resident provenance-graph footprint
  /// (dp.service.session.resident_bytes). Shards spend it through a shared
  /// ledger -- a hot shard may exceed its nominal share while other shards
  /// leave the budget unused -- and LRU sessions are cooled to their
  /// checkpoint tier while the global total is exceeded. 0 = no byte budget
  /// (session-count cap only).
  std::uint64_t warm_bytes_budget = 512ull << 20;
  /// Total result-cache entries, split across `cache_stripes`.
  std::size_t cache_capacity = 256;
  /// Lock stripes for the result cache (clamped to at least 1).
  std::size_t cache_stripes = 8;
  /// Bumped by the operator when anything outside the key changes (program
  /// semantics, engine version): old cache entries stop matching.
  std::uint64_t config_epoch = 0;
  /// Metrics sink; nullptr = obs::default_registry().
  obs::MetricsRegistry* metrics = nullptr;
  /// Replay knobs shared by every session (engine_config.metrics is pointed
  /// at the service registry when unset).
  ReplayOptions replay;
  /// Live-ingest stream knobs (epoch size, checkpoint cadence, compaction
  /// watermark, truncation retention), shared by every stream this service
  /// opens. Ingest resident bytes are billed against `warm_bytes_budget`
  /// through the shared ledger; the over-budget signal drives pressure
  /// truncation on the watchdog tick.
  ingest::IngestOptions ingest;
  /// Watchdog deadline: a worker busy on one job longer than this is
  /// counted in the dp.service.worker.stuck gauge and triggers one flight-
  /// recorder dump per stuck episode. Zero disables the stuck check (the
  /// watchdog thread still runs to refresh the flight clock).
  std::chrono::milliseconds worker_deadline{10000};
  /// Watchdog scan period (also the flight-recorder clock resolution under
  /// an otherwise-idle service).
  std::chrono::milliseconds watchdog_interval{100};
  /// Test hook: runs in the worker thread after a job is marked running and
  /// before it diagnoses. Lets tests hold workers to fill the queue
  /// deterministically.
  std::function<void()> on_job_start;
  /// Slow-query capture floor, in milliseconds: a job whose exec time
  /// exceeds max(slow_ms, slow_factor x the live p99 from the exec-latency
  /// sketch) is journaled with its phase profile, flight-recorder snapshot,
  /// trace id, and profiler slice (slowlog.h; served at /slowz). 0 makes the
  /// threshold purely adaptive (and captures the very first query, which CI
  /// uses as a forced-slow smoke); negative disables capture.
  double slow_ms = 1000;
  /// The k in the adaptive threshold k x live-p99.
  double slow_factor = 3;
  /// Journal entries retained *per shard* (oldest fall off).
  std::size_t slow_journal_capacity = 32;
};

/// One diagnosis request, all-text (what arrives off the wire).
struct Query {
  /// Built-in scenario name; empty means an inline problem follows.
  std::string scenario;
  std::string program_text;
  std::string log_text;
  /// Diagnose against a live ingest stream (open_stream/ingest) instead of a
  /// recorded scenario or inline log: the job snapshots the stream's
  /// always-current graph -- no replay on the hot path. Mutually exclusive
  /// with `scenario`/`program_text`.
  std::string stream;
  /// Event of interest, tuple text; empty = the scenario's default.
  std::string bad;
  /// Reference event, tuple text; empty = scenario default unless
  /// auto_reference.
  std::string good;
  bool auto_reference = false;
  bool minimize = false;
  /// Benchmarking: always run, never read or write the cache or coalesce.
  bool bypass_cache = false;
  /// Client-minted trace context (0 = none): the worker installs it for the
  /// job's scope so every span of the diagnosis carries this id.
  std::uint64_t trace_id = 0;
};

enum class QueryState : std::uint8_t { kQueued, kRunning, kDone, kCancelled };

std::string to_string(QueryState state);

struct QueryStatus {
  QueryState state = QueryState::kQueued;
  bool cache_hit = false;
  bool coalesced = false;
  /// Valid when state == kDone.
  CachedResult result;
  double queue_us = 0;
  double exec_us = 0;
};

struct SubmitOutcome {
  bool accepted = false;
  /// Rejected by admission control (queue full): retry later.
  bool shed = false;
  /// Ticket id for poll/wait/cancel, valid when accepted. The owning shard
  /// lives in the high bits; ids stay below 2^53 so they survive JSON
  /// number round-trips.
  std::uint64_t id = 0;
  /// Parse/validation failure (bad scenario, malformed tuple, ...).
  std::string error;

  [[nodiscard]] bool ok() const { return accepted; }
};

/// Result of an ingest control call (open_stream / ingest): the error, or a
/// post-call snapshot of the stream's tiering state.
struct IngestOutcome {
  bool ok = false;
  std::string error;
  /// Records this call appended (0 for open_stream).
  std::size_t accepted = 0;
  ingest::IngestStreamStats stream;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t runs = 0;  // underlying DiffProv executions
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t coalesced = 0;
  std::size_t queue_depth = 0;     // summed across shards
  std::size_t queue_capacity = 0;  // per shard
  std::size_t cache_size = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t sessions = 0;
  std::size_t warm_sessions = 0;
  std::uint64_t warm_resident_bytes = 0;  // measured warm-set footprint
  std::size_t shards = 1;
  std::vector<std::size_t> shard_queue_depths;  // one entry per shard
  std::vector<std::pair<std::string, SessionStats>> per_session;
  // Live-ingest tier, summed across streams (per_stream has the breakdown).
  std::size_t ingest_streams = 0;
  std::uint64_t ingest_events = 0;
  std::uint64_t ingest_epochs = 0;
  std::uint64_t ingest_segments = 0;
  std::uint64_t ingest_segments_compacted = 0;
  std::uint64_t ingest_truncated_bytes = 0;
  std::uint64_t ingest_resident_bytes = 0;
  std::vector<std::pair<std::string, ingest::IngestStreamStats>> per_stream;

  [[nodiscard]] std::string to_text() const;
};

class DiagnosisService {
 public:
  explicit DiagnosisService(ServiceConfig config = {});
  ~DiagnosisService();

  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  /// Validates and admits a query. Cache hits return an already-kDone
  /// ticket; duplicates of an in-flight query coalesce onto it; otherwise a
  /// job is enqueued on the query's shard -- or shed if that shard's queue
  /// is full.
  SubmitOutcome submit(const Query& query);

  /// Non-blocking status; nullopt for unknown ids.
  std::optional<QueryStatus> poll(std::uint64_t id) const;

  /// Blocks until the ticket reaches kDone or kCancelled.
  std::optional<QueryStatus> wait(std::uint64_t id);

  /// Cancels a still-queued ticket (running/finished ones are too late).
  bool cancel(std::uint64_t id);

  /// Live-state probe: is `tuple_text` live at the end of the scenario's
  /// recorded execution? Served from the session's warm engine or its
  /// checkpoint tier -- never a full replay once the session has one.
  /// `trace_id` (0 = none) scopes the probe's spans to the client's trace.
  [[nodiscard]] SubmitOutcome probe(const std::string& scenario,
                                    const std::string& tuple_text, bool& live,
                                    std::uint64_t trace_id = 0);

  /// Opens (or idempotently returns) a live ingest stream. `scenario` seeds
  /// the stream with a built-in problem's program/topology and diagnosis
  /// defaults -- with the recorded log deliberately stripped: a live
  /// stream's history arrives only through ingest(). Alternatively,
  /// `program_text` opens a stream over an inline NDlog program.
  IngestOutcome open_stream(const std::string& name,
                            const std::string& scenario,
                            const std::string& program_text = "");

  /// Appends one batch of events (EventLog text form) to a live stream and
  /// feeds them straight into its resident engine; `seal` forces an epoch
  /// boundary after the batch. The whole batch is validated before any
  /// record applies, so a malformed or out-of-order batch never
  /// half-applies.
  IngestOutcome ingest(const std::string& name, const std::string& events_text,
                       bool seal = false);

  /// The live-ingest stream registry (tests and benches reach streams
  /// directly; queries go through submit with Query::stream).
  [[nodiscard]] ingest::IngestManager& ingest_streams() { return *ingest_; }

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] obs::MetricsRegistry& metrics() { return *registry_; }
  /// The merged slow-query journal (all shards, capture order) as the
  /// /slowz JSON document; also returned by the `slowz` NDJSON op and
  /// dumped to stderr by the watchdog/panic paths.
  [[nodiscard]] std::string slowz_json() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Which shard a scenario (or inline session key) routes to; exposed for
  /// tests and for operators reading per-shard metrics.
  [[nodiscard]] std::size_t shard_of_key(const std::string& session_key) const;

  /// Stops accepting, then either drains queued jobs (drain=true) or
  /// cancels them, and joins the workers. Idempotent; the destructor drains.
  void shutdown(bool drain = true);

 private:
  struct Ticket {
    QueryState state = QueryState::kQueued;
    bool cache_hit = false;
    bool coalesced = false;
    CachedResult result;
    std::chrono::steady_clock::time_point submitted_at;
    double queue_us = 0;
    double exec_us = 0;
  };

  struct JobState {
    std::string key;
    std::size_t shard = 0;
    std::shared_ptr<WarmSession> session;
    /// Set instead of `session` for live-stream queries (Query::stream).
    std::shared_ptr<ingest::IngestStream> stream;
    DiagnoseSpec spec;
    bool cacheable = true;
    /// Trace context of the *first* submitter; coalesced duplicates share
    /// the leader's trace (their tickets still report coalesced=true).
    std::uint64_t trace_id = 0;
    /// Guards ticket_ids: the stripe's coalesce callback appends while the
    /// worker snapshots. (Ticket *state* lives under the shard mutex.)
    std::mutex ids_mutex;
    std::vector<std::uint64_t> ticket_ids;  // grows as duplicates coalesce
  };

  /// Per-worker state the watchdog scans without locks.
  struct WorkerState {
    /// monotonic_micros() when the current job started; 0 = idle.
    std::atomic<std::uint64_t> busy_since_us{0};
  };

  /// One independent serving lane: session set, queue, workers, tickets.
  struct Shard {
    Shard(std::size_t index, std::size_t max_warm,
          std::shared_ptr<WarmBudgetLedger> ledger, ReplayOptions options,
          obs::MetricsRegistry& registry, std::size_t queue_capacity,
          std::size_t slow_journal_capacity);

    const std::size_t index;
    SessionManager sessions;
    BoundedQueue<std::shared_ptr<JobState>> queue;
    obs::Gauge& queue_depth;  // dp.service.shard.<i>.queue_depth
    /// Slow queries captured by this shard's workers (slowlog.h).
    SlowQueryJournal slow_journal;

    mutable std::mutex mutex;  // tickets + next_seq
    std::condition_variable done_cv;
    std::map<std::uint64_t, Ticket> tickets;
    std::uint64_t next_seq = 1;

    std::vector<std::thread> workers;
    std::vector<std::unique_ptr<WorkerState>> worker_states;
  };

  // Shard index lives in bits [48, 53) of a ticket id, the sequence number
  // below it: ids stay unique across shards, route without shared state,
  // and remain exact in a JSON double.
  static constexpr std::uint64_t kShardShift = 48;
  static constexpr std::size_t kMaxShards = 32;

  static std::uint64_t make_ticket_id(std::size_t shard, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(shard) << kShardShift) | seq;
  }
  /// The owning shard, or nullptr for ids no shard issued.
  Shard* shard_for_id(std::uint64_t id) const;

  void worker_loop(Shard& shard, std::size_t worker_index);
  void watchdog_loop();
  void run_job(Shard& shard, const std::shared_ptr<JobState>& job);
  /// Files a slow-query journal entry on the worker thread (run_job calls
  /// it after rendering the phase profile).
  void capture_slow(Shard& shard, const JobState& job, double exec_us,
                    double threshold_us, const std::string& profile_json,
                    std::uint64_t job_start_us);
  /// One "[dp:SLOWZ] <reason>: <json>" line on stderr (watchdog/panic
  /// paths, next to the flight recorder's [dp:FLIGHTREC] dump).
  void dump_slowz_to_stderr(const std::string& reason) const;
  /// Creates a kQueued ticket on `shard`; returns its id. Caller must not
  /// hold the shard mutex.
  std::uint64_t allocate_ticket(Shard& shard,
                                std::chrono::steady_clock::time_point now);
  void complete_locked(Shard& shard, std::uint64_t id,
                       const CachedResult& result, double exec_us,
                       std::chrono::steady_clock::time_point now);
  void trim_tickets_locked(Shard& shard);
  /// Snapshot of the job's ticket list (ids_mutex held briefly).
  static std::vector<std::uint64_t> ticket_ids_of(JobState& job);
  static QueryStatus status_of(const Ticket& ticket);

  ServiceConfig config_;
  obs::MetricsRegistry* registry_;
  ReplayOptions replay_options_;

  std::shared_ptr<WarmBudgetLedger> ledger_;
  std::vector<std::unique_ptr<Shard>> shards_;
  StripedResultCache cache_;
  /// Live-ingest streams; publishes resident bytes into the ledger's extra
  /// slot (index = shard count). Created before the watchdog thread, which
  /// drives its maintenance pass.
  std::unique_ptr<ingest::IngestManager> ingest_;

  std::atomic<bool> accepting_{true};
  std::mutex shutdown_mutex_;
  bool shutdown_ = false;

  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  obs::Counter& submitted_;
  obs::Counter& completed_;
  obs::Counter& shed_;
  obs::Counter& cancelled_;
  obs::Counter& runs_;
  obs::Counter& cache_hits_;
  obs::Counter& cache_misses_;
  obs::Counter& coalesced_;
  obs::Gauge& queue_depth_;  // total across shards (delta-maintained)
  obs::Gauge& worker_stuck_;
  obs::Counter& worker_panics_;
  obs::Counter& slow_captured_;
  obs::Histogram& queue_wait_us_;
  obs::Histogram& exec_us_;
  /// Quantile sketches paired with the histograms above: same logical
  /// series, exported as dp.service.*_p50/_p95/_p99/_p999. exec_sketch_
  /// additionally feeds the adaptive slow-query threshold.
  obs::QuantileSketch& queue_wait_sketch_;
  obs::QuantileSketch& exec_sketch_;
};

}  // namespace dp::service
