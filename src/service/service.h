// DiagnosisService: the in-process core of the diffprovd daemon.
//
// A fixed-size worker pool drains a bounded MPMC queue of diagnosis jobs.
// The three serving-layer mechanisms compose here:
//
//   * Warm sessions (session.h): jobs against the same scenario/log reuse
//     the resident replayed run; different scenarios diagnose in parallel,
//     queries against one warm engine serialize on its session mutex.
//   * Result cache + single-flight (cache.h + the inflight map below): a
//     repeat of a finished query is answered from the cache without
//     touching a worker; a duplicate of an *in-flight* query coalesces onto
//     the running job's ticket list and shares its one result. Exactly one
//     underlying DiffProv run per distinct key, however many clients ask.
//   * Admission control (bounded_queue.h): when the queue is full, submit
//     returns shed=true immediately -- clients get an explicit reject, the
//     service never blocks producers or grows unbounded backlog.
//
// Everything observable lands in the metrics registry (dp.service.*) and
// the default tracer, in the formats PR 2's obs_check validates.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "service/bounded_queue.h"
#include "service/cache.h"
#include "service/diagnose.h"
#include "service/session.h"

namespace dp::service {

struct ServiceConfig {
  std::size_t workers = 4;
  /// Admission-control bound: jobs waiting for a worker (coalesced
  /// duplicates don't occupy slots).
  std::size_t queue_capacity = 64;
  /// Sessions allowed to keep their replayed run resident (LRU beyond).
  std::size_t max_warm_sessions = 8;
  /// Byte budget for the warm set, measured against each session's resident
  /// provenance-graph footprint (dp.service.session.resident_bytes); LRU
  /// sessions are cooled to their checkpoint tier while over. 0 = no byte
  /// budget (session-count cap only).
  std::uint64_t warm_bytes_budget = 512ull << 20;
  std::size_t cache_capacity = 256;
  /// Bumped by the operator when anything outside the key changes (program
  /// semantics, engine version): old cache entries stop matching.
  std::uint64_t config_epoch = 0;
  /// Metrics sink; nullptr = obs::default_registry().
  obs::MetricsRegistry* metrics = nullptr;
  /// Replay knobs shared by every session (engine_config.metrics is pointed
  /// at the service registry when unset).
  ReplayOptions replay;
  /// Watchdog deadline: a worker busy on one job longer than this is
  /// counted in the dp.service.worker.stuck gauge and triggers one flight-
  /// recorder dump per stuck episode. Zero disables the stuck check (the
  /// watchdog thread still runs to refresh the flight clock).
  std::chrono::milliseconds worker_deadline{10000};
  /// Watchdog scan period (also the flight-recorder clock resolution under
  /// an otherwise-idle service).
  std::chrono::milliseconds watchdog_interval{100};
  /// Test hook: runs in the worker thread after a job is marked running and
  /// before it diagnoses. Lets tests hold workers to fill the queue
  /// deterministically.
  std::function<void()> on_job_start;
};

/// One diagnosis request, all-text (what arrives off the wire).
struct Query {
  /// Built-in scenario name; empty means an inline problem follows.
  std::string scenario;
  std::string program_text;
  std::string log_text;
  /// Event of interest, tuple text; empty = the scenario's default.
  std::string bad;
  /// Reference event, tuple text; empty = scenario default unless
  /// auto_reference.
  std::string good;
  bool auto_reference = false;
  bool minimize = false;
  /// Benchmarking: always run, never read or write the cache or coalesce.
  bool bypass_cache = false;
  /// Client-minted trace context (0 = none): the worker installs it for the
  /// job's scope so every span of the diagnosis carries this id.
  std::uint64_t trace_id = 0;
};

enum class QueryState : std::uint8_t { kQueued, kRunning, kDone, kCancelled };

std::string to_string(QueryState state);

struct QueryStatus {
  QueryState state = QueryState::kQueued;
  bool cache_hit = false;
  bool coalesced = false;
  /// Valid when state == kDone.
  CachedResult result;
  double queue_us = 0;
  double exec_us = 0;
};

struct SubmitOutcome {
  bool accepted = false;
  /// Rejected by admission control (queue full): retry later.
  bool shed = false;
  /// Ticket id for poll/wait/cancel, valid when accepted.
  std::uint64_t id = 0;
  /// Parse/validation failure (bad scenario, malformed tuple, ...).
  std::string error;

  [[nodiscard]] bool ok() const { return accepted; }
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t runs = 0;  // underlying DiffProv executions
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t coalesced = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t cache_size = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t sessions = 0;
  std::size_t warm_sessions = 0;
  std::uint64_t warm_resident_bytes = 0;  // measured warm-set footprint
  std::vector<std::pair<std::string, SessionStats>> per_session;

  [[nodiscard]] std::string to_text() const;
};

class DiagnosisService {
 public:
  explicit DiagnosisService(ServiceConfig config = {});
  ~DiagnosisService();

  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  /// Validates and admits a query. Cache hits return an already-kDone
  /// ticket; duplicates of an in-flight query coalesce onto it; otherwise a
  /// job is enqueued -- or shed if the queue is full.
  SubmitOutcome submit(const Query& query);

  /// Non-blocking status; nullopt for unknown ids.
  std::optional<QueryStatus> poll(std::uint64_t id) const;

  /// Blocks until the ticket reaches kDone or kCancelled.
  std::optional<QueryStatus> wait(std::uint64_t id);

  /// Cancels a still-queued ticket (running/finished ones are too late).
  bool cancel(std::uint64_t id);

  /// Live-state probe: is `tuple_text` live at the end of the scenario's
  /// recorded execution? Served from the session's warm engine or its
  /// checkpoint tier -- never a full replay once the session has one.
  /// `trace_id` (0 = none) scopes the probe's spans to the client's trace.
  [[nodiscard]] SubmitOutcome probe(const std::string& scenario,
                                    const std::string& tuple_text, bool& live,
                                    std::uint64_t trace_id = 0);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] obs::MetricsRegistry& metrics() { return *registry_; }

  /// Stops accepting, then either drains queued jobs (drain=true) or
  /// cancels them, and joins the workers. Idempotent; the destructor drains.
  void shutdown(bool drain = true);

 private:
  struct Ticket {
    QueryState state = QueryState::kQueued;
    bool cache_hit = false;
    bool coalesced = false;
    CachedResult result;
    std::chrono::steady_clock::time_point submitted_at;
    double queue_us = 0;
    double exec_us = 0;
  };

  struct JobState {
    std::string key;
    std::shared_ptr<WarmSession> session;
    DiagnoseSpec spec;
    bool cacheable = true;
    /// Trace context of the *first* submitter; coalesced duplicates share
    /// the leader's trace (their tickets still report coalesced=true).
    std::uint64_t trace_id = 0;
    std::vector<std::uint64_t> ticket_ids;  // grows as duplicates coalesce
  };

  /// Per-worker state the watchdog scans without locks.
  struct WorkerState {
    /// monotonic_micros() when the current job started; 0 = idle.
    std::atomic<std::uint64_t> busy_since_us{0};
  };

  void worker_loop(std::size_t worker_index);
  void watchdog_loop();
  void run_job(const std::shared_ptr<JobState>& job);
  void complete_locked(std::uint64_t id, const CachedResult& result,
                       double exec_us,
                       std::chrono::steady_clock::time_point now);
  void trim_tickets_locked();
  static QueryStatus status_of(const Ticket& ticket);

  ServiceConfig config_;
  obs::MetricsRegistry* registry_;
  ReplayOptions replay_options_;

  SessionManager sessions_;
  BoundedQueue<std::shared_ptr<JobState>> queue_;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  ResultCache cache_;
  std::map<std::string, std::shared_ptr<JobState>> inflight_;
  std::map<std::uint64_t, Ticket> tickets_;
  std::uint64_t next_id_ = 1;
  bool accepting_ = true;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerState>> worker_states_;

  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  obs::Counter& submitted_;
  obs::Counter& completed_;
  obs::Counter& shed_;
  obs::Counter& cancelled_;
  obs::Counter& runs_;
  obs::Counter& cache_hits_;
  obs::Counter& cache_misses_;
  obs::Counter& coalesced_;
  obs::Gauge& queue_depth_;
  obs::Gauge& worker_stuck_;
  obs::Counter& worker_panics_;
  obs::Histogram& queue_wait_us_;
  obs::Histogram& exec_us_;
};

}  // namespace dp::service
