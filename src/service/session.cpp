#include "service/session.h"

#include <algorithm>
#include <iterator>
#include <sstream>

#include "obs/obs.h"
#include "util/hash.h"

namespace dp::service {

WarmSession::WarmSession(std::string key, Problem problem,
                         ReplayOptions options, obs::MetricsRegistry& registry)
    : key_(std::move(key)),
      problem_(std::move(problem)),
      options_(std::move(options)),
      log_hash_(log_content_hash(problem_.log)),
      registry_(&registry) {}

std::shared_ptr<const BadRun> WarmSession::ensure_warm() {
  ++stats_.queries;
  if (run_ != nullptr) {
    ++stats_.warm_hits;
    registry_->counter("dp.service.session.warm_hits").inc();
    return run_;
  }
  DP_SPAN_CAT("dp.service.session.warm_replay", "service");
  ++stats_.cold_replays;
  registry_->counter("dp.service.session.cold_replays").inc();

  ReplayResult replayed =
      replay(problem_.program, problem_.topology, problem_.log, {}, options_);
  engine_ = std::move(replayed.engine);
  recorder_ = std::move(replayed.recorder);
  metrics_observer_ = std::move(replayed.metrics_observer);

  auto run = std::make_shared<BadRun>();
  // Alias the recorder's graph: the shared_ptr keeps the recorder alive for
  // as long as any query still holds the run, even past a cool().
  run->graph =
      std::shared_ptr<const ProvenanceGraph>(recorder_, &recorder_->graph());
  run->state = std::make_shared<EngineStateView>(engine_);
  run_ = run;

  // First warm-up doubles as checkpoint time: the engine is quiescent here,
  // so the snapshot covers the whole recorded history and probe restores
  // replay an empty (or truncated-run) suffix.
  if (!checkpoint_) checkpoint_ = Checkpoint::capture(*engine_);

  // Measure what this warm run actually costs to keep resident: the columnar
  // provenance graph (the dominant term now that tuples live once in the
  // interned store). Floor of 1 so warm => nonzero, which is what the
  // manager's budget pass keys on.
  const std::uint64_t measured = recorder_->graph().resident_bytes();
  resident_bytes_.store(measured > 0 ? measured : 1,
                        std::memory_order_relaxed);
  return run_;
}

void WarmSession::cool() {
  if (run_ == nullptr && probe_engine_ == nullptr) return;
  run_.reset();
  metrics_observer_.reset();
  recorder_.reset();
  engine_.reset();
  probe_engine_.reset();
  resident_bytes_.store(0, std::memory_order_relaxed);
  registry_->counter("dp.service.session.evictions").inc();
}

bool WarmSession::probe_live(const Tuple& tuple) {
  ++stats_.probes;
  registry_->counter("dp.service.session.probes").inc();
  if (engine_ != nullptr) return engine_->is_live(tuple);
  if (probe_engine_ != nullptr) return probe_engine_->is_live(tuple);
  if (checkpoint_) {
    probe_engine_ = restore_from_checkpoint();
    return probe_engine_->is_live(tuple);
  }
  // Never queried, so no checkpoint exists yet: warm up fully (this also
  // captures the checkpoint for the session's later cooled life).
  ensure_warm();
  return engine_->is_live(tuple);
}

std::unique_ptr<Engine> WarmSession::restore_from_checkpoint() {
  DP_SPAN_CAT("dp.service.session.checkpoint_restore", "service");
  ++stats_.checkpoint_restores;
  registry_->counter("dp.service.session.checkpoint_restores").inc();

  auto engine =
      std::make_unique<Engine>(problem_.program, options_.engine_config);
  for (const auto& link : problem_.topology.links) {
    engine->add_link(link.a, link.b, link.delay);
  }
  checkpoint_->schedule_into(*engine, checkpoint_->captured_at());
  // Log suffix after the capture point (empty when the checkpoint was taken
  // at quiescence; non-empty when options_.until truncated the warm run).
  for (const auto& record : problem_.log.records()) {
    if (record.time <= checkpoint_->captured_at()) continue;
    if (record.op == LogRecord::Op::kInsert) {
      engine->schedule_insert(record.tuple(), record.time);
    } else {
      engine->schedule_delete(record.tuple(), record.time);
    }
  }
  if (options_.until == kTimeInfinity) {
    engine->run();
  } else {
    engine->run_until(options_.until);
  }
  return engine;
}

std::string inline_session_key(const std::string& program_text,
                               const std::string& log_text) {
  const std::uint64_t key_hash =
      hash_mix(fnv1a(program_text), fnv1a(log_text));
  std::ostringstream key;
  key << "inline:" << std::hex << key_hash;
  return key.str();
}

WarmBudgetLedger::WarmBudgetLedger(std::uint64_t total_bytes,
                                   std::size_t shards,
                                   std::size_t extra_slots)
    : total_(total_bytes),
      share_(total_bytes == 0 ? 0
                              : total_bytes / std::max<std::size_t>(1, shards)),
      usage_(std::max<std::size_t>(1, shards) + extra_slots) {}

void WarmBudgetLedger::publish(std::size_t shard, std::uint64_t bytes) {
  usage_[shard % usage_.size()].store(bytes, std::memory_order_relaxed);
}

std::uint64_t WarmBudgetLedger::usage(std::size_t shard) const {
  return usage_[shard % usage_.size()].load(std::memory_order_relaxed);
}

std::uint64_t WarmBudgetLedger::global_usage() const {
  std::uint64_t total = 0;
  for (const auto& slot : usage_) {
    total += slot.load(std::memory_order_relaxed);
  }
  return total;
}

SessionManager::SessionManager(std::size_t max_warm,
                               std::uint64_t warm_bytes_budget,
                               ReplayOptions options,
                               obs::MetricsRegistry& registry)
    : SessionManager(max_warm,
                     std::make_shared<WarmBudgetLedger>(warm_bytes_budget, 1),
                     /*shard_index=*/0, std::move(options), registry) {}

SessionManager::SessionManager(std::size_t max_warm,
                               std::shared_ptr<WarmBudgetLedger> ledger,
                               std::size_t shard_index, ReplayOptions options,
                               obs::MetricsRegistry& registry)
    : max_warm_(max_warm),
      ledger_(std::move(ledger)),
      shard_index_(shard_index),
      options_(std::move(options)),
      registry_(&registry) {}

std::shared_ptr<WarmSession> SessionManager::get_scenario(
    const std::string& name, std::string& error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(name);
    if (it != sessions_.end()) {
      recency_.remove(name);
      recency_.push_front(name);
      return it->second;
    }
  }
  // Build outside the lock: scenario assembly replays nothing but does parse
  // programs and synthesize logs.
  std::ostringstream err;
  std::optional<Problem> problem = builtin_scenario(name, err);
  if (!problem) {
    error = err.str();
    if (error.empty()) error = "unknown scenario: " + name;
    return nullptr;
  }
  return intern(name, std::move(problem), error);
}

std::shared_ptr<WarmSession> SessionManager::get_inline(
    const std::string& program_text, const std::string& log_text,
    std::string& error) {
  const std::string key = inline_session_key(program_text, log_text);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(key);
    if (it != sessions_.end()) {
      recency_.remove(key);
      recency_.push_front(key);
      return it->second;
    }
  }
  std::optional<Problem> problem;
  try {
    problem = parse_problem(program_text, log_text);
  } catch (const std::exception& e) {
    error = e.what();
    return nullptr;
  }
  return intern(key, std::move(problem), error);
}

std::shared_ptr<WarmSession> SessionManager::intern(
    const std::string& key, std::optional<Problem> problem,
    std::string& error) {
  (void)error;
  std::shared_ptr<WarmSession> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(key);
    if (it == sessions_.end()) {
      it = sessions_
               .emplace(key, std::make_shared<WarmSession>(
                                 key, std::move(*problem), options_,
                                 *registry_))
               .first;
      // Delta, not absolute: with one manager per shard publishing into the
      // same registry, the gauge totals sessions across the whole service.
      registry_->gauge("dp.service.sessions").add(1);
    }
    recency_.remove(key);
    recency_.push_front(key);
    session = it->second;
  }
  // A fresh session is cold (zero footprint), but interning bumps recency,
  // which can change which sessions an over-budget pass would cool.
  enforce_budget();
  return session;
}

void SessionManager::publish_usage(std::uint64_t bytes) {
  ledger_->publish(shard_index_, bytes);
  registry_->gauge("dp.service.session.resident_bytes")
      .set(static_cast<std::int64_t>(ledger_->global_usage()));
}

void SessionManager::enforce_budget() {
  // Snapshot the candidate list (shared_ptr-pinned, LRU order preserved)
  // under the manager lock, then do *all* accounting and cooling outside it:
  // a budget pass never holds the lock submitters need while it walks
  // sessions computing resident_bytes() or waits on a session mutex.
  std::vector<std::shared_ptr<WarmSession>> by_recency;  // front = MRU
  {
    std::lock_guard<std::mutex> lock(mutex_);
    by_recency.reserve(recency_.size());
    for (const std::string& key : recency_) {
      auto it = sessions_.find(key);
      if (it != sessions_.end()) by_recency.push_back(it->second);
    }
  }

  // The warm set's measured footprint: sessions report the resident bytes of
  // their replayed provenance graph (0 when cooled), so the budget tracks
  // what the graphs actually cost rather than assuming every session weighs
  // the same.
  std::uint64_t bytes = 0;
  std::size_t warm = 0;
  for (const auto& session : by_recency) {
    const std::uint64_t b = session->resident_bytes();
    if (b > 0) {
      ++warm;
      bytes += b;
    }
  }
  publish_usage(bytes);

  // Cool while over either budget. The byte check is two-level: this shard
  // cools only when the *global* ledger is over its total AND this shard is
  // past its nominal share -- a shard under its share never pays for a
  // neighbour's appetite, while a hot shard may run past its share for as
  // long as the others leave the global budget unused (the cross-shard
  // rebalance).
  const auto over_budget = [&] {
    return warm > max_warm_ ||
           (ledger_->over_budget() && bytes > ledger_->share());
  };
  // Cool least-recently-used sessions first, sparing the most recently used
  // one (cooling it would defeat the warm tier entirely). try_lock so a
  // session mid-query is never torn down under a worker; it simply stays
  // warm until the next enforcement pass finds it idle.
  for (auto rit = by_recency.rbegin();
       rit != by_recency.rend() && std::next(rit) != by_recency.rend() &&
       over_budget();
       ++rit) {
    WarmSession& session = **rit;
    if (!session.mutex().try_lock()) continue;
    const std::uint64_t b = session.resident_bytes();
    if (session.is_warm()) {
      session.cool();
      --warm;
      bytes -= b;
      publish_usage(bytes);
    }
    session.mutex().unlock();
  }
  publish_usage(bytes);
}

std::uint64_t SessionManager::warm_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t bytes = 0;
  for (const auto& [key, session] : sessions_) {
    bytes += session->resident_bytes();
  }
  return bytes;
}

std::size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::size_t SessionManager::warm_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t warm = 0;
  for (const auto& [key, session] : sessions_) {
    if (!session->mutex().try_lock()) {
      ++warm;  // busy implies a worker is inside, which implies warm
      continue;
    }
    if (session->is_warm()) ++warm;
    session->mutex().unlock();
  }
  return warm;
}

std::vector<std::pair<std::string, SessionStats>> SessionManager::stats()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, SessionStats>> out;
  out.reserve(sessions_.size());
  for (const auto& [key, session] : sessions_) {
    std::lock_guard<std::mutex> session_lock(session->mutex());
    out.emplace_back(key, session->stats());
  }
  return out;
}

}  // namespace dp::service
